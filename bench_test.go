// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper (regenerating its rows/series at a
// reduced trace budget), plus micro-benchmarks of the hot paths.
//
//	go test -bench=. -benchmem
//
// Full-scale regeneration (paper-sized sweeps over all fifteen benchmarks)
// is `go run ./cmd/experiments all`.
package repro_test

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// benchOpt keeps each experiment benchmark to a few seconds: short traces,
// one benchmark per suite for the sweeps.
func benchOpt() experiments.Options {
	return experiments.Options{Ops: 150_000, Reps: true}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		rep, err := r.Run(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		if rep.Text == "" {
			b.Fatalf("experiment %s produced no output", id)
		}
	}
}

// BenchmarkTable1Config regenerates Table 1 (the machine description).
func BenchmarkTable1Config(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig1MPTUTrace regenerates Figure 1 (MPTU warm-up trace, 4 MB UL2).
func BenchmarkFig1MPTUTrace(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable2Workloads regenerates Table 2 (per-benchmark MPTU at 1/4 MB).
func BenchmarkTable2Workloads(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkFig7CompareFilter regenerates Figure 7 (compare/filter tuning).
func BenchmarkFig7CompareFilter(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8AlignScan regenerates Figure 8 (align bits and scan step).
func BenchmarkFig8AlignScan(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9DepthVsWidth regenerates Figure 9 (depth vs next-line count).
func BenchmarkFig9DepthVsWidth(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Distribution regenerates Figure 10 (UL2 request distribution).
func BenchmarkFig10Distribution(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTLBSweep regenerates the Section 4.2.2 DTLB size sweep.
func BenchmarkTLBSweep(b *testing.B) { runExperiment(b, "tlb") }

// BenchmarkTable3MarkovConfigs regenerates Table 3 (Markov configurations).
func BenchmarkTable3MarkovConfigs(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig11MarkovVsContent regenerates Figure 11 (Markov comparison).
func BenchmarkFig11MarkovVsContent(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkLimitStudyPollution regenerates the Section 3.5 limit study.
func BenchmarkLimitStudyPollution(b *testing.B) { runExperiment(b, "limit") }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the mechanism's hot paths.

// BenchmarkScanLine measures the virtual-address-matching line scan at the
// paper's 8.4.1.2 operating point.
func BenchmarkScanLine(b *testing.B) {
	m := core.DefaultMatch
	line := make([]byte, 64)
	rng := rand.New(rand.NewSource(1))
	for off := 0; off+4 <= 64; off += 4 {
		binary.LittleEndian.PutUint32(line[off:], rng.Uint32())
	}
	binary.LittleEndian.PutUint32(line[8:], 0x1020_3040)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := m.ScanLine(0x1000_0000, line); len(got) == 0 {
			b.Fatal("planted pointer not found")
		}
	}
}

// BenchmarkIsCandidate measures the single-word heuristic.
func BenchmarkIsCandidate(b *testing.B) {
	m := core.DefaultMatch
	var hits int
	for i := 0; i < b.N; i++ {
		if m.IsCandidate(0x1040_2030, uint32(i)<<1) {
			hits++
		}
	}
	_ = hits
}

// BenchmarkCacheLookup measures the UL2 lookup path.
func BenchmarkCacheLookup(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 1 << 20, Ways: 8, LineSize: 64})
	for a := uint32(0); a < 1<<20; a += 64 {
		c.Fill(a, cache.Line{})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint32(i*64)&(1<<20-1), true)
	}
}

// BenchmarkAdaptiveAblation compares the fixed 8.4.1.2 heuristic against
// the adaptive controller (the paper's future-work extension) on the same
// workload, reporting each variant's measured cycles.
func BenchmarkAdaptiveAblation(b *testing.B) {
	spec, err := workloads.ByName("specjbb-vsnet")
	if err != nil {
		b.Fatal(err)
	}
	ck := workloads.Checkpoint(spec, 200_000)
	fixed := sim.Default().WithContent(core.DefaultConfig)
	fixed.WarmupOps = 25_000
	adaptiveCfg := core.DefaultConfig
	ac := core.DefaultAdaptive
	adaptiveCfg.Adaptive = &ac
	adaptive := sim.Default().WithContent(adaptiveCfg)
	adaptive.WarmupOps = 25_000

	b.Run("fixed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := sim.Run(ck, fixed)
			b.ReportMetric(float64(r.MeasuredCycles), "cycles")
		}
	})
	b.Run("adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r := sim.Run(ck, adaptive)
			b.ReportMetric(float64(r.MeasuredCycles), "cycles")
		}
	})
}

// BenchmarkSimulatorUopsPerSecond measures end-to-end simulation throughput
// on the tpcc-1 workload with the full content-prefetcher machine.
func BenchmarkSimulatorUopsPerSecond(b *testing.B) {
	spec, err := workloads.ByName("tpcc-1")
	if err != nil {
		b.Fatal(err)
	}
	ck := workloads.Checkpoint(spec, 150_000)
	cfg := sim.Default().WithContent(core.DefaultConfig)
	cfg.WarmupOps = 20_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sim.Run(ck, cfg)
		if res.Core.Retired == 0 {
			b.Fatal("nothing retired")
		}
	}
	b.ReportMetric(float64(ck.Trace.Len()), "uops/op")
}
