// Command allocheck gates the allocation behaviour of `simlint:hotpath`
// functions on the compiler's real escape analysis, so a heap-escape
// regression on the per-µop fast paths fails CI before a benchmark ever
// runs:
//
//	go run ./cmd/allocheck            # diff against allocheck.baseline.json
//	go run ./cmd/allocheck -update    # accept the current escapes
//
// It locates hotpath functions with the hotalloc analyzer, compiles the
// repository with `go build -gcflags=-m`, attributes each "escapes to heap"
// / "moved to heap" diagnostic falling inside a hotpath body to its
// function, and ratchets the set against the checked-in baseline. New
// escapes fail; vanished escapes also fail (with instructions to -update)
// so the baseline stays an honest inventory of accepted slow-path
// allocations. Exit status 0 means the ratchet holds, 1 means it moved,
// 2 means the build or load failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint"
)

const baselinePath = "allocheck.baseline.json"

func main() {
	update := flag.Bool("update", false, "rewrite "+baselinePath+" from the current compiler output")
	flag.Parse()
	os.Exit(run(*update))
}

func run(update bool) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocheck: %v\n", err)
		return 2
	}

	funcs, err := hotpathFuncs(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocheck: %v\n", err)
		return 2
	}
	if len(funcs) == 0 {
		fmt.Fprintln(os.Stderr, "allocheck: no simlint:hotpath functions found; nothing to check")
		return 2
	}

	// -gcflags=-m replays from the build cache, so repeated runs are cheap
	// and no -a rebuild is needed. The diagnostics go to stderr.
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocheck: go build -gcflags=-m failed: %v\n%s", err, out)
		return 2
	}
	got := lint.ParseEscapes(dir, out, funcs)

	if update {
		if err := lint.WriteAllocBaseline(baselinePath, got); err != nil {
			fmt.Fprintf(os.Stderr, "allocheck: %v\n", err)
			return 2
		}
		fmt.Printf("allocheck: wrote %d escapes for %d hotpath functions to %s\n", total(got), len(funcs), baselinePath)
		return 0
	}

	baseline, err := lint.ReadAllocBaseline(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocheck: %v (run with -update to create it)\n", err)
		return 2
	}
	gained, lost := lint.DiffEscapes(baseline.Escapes, got)
	for _, e := range gained {
		fmt.Printf("allocheck: REGRESSION: %s gained %d× %q not in %s\n", e.Func, e.Count, e.Message, baselinePath)
	}
	for _, e := range lost {
		fmt.Printf("allocheck: stale baseline: %s no longer reports %d× %q; run `go run ./cmd/allocheck -update`\n",
			e.Func, e.Count, e.Message)
	}
	if len(gained)+len(lost) > 0 {
		return 1
	}
	fmt.Printf("allocheck: ok — %d hotpath functions, %d accepted escapes, ratchet holds\n", len(funcs), total(got))
	return 0
}

// hotpathFuncs runs the hotalloc analyzer over the repository and collects
// every simlint:hotpath function's file/line range.
func hotpathFuncs(dir string) ([]lint.HotFunc, error) {
	pkgs, err := lint.Load(dir, []string{"./..."})
	if err != nil {
		return nil, err
	}
	var funcs []lint.HotFunc
	for _, pkg := range pkgs {
		_, results, err := lint.RunPackageResults(pkg, []*analysis.Analyzer{lint.Hotalloc})
		if err != nil {
			return nil, err
		}
		if res, ok := results[lint.Hotalloc].(*lint.HotallocResult); ok && res != nil {
			funcs = append(funcs, res.Funcs...)
		}
	}
	return funcs, nil
}

func total(es []lint.Escape) int {
	n := 0
	for _, e := range es {
		n += e.Count
	}
	return n
}
