// Command bench runs the fixed reduced-budget benchmark matrix and appends
// one schema-versioned telemetry file (BENCH_<n>.json) to the output
// directory, so the repository accumulates a performance trajectory over
// time. CI runs it as a non-blocking job and uploads the report.
//
//	go run ./cmd/bench                 # all experiments, report at repo root
//	go run ./cmd/bench -run table2     # a subset
//	go run ./cmd/bench -hotpath=false  # skip the end-to-end micro-benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/benchio"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// hotPathBefore is BenchmarkSimulatorUopsPerSecond measured at the commit
// named by hotPathBeforeRef — the last tree before the allocation-and-
// dispatch pass over the simulation hot path. Keeping the baseline in the
// report makes every BENCH file self-describing.
var hotPathBefore = benchio.Metrics{
	NsPerOp:     39_227_232,
	BytesPerOp:  12_917_652,
	AllocsPerOp: 421_396,
}

const hotPathBeforeRef = "3ec0134"

func main() {
	out := flag.String("out", ".", "directory for the BENCH_<n>.json report")
	ops := flag.Int("ops", 60_000, "per-benchmark µop budget for the experiment matrix")
	run := flag.String("run", "", "comma-separated experiment ids (default: all registered)")
	hotpath := flag.Bool("hotpath", true, "run the end-to-end simulator micro-benchmark")
	flag.Parse()

	ids := experiments.IDs()
	if *run != "" {
		ids = strings.Split(*run, ",")
	}

	report := &benchio.Report{
		Schema:      benchio.SchemaVersion,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Ops:         *ops,
	}

	if *hotpath {
		fmt.Println("hot path: BenchmarkSimulatorUopsPerSecond ...")
		report.HotPath = measureHotPath()
		fmt.Printf("  before (%s): %.1f ms/op, %d B/op, %d allocs/op\n",
			hotPathBeforeRef, report.HotPath.Before.NsPerOp/1e6,
			report.HotPath.Before.BytesPerOp, report.HotPath.Before.AllocsPerOp)
		fmt.Printf("  after:         %.1f ms/op, %d B/op, %d allocs/op\n",
			report.HotPath.After.NsPerOp/1e6,
			report.HotPath.After.BytesPerOp, report.HotPath.After.AllocsPerOp)
	}

	opt := experiments.Options{Ops: *ops, Reps: true}
	for _, id := range ids {
		r, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var before, after runtime.MemStats
		simsBefore := experiments.SimsRun()
		runtime.ReadMemStats(&before)
		start := time.Now()
		rep, err := r.Run(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if rep.Text == "" {
			fmt.Fprintf(os.Stderr, "experiment %s produced no output\n", r.ID)
			os.Exit(1)
		}
		sims := experiments.SimsRun() - simsBefore
		e := benchio.Experiment{
			ID:         r.ID,
			Title:      r.Title,
			WallMS:     float64(wall.Nanoseconds()) / 1e6,
			Sims:       sims,
			SimsPerSec: float64(sims) / wall.Seconds(),
			AllocMB:    float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			Allocs:     after.Mallocs - before.Mallocs,
		}
		report.Experiments = append(report.Experiments, e)
		fmt.Printf("%-8s %8.0f ms  %3d sims  %6.1f sims/s  %8.1f MB alloc\n",
			r.ID, e.WallMS, e.Sims, e.SimsPerSec, e.AllocMB)
	}

	report.PeakRSSKB = benchio.PeakRSSKB()

	path, n, err := benchio.NextPath(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := benchio.Write(path, report); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (report #%d, peak RSS %d KiB)\n", path, n, report.PeakRSSKB)
}

// measureHotPath reruns bench_test.go's BenchmarkSimulatorUopsPerSecond
// workload under testing.Benchmark and returns its allocation profile.
func measureHotPath() *benchio.HotPath {
	spec, err := workloads.ByName("tpcc-1")
	if err != nil {
		panic(err)
	}
	ck := workloads.Checkpoint(spec, 150_000)
	cfg := sim.Default().WithContent(core.DefaultConfig)
	cfg.WarmupOps = 20_000
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := sim.Run(ck, cfg); r.Core.Retired == 0 {
				b.Fatal("nothing retired")
			}
		}
	})
	return &benchio.HotPath{
		Benchmark: "BenchmarkSimulatorUopsPerSecond",
		BeforeRef: hotPathBeforeRef,
		Before:    hotPathBefore,
		After: benchio.Metrics{
			NsPerOp:     float64(res.NsPerOp()),
			BytesPerOp:  uint64(res.AllocedBytesPerOp()),
			AllocsPerOp: uint64(res.AllocsPerOp()),
		},
	}
}
