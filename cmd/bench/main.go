// Command bench runs a declared benchmark suite and appends one
// schema-versioned telemetry file (BENCH_<n>.json) to the output
// directory, so the repository accumulates a performance trajectory over
// time — or gates a fresh report against the previous one.
//
//	go run ./cmd/bench -suite suites/default.toml                   # run, number automatically
//	go run ./cmd/bench -suite suites/quick.toml -out BENCH_3.json   # run to an explicit path
//	go run ./cmd/bench -verdict BENCH_3.json -against BENCH_2.json  # regression gate (exit 1 on breach)
//
// Suites declare jobs (experiment matrices, the hot-path micro-benchmark,
// in-process cdpd cluster storms), per-job profilers (pprof CPU, heap,
// runtime/trace — artifacts land under -profile-dir and are summarized
// into the report), and the tolerances the verdict gates with. See
// suites/ for the checked-in suites and DESIGN.md §15 for the format.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/benchio"
	"repro/internal/benchsuite"
)

func main() {
	suitePath := flag.String("suite", "suites/default.toml", "suite declaration to run")
	out := flag.String("out", ".", "output: a directory (next BENCH_<n>.json is chosen) or an explicit .json path")
	profileDir := flag.String("profile-dir", "artifacts", "directory for pprof/trace artifacts")
	verdict := flag.String("verdict", "", "compare this BENCH file against -against instead of running a suite")
	against := flag.String("against", "", "baseline BENCH file for -verdict (default: its predecessor in the same directory)")
	flag.Parse()

	if *verdict != "" {
		os.Exit(runVerdict(os.Stdout, *verdict, *against))
	}
	if err := runSuite(*suitePath, *out, *profileDir); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func runSuite(suitePath, out, profileDir string) error {
	s, err := benchsuite.LoadSuite(suitePath)
	if err != nil {
		return err
	}
	fmt.Printf("suite %s: %d jobs\n", s.Name, len(s.Jobs))
	report, err := benchsuite.RunSuite(s, benchsuite.RunOptions{
		ProfileDir: profileDir,
		Log: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}

	path := out
	n := 0
	if !strings.HasSuffix(out, ".json") {
		if path, n, err = benchio.NextPath(out); err != nil {
			return err
		}
	}
	if err := benchio.Write(path, report); err != nil {
		return err
	}
	if n > 0 {
		fmt.Printf("wrote %s (report #%d)\n", path, n)
	} else {
		fmt.Printf("wrote %s\n", path)
	}
	return nil
}

// runVerdict prints the regression verdict to w and returns the process
// exit code: 0 on pass, 1 on breach, 2 on operational errors.
func runVerdict(w io.Writer, currentPath, againstPath string) int {
	if againstPath == "" {
		var err error
		if againstPath, err = predecessor(currentPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	baseline, err := benchio.Read(againstPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	current, err := benchio.Read(currentPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(w, "comparing %s (schema %d) against %s (schema %d)\n",
		filepath.Base(currentPath), current.Schema, filepath.Base(againstPath), baseline.Schema)
	v := benchsuite.CompareReports(baseline, current)
	io.WriteString(w, v.Render())
	if !v.Pass {
		return 1
	}
	return 0
}

// predecessor finds the BENCH file numerically before currentPath in the
// same directory.
func predecessor(currentPath string) (string, error) {
	dir := filepath.Dir(currentPath)
	paths, err := benchio.List(dir)
	if err != nil {
		return "", err
	}
	abs := func(p string) string {
		a, err := filepath.Abs(p)
		if err != nil {
			return p
		}
		return a
	}
	prev := ""
	for _, p := range paths {
		if abs(p) == abs(currentPath) {
			if prev == "" {
				return "", fmt.Errorf("bench: %s has no predecessor in %s", currentPath, dir)
			}
			return prev, nil
		}
		prev = p
	}
	return "", fmt.Errorf("bench: %s not found among BENCH files in %s", currentPath, dir)
}
