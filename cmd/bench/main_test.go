package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden verdict files")

// TestVerdictFixtures drives `bench -verdict` over synthetic trajectory
// fixtures and pins both the exit code and the rendered verdict. The
// breach fixtures are how CI proves the gate actually fails — by feeding
// it a known regression, not by regressing the repo.
func TestVerdictFixtures(t *testing.T) {
	cases := []struct {
		name     string
		wantCode int
	}{
		{"improved", 0},      // everything got faster
		{"drift", 0},         // slower, but inside every tolerance
		{"sims_breach", 1},   // fig9 throughput -15% > 10% budget
		{"alloc_breach", 1},  // hot-path allocs/op +3 > zero-growth budget
		{"missing_field", 0}, // gates without baseline data skip, loudly
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			code := runVerdict(&buf,
				filepath.Join("testdata", tc.name+".json"),
				filepath.Join("testdata", "BENCH_base.json"))
			if code != tc.wantCode {
				t.Errorf("exit code = %d, want %d\n%s", code, tc.wantCode, buf.String())
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("verdict output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, buf.String(), want)
			}
		})
	}
}

func TestVerdictOperationalErrors(t *testing.T) {
	var buf bytes.Buffer
	if code := runVerdict(&buf, "testdata/improved.json", "testdata/nope.json"); code != 2 {
		t.Fatalf("missing baseline: code %d, want 2", code)
	}
	if code := runVerdict(&buf, "testdata/nope.json", "testdata/BENCH_base.json"); code != 2 {
		t.Fatalf("missing current: code %d, want 2", code)
	}
}

// TestVerdictDefaultBaseline checks that -verdict without -against picks
// the numeric predecessor in the same directory.
func TestVerdictDefaultBaseline(t *testing.T) {
	dir := t.TempDir()
	base, err := os.ReadFile("testdata/BENCH_base.json")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := os.ReadFile("testdata/improved.json")
	if err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"BENCH_1.json": base,
		"BENCH_2.json": base,
		"BENCH_3.json": cur,
	} {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if code := runVerdict(&buf, filepath.Join(dir, "BENCH_3.json"), ""); code != 0 {
		t.Fatalf("code %d\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "against BENCH_2.json") {
		t.Fatalf("did not pick predecessor:\n%s", buf.String())
	}

	var errBuf bytes.Buffer
	if code := runVerdict(&errBuf, filepath.Join(dir, "BENCH_1.json"), ""); code != 2 {
		t.Fatalf("first report should have no predecessor, code %d", code)
	}
}
