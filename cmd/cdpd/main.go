// Command cdpd serves the simulator over HTTP: POST /v1/sim submits a
// simulation into a bounded worker pool, identical requests are collapsed
// and cached by content hash, and /metrics exposes queue, cache, and
// throughput telemetry. See internal/api for the endpoint catalogue.
//
// Roles: the default -role standalone is the single-process daemon. -role
// coordinator serves the same API but owns no simulator — it routes each
// job to its content key's owner on a consistent-hash ring of workers and
// steals jobs back from workers that die mid-run. -role worker joins a
// coordinator (-join URL), heartbeats a lease, and serves its share of the
// keyspace; its result cache becomes the shared tier (memory, disk spill
// under -cache-dir, then peer fetch from the ring). See internal/cluster.
//
// Resilience: -checkpoint-dir persists boundary snapshots of running
// simulations so a killed daemon resumes them on restart (byte-identical
// results); watermark flags shed low-priority work and flip /readyz under
// overload; -faults arms the deterministic fault-injection plan (testing
// only). Invalid flags exit 2 with a one-line message before anything
// starts.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the server stops accepting
// work, drains in-flight jobs within -drain, cancels whatever remains, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only at -debug-addr
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

// options collects every flag so validation is one pure function the tests
// can hit without execing the binary.
type options struct {
	addr       string
	workers    int
	queueCap   int
	cacheMB    int
	jobTimeout time.Duration
	drain      time.Duration

	role     string
	joinURL  string
	name     string
	selfURL  string
	cacheDir string
	stateDir string
	leaseTTL time.Duration

	checkpointDir   string
	checkpointEvery int
	shedWatermark   float64
	overloadWM      float64
	adaptiveTimeout bool

	faults    string
	faultSeed int64

	debugAddr string
	logLevel  string
}

// parseLogLevel maps the -log-level flag to a slog level; empty means the
// default (info), so a zero options value stays valid.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("-log-level must be debug, info, warn, or error; got %q", s)
}

// checkBaseURL validates a flag that must name a reachable HTTP endpoint.
func checkBaseURL(flagName, raw string) error {
	u, err := url.Parse(raw)
	if err != nil || !u.IsAbs() || u.Host == "" || (u.Scheme != "http" && u.Scheme != "https") {
		return fmt.Errorf("%s %q is not an absolute http(s) URL, e.g. %s http://127.0.0.1:8080", flagName, raw, flagName)
	}
	return nil
}

// checkWritableDir creates dir if needed and probes it with a throwaway
// file so a typoed path fails at startup, not at first use.
func checkWritableDir(flagName, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("%s %q is not creatable: %v", flagName, dir, err)
	}
	probe := filepath.Join(dir, ".cdpd-probe")
	if err := os.WriteFile(probe, nil, 0o644); err != nil {
		return fmt.Errorf("%s %q is not writable: %v", flagName, dir, err)
	}
	_ = os.Remove(probe)
	return nil
}

// validate rejects configurations that cannot work, each with a one-line
// message that says how to fix it.
func validate(o options) error {
	if o.addr == "" {
		return errors.New("-addr must not be empty; pass host:port, e.g. -addr 127.0.0.1:8080")
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 means GOMAXPROCS); got %d", o.workers)
	}
	if o.queueCap <= 0 {
		return fmt.Errorf("-queue must be positive (it bounds queued jobs before 429s); got %d", o.queueCap)
	}
	if o.cacheMB <= 0 {
		return fmt.Errorf("-cache-mb must be positive (result cache bound in MiB); got %d", o.cacheMB)
	}
	if o.jobTimeout < 0 {
		return fmt.Errorf("-job-timeout must be >= 0 (0 disables the per-job deadline); got %v", o.jobTimeout)
	}
	if o.drain < 0 {
		return fmt.Errorf("-drain must be >= 0; got %v", o.drain)
	}
	switch o.role {
	case "", "standalone", "coordinator", "worker": // empty = standalone, so a zero options value stays valid
	default:
		return fmt.Errorf("-role must be standalone, coordinator, or worker; got %q", o.role)
	}
	if o.role == "worker" && o.joinURL == "" {
		return errors.New("-role worker requires -join (the coordinator's base URL, e.g. -join http://127.0.0.1:8080)")
	}
	if o.joinURL != "" {
		if o.role != "worker" {
			return fmt.Errorf("-join only applies to -role worker; got -role %s", o.role)
		}
		if err := checkBaseURL("-join", o.joinURL); err != nil {
			return err
		}
	}
	if o.selfURL != "" {
		if err := checkBaseURL("-self-url", o.selfURL); err != nil {
			return err
		}
	}
	if o.leaseTTL < 0 {
		return fmt.Errorf("-lease-ttl must be >= 0 (0 = default %v); got %v", cluster.DefaultLeaseTTL, o.leaseTTL)
	}
	if o.cacheDir != "" {
		if err := checkWritableDir("-cache-dir", o.cacheDir); err != nil {
			return err
		}
	}
	if o.stateDir != "" {
		if o.role != "coordinator" {
			return fmt.Errorf("-state-dir only applies to -role coordinator (it holds the membership/placement journal); got -role %s", o.role)
		}
		if err := checkWritableDir("-state-dir", o.stateDir); err != nil {
			return err
		}
	}
	if o.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 µops (0 disables segmentation); got %d", o.checkpointEvery)
	}
	if o.shedWatermark < 0 || o.shedWatermark > 1 {
		return fmt.Errorf("-shed-watermark must be in [0,1] (fraction of -queue; 0 = default 0.75); got %g", o.shedWatermark)
	}
	if o.overloadWM < 0 || o.overloadWM > 1 {
		return fmt.Errorf("-overload-watermark must be in [0,1] (fraction of -queue; 0 = default 0.90); got %g", o.overloadWM)
	}
	if o.shedWatermark > 0 && o.overloadWM > 0 && o.shedWatermark > o.overloadWM {
		return fmt.Errorf("-shed-watermark (%g) must not exceed -overload-watermark (%g); shedding is the earlier defense", o.shedWatermark, o.overloadWM)
	}
	if o.checkpointDir != "" {
		if err := checkWritableDir("-checkpoint-dir", o.checkpointDir); err != nil {
			return err
		}
	}
	if o.faults != "" {
		if _, err := faultinject.Parse(o.faultSeed, o.faults); err != nil {
			return fmt.Errorf("-faults spec rejected: %v", err)
		}
	}
	if o.debugAddr != "" && o.debugAddr == o.addr {
		return fmt.Errorf("-debug-addr must differ from -addr (%q); pprof gets its own listener", o.addr)
	}
	if _, err := parseLogLevel(o.logLevel); err != nil {
		return err
	}
	return nil
}

// advertiseURL derives the URL peers reach a worker at when -self-url is
// not given: the listen address with a wildcard host rewritten to
// loopback.
func advertiseURL(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "http://" + addr
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port)
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queueCap, "queue", 64, "max queued jobs before 429s")
	flag.IntVar(&o.cacheMB, "cache-mb", 64, "result cache bound in MiB")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 10*time.Minute, "per-job deadline (0 = none)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.StringVar(&o.role, "role", "standalone", "standalone, coordinator, or worker")
	flag.StringVar(&o.joinURL, "join", "", "coordinator base URL (required for -role worker)")
	flag.StringVar(&o.name, "name", "", "worker's stable ring identity (default: derived from -addr)")
	flag.StringVar(&o.selfURL, "self-url", "", "base URL peers reach this worker at (default: derived from -addr)")
	flag.StringVar(&o.cacheDir, "cache-dir", "", "disk spill tier for the result cache (empty = memory only)")
	flag.StringVar(&o.stateDir, "state-dir", "", "coordinator journal dir: membership and in-flight placements survive a crash (empty = memory only)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", 0, "coordinator worker-lease TTL (0 = default 3s)")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "persist boundary snapshots here and resume them on restart (empty = off)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "default snapshot interval in fetched µops for submitted sims (0 = unsegmented)")
	flag.Float64Var(&o.shedWatermark, "shed-watermark", 0, "queue-depth fraction beyond which priority<0 work is shed (0 = 0.75)")
	flag.Float64Var(&o.overloadWM, "overload-watermark", 0, "queue-depth fraction beyond which /readyz reports 503 (0 = 0.90)")
	flag.BoolVar(&o.adaptiveTimeout, "adaptive-timeout", false, "derive per-job deadlines from observed simulation throughput")
	flag.StringVar(&o.faults, "faults", os.Getenv("CDPD_FAULTS"), "fault-injection plan, e.g. 'jobq.worker.crash:p=0.1' (testing only; also CDPD_FAULTS)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the fault plan's deterministic randomness")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof at this address (empty = off)")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log threshold: debug, info, warn, or error")
	flag.Parse()

	if err := validate(o); err != nil {
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(2)
	}

	if o.faults != "" {
		plan, err := faultinject.Parse(o.faultSeed, o.faults)
		if err != nil { // unreachable: validate parsed the same spec
			fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
			os.Exit(2)
		}
		faultinject.Enable(plan)
		fmt.Fprintf(os.Stderr, "cdpd: WARNING fault injection armed (seed %d): %s\n", o.faultSeed, o.faults)
	}

	level, err := parseLogLevel(o.logLevel)
	if err != nil { // unreachable: validate parsed the same level
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	queueCfg := jobq.Config{
		Workers:    o.workers,
		Capacity:   o.queueCap,
		JobTimeout: o.jobTimeout,
	}
	apiOpts := api.Options{
		CheckpointDir:      o.checkpointDir,
		CheckpointEveryOps: o.checkpointEvery,
		ShedWatermark:      o.shedWatermark,
		OverloadWatermark:  o.overloadWM,
		AdaptiveTimeout:    o.adaptiveTimeout,
		Logger:             logger,
	}

	// Each role yields an HTTP handler and a drain routine; everything
	// after this switch (listeners, signals, shutdown sequencing) is
	// role-agnostic.
	var handler http.Handler
	var drain func(ctx context.Context)
	switch o.role {
	case "coordinator":
		coord, err := cluster.NewCoordinator(cluster.CoordinatorOptions{
			LeaseTTL:           o.leaseTTL,
			CheckpointEveryOps: o.checkpointEvery,
			CacheBytes:         int64(o.cacheMB) << 20,
			Queue:              queueCfg,
			StateDir:           o.stateDir,
			Logger:             logger,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
			os.Exit(2)
		}
		handler = coord
		drain = func(ctx context.Context) {
			coord.API().SetDraining(true)
			if err := coord.Close(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "cdpd: drain deadline passed, canceled remaining jobs: %v\n", err)
			}
		}

	case "worker":
		name := o.name
		selfURL := o.selfURL
		if selfURL == "" {
			selfURL = advertiseURL(o.addr)
		}
		if name == "" {
			name = "worker-" + o.addr
		}
		wrk, err := cluster.NewWorker(cluster.WorkerOptions{
			Name:       name,
			SelfURL:    selfURL,
			JoinURL:    o.joinURL,
			CacheDir:   o.cacheDir,
			CacheBytes: int64(o.cacheMB) << 20,
			Queue:      queueCfg,
			API:        apiOpts,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
			os.Exit(2)
		}
		// No RecoverJobs here: cluster checkpoint dirs are shared, and a
		// worker must not bulk-adopt snapshots that belong to jobs the
		// coordinator will route (and resume) by content key anyway.
		wrk.Start()
		fmt.Fprintf(os.Stderr, "cdpd: worker %q joining %s as %s\n", name, o.joinURL, selfURL)
		handler = wrk
		drain = func(ctx context.Context) {
			wrk.API().SetDraining(true)
			if err := wrk.Close(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "cdpd: drain deadline passed, canceled remaining jobs: %v\n", err)
			}
		}

	default: // standalone
		queue := jobq.New(queueCfg)
		var resultCache api.ResultCache
		mem := simcache.New(int64(o.cacheMB) << 20)
		if o.cacheDir != "" {
			tiered := simcache.NewTiered(mem, o.cacheDir, nil)
			defer tiered.Close()
			resultCache = tiered
		} else {
			resultCache = mem
		}
		server, err := api.NewWithOptions(queue, resultCache, apiOpts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
			os.Exit(2)
		}
		if n, err := server.RecoverJobs(); err != nil {
			fmt.Fprintf(os.Stderr, "cdpd: checkpoint recovery: %v\n", err)
		} else if n > 0 {
			fmt.Fprintf(os.Stderr, "cdpd: resumed %d persisted job(s) from %s\n", n, o.checkpointDir)
		}
		handler = server
		drain = func(ctx context.Context) {
			server.SetDraining(true)
			if err := queue.Shutdown(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "cdpd: drain deadline passed, canceled remaining jobs: %v\n", err)
			}
		}
	}

	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if o.debugAddr != "" {
		// The pprof handlers live on the default mux (the blank
		// net/http/pprof import) and get their own listener so profiling
		// endpoints are never exposed on the service address.
		dbgSrv := &http.Server{
			Addr:              o.debugAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "cdpd: pprof on http://%s/debug/pprof/\n", o.debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "cdpd: debug server: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cdpd: %s listening on http://%s\n", o.role, o.addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Shutdown sequence: flip readiness so load balancers stop routing
	// here, stop the queue (drain or cancel within the deadline), then
	// close the listener once responses for finished jobs have gone out.
	fmt.Fprintln(os.Stderr, "cdpd: shutting down")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	drain(drainCtx)
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "cdpd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "cdpd: bye")
}
