// Command cdpd serves the simulator over HTTP: POST /v1/sim submits a
// simulation into a bounded worker pool, identical requests are collapsed
// and cached by content hash, and /metrics exposes queue, cache, and
// throughput telemetry. See internal/api for the endpoint catalogue.
//
// Resilience: -checkpoint-dir persists boundary snapshots of running
// simulations so a killed daemon resumes them on restart (byte-identical
// results); watermark flags shed low-priority work and flip /readyz under
// overload; -faults arms the deterministic fault-injection plan (testing
// only). Invalid flags exit 2 with a one-line message before anything
// starts.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the server stops accepting
// work, drains in-flight jobs within -drain, cancels whatever remains, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only at -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

// options collects every flag so validation is one pure function the tests
// can hit without execing the binary.
type options struct {
	addr       string
	workers    int
	queueCap   int
	cacheMB    int
	jobTimeout time.Duration
	drain      time.Duration

	checkpointDir   string
	checkpointEvery int
	shedWatermark   float64
	overloadWM      float64
	adaptiveTimeout bool

	faults    string
	faultSeed int64

	debugAddr string
	logLevel  string
}

// parseLogLevel maps the -log-level flag to a slog level; empty means the
// default (info), so a zero options value stays valid.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("-log-level must be debug, info, warn, or error; got %q", s)
}

// validate rejects configurations that cannot work, each with a one-line
// message that says how to fix it. It also probes the checkpoint
// directory for writability so a typoed path fails at startup, not at the
// first boundary snapshot.
func validate(o options) error {
	if o.addr == "" {
		return errors.New("-addr must not be empty; pass host:port, e.g. -addr 127.0.0.1:8080")
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 means GOMAXPROCS); got %d", o.workers)
	}
	if o.queueCap <= 0 {
		return fmt.Errorf("-queue must be positive (it bounds queued jobs before 429s); got %d", o.queueCap)
	}
	if o.cacheMB <= 0 {
		return fmt.Errorf("-cache-mb must be positive (result cache bound in MiB); got %d", o.cacheMB)
	}
	if o.jobTimeout < 0 {
		return fmt.Errorf("-job-timeout must be >= 0 (0 disables the per-job deadline); got %v", o.jobTimeout)
	}
	if o.drain < 0 {
		return fmt.Errorf("-drain must be >= 0; got %v", o.drain)
	}
	if o.checkpointEvery < 0 {
		return fmt.Errorf("-checkpoint-every must be >= 0 µops (0 disables segmentation); got %d", o.checkpointEvery)
	}
	if o.shedWatermark < 0 || o.shedWatermark > 1 {
		return fmt.Errorf("-shed-watermark must be in [0,1] (fraction of -queue; 0 = default 0.75); got %g", o.shedWatermark)
	}
	if o.overloadWM < 0 || o.overloadWM > 1 {
		return fmt.Errorf("-overload-watermark must be in [0,1] (fraction of -queue; 0 = default 0.90); got %g", o.overloadWM)
	}
	if o.shedWatermark > 0 && o.overloadWM > 0 && o.shedWatermark > o.overloadWM {
		return fmt.Errorf("-shed-watermark (%g) must not exceed -overload-watermark (%g); shedding is the earlier defense", o.shedWatermark, o.overloadWM)
	}
	if o.checkpointDir != "" {
		if err := os.MkdirAll(o.checkpointDir, 0o755); err != nil {
			return fmt.Errorf("-checkpoint-dir %q is not creatable: %v", o.checkpointDir, err)
		}
		probe := filepath.Join(o.checkpointDir, ".cdpd-probe")
		if err := os.WriteFile(probe, nil, 0o644); err != nil {
			return fmt.Errorf("-checkpoint-dir %q is not writable: %v", o.checkpointDir, err)
		}
		_ = os.Remove(probe)
	}
	if o.faults != "" {
		if _, err := faultinject.Parse(o.faultSeed, o.faults); err != nil {
			return fmt.Errorf("-faults spec rejected: %v", err)
		}
	}
	if o.debugAddr != "" && o.debugAddr == o.addr {
		return fmt.Errorf("-debug-addr must differ from -addr (%q); pprof gets its own listener", o.addr)
	}
	if _, err := parseLogLevel(o.logLevel); err != nil {
		return err
	}
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.IntVar(&o.workers, "workers", 0, "worker pool size (0 = GOMAXPROCS)")
	flag.IntVar(&o.queueCap, "queue", 64, "max queued jobs before 429s")
	flag.IntVar(&o.cacheMB, "cache-mb", 64, "result cache bound in MiB")
	flag.DurationVar(&o.jobTimeout, "job-timeout", 10*time.Minute, "per-job deadline (0 = none)")
	flag.DurationVar(&o.drain, "drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "persist boundary snapshots here and resume them on restart (empty = off)")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "default snapshot interval in fetched µops for submitted sims (0 = unsegmented)")
	flag.Float64Var(&o.shedWatermark, "shed-watermark", 0, "queue-depth fraction beyond which priority<0 work is shed (0 = 0.75)")
	flag.Float64Var(&o.overloadWM, "overload-watermark", 0, "queue-depth fraction beyond which /readyz reports 503 (0 = 0.90)")
	flag.BoolVar(&o.adaptiveTimeout, "adaptive-timeout", false, "derive per-job deadlines from observed simulation throughput")
	flag.StringVar(&o.faults, "faults", os.Getenv("CDPD_FAULTS"), "fault-injection plan, e.g. 'jobq.worker.crash:p=0.1' (testing only; also CDPD_FAULTS)")
	flag.Int64Var(&o.faultSeed, "fault-seed", 1, "seed for the fault plan's deterministic randomness")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof at this address (empty = off)")
	flag.StringVar(&o.logLevel, "log-level", "info", "structured log threshold: debug, info, warn, or error")
	flag.Parse()

	if err := validate(o); err != nil {
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(2)
	}

	if o.faults != "" {
		plan, err := faultinject.Parse(o.faultSeed, o.faults)
		if err != nil { // unreachable: validate parsed the same spec
			fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
			os.Exit(2)
		}
		faultinject.Enable(plan)
		fmt.Fprintf(os.Stderr, "cdpd: WARNING fault injection armed (seed %d): %s\n", o.faultSeed, o.faults)
	}

	level, err := parseLogLevel(o.logLevel)
	if err != nil { // unreachable: validate parsed the same level
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(2)
	}
	logger := slog.New(slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	queue := jobq.New(jobq.Config{
		Workers:    o.workers,
		Capacity:   o.queueCap,
		JobTimeout: o.jobTimeout,
	})
	cache := simcache.New(int64(o.cacheMB) << 20)
	server, err := api.NewWithOptions(queue, cache, api.Options{
		CheckpointDir:      o.checkpointDir,
		CheckpointEveryOps: o.checkpointEvery,
		ShedWatermark:      o.shedWatermark,
		OverloadWatermark:  o.overloadWM,
		AdaptiveTimeout:    o.adaptiveTimeout,
		Logger:             logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(2)
	}
	if n, err := server.RecoverJobs(); err != nil {
		fmt.Fprintf(os.Stderr, "cdpd: checkpoint recovery: %v\n", err)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "cdpd: resumed %d persisted job(s) from %s\n", n, o.checkpointDir)
	}

	httpSrv := &http.Server{
		Addr:              o.addr,
		Handler:           server,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if o.debugAddr != "" {
		// The pprof handlers live on the default mux (the blank
		// net/http/pprof import) and get their own listener so profiling
		// endpoints are never exposed on the service address.
		dbgSrv := &http.Server{
			Addr:              o.debugAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			fmt.Fprintf(os.Stderr, "cdpd: pprof on http://%s/debug/pprof/\n", o.debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "cdpd: debug server: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cdpd: listening on http://%s\n", o.addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Shutdown sequence: flip readiness so load balancers stop routing
	// here, stop the queue (drain or cancel within the deadline), then
	// close the listener once responses for finished jobs have gone out.
	fmt.Fprintln(os.Stderr, "cdpd: shutting down")
	server.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := queue.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cdpd: drain deadline passed, canceled remaining jobs: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "cdpd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "cdpd: bye")
}
