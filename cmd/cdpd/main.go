// Command cdpd serves the simulator over HTTP: POST /v1/sim submits a
// simulation into a bounded worker pool, identical requests are collapsed
// and cached by content hash, and /metrics exposes queue, cache, and
// throughput telemetry. See internal/api for the endpoint catalogue.
//
// SIGINT/SIGTERM trigger a graceful shutdown: the server stops accepting
// work, drains in-flight jobs within -drain, cancels whatever remains, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/api"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queueCap := flag.Int("queue", 64, "max queued jobs before 429s")
	cacheMB := flag.Int("cache-mb", 64, "result cache bound in MiB")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job deadline (0 = none)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	flag.Parse()

	queue := jobq.New(jobq.Config{
		Workers:    *workers,
		Capacity:   *queueCap,
		JobTimeout: *jobTimeout,
	})
	cache := simcache.New(int64(*cacheMB) << 20)
	server := api.New(queue, cache)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           server,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "cdpd: listening on http://%s\n", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "cdpd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Shutdown sequence: flip readiness so load balancers stop routing
	// here, stop the queue (drain or cancel within the deadline), then
	// close the listener once responses for finished jobs have gone out.
	fmt.Fprintln(os.Stderr, "cdpd: shutting down")
	server.SetDraining(true)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := queue.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "cdpd: drain deadline passed, canceled remaining jobs: %v\n", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "cdpd: http shutdown: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "cdpd: bye")
}
