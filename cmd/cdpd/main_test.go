package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goodOptions() options {
	return options{
		addr:       "127.0.0.1:0",
		queueCap:   64,
		cacheMB:    64,
		jobTimeout: time.Minute,
		drain:      time.Second,
	}
}

// TestValidate pins the startup contract: every broken flag is rejected
// with a message naming the flag and how to fix it, before any state
// exists.
func TestValidate(t *testing.T) {
	if err := validate(goodOptions()); err != nil {
		t.Fatalf("default-shaped options rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"empty addr", func(o *options) { o.addr = "" }, "-addr"},
		{"negative workers", func(o *options) { o.workers = -1 }, "-workers"},
		{"zero queue", func(o *options) { o.queueCap = 0 }, "-queue"},
		{"zero cache", func(o *options) { o.cacheMB = 0 }, "-cache-mb"},
		{"negative job timeout", func(o *options) { o.jobTimeout = -time.Second }, "-job-timeout"},
		{"negative drain", func(o *options) { o.drain = -time.Second }, "-drain"},
		{"negative checkpoint interval", func(o *options) { o.checkpointEvery = -5 }, "-checkpoint-every"},
		{"watermark above one", func(o *options) { o.shedWatermark = 1.5 }, "-shed-watermark"},
		{"inverted watermarks", func(o *options) { o.shedWatermark = 0.9; o.overloadWM = 0.5 }, "must not exceed"},
		{"bad fault spec", func(o *options) { o.faults = "no.such.point" }, "-faults"},
		{"malformed fault option", func(o *options) { o.faults = "jobq.worker.crash:wat" }, "-faults"},
	}
	for _, c := range cases {
		o := goodOptions()
		c.mut(&o)
		err := validate(o)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: message %q does not mention %q", c.name, err, c.want)
		}
		if strings.ContainsRune(err.Error(), '\n') {
			t.Errorf("%s: message is not one line: %q", c.name, err)
		}
	}
}

// TestValidateCheckpointDirProbe: an impossible checkpoint path (a file in
// the way) fails at startup with the path in the message, and a good path
// is created and left probe-free.
func TestValidateCheckpointDirProbe(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := goodOptions()
	o.checkpointDir = filepath.Join(file, "sub")
	if err := validate(o); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("impossible dir: %v, want a -checkpoint-dir error", err)
	}

	o.checkpointDir = filepath.Join(base, "ckpt")
	if err := validate(o); err != nil {
		t.Fatalf("creatable dir rejected: %v", err)
	}
	entries, err := os.ReadDir(o.checkpointDir)
	if err != nil {
		t.Fatalf("validate did not create the dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("probe file left behind: %v", entries)
	}
}
