package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func goodOptions() options {
	return options{
		addr:       "127.0.0.1:0",
		queueCap:   64,
		cacheMB:    64,
		jobTimeout: time.Minute,
		drain:      time.Second,
	}
}

// TestValidate pins the startup contract: every broken flag is rejected
// with a message naming the flag and how to fix it, before any state
// exists.
func TestValidate(t *testing.T) {
	if err := validate(goodOptions()); err != nil {
		t.Fatalf("default-shaped options rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*options)
		want string
	}{
		{"empty addr", func(o *options) { o.addr = "" }, "-addr"},
		{"negative workers", func(o *options) { o.workers = -1 }, "-workers"},
		{"zero queue", func(o *options) { o.queueCap = 0 }, "-queue"},
		{"zero cache", func(o *options) { o.cacheMB = 0 }, "-cache-mb"},
		{"negative job timeout", func(o *options) { o.jobTimeout = -time.Second }, "-job-timeout"},
		{"negative drain", func(o *options) { o.drain = -time.Second }, "-drain"},
		{"negative checkpoint interval", func(o *options) { o.checkpointEvery = -5 }, "-checkpoint-every"},
		{"watermark above one", func(o *options) { o.shedWatermark = 1.5 }, "-shed-watermark"},
		{"inverted watermarks", func(o *options) { o.shedWatermark = 0.9; o.overloadWM = 0.5 }, "must not exceed"},
		{"bad fault spec", func(o *options) { o.faults = "no.such.point" }, "-faults"},
		{"malformed fault option", func(o *options) { o.faults = "jobq.worker.crash:wat" }, "-faults"},
	}
	for _, c := range cases {
		o := goodOptions()
		c.mut(&o)
		err := validate(o)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: message %q does not mention %q", c.name, err, c.want)
		}
		if strings.ContainsRune(err.Error(), '\n') {
			t.Errorf("%s: message is not one line: %q", c.name, err)
		}
	}
}

// TestValidateClusterFlags pins the cluster startup contract: role/join
// combinations that cannot work die with exit-worthy one-line messages
// naming the flag, and every coherent combination is accepted.
func TestValidateClusterFlags(t *testing.T) {
	stateDir := t.TempDir()
	cases := []struct {
		name string
		mut  func(*options)
		want string // "" = must be accepted
	}{
		{"standalone explicit", func(o *options) { o.role = "standalone" }, ""},
		{"coordinator", func(o *options) { o.role = "coordinator" }, ""},
		{"worker with join", func(o *options) {
			o.role = "worker"
			o.joinURL = "http://127.0.0.1:8080"
		}, ""},
		{"bad role", func(o *options) { o.role = "follower" }, "-role"},
		{"worker without join", func(o *options) { o.role = "worker" }, "-join"},
		{"join on standalone", func(o *options) { o.joinURL = "http://127.0.0.1:8080" }, "-join"},
		{"join on coordinator", func(o *options) {
			o.role = "coordinator"
			o.joinURL = "http://127.0.0.1:8080"
		}, "-join"},
		{"relative join URL", func(o *options) {
			o.role = "worker"
			o.joinURL = "127.0.0.1:8080"
		}, "-join"},
		{"unparseable join URL", func(o *options) {
			o.role = "worker"
			o.joinURL = "http://bad url:x"
		}, "-join"},
		{"bad self URL", func(o *options) {
			o.role = "worker"
			o.joinURL = "http://127.0.0.1:8080"
			o.selfURL = "not-a-url"
		}, "-self-url"},
		{"negative lease TTL", func(o *options) {
			o.role = "coordinator"
			o.leaseTTL = -time.Second
		}, "-lease-ttl"},
		{"state dir on coordinator", func(o *options) {
			o.role = "coordinator"
			o.stateDir = filepath.Join(stateDir, "journal")
		}, ""},
		{"state dir on standalone", func(o *options) {
			o.stateDir = filepath.Join(stateDir, "journal")
		}, "-state-dir"},
		{"state dir on worker", func(o *options) {
			o.role = "worker"
			o.joinURL = "http://127.0.0.1:8080"
			o.stateDir = filepath.Join(stateDir, "journal")
		}, "-state-dir"},
	}
	for _, c := range cases {
		o := goodOptions()
		c.mut(&o)
		err := validate(o)
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: rejected: %v", c.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: message %q does not mention %q", c.name, err, c.want)
		}
		if strings.ContainsRune(err.Error(), '\n') {
			t.Errorf("%s: message is not one line: %q", c.name, err)
		}
	}
}

// TestValidateCacheDirProbe: the shared-cache spill directory gets the same
// startup writability probe as the checkpoint dir — an unwritable path is a
// one-line -cache-dir error, a creatable one is made and left empty.
func TestValidateCacheDirProbe(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := goodOptions()
	o.cacheDir = filepath.Join(file, "sub")
	if err := validate(o); err == nil || !strings.Contains(err.Error(), "-cache-dir") {
		t.Fatalf("impossible dir: %v, want a -cache-dir error", err)
	}

	o.cacheDir = filepath.Join(base, "spill")
	if err := validate(o); err != nil {
		t.Fatalf("creatable dir rejected: %v", err)
	}
	entries, err := os.ReadDir(o.cacheDir)
	if err != nil {
		t.Fatalf("validate did not create the dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("probe file left behind: %v", entries)
	}
}

// TestAdvertiseURL: wildcard listen addresses advertise a dialable
// loopback URL; concrete hosts advertise themselves.
func TestAdvertiseURL(t *testing.T) {
	cases := map[string]string{
		":8080":            "http://127.0.0.1:8080",
		"0.0.0.0:9090":     "http://127.0.0.1:9090",
		"[::]:7070":        "http://127.0.0.1:7070",
		"10.1.2.3:8080":    "http://10.1.2.3:8080",
		"localhost:0":      "http://localhost:0",
		"192.168.1.5:6060": "http://192.168.1.5:6060",
	}
	for addr, want := range cases {
		if got := advertiseURL(addr); got != want {
			t.Errorf("advertiseURL(%q) = %q, want %q", addr, got, want)
		}
	}
}

// TestValidateCheckpointDirProbe: an impossible checkpoint path (a file in
// the way) fails at startup with the path in the message, and a good path
// is created and left probe-free.
func TestValidateCheckpointDirProbe(t *testing.T) {
	base := t.TempDir()
	file := filepath.Join(base, "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	o := goodOptions()
	o.checkpointDir = filepath.Join(file, "sub")
	if err := validate(o); err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("impossible dir: %v, want a -checkpoint-dir error", err)
	}

	o.checkpointDir = filepath.Join(base, "ckpt")
	if err := validate(o); err != nil {
		t.Fatalf("creatable dir rejected: %v", err)
	}
	entries, err := os.ReadDir(o.checkpointDir)
	if err != nil {
		t.Fatalf("validate did not create the dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("probe file left behind: %v", entries)
	}
}
