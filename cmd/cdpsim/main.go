// Command cdpsim runs one benchmark on one machine configuration and
// prints the full measurement breakdown — the workhorse for exploring the
// simulator interactively.
//
// Usage:
//
//	cdpsim [-ops N] [-cdp] [-markov stab-kb] [-engine spec] [-l2 kb] [-tlb entries] [-inject] [-trace out.json] <benchmark>
//	cdpsim list
//	cdpsim list-engines
//
// With -trace, the run is instrumented with the internal/simtrace event
// tracer: the Chrome trace_event JSON written to the given path loads in
// Perfetto (one track per component), and a per-chain summary table is
// printed after the counters.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/prefetch/registry"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simtrace"
	"repro/internal/workloads"
)

func main() {
	ops := flag.Int("ops", 0, "µop budget (0 = default)")
	useCDP := flag.Bool("cdp", false, "enable the content-directed prefetcher")
	depth := flag.Int("depth", 3, "content prefetch depth threshold")
	next := flag.Int("next", 3, "content next-line prefetches")
	prev := flag.Int("prev", 0, "content previous-line prefetches")
	noReinf := flag.Bool("no-reinforce", false, "disable path reinforcement")
	markovKB := flag.Int("markov", 0, "enable Markov prefetcher with STAB budget in KB (-1 = unbounded)")
	engine := flag.String("engine", "", "attach a zoo entrant by registry spec, e.g. pangloss or bestoffset:degree=2 (cdpsim list-engines)")
	l2kb := flag.Int("l2", 1024, "UL2 size in KB")
	l2ways := flag.Int("l2ways", 8, "UL2 associativity")
	tlbEntries := flag.Int("tlb", 64, "DTLB entries")
	inject := flag.Bool("inject", false, "inject bad prefetches on idle bus cycles")
	baseline := flag.Bool("baseline", false, "also run the stride baseline and report speedup")
	tracePath := flag.String("trace", "", "write a Perfetto-loadable Chrome trace_event JSON here")
	traceCap := flag.Int("trace-cap", 1<<20, "trace ring capacity in events (oldest overwritten)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cdpsim [flags] <benchmark> | list | list-engines")
		os.Exit(2)
	}
	if flag.Arg(0) == "list" {
		for _, s := range workloads.All() {
			fmt.Printf("%-14s %s\n", s.Name, s.Suite)
		}
		return
	}
	if flag.Arg(0) == "list-engines" {
		for _, n := range registry.Names() {
			e, _ := registry.Lookup(n)
			fmt.Printf("%-12s %s\n", e.Name, e.Doc)
		}
		return
	}
	spec, err := workloads.ByName(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		fmt.Fprintln(os.Stderr, "valid benchmarks:")
		for _, s := range workloads.All() {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", s.Name, s.Suite)
		}
		os.Exit(2)
	}
	ck := workloads.Checkpoint(spec, *ops)

	cfg := sim.Default()
	cfg.WarmupOps = uint64(ck.Trace.Len() / 8)
	cfg.MPTUBucketOps = uint64(ck.Trace.Len() / 48)
	cfg.L2 = cache.Config{SizeBytes: *l2kb * 1024, Ways: *l2ways, LineSize: sim.LineSize}
	cfg.TLB.Entries = *tlbEntries
	cfg.InjectBadPrefetches = *inject
	if *useCDP {
		cc := core.DefaultConfig
		cc.DepthThreshold = *depth
		cc.NextLines = *next
		cc.PrevLines = *prev
		cc.Reinforce = !*noReinf
		cfg = cfg.WithContent(cc)
	}
	if *markovKB != 0 {
		budget := *markovKB * 1024
		if *markovKB < 0 {
			budget = 0
		}
		cfg = cfg.WithMarkov(budget, cfg.L2)
	}
	if *engine != "" {
		// Validate here so a typo exits with the registry's name listing,
		// matching the unknown-benchmark convention, instead of panicking
		// inside the simulator.
		if err := registry.Validate(*engine); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg = cfg.WithEngine(*engine)
	}

	var tr *simtrace.Tracer
	if *tracePath != "" {
		tr = simtrace.New(*traceCap)
	}
	res := sim.RunTraced(ck, cfg, tr)
	printResult(ck.Name, res)
	if tr != nil {
		if err := writeTrace(*tracePath, tr); err != nil {
			fmt.Fprintf(os.Stderr, "cdpsim: %v\n", err)
			os.Exit(1)
		}
		chains := tr.Chains()
		fmt.Println()
		fmt.Print(report.ChainTable(chains).Render())
		fmt.Printf("trace            %d events to %s (%d dropped by the ring)\n",
			tr.Len(), *tracePath, tr.Dropped())
	}

	if *baseline {
		base := sim.Default()
		base.WarmupOps = cfg.WarmupOps
		base.MPTUBucketOps = cfg.MPTUBucketOps
		b := sim.Run(ck, base)
		fmt.Printf("\nStride-baseline cycles: %d\nSpeedup over baseline:  %.4f\n",
			b.MeasuredCycles, res.SpeedupOver(b))
	}
}

func writeTrace(path string, tr *simtrace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printResult(name string, r *sim.Result) {
	c := r.Counters
	fmt.Printf("benchmark        %s\nconfig           %s\n", name, r.Config.Name)
	fmt.Printf("retired µops     %d (measured %d)\n", r.Core.Retired, r.MeasuredUops)
	fmt.Printf("cycles           %d (measured %d)\n", r.Core.Cycles, r.MeasuredCycles)
	fmt.Printf("IPC              %.3f\n", r.IPC())
	fmt.Printf("branches         %d (%d mispredicted)\n", r.Core.Branches, r.Core.Mispredicts)
	fmt.Printf("L1 demand        %d hits / %d misses\n", c.L1Hits, c.L1Misses)
	fmt.Printf("L2 demand loads  %d hits / %d misses (MPTU %.2f)\n",
		c.L2Hits, c.L2Misses, c.MPTUFor(r.MeasuredUops))
	fmt.Printf("TLB              %d hits / %d misses, %d walks (+%d speculative)\n",
		r.TLBHits, r.TLBMisses, c.Walks, c.CDPWalks)
	srcs := []cache.Source{cache.SrcStride, cache.SrcContent, cache.SrcMarkov}
	names := []string{"stride", "content", "markov"}
	for i, s := range srcs {
		if c.PrefIssued[s] == 0 {
			continue
		}
		fmt.Printf("%-7s prefetch  issued %d, useful %d (full %d / partial %d), evicted-unused %d, accuracy %.3f\n",
			names[i], c.PrefIssued[s], c.UsefulPrefetches(s), c.FullHits[s], c.PartialHits[s],
			c.PrefEvictedUnused[s], c.Accuracy(s))
	}
	fmt.Printf("prefetch drops   present %d, inflight %d, queue-full %d, squashed %d, unmapped %d\n",
		c.PrefDroppedPresent, c.PrefDroppedInflight, c.PrefDroppedQueue, c.PrefSquashed, c.PrefDroppedUnmapped)
	if c.Rescans > 0 {
		fmt.Printf("reinforcement    %d rescans, %d depth promotions\n", c.Rescans, c.PromotedDepths)
	}
	if c.UsefulPrefetches(cache.SrcContent) > 0 {
		fmt.Printf("mask histogram   %v (fully masked: %.1f%%)\n", c.MaskBuckets, c.FullyMaskedShare()*100)
	}
	if c.InjectedPrefetches > 0 {
		fmt.Printf("injected         %d bad prefetches\n", c.InjectedPrefetches)
	}
}
