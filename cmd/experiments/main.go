// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-ops N] [-reps] [-p N] <id>... | all | list
//
// Each id is a table/figure from the paper's evaluation (see DESIGN.md):
// table1, fig1, table2, fig7, fig8, fig9, fig10, tlb, table3, fig11, limit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	ops := flag.Int("ops", 0, "per-benchmark µop budget (0 = default)")
	reps := flag.Bool("reps", false, "restrict sweeps to one benchmark per suite")
	par := flag.Int("p", 0, "parallel simulations (0 = GOMAXPROCS)")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	opt := experiments.Options{Ops: *ops, Reps: *reps, Parallelism: *par}

	if args[0] == "list" {
		for _, id := range experiments.IDs() {
			r, _ := experiments.Get(id)
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	ids := args
	if args[0] == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		r, err := experiments.Get(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		rep, err := r.Run(opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(rep.Text)
		fmt.Printf("[%s completed in %v]\n\n", rep.ID, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: experiments [-ops N] [-reps] [-p N] <id>... | all | list")
}
