// Command simlint runs the simulator-specific static-analysis suite of
// internal/lint over the repository:
//
//	go run ./cmd/simlint ./...
//	go run ./cmd/simlint -json -baseline simlint.baseline.json ./...
//
// It exits 0 when clean, 1 when any analyzer reports a finding, and 2 when
// loading or analysis fails. See internal/lint for the analyzer catalogue
// and the `simlint:allow` / `simlint:novalidate` / `simlint:guardedby` /
// `simlint:holds` / `simlint:rootctx` / `simlint:hotpath` markers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (repo-relative file paths)")
	baseline := flag.String("baseline", "", "diff findings against this baseline file; stale entries are reported")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit 0")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), "\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	opts := lint.MainOptions{JSON: *jsonOut, Baseline: *baseline, WriteBaseline: *writeBaseline}
	os.Exit(lint.Main(os.Stdout, ".", flag.Args(), opts))
}
