// Command simlint runs the simulator-specific static-analysis suite of
// internal/lint over the repository:
//
//	go run ./cmd/simlint ./...
//
// It exits 0 when clean, 1 when any analyzer reports a finding, and 2 when
// loading or analysis fails. See internal/lint for the analyzer catalogue
// and the `simlint:allow` / `simlint:novalidate` markers.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: simlint [packages]\n\nAnalyzers:\n")
		for _, a := range lint.Analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	os.Exit(lint.Main(os.Stdout, ".", flag.Args()))
}
