// Command tracegen generates, saves, and inspects LIT-like checkpoints
// (memory snapshot + µop trace) for the Table 2 benchmarks.
//
// Usage:
//
//	tracegen gen  [-ops N] [-o file] <benchmark>
//	tracegen info <file>
package main

import (
	"fmt"
	"os"

	"repro/internal/mem"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tracegen gen [-ops N] [-o file] <benchmark> | tracegen info <file>")
	os.Exit(2)
}

func gen(args []string) {
	ops := 0
	out := ""
	var name string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-ops":
			i++
			fmt.Sscanf(args[i], "%d", &ops)
		case "-o":
			i++
			out = args[i]
		default:
			name = args[i]
		}
	}
	if name == "" {
		usage()
	}
	spec, err := workloads.ByName(name)
	if err != nil {
		fatal(err)
	}
	ck := workloads.Checkpoint(spec, ops)
	if out == "" {
		out = name + ".cdpt"
	}
	f, err := os.Create(out)
	if err != nil {
		fatal(err)
	}
	n, err := ck.WriteTo(f)
	if err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s: %d bytes, %d µops, %d instructions, %d pages\n",
		out, n, ck.Trace.Len(), ck.Instrs, ck.Space.Img.PageCount())
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	f, err := os.Open(args[0])
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	ck, err := trace.ReadCheckpoint(f)
	if err != nil {
		fatal(err)
	}
	mix := trace.MixOf(ck.Trace)
	fmt.Printf("name          %s\n", ck.Name)
	fmt.Printf("µops          %d (%s)\n", ck.Trace.Len(), mix)
	fmt.Printf("instructions  %d (%.2f µops/instr)\n", ck.Instrs,
		float64(ck.Trace.Len())/float64(max(ck.Instrs, 1)))
	fmt.Printf("memory        %d pages backed (%d KiB), %d pages mapped\n",
		ck.Space.Img.PageCount(), ck.Space.Img.PageCount()*mem.PageSize/1024,
		ck.Space.MappedPages())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
