// Markovcompare: Section 5's quantitative comparison on one OLTP workload.
// The Markov prefetcher records miss-successor history in a State
// Transition Table carved out of the UL2's resource budget; the content
// prefetcher needs no table at all. This example reruns the comparison on
// tpcc-2 with the Table 3 configurations.
//
//	go run ./examples/markovcompare
package main

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	spec, err := workloads.ByName("tpcc-2")
	if err != nil {
		panic(err)
	}
	ck := workloads.Checkpoint(spec, 0)

	base := sim.Default()
	base.WarmupOps = uint64(ck.Trace.Len() / 8)

	l2 := func(kb, ways int) cache.Config {
		return cache.Config{SizeBytes: kb * 1024, Ways: ways, LineSize: sim.LineSize}
	}
	configs := []struct {
		name string
		cfg  sim.Config
	}{
		{"stride baseline (1MB UL2)", base},
		{"markov_1/8 (128KB STAB, 896KB UL2)", base.WithMarkov(128*1024, l2(896, 7))},
		{"markov_1/2 (512KB STAB, 512KB UL2)", base.WithMarkov(512*1024, l2(512, 8))},
		{"markov_big (unbounded STAB, 1MB UL2)", base.WithMarkov(0, l2(1024, 8))},
		{"content prefetcher (1MB UL2)", base.WithContent(core.DefaultConfig)},
	}

	var baseline *sim.Result
	fmt.Printf("%-40s %12s %8s %10s %10s\n", "configuration", "cycles", "speedup", "pf-issued", "pf-useful")
	for _, c := range configs {
		r := sim.Run(ck, c.cfg)
		if baseline == nil {
			baseline = r
		}
		issued := r.Counters.PrefIssued[cache.SrcMarkov] + r.Counters.PrefIssued[cache.SrcContent]
		useful := r.Counters.UsefulPrefetches(cache.SrcMarkov) + r.Counters.UsefulPrefetches(cache.SrcContent)
		fmt.Printf("%-40s %12d %8.3f %10d %10d\n",
			c.name, r.MeasuredCycles, r.SpeedupOver(baseline), issued, useful)
	}
	fmt.Println("\nThe Markov splits pay for their table twice: a smaller UL2 and a")
	fmt.Println("training period; the stateless content prefetcher pays for neither.")
}
