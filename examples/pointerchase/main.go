// Pointerchase: a deep dive into prefetch chaining and feedback-directed
// path reinforcement (Figures 3 and 4 of the paper).
//
// The example builds one long scattered linked list whose traversal does
// substantial per-node work — the regime where the prefetch wave can run
// ahead of the demand stream — and compares four machines:
//
//	stride baseline | chaining only | chaining at depth 9 | chaining + reinforcement
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func buildWorkload() *trace.Checkpoint {
	space := mem.NewAddressSpace()
	alloc := heap.NewAllocator(space, 0x1000_0000, 0x1100_0000)
	rng := rand.New(rand.NewSource(7))
	list := heap.BuildList(alloc, rng, heap.ListSpec{
		Nodes: 20_000, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill,
	})
	// Records are 128 bytes (two lines): next-line widening earns its keep.
	records := make([]uint32, len(list.Nodes))
	for i, n := range list.Nodes {
		records[i] = alloc.Alloc(128, 64)
		space.Img.Write32(records[i], rng.Uint32()|1)
		space.Img.Write32(n+8, records[i])
	}
	b := trace.NewBuilder()
	for pass := 0; pass < 2; pass++ {
		for i, n := range list.Nodes {
			b.Load(0x104, 2, 1, n+8)           // record pointer
			b.Load(0x108, 3, 2, records[i])    // record line 0
			b.Load(0x10C, 3, 2, records[i]+64) // record line 1
			for w := 0; w < 20; w++ {
				b.Int(0x120+uint32(w)*4, 3, 3, trace.NoReg)
			}
			b.Branch(0x160, 3, space.Img.Read32(records[i])&3 != 0)
			b.Load(0x100, 1, 1, n)
			b.Branch(0x180, 1, i+1 < len(list.Nodes))
		}
	}
	return &trace.Checkpoint{Name: "pointerchase", Space: space, Trace: b.Trace()}
}

func main() {
	ck := buildWorkload()
	base := sim.Default()
	base.WarmupOps = 60_000

	configs := []struct {
		name string
		cfg  sim.Config
	}{
		{"stride baseline", base},
		{"cdp depth 3, no reinforcement", withCDP(base, 3, false)},
		{"cdp depth 9, no reinforcement", withCDP(base, 9, false)},
		{"cdp depth 3, reinforcement", withCDP(base, 3, true)},
	}

	var baseline *sim.Result
	fmt.Printf("%-32s %12s %8s %8s %9s %9s %8s\n",
		"configuration", "cycles", "speedup", "issued", "full", "partial", "rescans")
	for _, c := range configs {
		r := sim.Run(ck, c.cfg)
		if baseline == nil {
			baseline = r
		}
		st := r.Counters
		fmt.Printf("%-32s %12d %8.3f %8d %9d %9d %8d\n",
			c.name, r.MeasuredCycles, r.SpeedupOver(baseline),
			st.PrefIssued[cache.SrcContent],
			st.FullHits[cache.SrcContent], st.PartialHits[cache.SrcContent],
			st.Rescans)
	}
	fmt.Println("\nReinforcement keeps the chain a depth-threshold ahead of the demand")
	fmt.Println("stream (Figure 4(b)): same depth bound, strictly fewer chain restarts.")
}

func withCDP(base sim.Config, depth int, reinforce bool) sim.Config {
	cc := core.DefaultConfig
	cc.DepthThreshold = depth
	cc.Reinforce = reinforce
	return base.WithContent(cc)
}
