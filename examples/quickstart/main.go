// Quickstart: build a pointer-chasing workload in simulated memory, run it
// on the Table 1 machine with and without the content-directed prefetcher,
// and print the speedup.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. Materialise a scattered linked list with per-node payload
	// records in a simulated 32-bit address space. The pointers are real
	// little-endian words in memory — exactly what the prefetcher scans.
	space := mem.NewAddressSpace()
	alloc := heap.NewAllocator(space, 0x1000_0000, 0x1100_0000)
	rng := rand.New(rand.NewSource(1))
	list := heap.BuildList(alloc, rng, heap.ListSpec{
		Nodes:    24_000,
		NodeSize: 64,
		NextOff:  0,
		Fill:     heap.DefaultFill,
	})
	payload := make([]uint32, len(list.Nodes))
	for i, n := range list.Nodes {
		payload[i] = alloc.Alloc(64, 64)
		space.Img.Write32(payload[i], rng.Uint32()|1)
		space.Img.Write32(n+8, payload[i]) // node -> payload pointer
	}

	// 2. Trace two traversals: load next pointer (dependence chain), load
	// the payload through the node's pointer, do some work, branch on the
	// loaded data.
	b := trace.NewBuilder()
	for pass := 0; pass < 2; pass++ {
		for i, n := range list.Nodes {
			b.Load(0x104, 2, 1, n+8)        // r2 = node->payload
			b.Load(0x108, 3, 2, payload[i]) // r3 = *r2
			for w := 0; w < 6; w++ {
				b.Int(0x120+uint32(w)*4, 3, 3, trace.NoReg)
			}
			b.Branch(0x160, 3, space.Img.Read32(payload[i])&1 == 1)
			b.Load(0x100, 1, 1, n) // r1 = node->next: the chase
			b.Branch(0x180, 1, i+1 < len(list.Nodes))
		}
	}
	ck := &trace.Checkpoint{Name: "quickstart", Space: space, Trace: b.Trace()}

	// 3. Run the stride-only baseline and the content-prefetcher machine.
	base := sim.Default()
	base.WarmupOps = 50_000
	withCDP := base.WithContent(core.DefaultConfig)

	rBase := sim.Run(ck, base)
	rCDP := sim.Run(ck, withCDP)

	fmt.Printf("baseline (stride only):  %9d cycles  IPC %.3f\n",
		rBase.MeasuredCycles, rBase.IPC())
	fmt.Printf("with content prefetcher: %9d cycles  IPC %.3f\n",
		rCDP.MeasuredCycles, rCDP.IPC())
	fmt.Printf("speedup: %.3f\n\n", rCDP.SpeedupOver(rBase))

	c := rCDP.Counters
	fmt.Printf("content prefetches issued: %d\n", c.PrefIssued[cache.SrcContent])
	fmt.Printf("  fully masked misses:     %d\n", c.FullHits[cache.SrcContent])
	fmt.Printf("  partially masked misses: %d\n", c.PartialHits[cache.SrcContent])
	fmt.Printf("  accuracy:                %.3f\n", c.Accuracy(cache.SrcContent))
	fmt.Printf("  chain rescans:           %d\n", c.Rescans)
}
