// Tuning: explore the virtual-address-matching knobs (Figures 7 and 8) on a
// custom workload. The example sweeps compare bits with filter bits fixed,
// printing the stride-adjusted coverage/accuracy trade-off the paper uses
// to select the 8.4.1.2 operating point.
//
//	go run ./examples/tuning
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	spec, err := workloads.ByName("specjbb-vsnet")
	if err != nil {
		panic(err)
	}
	ck := workloads.Checkpoint(spec, 600_000)

	base := sim.Default()
	base.WarmupOps = uint64(ck.Trace.Len() / 8)

	fmt.Printf("%-10s %12s %12s %10s\n", "cmp.flt", "adj-coverage", "adj-accuracy", "speedup")
	baseline := sim.Run(ck, base)
	for _, compare := range []int{8, 9, 10, 11, 12} {
		for _, filter := range []int{0, 4} {
			cc := core.Config{
				Match: core.MatchConfig{
					CompareBits: compare, FilterBits: filter,
					AlignBits: 1, ScanStep: 2,
				},
				DepthThreshold: 3,
				RescanSlack:    1,
				Reinforce:      true,
				NextLines:      3,
				LineSize:       sim.LineSize,
			}
			r := sim.Run(ck, base.WithContent(cc))
			fmt.Printf("%02d.%-7d %12.3f %12.3f %10.3f\n",
				compare, filter,
				r.Counters.AdjustedCoverage(),
				r.Counters.AdjustedAccuracy(),
				r.SpeedupOver(baseline))
		}
	}
	fmt.Println("\nMore compare bits shrink the prefetchable range (coverage falls);")
	fmt.Println("filter bits recover the all-zeros/all-ones regions the compare test")
	fmt.Println("cannot separate from small constants.")
}
