module repro

go 1.23

require golang.org/x/tools v0.30.0

// The container has no network access, so the go/analysis framework is
// vendored from the Go toolchain distribution (cmd/vendor) under
// third_party/ and wired in with a local replace directive.
replace golang.org/x/tools => ./third_party/golang.org/x/tools
