// Package api exposes the simulator as an HTTP service (cmd/cdpd). Three
// layers cooperate: handlers validate and shape requests, internal/jobq
// bounds and schedules the work, and internal/simcache deduplicates it —
// an identical (benchmark, config, ops) request is served from cache, and
// concurrent identical submissions collapse into one simulation.
//
// Endpoints:
//
//	POST   /v1/sim               submit a simulation (?wait=1 blocks for the result)
//	GET    /v1/jobs/{id}         poll a job
//	GET    /v1/jobs/{id}/stream  NDJSON progress stream until terminal
//	DELETE /v1/jobs/{id}         cancel a job
//	GET    /v1/experiments/{id}  run a registered experiment as a job
//	GET    /v1/arena             sweep every prefetcher engine over a benchmark set
//	GET    /v1/engines           list the registered prefetcher zoo
//	GET    /healthz              liveness
//	GET    /readyz               readiness (503 while draining or overloaded)
//	GET    /metrics              Prometheus-style text metrics
package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/simtrace"
	"repro/internal/trace"
	"repro/internal/workloads"
)

const (
	// traceRingCap bounds the event ring of a traced job; overflow drops
	// the oldest events and is recorded in the exported trace metadata.
	traceRingCap = 1 << 18
	// maxStoredTraces bounds how many finished traces the daemon retains.
	maxStoredTraces = 16
)

// RetryBudgetHeader carries a client's remaining retry budget on a submit.
// The cluster coordinator caps its own placement attempts (primaries +
// steals + hedges) by it, so a client that keeps retrying and a
// coordinator that keeps re-placing cannot multiply each other's work
// unboundedly. Defined here, next to the API surface, so the client and
// the coordinator cannot drift.
const RetryBudgetHeader = "X-Cdpd-Retry-Budget"

// ResultCache is the slice of the result cache the handlers use. Both the
// plain in-memory simcache.Cache and the cluster's simcache.TieredCache
// (mem → disk spill → peer fetch) satisfy it, which is how a worker joins
// the shared content-addressed tier without the handlers changing: the
// tiered cache's GetOrCompute probes the colder tiers before compute runs.
type ResultCache interface {
	Get(k simcache.Key) ([]byte, bool)
	GetOrCompute(k simcache.Key, compute func() ([]byte, error)) ([]byte, bool, error)
	Stats() simcache.Stats
}

// Server wires the handlers to a queue and a cache. Construct with New or
// NewWithOptions.
type Server struct {
	queue    *jobq.Queue
	cache    ResultCache
	mux      *http.ServeMux
	draining atomic.Bool
	opts     Options
	store    *ckptStore // nil unless Options.CheckpointDir is set
	counters

	logger *slog.Logger
	traces *traceStore

	// Request-path latency histograms exported by /metrics.
	queueWait   *histogram // submit accepted -> job function starts
	runDur      *histogram // one simulation, checkpoint generation included
	cacheLookup *histogram // result-cache probe on the submit path

	started   time.Time
	startSims uint64
}

// New builds a server around an already-running queue and cache with the
// default (zero) resilience options.
func New(q *jobq.Queue, c ResultCache) *Server {
	s, err := NewWithOptions(q, c, Options{})
	if err != nil {
		// Only the checkpoint store can fail, and Options{} has none.
		panic(err)
	}
	return s
}

// NewWithOptions builds a server with an explicit resilience
// configuration. It fails only when the checkpoint directory cannot be
// created.
func NewWithOptions(q *jobq.Queue, c ResultCache, opts Options) (*Server, error) {
	s := &Server{
		queue:       q,
		cache:       c,
		mux:         http.NewServeMux(),
		opts:        opts,
		logger:      opts.Logger,
		traces:      newTraceStore(maxStoredTraces),
		queueWait:   newHistogram(latencyBuckets),
		runDur:      newHistogram(latencyBuckets),
		cacheLookup: newHistogram(latencyBuckets),
		started:     time.Now(),
		startSims:   sim.Runs(),
	}
	if s.logger == nil {
		s.logger = slog.New(slog.DiscardHandler)
	}
	if opts.CheckpointDir != "" {
		store, err := newCkptStore(opts.CheckpointDir)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	s.mux.HandleFunc("POST /v1/sim", s.handleSubmitSim)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	s.mux.HandleFunc("GET /v1/arena", s.handleArena)
	s.mux.HandleFunc("GET /v1/engines", s.handleEngines)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// SetDraining flips readiness; a draining server answers /readyz with 503
// so load balancers stop routing to it while in-flight jobs finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// jobPayload is what sim/experiment jobs store as their jobq value.
type jobPayload struct {
	data   []byte
	cached bool // true when served from a resident simcache entry
}

// JobResult packs a terminal job value in the shape the job handlers
// (GET /v1/jobs/{id} and friends) decode. The cluster coordinator stores a
// remote worker's answer through this, so a proxied job is
// indistinguishable from a local one to every polling and streaming
// client.
func JobResult(data []byte, cached bool) any { return jobPayload{data: data, cached: cached} }

// JobResultBytes unpacks a value packed by JobResult (or produced by a
// local sim/arena job).
func JobResultBytes(v any) (data []byte, cached bool, ok bool) {
	p, ok := v.(jobPayload)
	return p.data, p.cached, ok
}

// envelope is the terminal response shape for results.
type envelope struct {
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeBackpressure maps ErrQueueFull to 429 with a Retry-After estimate
// proportional to the backlog (one second per queued job, clamped to
// [1s, 30s]) and ErrShuttingDown to 503.
func (s *Server) writeBackpressure(w http.ResponseWriter, err error) {
	if errors.Is(err, jobq.ErrShuttingDown) {
		writeError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	retry := s.queue.Stats().Depth
	if retry < 1 {
		retry = 1
	}
	if retry > 30 {
		retry = 30
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests, "queue full, retry in ~%ds", retry)
}

// handleSubmitSim is POST /v1/sim: validate, consult the cache, and only
// then spend a queue slot.
func (s *Server) handleSubmitSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.CheckpointEveryOps == 0 {
		req.CheckpointEveryOps = s.opts.CheckpointEveryOps
	}
	spec, cfg, ops, err := buildSim(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := simcache.KeyFor(spec, cfg, ops)
	lookupStart := time.Now()
	data, hit := s.cache.Get(key)
	s.cacheLookup.Observe(time.Since(lookupStart))
	if hit {
		s.logger.Info("sim served from cache",
			"content_key", key.String(), "benchmark", req.Benchmark)
		injectRespondFaults(w, r)
		writeJSON(w, http.StatusOK, envelope{Cached: true, Result: data})
		return
	}
	if s.shedLowPriority(req.Priority) {
		s.writeShed(w)
		return
	}

	id := SimJobID(key)
	var resume *sim.Snapshot
	if s.store != nil && cfg.CheckpointEveryOps > 0 {
		// A snapshot persisted under this content-keyed ID — by a previous
		// process, or by a dead cluster peer when the checkpoint dir is
		// shared — lets the run pick up from its last boundary instead of
		// µop zero. This is the work-stealing resume path: the coordinator
		// resubmits a stolen job to a new worker, and the new worker finds
		// the victim's snapshot right here.
		if resume = s.store.loadSnapshot(id); resume != nil {
			s.resumedJobs.Add(1)
		}
	}
	traced := req.Trace && resume == nil
	job, err := s.queue.SubmitTimeout(id, req.Priority, s.adaptiveTimeout(ops),
		s.simJob(id, spec, cfg, ops, key, resume, time.Now(), traced))
	if errors.Is(err, jobq.ErrDuplicateID) {
		// The same request is already queued or running; attach to it
		// instead of spending another slot.
		if j, ok := s.queue.Get(id); ok {
			s.respondJob(w, r, req.Wait, j)
			return
		}
	}
	if err != nil {
		s.writeBackpressure(w, err)
		return
	}
	if s.store != nil {
		// Persist the defaulted request so a restarted daemon can rebuild
		// this exact job (same content key, same ID) and resume it.
		if err := s.store.saveRequest(id, req); err != nil {
			s.ckptWriteErrs.Add(1)
		}
	}
	s.respondJob(w, r, req.Wait, job)
}

// simJob builds the job function for one simulation request. The cache
// fill happens inside the job so the queue, not the HTTP handler, pays for
// the simulation, and GetOrCompute collapses concurrent identical keys
// into one run. With a positive checkpoint interval the simulation runs
// segmented, persisting each boundary snapshot (when a store is
// configured); resume picks the run up from a snapshot recovered at
// startup instead of µop zero.
//
// submitted is when the request was accepted; the gap to the job function
// starting is the queue wait. With traced set, the run carries a simtrace
// ring and the rendered Chrome trace is retained for GET
// /v1/jobs/{id}/trace — only when this job actually computes: a cache hit
// or collapsed computation runs no simulation, so there is nothing to
// trace.
func (s *Server) simJob(id string, spec workloads.Spec, cfg sim.Config, ops int, key simcache.Key, resume *sim.Snapshot, submitted time.Time, traced bool) jobq.Func {
	return func(ctx context.Context, j *jobq.Job) (any, error) {
		wait := time.Since(submitted)
		s.queueWait.Observe(wait)
		log := s.logger.With("job_id", id, "content_key", key.String(), "benchmark", spec.Name)
		log.Info("job started", "queue_wait", wait, "ops", ops, "traced", traced)
		data, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
			j.SetProgress("generating checkpoint", 0, 2)
			ck := workloads.Checkpoint(spec, ops)
			j.SetProgress("simulating", 1, 2)
			var tr *simtrace.Tracer
			if traced {
				tr = simtrace.New(traceRingCap)
			}
			start := time.Now()
			res, err := s.runSim(ctx, j, id, ck, cfg, resume, tr)
			dur := time.Since(start)
			if err != nil {
				log.Warn("simulation failed", "sim_duration", dur, "error", err)
				return nil, err
			}
			s.runDur.Observe(dur)
			s.observeSimRate(dur, ops)
			log.Info("simulation finished", "sim_duration", dur,
				"cycles", res.Core.Cycles, "ipc", res.IPC())
			if tr != nil {
				s.storeTrace(id, tr, log)
			}
			return renderResult(spec.Name, ops, res)
		})
		if err != nil {
			return nil, err
		}
		if s.store != nil {
			s.store.remove(id)
		}
		j.SetProgress("finished", 2, 2)
		return jobPayload{data: data, cached: hit}, nil
	}
}

// storeTrace renders the ring as Chrome trace_event JSON and retains it
// for the trace endpoint. Rendering failures only cost the trace, never
// the job.
func (s *Server) storeTrace(id string, tr *simtrace.Tracer, log *slog.Logger) {
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		log.Warn("trace render failed", "error", err)
		return
	}
	s.traces.put(id, buf.Bytes())
	log.Info("trace captured", "events", tr.Len(), "dropped", tr.Dropped(), "bytes", buf.Len())
}

// runSim executes one simulation, segmented when the configuration asks
// for checkpoints. Boundary snapshots are persisted best-effort: a failed
// write (disk full, injected ckpt.write.error) costs one boundary of
// resume granularity, never the run. Cancellation is observed at
// boundaries for segmented runs and continuously for plain ones. A non-nil
// tracer records the run's event stream; resumed runs are never traced
// (the ring would only cover the tail segment).
func (s *Server) runSim(ctx context.Context, j *jobq.Job, id string, ck *trace.Checkpoint, cfg sim.Config, resume *sim.Snapshot, tr *simtrace.Tracer) (*sim.Result, error) {
	if cfg.CheckpointEveryOps <= 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return sim.RunTraced(ck, cfg, tr), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sink := func(snap *sim.Snapshot) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		j.SetProgress("simulating", 1+snap.OpsFetched/cfg.CheckpointEveryOps, 0)
		if s.store != nil {
			if err := s.store.saveSnapshot(id, snap); err != nil {
				s.ckptWriteErrs.Add(1)
			} else {
				s.ckptWrites.Add(1)
			}
		}
		return nil
	}
	if resume != nil {
		return sim.Resume(ck, cfg, resume, sink)
	}
	return sim.RunCheckpointedTraced(ck, cfg, tr, sink)
}

// respondJob either acknowledges the job (202) or, when wait is requested,
// blocks until it is terminal and returns its result.
func (s *Server) respondJob(w http.ResponseWriter, r *http.Request, wait bool, job *jobq.Job) {
	if !wait && r.URL.Query().Get("wait") != "1" {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"job_id": job.ID(),
			"status": "/v1/jobs/" + job.ID(),
			"stream": "/v1/jobs/" + job.ID() + "/stream",
		})
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// Client gave up; the job keeps running for the next caller.
		return
	}
	v, err := job.Result()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, jobq.ErrCanceled) {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	p := v.(jobPayload)
	injectRespondFaults(w, r)
	writeJSON(w, http.StatusOK, envelope{Cached: p.cached, Result: p.data})
}

// jobView is the GET /v1/jobs/{id} response.
type jobView struct {
	JobID  string          `json:"job_id"`
	State  jobq.State      `json:"state"`
	Stage  string          `json:"stage,omitempty"`
	Done   int             `json:"done,omitempty"`
	Total  int             `json:"total,omitempty"`
	Error  string          `json:"error,omitempty"`
	Cached *bool           `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	u := job.Snapshot()
	view := jobView{JobID: u.JobID, State: u.State, Stage: u.Stage, Done: u.Done, Total: u.Total, Error: u.Error}
	if u.State == jobq.StateDone {
		if v, err := job.Result(); err == nil {
			if p, ok := v.(jobPayload); ok {
				view.Result = p.data
				view.Cached = &p.cached
			}
		}
	}
	writeJSON(w, http.StatusOK, view)
}

// handleJobStream is GET /v1/jobs/{id}/stream: one JSON object per line
// (NDJSON), flushed as progress arrives, ending with the terminal state.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	updates, cancel := job.Subscribe()
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case u, ok := <-updates:
			if !ok {
				// Channel closed on the terminal update; emit the final
				// snapshot so late subscribers always see the end state.
				_ = enc.Encode(job.Snapshot())
				if flusher != nil {
					flusher.Flush()
				}
				return
			}
			if err := enc.Encode(u); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
			// Fault point: the connection dies mid-stream. Clients must
			// resubscribe (the terminal snapshot is always replayed) rather
			// than trust an unterminated stream.
			if faultinject.Should("api.stream.drop") {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobTrace is GET /v1/jobs/{id}/trace: the Chrome trace_event JSON
// captured for a traced job, loadable in Perfetto. 404s explain the two
// non-error absences — the job is unknown, or it never ran a traced
// simulation (trace not requested, result served from cache, or the trace
// was evicted by newer ones).
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	data, ok := s.traces.get(id)
	if !ok {
		if _, known := s.queue.Get(id); !known {
			writeError(w, http.StatusNotFound, "no such job %q", id)
			return
		}
		writeError(w, http.StatusNotFound,
			"no trace for job %q: submit with \"trace\":true and note that cached or collapsed results run no simulation", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	if !s.queue.Cancel(id) {
		writeError(w, http.StatusConflict, "job %q already finished", id)
		return
	}
	if s.store != nil {
		// A canceled job must not resurrect on the next restart.
		s.store.remove(id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"job_id": id, "state": "canceling"})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// Ready reports whether this server should receive new traffic, and a
// short status word when it should not ("draining", "overloaded"). The
// cluster worker reuses it to compose its own /readyz annotations (a
// partition-orphaned worker is ready-but-degraded, which only the wrapper
// knows).
func (s *Server) Ready() (bool, string) {
	if s.draining.Load() || !s.queue.Stats().Accepting {
		return false, "draining"
	}
	if s.overloaded() {
		// Still alive and still finishing queued work, but new traffic
		// should go elsewhere until the backlog falls below the watermark.
		return false, "overloaded"
	}
	return true, "ready"
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ok, status := s.Ready()
	if !ok {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	fmt.Fprintln(w, status)
}
