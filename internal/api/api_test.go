package api

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobq"
	"repro/internal/simcache"
)

// testOps keeps API-test simulations fast while exercising the full
// warm-up + measurement pipeline.
const testOps = 10_000

func newTestServer(t *testing.T, qc jobq.Config) (*Server, *jobq.Queue) {
	t.Helper()
	q := jobq.New(qc)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	})
	return New(q, simcache.New(1<<20)), q
}

func postSim(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestSubmitPollStream drives the async happy path end to end: 202 with a
// job handle, polling until done, the result body, and an NDJSON stream
// that terminates with the job's final state.
func TestSubmitPollStream(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 2, Capacity: 8})

	w := postSim(t, s, `{"benchmark": "b2c", "ops": 10000, "cdp": true}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var ack struct {
		JobID  string `json:"job_id"`
		Status string `json:"status"`
		Stream string `json:"stream"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}
	if ack.JobID == "" || !strings.HasPrefix(ack.JobID, "sim-") {
		t.Fatalf("ack %+v missing sim- job id", ack)
	}

	// Stream until the terminal update. The job may already be done; the
	// stream must still deliver at least the final snapshot.
	req := httptest.NewRequest("GET", ack.Stream, nil)
	sw := httptest.NewRecorder()
	s.ServeHTTP(sw, req)
	if sw.Code != http.StatusOK {
		t.Fatalf("stream: %d %s", sw.Code, sw.Body)
	}
	var last jobq.Update
	sc := bufio.NewScanner(sw.Body)
	lines := 0
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d: %v (%q)", lines, err, sc.Text())
		}
	}
	if lines == 0 || !last.State.Terminal() {
		t.Fatalf("stream ended after %d lines in state %q", lines, last.State)
	}
	if last.State != jobq.StateDone {
		t.Fatalf("job finished %q: %s", last.State, last.Error)
	}

	// Poll: terminal job carries the rendered result.
	pw := httptest.NewRecorder()
	s.ServeHTTP(pw, httptest.NewRequest("GET", ack.Status, nil))
	if pw.Code != http.StatusOK {
		t.Fatalf("poll: %d %s", pw.Code, pw.Body)
	}
	var view struct {
		State  jobq.State
		Cached *bool
		Result SimResult
	}
	if err := json.Unmarshal(pw.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if view.State != jobq.StateDone || view.Cached == nil {
		t.Fatalf("poll view %+v not a completed job", view)
	}
	if view.Result.Benchmark != "b2c" || view.Result.Ops != testOps || view.Result.Cycles <= 0 {
		t.Fatalf("result %+v", view.Result)
	}
	if _, ok := view.Result.Prefetch["content"]; !ok {
		t.Fatalf("cdp run reported no content-prefetcher stats: %+v", view.Result.Prefetch)
	}
}

// TestWaitAndCacheHit: a synchronous submission returns the result
// directly, and the identical resubmission is served from cache.
func TestWaitAndCacheHit(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 8})
	body := `{"benchmark": "quake", "ops": 10000, "wait": true}`

	var first, second envelope
	w := postSim(t, s, body)
	if w.Code != http.StatusOK {
		t.Fatalf("first: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first submission claims a cache hit")
	}

	w = postSim(t, s, body)
	if w.Code != http.StatusOK {
		t.Fatalf("second: %d %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if string(first.Result) != string(second.Result) {
		t.Fatal("cached result differs from the computed one")
	}
}

// TestBackpressure429: with a full queue the API answers 429 and a
// Retry-After hint instead of queueing unboundedly.
func TestBackpressure429(t *testing.T) {
	s, q := newTestServer(t, jobq.Config{Workers: 1, Capacity: 1})

	// Pin the worker and fill the single queue slot with jobs submitted
	// directly to the queue, so the HTTP submission below must be rejected.
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, j *jobq.Job) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if _, err := q.Submit("pin", 0, block); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := q.Submit("fill", 0, block); err != nil {
		t.Fatal(err)
	}

	w := postSim(t, s, `{"benchmark": "b2c", "ops": 10000}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("full queue: %d %s, want 429", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestBadRequests pins the 400 contract: unknown benchmarks list the valid
// names, and configurations the simulator would reject never reach the
// queue.
func TestBadRequests(t *testing.T) {
	s, q := newTestServer(t, jobq.Config{Workers: 1, Capacity: 8})
	cases := []struct {
		name, body, want string
	}{
		{"unknown benchmark", `{"benchmark": "quake3"}`, `valid: `},
		{"invalid config", `{"benchmark": "b2c", "ops": 10000, "l2_kb": 3}`, "invalid configuration"},
		{"negative ops", `{"benchmark": "b2c", "ops": -5}`, "negative ops"},
		{"unknown field", `{"benchmark": "b2c", "bogus": 1}`, "bad request body"},
	}
	for _, c := range cases {
		w := postSim(t, s, c.body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: %d %s, want 400", c.name, w.Code, w.Body)
		}
		if !strings.Contains(w.Body.String(), c.want) {
			t.Errorf("%s: body %s missing %q", c.name, w.Body, c.want)
		}
	}
	if st := q.Stats(); st.Depth != 0 || st.Running != 0 {
		t.Fatalf("bad requests reached the queue: %+v", st)
	}
}

// TestExperimentEndpoint runs a registered experiment at a tiny budget and
// expects the rendered table back, cached on the second call.
func TestExperimentEndpoint(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 2, Capacity: 8})

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/v1/experiments/nope", nil))
	if w.Code != http.StatusNotFound {
		t.Fatalf("unknown experiment: %d %s, want 404", w.Code, w.Body)
	}

	url := "/v1/experiments/table2?ops=10000&reps=1&wait=1"
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("table2: %d %s", w.Code, w.Body)
	}
	var env envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	var rep experimentReport
	if err := json.Unmarshal(env.Result, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table2" || rep.Text == "" {
		t.Fatalf("report %+v", rep)
	}

	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", url, nil))
	if w.Code != http.StatusOK {
		t.Fatalf("table2 rerun: %d %s", w.Code, w.Body)
	}
	var env2 envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env2); err != nil {
		t.Fatal(err)
	}
	if !env2.Cached {
		t.Fatal("identical experiment rerun missed the cache")
	}
}

// TestReadyzDraining: readiness flips to 503 once draining starts while
// liveness stays 200.
func TestReadyzDraining(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 1})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", w.Code)
	}
	s.SetDraining(true)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", w.Code)
	}
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz while draining: %d, want 200", w.Code)
	}
}

// TestGracefulShutdownDrains mirrors cdpd's exit path: with a submitted
// simulation in flight, Shutdown with a generous deadline completes the
// job rather than cancelling it, and its result remains pollable.
func TestGracefulShutdownDrains(t *testing.T) {
	q := jobq.New(jobq.Config{Workers: 1, Capacity: 4})
	s := New(q, simcache.New(1<<20))

	w := postSim(t, s, `{"benchmark": "b2c", "ops": 10000}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	var ack struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &ack); err != nil {
		t.Fatal(err)
	}

	s.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown: %v", err)
	}
	job, ok := q.Get(ack.JobID)
	if !ok {
		t.Fatal("job vanished across shutdown")
	}
	if st := job.State(); st != jobq.StateDone {
		t.Fatalf("in-flight job state %q after drain, want done", st)
	}

	pw := httptest.NewRecorder()
	s.ServeHTTP(pw, httptest.NewRequest("GET", "/v1/jobs/"+ack.JobID, nil))
	if pw.Code != http.StatusOK || !strings.Contains(pw.Body.String(), `"state":"done"`) {
		t.Fatalf("post-drain poll: %d %s", pw.Code, pw.Body)
	}
}

// TestMetricsExposition spot-checks the Prometheus text format and the
// headline series.
func TestMetricsExposition(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 8})
	w := postSim(t, s, `{"benchmark": "b2c", "ops": 10000, "wait": true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("warm-up sim: %d %s", w.Code, w.Body)
	}

	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, httptest.NewRequest("GET", "/metrics", nil))
	if mw.Code != http.StatusOK {
		t.Fatalf("metrics: %d", mw.Code)
	}
	body := mw.Body.String()
	for _, series := range []string{
		"cdpd_queue_depth 0",
		"cdpd_jobs_completed_total 1",
		"cdpd_cache_misses_total 1",
		"cdpd_sims_total 1",
		"# TYPE cdpd_cache_hit_rate gauge",
		"cdpd_peak_rss_kb",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("metrics missing %q\n%s", series, body)
		}
	}
}
