package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/jobq"
	"repro/internal/prefetch/registry"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workloads"
)

// arenaReport is the cacheable payload for one finished arena sweep.
type arenaReport struct {
	Ops         int                `json:"ops"`
	Benchmarks  []string           `json:"benchmarks"`
	Engines     []string           `json:"engines"`
	Cells       []report.ArenaCell `json:"cells"`
	Leaderboard string             `json:"leaderboard"`
}

// engineView is one GET /v1/engines entry.
type engineView struct {
	Name string   `json:"name"`
	Doc  string   `json:"doc"`
	Keys []string `json:"keys,omitempty"`
}

// handleEngines is GET /v1/engines: the prefetcher zoo roster — every
// registered engine with its one-line description and tunable spec keys.
// The arena smoke test asserts the leaderboard covers exactly this list.
func (s *Server) handleEngines(w http.ResponseWriter, r *http.Request) {
	names := registry.Names()
	out := make([]engineView, 0, len(names))
	for _, n := range names {
		e, _ := registry.Lookup(n)
		out = append(out, engineView{Name: e.Name, Doc: e.Doc, Keys: e.Keys})
	}
	writeJSON(w, http.StatusOK, map[string]any{"engines": out})
}

// handleArena is GET /v1/arena: run every requested engine over every
// requested benchmark and rank the cells against the stride baseline.
// Query parameters: ops (µop budget per cell), benchmarks and engines
// (comma lists; default the suite representatives × the whole registry),
// priority, wait=1.
//
// Each cell is cached under the same content key POST /v1/sim uses, so an
// arena never re-simulates a configuration the daemon has already served —
// and later single-sim requests hit the cells the arena filled.
func (s *Server) handleArena(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ops := 0
	if v := q.Get("ops"); v != "" {
		var err error
		ops, err = strconv.Atoi(v)
		if err != nil || ops < 0 {
			writeError(w, http.StatusBadRequest, "bad ops %q", v)
			return
		}
	}
	if ops == 0 {
		ops = workloads.DefaultOps
	}
	priority := 0
	if v := q.Get("priority"); v != "" {
		var err error
		priority, err = strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad priority %q", v)
			return
		}
	}

	var benchmarks []string
	if v := q.Get("benchmarks"); v != "" {
		benchmarks = strings.Split(v, ",")
		for _, b := range benchmarks {
			if _, err := workloads.ByName(b); err != nil {
				writeError(w, http.StatusBadRequest,
					"unknown benchmark %q (valid: %s)", b, strings.Join(benchmarkNames(), ", "))
				return
			}
		}
	} else {
		for _, spec := range workloads.SuiteRepresentatives() {
			benchmarks = append(benchmarks, spec.Name)
		}
	}

	engines := registry.Names()
	if v := q.Get("engines"); v != "" {
		engines = strings.Split(v, ",")
	}
	base := arenaBase(ops)
	for _, e := range engines {
		if _, err := arenaConfig(base, e); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}

	key := simcache.KeyForArena(benchmarks, engines, ops)
	if data, ok := s.cache.Get(key); ok {
		injectRespondFaults(w, r)
		writeJSON(w, http.StatusOK, envelope{Cached: true, Result: data})
		return
	}
	if s.shedLowPriority(priority) {
		s.writeShed(w)
		return
	}

	jobID := "arena-" + key.String()
	job, err := s.queue.Submit(jobID, priority, s.arenaJob(benchmarks, engines, ops, key))
	if errors.Is(err, jobq.ErrDuplicateID) {
		if j, ok := s.queue.Get(jobID); ok {
			s.respondJob(w, r, false, j)
			return
		}
	}
	if err != nil {
		s.writeBackpressure(w, err)
		return
	}
	s.respondJob(w, r, false, job)
}

// arenaBase is the shared machine configuration every arena cell derives
// from, mirroring buildSim's budget-derived warm-up and MPTU bucketing.
func arenaBase(ops int) sim.Config {
	cfg := sim.Default()
	cfg.WarmupOps = uint64(ops / 8)
	cfg.MPTUBucketOps = uint64(ops / 48)
	if cfg.MPTUBucketOps == 0 {
		cfg.MPTUBucketOps = 1
	}
	return cfg
}

// arenaConfig resolves one engine spec into a full simulator configuration.
// The three engines with bespoke simulator wiring (stride is the always-on
// baseline, cdp scans fills inside the memory system, markov has its own
// budget knob) map to their canonical configurations; interface-native
// entrants ride sim.Config.Engine and accept the registry's spec grammar.
func arenaConfig(base sim.Config, engineSpec string) (sim.Config, error) {
	name, params, err := registry.ParseSpec(engineSpec)
	if err != nil {
		return sim.Config{}, fmt.Errorf("arena: %w", err)
	}
	switch name {
	case "stride", "cdp", "markov":
		if len(params) > 0 {
			return sim.Config{}, fmt.Errorf(
				"arena: engine %q runs its canonical configuration; parameters are not supported here (use POST /v1/sim)", name)
		}
	}
	switch name {
	case "stride":
		return base, nil
	case "cdp":
		return base.WithContent(core.DefaultConfig), nil
	case "markov":
		return base.WithMarkov(512*1024, base.L2), nil
	default:
		if err := registry.Validate(engineSpec); err != nil {
			return sim.Config{}, fmt.Errorf("arena: %w", err)
		}
		return base.WithEngine(engineSpec), nil
	}
}

// ArenaCellRequest maps one arena cell onto the POST /v1/sim request that
// reproduces arenaConfig's configuration — and therefore the same content
// key. The cluster coordinator's arena fan-out builds cells from these, so
// a cell computed on any worker fills the exact cache entry that worker's
// own /v1/sim and /v1/arena paths read; a drift test pins the equivalence.
// The stride baseline each benchmark is ranked against is the "stride"
// cell.
func ArenaCellRequest(bench, engineSpec string, ops int) (SimRequest, error) {
	name, params, err := registry.ParseSpec(engineSpec)
	if err != nil {
		return SimRequest{}, fmt.Errorf("arena: %w", err)
	}
	req := SimRequest{Benchmark: bench, Ops: ops}
	switch name {
	case "stride", "cdp", "markov":
		if len(params) > 0 {
			return SimRequest{}, fmt.Errorf(
				"arena: engine %q runs its canonical configuration; parameters are not supported here (use POST /v1/sim)", name)
		}
	}
	switch name {
	case "stride":
		// The baseline machine: stride is always on, nothing else is.
	case "cdp":
		req.CDP = true
	case "markov":
		req.MarkovKB = 512
	default:
		if err := registry.Validate(engineSpec); err != nil {
			return SimRequest{}, fmt.Errorf("arena: %w", err)
		}
		req.Engine = engineSpec
	}
	return req, nil
}

// ArenaCellKey is the content key the standalone arena computes one cell
// under (the arenaConfig path). The cluster drift test pins
// ArenaCellRequest's resolved key to it, so the two spellings of a cell
// can never silently diverge.
func ArenaCellKey(bench, engineSpec string, ops int) (simcache.Key, error) {
	spec, err := workloads.ByName(bench)
	if err != nil {
		return simcache.Key{}, err
	}
	cfg, err := arenaConfig(arenaBase(ops), engineSpec)
	if err != nil {
		return simcache.Key{}, err
	}
	return simcache.KeyFor(spec, cfg, ops), nil
}

// MarshalArenaReport renders the cacheable arena payload. Exported so the
// coordinator's distributed fan-out and the local arenaJob produce the
// same bytes for the same cells.
func MarshalArenaReport(ops int, benchmarks, engines []string, cells []report.ArenaCell) ([]byte, error) {
	return json.Marshal(arenaReport{
		Ops:         ops,
		Benchmarks:  benchmarks,
		Engines:     engines,
		Cells:       cells,
		Leaderboard: report.ArenaLeaderboard(cells),
	})
}

// MakeArenaCell assembles one leaderboard cell from a benchmark's stride
// baseline result and the engine under test's. Exported so the
// coordinator's distributed fan-out attributes and ranks cells exactly as
// the local arenaJob does.
func MakeArenaCell(engine, bench string, base, res *SimResult) report.ArenaCell {
	cell := report.ArenaCell{
		Engine:    engine,
		Benchmark: bench,
		Band:      report.MPTUBand(base.MPTU),
		IPC:       res.IPC,
		MPTU:      res.MPTU,
		Speedup:   float64(base.MeasuredCycles) / float64(res.MeasuredCycles),
	}
	// Attribute the cell to the source the engine under test issues at:
	// interface-native entrants account under markov, cdp under content,
	// and the baseline's own stride stream is the fallback.
	for _, src := range []string{"content", "markov", "stride"} {
		if p, ok := res.Prefetch[src]; ok {
			cell.Issued = p.Issued
			cell.Accuracy = p.Accuracy
			break
		}
	}
	return cell
}

// arenaJob sweeps the benchmark × engine matrix. Every cell — and the
// stride baseline each benchmark is ranked against — flows through
// GetOrCompute under the /v1/sim content key, so concurrent arenas and
// single-sim requests all collapse onto one simulation per configuration.
func (s *Server) arenaJob(benchmarks, engines []string, ops int, key simcache.Key) jobq.Func {
	return func(ctx context.Context, j *jobq.Job) (any, error) {
		data, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
			total := len(benchmarks) * (len(engines) + 1)
			done := 0
			cells := make([]report.ArenaCell, 0, len(benchmarks)*len(engines))
			base := arenaBase(ops)
			for _, bench := range benchmarks {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				spec, err := workloads.ByName(bench)
				if err != nil {
					return nil, err
				}
				baseRes, err := s.arenaCell(ctx, spec, base, ops)
				done++
				j.SetProgress("simulating", done, total)
				if err != nil {
					return nil, err
				}
				for _, eng := range engines {
					if err := ctx.Err(); err != nil {
						return nil, err
					}
					cfg, err := arenaConfig(base, eng)
					if err != nil {
						return nil, err
					}
					res, err := s.arenaCell(ctx, spec, cfg, ops)
					done++
					j.SetProgress("simulating", done, total)
					if err != nil {
						return nil, err
					}
					cells = append(cells, MakeArenaCell(eng, bench, baseRes, res))
				}
			}
			return MarshalArenaReport(ops, benchmarks, engines, cells)
		})
		if err != nil {
			return nil, err
		}
		return jobPayload{data: data, cached: hit}, nil
	}
}

// arenaCell computes (or fetches) one simulation under the /v1/sim content
// key and decodes the stable SimResult the cache stores.
func (s *Server) arenaCell(ctx context.Context, spec workloads.Spec, cfg sim.Config, ops int) (*SimResult, error) {
	key := simcache.KeyFor(spec, cfg, ops)
	data, _, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ck := workloads.Checkpoint(spec, ops)
		return renderResult(spec.Name, ops, sim.Run(ck, cfg))
	})
	if err != nil {
		return nil, err
	}
	var res SimResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("arena: corrupt cached cell for %s: %w", spec.Name, err)
	}
	return &res, nil
}
