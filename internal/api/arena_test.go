package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/jobq"
	"repro/internal/prefetch/registry"
	"repro/internal/report"
)

func getArena(t *testing.T, s *Server, query string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", "/v1/arena"+query, nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestEnginesEndpoint pins /v1/engines to the registry roster — the arena
// smoke test in CI compares leaderboard coverage against this list.
func TestEnginesEndpoint(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	req := httptest.NewRequest("GET", "/v1/engines", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("engines: %d %s", w.Code, w.Body)
	}
	var out struct {
		Engines []struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		} `json:"engines"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	names := registry.Names()
	if len(out.Engines) != len(names) {
		t.Fatalf("endpoint lists %d engines, registry has %d", len(out.Engines), len(names))
	}
	for i, e := range out.Engines {
		if e.Name != names[i] {
			t.Errorf("engine %d = %q, registry says %q", i, e.Name, names[i])
		}
		if e.Doc == "" {
			t.Errorf("engine %q has no doc line", e.Name)
		}
	}
}

// TestArenaSweep runs a tiny full-registry arena and checks the matrix is
// complete: one cell per engine × benchmark, every engine on the
// leaderboard, stride cells at exactly 1.0 speedup, and a cache hit on
// resubmission.
func TestArenaSweep(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})

	w := getArena(t, s, "?ops=10000&benchmarks=b2c,tpcc-1&wait=1")
	if w.Code != http.StatusOK {
		t.Fatalf("arena: %d %s", w.Code, w.Body)
	}
	var env struct {
		Cached bool `json:"cached"`
		Result struct {
			Ops         int                `json:"ops"`
			Benchmarks  []string           `json:"benchmarks"`
			Engines     []string           `json:"engines"`
			Cells       []report.ArenaCell `json:"cells"`
			Leaderboard string             `json:"leaderboard"`
		} `json:"result"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Cached {
		t.Fatal("first arena run reported cached")
	}
	engines := registry.Names()
	wantCells := len(engines) * 2
	if len(env.Result.Cells) != wantCells {
		t.Fatalf("arena produced %d cells, want %d (%d engines × 2 benchmarks)",
			len(env.Result.Cells), wantCells, len(engines))
	}
	seen := map[string]int{}
	for _, c := range env.Result.Cells {
		seen[c.Engine]++
		if c.Band == "" {
			t.Errorf("cell %s/%s has no MPTU band", c.Engine, c.Benchmark)
		}
		if c.Engine == "stride" && c.Speedup != 1.0 {
			t.Errorf("stride cell on %s has speedup %v against itself", c.Benchmark, c.Speedup)
		}
		if c.Speedup <= 0 {
			t.Errorf("cell %s/%s has non-positive speedup %v", c.Engine, c.Benchmark, c.Speedup)
		}
	}
	for _, e := range engines {
		if seen[e] != 2 {
			t.Errorf("engine %q appears in %d cells, want 2", e, seen[e])
		}
		if !strings.Contains(env.Result.Leaderboard, e) {
			t.Errorf("leaderboard omits engine %q:\n%s", e, env.Result.Leaderboard)
		}
	}

	// The whole sweep is content-addressed: resubmitting is a cache hit.
	w = getArena(t, s, "?ops=10000&benchmarks=b2c,tpcc-1&wait=1")
	if w.Code != http.StatusOK {
		t.Fatalf("arena rerun: %d %s", w.Code, w.Body)
	}
	var env2 struct {
		Cached bool `json:"cached"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &env2); err != nil {
		t.Fatal(err)
	}
	if !env2.Cached {
		t.Fatal("identical arena request missed the cache")
	}
}

// TestArenaBadRequests exercises the 400 paths: unknown engines carry the
// registry's valid-name listing, and classic engines reject parameters.
func TestArenaBadRequests(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	cases := []struct {
		query   string
		wantErr string
	}{
		{"?engines=quake3", "valid: bestoffset, cdp, markov, pangloss, stride"},
		{"?engines=cdp:depth=9", "parameters are not supported here"},
		{"?engines=pangloss:rows=100", "power of two"},
		{"?benchmarks=nope", "unknown benchmark"},
		{"?ops=-5", "bad ops"},
	}
	for _, tc := range cases {
		w := getArena(t, s, tc.query)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", tc.query, w.Code)
			continue
		}
		if !strings.Contains(w.Body.String(), tc.wantErr) {
			t.Errorf("%s: body %s missing %q", tc.query, w.Body, tc.wantErr)
		}
	}
}
