package api

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// ckptStore persists, per running simulation job, the request that started
// it and the latest boundary snapshot, so a daemon that dies mid-job (power
// cut, OOM kill, SIGKILL) can resume the work instead of redoing it. Layout
// is two flat files per job under one directory:
//
//	<job-id>.req.json  the defaulted SimRequest, for resubmission
//	<job-id>.snap      the latest sim.Snapshot (absent until the first boundary)
//
// Writes are atomic (temp file + rename) so a crash mid-write leaves the
// previous snapshot intact, never a torn one.
type ckptStore struct {
	dir string
}

func newCkptStore(dir string) (*ckptStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	return &ckptStore{dir: dir}, nil
}

const (
	reqSuffix  = ".req.json"
	snapSuffix = ".snap"
)

// writeAtomic lands data at path via a temp file and rename.
func (st *ckptStore) writeAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// saveRequest records the (already defaulted) request for id.
func (st *ckptStore) saveRequest(id string, req SimRequest) error {
	data, err := json.Marshal(req)
	if err != nil {
		return err
	}
	return st.writeAtomic(filepath.Join(st.dir, id+reqSuffix), data)
}

// saveSnapshot replaces id's resume point with snap. The ckpt.write.error
// fault point models a full or failing disk; on any error the previously
// persisted snapshot (if any) survives untouched, so recovery falls back
// one boundary instead of losing the job.
func (st *ckptStore) saveSnapshot(id string, snap *sim.Snapshot) error {
	if err := faultinject.Error("ckpt.write.error"); err != nil {
		return err
	}
	blob, err := sim.EncodeSnapshot(snap)
	if err != nil {
		return err
	}
	return st.writeAtomic(filepath.Join(st.dir, id+snapSuffix), blob)
}

// loadSnapshot returns id's persisted boundary snapshot, or nil when none
// exists or it fails to decode (a torn file degrades to a from-scratch
// run, exactly like load's recovery path). The submit path uses it to
// resume a job a dead cluster peer had in flight when the checkpoint
// directory is shared.
func (st *ckptStore) loadSnapshot(id string) *sim.Snapshot {
	blob, err := os.ReadFile(filepath.Join(st.dir, id+snapSuffix))
	if err != nil {
		return nil
	}
	snap, err := sim.DecodeSnapshot(blob)
	if err != nil {
		return nil
	}
	return snap
}

// remove deletes both files for id (job finished, canceled, or stale).
func (st *ckptStore) remove(id string) {
	_ = os.Remove(filepath.Join(st.dir, id+reqSuffix))
	_ = os.Remove(filepath.Join(st.dir, id+snapSuffix))
}

// pendingJob is one persisted, unfinished simulation found at startup.
type pendingJob struct {
	id   string
	req  SimRequest
	snap *sim.Snapshot // nil when the job died before its first boundary
}

// load scans the directory for persisted requests and pairs each with its
// snapshot when one decodes cleanly. Unreadable or torn files are skipped
// (a corrupt snapshot degrades to a from-scratch rerun, a corrupt request
// to nothing), never fatal: recovery must not be able to wedge startup.
func (st *ckptStore) load() ([]pendingJob, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var out []pendingJob
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, reqSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, reqSuffix)
		data, err := os.ReadFile(filepath.Join(st.dir, name))
		if err != nil {
			continue
		}
		var req SimRequest
		if err := json.Unmarshal(data, &req); err != nil {
			st.remove(id)
			continue
		}
		p := pendingJob{id: id, req: req}
		if blob, err := os.ReadFile(filepath.Join(st.dir, id+snapSuffix)); err == nil {
			if snap, err := sim.DecodeSnapshot(blob); err == nil {
				p.snap = snap
			}
		}
		out = append(out, p)
	}
	return out, nil
}

// RecoverJobs resubmits every simulation persisted by a previous process,
// resuming each from its latest boundary snapshot when one survived. Job
// IDs are content-keyed ("sim-<hash>"), so clients polling an ID from
// before the restart find the recovered job under the same handle. It
// returns the number of jobs resubmitted and is a no-op without a
// checkpoint store.
func (s *Server) RecoverJobs() (int, error) {
	if s.store == nil {
		return 0, nil
	}
	pending, err := s.store.load()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, p := range pending {
		spec, cfg, ops, err := buildSim(p.req)
		if err != nil {
			// The request predates a validation change; nothing to resume.
			s.store.remove(p.id)
			continue
		}
		key := simcache.KeyFor(spec, cfg, ops)
		if id := SimJobID(key); id != p.id {
			// Hash scheme changed across the restart; the snapshot would
			// land under a different job anyway.
			s.store.remove(p.id)
			continue
		}
		if _, ok := s.cache.Get(key); ok {
			s.store.remove(p.id)
			continue
		}
		snap := p.snap
		if snap != nil && cfg.CheckpointEveryOps <= 0 {
			snap = nil
		}
		// Recovered jobs are never traced: a resume would only cover the
		// tail segment, and the submitter who wanted the trace is gone.
		_, err = s.queue.SubmitTimeout(p.id, p.req.Priority, s.adaptiveTimeout(ops),
			s.simJob(p.id, spec, cfg, ops, key, snap, time.Now(), false))
		if err != nil {
			// Queue full or shutting down: leave the files for next time.
			continue
		}
		n++
		if snap != nil {
			s.resumedJobs.Add(1)
		}
	}
	return n, nil
}
