package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/jobq"
	"repro/internal/simcache"
	"repro/internal/workloads"
)

// experimentReport is the cacheable payload for one finished experiment.
type experimentReport struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Ops   int    `json:"ops"`
	Reps  bool   `json:"reps"`
	Text  string `json:"text"`
}

// handleExperiment is GET /v1/experiments/{id}: run a registered
// experiment (a full benchmark × config matrix) as one job. Query
// parameters: ops (µop budget), reps=1 (representative-benchmark subset),
// priority, wait=1.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	runner, err := experiments.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	q := r.URL.Query()
	ops := 0
	if v := q.Get("ops"); v != "" {
		ops, err = strconv.Atoi(v)
		if err != nil || ops < 0 {
			writeError(w, http.StatusBadRequest, "bad ops %q", v)
			return
		}
	}
	if ops == 0 {
		ops = workloads.DefaultOps
	}
	reps := q.Get("reps") == "1"
	priority := 0
	if v := q.Get("priority"); v != "" {
		priority, err = strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad priority %q", v)
			return
		}
	}

	key := simcache.KeyForExperiment(id, ops, reps)
	if data, ok := s.cache.Get(key); ok {
		injectRespondFaults(w, r)
		writeJSON(w, http.StatusOK, envelope{Cached: true, Result: data})
		return
	}

	if s.shedLowPriority(priority) {
		s.writeShed(w)
		return
	}

	jobID := "exp-" + key.String()
	job, err := s.queue.Submit(jobID, priority, s.experimentJob(runner, ops, reps, key))
	if errors.Is(err, jobq.ErrDuplicateID) {
		if j, ok := s.queue.Get(jobID); ok {
			s.respondJob(w, r, false, j)
			return
		}
	}
	if err != nil {
		s.writeBackpressure(w, err)
		return
	}
	s.respondJob(w, r, false, job)
}

// experimentJob runs one experiment under the job's context, forwarding
// per-simulation matrix progress to stream subscribers.
func (s *Server) experimentJob(runner experiments.Runner, ops int, reps bool, key simcache.Key) jobq.Func {
	return func(ctx context.Context, j *jobq.Job) (any, error) {
		data, hit, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
			rep, err := runner.Run(experiments.Options{
				Ctx:  ctx,
				Ops:  ops,
				Reps: reps,
				Progress: func(done, total int) {
					j.SetProgress("simulating", done, total)
				},
			})
			if err != nil {
				return nil, err
			}
			return json.Marshal(experimentReport{
				ID: runner.ID, Title: runner.Title, Ops: ops, Reps: reps, Text: rep.Text,
			})
		})
		if err != nil {
			return nil, err
		}
		return jobPayload{data: data, cached: hit}, nil
	}
}
