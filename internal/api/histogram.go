package api

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// histogram is a fixed-bucket, lock-free latency histogram in the
// Prometheus cumulative style. Observations and scrapes only use atomics,
// so it can sit on the request path. The sum is kept in integer
// nanoseconds to stay atomically addable; the exposition converts to
// seconds.
type histogram struct {
	bounds []float64 // bucket upper bounds in seconds, ascending
	counts []atomic.Uint64
	sumNs  atomic.Int64
	count  atomic.Uint64
}

// latencyBuckets spans sub-millisecond cache probes to multi-minute
// simulations; the same scale serves all three cdpd latency series so
// dashboards can overlay them.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	s := d.Seconds()
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sumNs.Add(d.Nanoseconds())
	h.count.Add(1)
}

// write emits the histogram in the text exposition format: cumulative
// _bucket series with le labels (ending at +Inf), then _sum and _count.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// formatBound renders a bucket bound the way Prometheus does: shortest
// representation, no exponent for these magnitudes.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// HistogramSnapshot is a point-in-time copy of one latency histogram, the
// in-process analogue of scraping /metrics: cumulative-free per-bucket
// counts plus sum and count. The bench suite's cluster jobs read these to
// reconcile server-observed latency against client-side measurements
// without an HTTP round trip perturbing what they measure.
type HistogramSnapshot struct {
	// Bounds are bucket upper limits in seconds, ascending; Counts[i] is
	// the observations at or below Bounds[i] and above Bounds[i-1]. An
	// implicit +Inf bucket holds Count minus the sum of Counts.
	Bounds  []float64
	Counts  []uint64
	SumSecs float64
	Count   uint64
}

// snapshot copies the histogram's atomics. Concurrent Observe calls may
// land between loads, so the snapshot is consistent only to within the
// traffic in flight at the instant of the call — fine for the bench
// reconciliation, which snapshots quiesced servers.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:  append([]float64(nil), h.bounds...),
		Counts:  make([]uint64, len(h.bounds)),
		SumSecs: float64(h.sumNs.Load()) / 1e9,
		Count:   h.count.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Merge accumulates another snapshot with identical bounds into this one,
// aggregating per-worker histograms into a cluster-wide view.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) error {
	if len(o.Bounds) != len(s.Bounds) {
		return fmt.Errorf("histogram merge: %d buckets vs %d", len(o.Bounds), len(s.Bounds))
	}
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.SumSecs += o.SumSecs
	s.Count += o.Count
	return nil
}

// Quantile estimates the q-th quantile (0 < q <= 1) in seconds by linear
// interpolation within the holding bucket, the same estimate PromQL's
// histogram_quantile gives. Observations beyond the last bound clamp to
// it. Returns 0 when the histogram is empty.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(prev))/float64(c)
		}
	}
	// Rank falls in the +Inf bucket: the best bounded estimate is the
	// largest finite bound.
	return s.Bounds[len(s.Bounds)-1]
}

// LatencySnapshots exports the server's request-path histograms by their
// /metrics series names (without the _seconds suffix).
func (s *Server) LatencySnapshots() map[string]HistogramSnapshot {
	return map[string]HistogramSnapshot{
		"cdpd_queue_wait":   s.queueWait.snapshot(),
		"cdpd_run_duration": s.runDur.snapshot(),
		"cdpd_cache_lookup": s.cacheLookup.snapshot(),
	}
}
