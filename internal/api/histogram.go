package api

import (
	"fmt"
	"io"
	"strconv"
	"sync/atomic"
	"time"
)

// histogram is a fixed-bucket, lock-free latency histogram in the
// Prometheus cumulative style. Observations and scrapes only use atomics,
// so it can sit on the request path. The sum is kept in integer
// nanoseconds to stay atomically addable; the exposition converts to
// seconds.
type histogram struct {
	bounds []float64 // bucket upper bounds in seconds, ascending
	counts []atomic.Uint64
	sumNs  atomic.Int64
	count  atomic.Uint64
}

// latencyBuckets spans sub-millisecond cache probes to multi-minute
// simulations; the same scale serves all three cdpd latency series so
// dashboards can overlay them.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	s := d.Seconds()
	for i, b := range h.bounds {
		if s <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.sumNs.Add(d.Nanoseconds())
	h.count.Add(1)
}

// write emits the histogram in the text exposition format: cumulative
// _bucket series with le labels (ending at +Inf), then _sum and _count.
func (h *histogram) write(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.count.Load())
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNs.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

// formatBound renders a bucket bound the way Prometheus does: shortest
// representation, no exponent for these magnitudes.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
