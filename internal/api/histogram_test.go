package api

import (
	"math"
	"testing"
	"time"

	"repro/internal/jobq"
)

func TestHistogramSnapshotAndQuantile(t *testing.T) {
	h := newHistogram(latencyBuckets)
	// 8 observations at ~10ms (bucket (0.005, 0.025]), 2 at ~300ms
	// (bucket (0.1, 0.5]).
	for i := 0; i < 8; i++ {
		h.Observe(10 * time.Millisecond)
	}
	h.Observe(300 * time.Millisecond)
	h.Observe(300 * time.Millisecond)

	s := h.snapshot()
	if s.Count != 10 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.SumSecs; math.Abs(got-0.68) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	// p50 rank 5 of 10 falls in the 10ms bucket: between 0.005 and 0.025.
	if q := s.Quantile(0.5); q <= 0.005 || q > 0.025 {
		t.Fatalf("p50 = %v, want within (0.005, 0.025]", q)
	}
	// p99 rank 9.9 falls in the 300ms bucket.
	if q := s.Quantile(0.99); q <= 0.1 || q > 0.5 {
		t.Fatalf("p99 = %v, want within (0.1, 0.5]", q)
	}
	if q := s.Quantile(1); q <= 0.1 || q > 0.5 {
		t.Fatalf("p100 = %v", q)
	}

	var empty HistogramSnapshot
	if q := (&empty).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramSnapshotMerge(t *testing.T) {
	a := newHistogram(latencyBuckets)
	b := newHistogram(latencyBuckets)
	a.Observe(2 * time.Millisecond)
	b.Observe(40 * time.Millisecond)
	b.Observe(40 * time.Millisecond)

	sa, sb := a.snapshot(), b.snapshot()
	if err := sa.Merge(sb); err != nil {
		t.Fatal(err)
	}
	if sa.Count != 3 {
		t.Fatalf("merged count = %d", sa.Count)
	}
	if math.Abs(sa.SumSecs-0.082) > 1e-9 {
		t.Fatalf("merged sum = %v", sa.SumSecs)
	}

	mismatched := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{0}}
	if err := sa.Merge(mismatched); err == nil {
		t.Fatal("expected merge error on mismatched bounds")
	}
}

func TestHistogramQuantileBeyondLastBound(t *testing.T) {
	h := newHistogram(latencyBuckets)
	h.Observe(2 * time.Minute) // beyond the 60s bound: +Inf bucket
	s := h.snapshot()
	if q := s.Quantile(0.5); q != latencyBuckets[len(latencyBuckets)-1] {
		t.Fatalf("quantile in +Inf bucket = %v, want clamp to last bound", q)
	}
}

func TestServerLatencySnapshots(t *testing.T) {
	srv, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	srv.runDur.Observe(15 * time.Millisecond)
	snaps := srv.LatencySnapshots()
	for _, name := range []string{"cdpd_queue_wait", "cdpd_run_duration", "cdpd_cache_lookup"} {
		if _, ok := snaps[name]; !ok {
			t.Fatalf("missing series %q in %v", name, snaps)
		}
	}
	if snaps["cdpd_run_duration"].Count != 1 {
		t.Fatalf("run_duration count = %d", snaps["cdpd_run_duration"].Count)
	}
}
