package api

import (
	"fmt"
	"math"
	"net/http"
	"runtime"
	"time"

	"repro/internal/benchio"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// handleMetrics is GET /metrics in the Prometheus text exposition format:
// queue occupancy, cache effectiveness, simulator throughput since the
// server started, and process memory.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	qs := s.queue.Stats()
	cs := s.cache.Stats()
	sims := sim.Runs() - s.startSims
	uptime := time.Since(s.started).Seconds()
	simsPerSec := 0.0
	if uptime > 0 {
		simsPerSec = float64(sims) / uptime
	}
	hitRate := 0.0
	if lookups := cs.Hits + cs.Misses; lookups > 0 {
		hitRate = float64(cs.Hits) / float64(lookups)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(name, help, typ string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	p("cdpd_queue_depth", "Jobs queued and waiting for a worker.", "gauge", qs.Depth)
	p("cdpd_queue_capacity", "Maximum queued jobs before 429s.", "gauge", qs.Capacity)
	p("cdpd_workers", "Fixed worker pool size.", "gauge", qs.Workers)
	p("cdpd_jobs_running", "Jobs currently executing.", "gauge", qs.Running)
	p("cdpd_worker_utilization", "Fraction of workers busy.", "gauge",
		float64(qs.Running)/float64(qs.Workers))
	p("cdpd_jobs_completed_total", "Jobs finished successfully.", "counter", qs.Completed)
	p("cdpd_jobs_failed_total", "Jobs that returned an error or panicked.", "counter", qs.Failed)
	p("cdpd_jobs_canceled_total", "Jobs canceled before or while running.", "counter", qs.Canceled)

	p("cdpd_cache_hits_total", "Result-cache lookups served from a resident entry.", "counter", cs.Hits)
	p("cdpd_cache_misses_total", "Result-cache lookups that computed.", "counter", cs.Misses)
	p("cdpd_cache_collapsed_total", "Lookups that joined an in-flight computation.", "counter", cs.Collapsed)
	p("cdpd_cache_evictions_total", "Entries evicted by the byte bound.", "counter", cs.Evictions)
	p("cdpd_cache_entries", "Resident cache entries.", "gauge", cs.Entries)
	p("cdpd_cache_bytes", "Resident cache payload bytes.", "gauge", cs.Bytes)
	p("cdpd_cache_max_bytes", "Cache byte bound.", "gauge", cs.MaxBytes)
	p("cdpd_cache_hit_rate", "Hits over hits+misses since start.", "gauge", hitRate)

	// The colder cache tiers exist only when the server was built around a
	// tiered cache (cluster workers, or a standalone daemon with
	// -cache-dir); a plain in-memory cache exports nothing here.
	if tc, ok := s.cache.(interface{ TierStats() simcache.TierStats }); ok {
		ts := tc.TierStats()
		p("cdpd_cache_disk_hits_total", "Result-cache lookups served from the disk spill tier.", "counter", ts.DiskHits)
		p("cdpd_cache_disk_misses_total", "Disk-tier probes that found no entry.", "counter", ts.DiskMisses)
		p("cdpd_cache_spill_writes_total", "Results persisted to the disk spill tier.", "counter", ts.SpillWrites)
		p("cdpd_cache_spill_errors_total", "Disk spills that failed (result still served).", "counter", ts.SpillErrors)
		p("cdpd_cache_disk_quarantined_total", "Torn or corrupt disk-tier entries renamed aside and treated as misses.", "counter", ts.DiskQuarantines)
		p("cdpd_cache_peer_hits_total", "Result-cache lookups served by a cluster peer.", "counter", ts.PeerHits)
		p("cdpd_cache_peer_misses_total", "Peer-tier probes no peer could serve.", "counter", ts.PeerMisses)
	}

	p("cdpd_sims_total", "Simulations completed since the server started.", "counter", sims)
	p("cdpd_sims_per_second", "Simulation throughput since start.", "gauge", simsPerSec)
	p("cdpd_uptime_seconds", "Seconds since the server started.", "gauge", uptime)

	overloaded := 0
	if s.overloaded() {
		overloaded = 1
	}
	p("cdpd_shed_total", "Low-priority submissions rejected at the shed watermark.", "counter",
		s.shedTotal.Load())
	p("cdpd_overloaded", "1 while queued depth exceeds the readiness watermark.", "gauge", overloaded)
	p("cdpd_checkpoint_writes_total", "Boundary snapshots persisted to the checkpoint store.", "counter",
		s.ckptWrites.Load())
	p("cdpd_checkpoint_write_errors_total", "Snapshot or request persists that failed.", "counter",
		s.ckptWriteErrs.Load())
	p("cdpd_jobs_resumed_total", "Jobs resumed from a persisted snapshot after restart.", "counter",
		s.resumedJobs.Load())
	p("cdpd_sim_ns_per_op_ewma", "Smoothed simulation cost in ns per µop (0 until first completion).", "gauge",
		math.Float64frombits(s.ewmaNsPerOp.Load()))

	s.queueWait.write(w, "cdpd_queue_wait_seconds",
		"Time from submission accepted to the job function starting.")
	s.runDur.write(w, "cdpd_run_duration_seconds",
		"One simulation end to end, checkpoint generation included.")
	s.cacheLookup.write(w, "cdpd_cache_lookup_seconds",
		"Result-cache probe latency on the submit path.")

	p("cdpd_goroutines", "Live goroutines.", "gauge", runtime.NumGoroutine())
	p("cdpd_heap_alloc_bytes", "Bytes of allocated heap objects.", "gauge", ms.HeapAlloc)
	p("cdpd_heap_sys_bytes", "Heap memory obtained from the OS.", "gauge", ms.HeapSys)
	p("cdpd_gc_total", "Completed GC cycles.", "counter", ms.NumGC)
	p("cdpd_peak_rss_kb", "Peak resident set size in KiB (0 when unavailable).", "gauge",
		benchio.PeakRSSKB())

	// The conventional always-1 info gauge: labels carry the identity, so
	// dashboards can join any series against the toolchain and telemetry
	// schema that produced it.
	fmt.Fprintf(w, "# HELP cdpd_build_info Build identity; value is always 1.\n"+
		"# TYPE cdpd_build_info gauge\n"+
		"cdpd_build_info{go_version=%q,schema=\"%d\"} 1\n",
		runtime.Version(), benchio.SchemaVersion)
}
