package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/benchio"
	"repro/internal/jobq"
	"repro/internal/promtest"
	"repro/internal/simcache"
)

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return w.Body.String()
}

// TestMetricsExpositionFormat scrapes /metrics and validates the whole
// payload: every series carries HELP and TYPE, types are legal, and the
// three latency histograms expose cumulative le-labelled buckets ending at
// +Inf whose count matches _count.
func TestMetricsExpositionFormat(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})

	// One synchronous simulation so the latency histograms and job/cache
	// counters have observations.
	if w := postSim(t, s, `{"benchmark": "quake", "ops": 10000, "wait": true}`); w.Code != http.StatusOK {
		t.Fatalf("warm-up sim: %d %s", w.Code, w.Body)
	}

	fams := promtest.ParseExposition(t, scrapeMetrics(t, s))

	for _, name := range []string{
		"cdpd_queue_depth", "cdpd_jobs_completed_total", "cdpd_cache_hits_total",
		"cdpd_sims_total", "cdpd_heap_alloc_bytes",
	} {
		if fams[name] == nil || len(fams[name].Samples) == 0 {
			t.Errorf("series %s missing from /metrics", name)
		}
	}

	for _, name := range []string{
		"cdpd_queue_wait_seconds", "cdpd_run_duration_seconds", "cdpd_cache_lookup_seconds",
	} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("histogram %s missing from /metrics", name)
		}
		if fam.Type != "histogram" {
			t.Fatalf("%s TYPE = %q, want histogram", name, fam.Type)
		}
		var buckets, infCount, count int
		var sawSum bool
		prev := -1
		for _, sample := range fam.Samples {
			switch {
			case strings.HasPrefix(sample, name+"_bucket{le="):
				buckets++
				n, err := strconv.Atoi(sample[strings.LastIndex(sample, " ")+1:])
				if err != nil {
					t.Fatalf("%s bucket value: %v", name, err)
				}
				if n < prev {
					t.Fatalf("%s buckets not cumulative: %d after %d", name, n, prev)
				}
				prev = n
				if strings.Contains(sample, `le="+Inf"`) {
					infCount = n
				}
			case strings.HasPrefix(sample, name+"_sum "):
				sawSum = true
			case strings.HasPrefix(sample, name+"_count "):
				count, _ = strconv.Atoi(sample[strings.LastIndex(sample, " ")+1:])
			default:
				t.Fatalf("%s: unexpected sample %q", name, sample)
			}
		}
		if buckets < 2 {
			t.Fatalf("%s exposes %d buckets, want at least a finite one and +Inf", name, buckets)
		}
		if !sawSum {
			t.Fatalf("%s missing _sum", name)
		}
		if infCount != count {
			t.Fatalf("%s +Inf bucket %d != _count %d", name, infCount, count)
		}
	}

	// The warm-up sim must have landed observations in the wait and run
	// histograms (the cache probe always observes, even on miss).
	for _, name := range []string{
		"cdpd_queue_wait_seconds", "cdpd_run_duration_seconds", "cdpd_cache_lookup_seconds",
	} {
		countLine := ""
		for _, sample := range fams[name].Samples {
			if strings.HasPrefix(sample, name+"_count ") {
				countLine = sample
			}
		}
		if countLine == fmt.Sprintf("%s_count 0", name) {
			t.Errorf("%s observed nothing despite a completed simulation", name)
		}
	}
}

// TestMetricsBuildInfo pins the build-identity gauge: always-1 value with
// the toolchain and telemetry schema in labels.
func TestMetricsBuildInfo(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	fams := promtest.ParseExposition(t, scrapeMetrics(t, s))
	fam := fams["cdpd_build_info"]
	if fam == nil || fam.Type != "gauge" || len(fam.Samples) != 1 {
		t.Fatalf("cdpd_build_info family: %+v", fam)
	}
	sample := fam.Samples[0]
	if !strings.Contains(sample, fmt.Sprintf("go_version=%q", runtime.Version())) {
		t.Fatalf("go_version label missing: %q", sample)
	}
	if !strings.Contains(sample, fmt.Sprintf("schema=\"%d\"", benchio.SchemaVersion)) {
		t.Fatalf("schema label missing: %q", sample)
	}
	if fam.Value(t, 0) != 1 {
		t.Fatalf("build info value = %v, want 1", fam.Value(t, 0))
	}
}

// TestMetricsTierSeries: a server whose cache is the tiered wrapper grows
// the cold-tier series, and a plain-cache server does not expose them at
// all (the block is conditional on the tier being present).
func TestMetricsTierSeries(t *testing.T) {
	plain, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	if fams := promtest.ParseExposition(t, scrapeMetrics(t, plain)); fams["cdpd_cache_disk_hits_total"] != nil {
		t.Fatalf("plain-cache server exposes tier series")
	}

	queue := jobq.New(jobq.Config{Workers: 1, Capacity: 4})
	t.Cleanup(func() { queue.Shutdown(t.Context()) })
	tiered := simcache.NewTiered(simcache.New(1<<20), t.TempDir(), nil)
	t.Cleanup(tiered.Close)
	s := New(queue, tiered)

	if w := postSim(t, s, `{"benchmark": "quake", "ops": 10000, "wait": true}`); w.Code != http.StatusOK {
		t.Fatalf("warm-up sim: %d %s", w.Code, w.Body)
	}

	fams := promtest.ParseExposition(t, scrapeMetrics(t, s))
	for _, name := range []string{
		"cdpd_cache_disk_hits_total", "cdpd_cache_disk_misses_total",
		"cdpd_cache_spill_writes_total", "cdpd_cache_spill_errors_total",
		"cdpd_cache_disk_quarantined_total",
		"cdpd_cache_peer_hits_total", "cdpd_cache_peer_misses_total",
	} {
		if fams[name] == nil || len(fams[name].Samples) == 0 {
			t.Errorf("tier series %s missing from /metrics", name)
		}
	}
	if got := fams["cdpd_cache_spill_writes_total"].Value(t, 0); got < 1 {
		t.Errorf("spill writes = %v after a computed sim, want >= 1", got)
	}
}
