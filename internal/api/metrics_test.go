package api

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/jobq"
)

// scrapeMetrics fetches /metrics and returns the body.
func scrapeMetrics(t *testing.T, s *Server) string {
	t.Helper()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: %d %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return w.Body.String()
}

// metricFamily is what the exposition parser reconstructs per series name.
type metricFamily struct {
	help    bool
	typ     string
	samples []string // full sample lines, labels included
}

// parseExposition validates the Prometheus text format line by line and
// groups samples under their family: HELP and TYPE must precede the first
// sample, sample names must belong to a declared family (histograms own
// their _bucket/_sum/_count suffixes), and every value must parse as a
// float.
func parseExposition(t *testing.T, body string) map[string]*metricFamily {
	t.Helper()
	fams := map[string]*metricFamily{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if fams[name] == nil {
				fams[name] = &metricFamily{}
			}
			fams[name].help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without a type: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: invalid TYPE %q", ln+1, line)
			}
			if fams[name] == nil {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if len(fams[name].samples) > 0 {
				t.Fatalf("line %d: TYPE %s after its samples", ln+1, name)
			}
			fams[name].typ = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && fams[b] != nil && fams[b].typ == "histogram" {
				base = b
				break
			}
		}
		fam := fams[base]
		if fam == nil || !fam.help || fam.typ == "" {
			t.Fatalf("line %d: sample %q not preceded by HELP and TYPE", ln+1, name)
		}
		val := line[strings.LastIndex(line, " ")+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: value %q does not parse: %v", ln+1, val, err)
		}
		fam.samples = append(fam.samples, line)
	}
	return fams
}

// TestMetricsExpositionFormat scrapes /metrics and validates the whole
// payload: every series carries HELP and TYPE, types are legal, and the
// three latency histograms expose cumulative le-labelled buckets ending at
// +Inf whose count matches _count.
func TestMetricsExpositionFormat(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})

	// One synchronous simulation so the latency histograms and job/cache
	// counters have observations.
	if w := postSim(t, s, `{"benchmark": "quake", "ops": 10000, "wait": true}`); w.Code != http.StatusOK {
		t.Fatalf("warm-up sim: %d %s", w.Code, w.Body)
	}

	fams := parseExposition(t, scrapeMetrics(t, s))

	for _, name := range []string{
		"cdpd_queue_depth", "cdpd_jobs_completed_total", "cdpd_cache_hits_total",
		"cdpd_sims_total", "cdpd_heap_alloc_bytes",
	} {
		if fams[name] == nil || len(fams[name].samples) == 0 {
			t.Errorf("series %s missing from /metrics", name)
		}
	}

	for _, name := range []string{
		"cdpd_queue_wait_seconds", "cdpd_run_duration_seconds", "cdpd_cache_lookup_seconds",
	} {
		fam := fams[name]
		if fam == nil {
			t.Fatalf("histogram %s missing from /metrics", name)
		}
		if fam.typ != "histogram" {
			t.Fatalf("%s TYPE = %q, want histogram", name, fam.typ)
		}
		var buckets, infCount, count int
		var sawSum bool
		prev := -1
		for _, sample := range fam.samples {
			switch {
			case strings.HasPrefix(sample, name+"_bucket{le="):
				buckets++
				n, err := strconv.Atoi(sample[strings.LastIndex(sample, " ")+1:])
				if err != nil {
					t.Fatalf("%s bucket value: %v", name, err)
				}
				if n < prev {
					t.Fatalf("%s buckets not cumulative: %d after %d", name, n, prev)
				}
				prev = n
				if strings.Contains(sample, `le="+Inf"`) {
					infCount = n
				}
			case strings.HasPrefix(sample, name+"_sum "):
				sawSum = true
			case strings.HasPrefix(sample, name+"_count "):
				count, _ = strconv.Atoi(sample[strings.LastIndex(sample, " ")+1:])
			default:
				t.Fatalf("%s: unexpected sample %q", name, sample)
			}
		}
		if buckets < 2 {
			t.Fatalf("%s exposes %d buckets, want at least a finite one and +Inf", name, buckets)
		}
		if !sawSum {
			t.Fatalf("%s missing _sum", name)
		}
		if infCount != count {
			t.Fatalf("%s +Inf bucket %d != _count %d", name, infCount, count)
		}
	}

	// The warm-up sim must have landed observations in the wait and run
	// histograms (the cache probe always observes, even on miss).
	for _, name := range []string{
		"cdpd_queue_wait_seconds", "cdpd_run_duration_seconds", "cdpd_cache_lookup_seconds",
	} {
		countLine := ""
		for _, sample := range fams[name].samples {
			if strings.HasPrefix(sample, name+"_count ") {
				countLine = sample
			}
		}
		if countLine == fmt.Sprintf("%s_count 0", name) {
			t.Errorf("%s observed nothing despite a completed simulation", name)
		}
	}
}
