package api

import (
	"io"
	"log/slog"
	"math"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
)

// Options tunes the server's resilience layer. The zero value reproduces
// the pre-resilience behaviour: no checkpoint persistence, watermark
// defaults, no adaptive deadlines.
type Options struct {
	// CheckpointDir, when set, persists each running simulation's request
	// and latest boundary snapshot so a restarted daemon can resume it
	// (see RecoverJobs). Empty disables persistence.
	CheckpointDir string

	// CheckpointEveryOps is the default segmentation interval applied to
	// submitted simulations that do not choose their own. 0 leaves
	// submissions unsegmented unless the request asks.
	CheckpointEveryOps int

	// ShedWatermark is the queued-depth fraction of queue capacity at or
	// beyond which below-normal-priority submissions (priority < 0) are
	// rejected with 429 before spending a slot. 0 defaults to 0.75.
	ShedWatermark float64

	// OverloadWatermark is the fraction at or beyond which /readyz answers
	// 503 so load balancers steer new work elsewhere while queued jobs
	// drain. 0 defaults to 0.90.
	OverloadWatermark float64

	// AdaptiveTimeout derives a per-job deadline for each simulation from
	// the observed throughput of completed ones, so one wedged run cannot
	// hold a worker forever while leaving slow-but-honest configurations
	// alone.
	AdaptiveTimeout bool

	// Logger receives request-scoped structured logs (job lifecycle with
	// job ID, content key, queue wait, simulation duration). Nil discards.
	Logger *slog.Logger
}

const (
	defaultShedWatermark     = 0.75
	defaultOverloadWatermark = 0.90

	// Adaptive deadlines are headroom × EWMA ns-per-µop × ops, clamped so
	// a lucky cache-warm measurement cannot produce a hair-trigger
	// deadline and an unlucky one cannot disable the guard.
	adaptiveHeadroom   = 8
	adaptiveEWMAAlpha  = 0.3
	adaptiveMinTimeout = time.Second
	adaptiveMaxTimeout = 10 * time.Minute
)

func (o Options) shedWatermark() float64 {
	if o.ShedWatermark > 0 {
		return o.ShedWatermark
	}
	return defaultShedWatermark
}

func (o Options) overloadWatermark() float64 {
	if o.OverloadWatermark > 0 {
		return o.OverloadWatermark
	}
	return defaultOverloadWatermark
}

// shedLowPriority reports whether a submission at the given priority
// should be rejected before reaching the queue. Only below-normal
// priorities are sheddable: the watermark protects the queue's remaining
// slots for work someone is waiting on.
func (s *Server) shedLowPriority(priority int) bool {
	if priority >= 0 {
		return false
	}
	st := s.queue.Stats()
	return float64(st.Depth) >= s.opts.shedWatermark()*float64(st.Capacity)
}

// overloaded reports whether queued depth has crossed the readiness
// watermark.
func (s *Server) overloaded() bool {
	st := s.queue.Stats()
	return float64(st.Depth) >= s.opts.overloadWatermark()*float64(st.Capacity)
}

// writeShed is the 429 for load-shed submissions; the Retry-After mirrors
// writeBackpressure so clients treat both identically.
func (s *Server) writeShed(w http.ResponseWriter) {
	s.shedTotal.Add(1)
	st := s.queue.Stats()
	retry := st.Depth
	if retry < 1 {
		retry = 1
	}
	if retry > 30 {
		retry = 30
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeError(w, http.StatusTooManyRequests,
		"load shedding low-priority work (queue %.0f%% full), retry in ~%ds",
		100*float64(st.Depth)/float64(st.Capacity), retry)
}

// observeSimRate folds one completed simulation into the EWMA of
// nanoseconds per µop that adaptive deadlines are derived from.
func (s *Server) observeSimRate(elapsed time.Duration, ops int) {
	if ops <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(elapsed.Nanoseconds()) / float64(ops)
	for {
		old := s.ewmaNsPerOp.Load()
		prev := math.Float64frombits(old)
		next := rate
		if old != 0 {
			next = (1-adaptiveEWMAAlpha)*prev + adaptiveEWMAAlpha*rate
		}
		if s.ewmaNsPerOp.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// adaptiveTimeout predicts a per-job deadline for an ops-sized simulation.
// It returns 0 (no per-job deadline; the queue-wide default applies) when
// adaptive deadlines are disabled or nothing has completed yet.
func (s *Server) adaptiveTimeout(ops int) time.Duration {
	if !s.opts.AdaptiveTimeout {
		return 0
	}
	bits := s.ewmaNsPerOp.Load()
	if bits == 0 {
		return 0
	}
	d := time.Duration(adaptiveHeadroom * math.Float64frombits(bits) * float64(ops))
	if d < adaptiveMinTimeout {
		return adaptiveMinTimeout
	}
	if d > adaptiveMaxTimeout {
		return adaptiveMaxTimeout
	}
	return d
}

// injectRespondFaults drives the two response-path fault points:
// api.respond.latency stalls before the body is written (a slow or
// head-of-line-blocked server) and api.respond.partialwrite emits a
// truncated body and aborts the connection (a server dying mid-response).
// Clients must treat both as retryable.
func injectRespondFaults(w http.ResponseWriter, r *http.Request) {
	_ = faultinject.Sleep(r.Context(), "api.respond.latency")
	if faultinject.Should("api.respond.partialwrite") {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, `{"cached":`)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
}

// counters groups the resilience-layer telemetry exported by /metrics.
type counters struct {
	shedTotal     atomic.Uint64
	ckptWrites    atomic.Uint64
	ckptWriteErrs atomic.Uint64
	resumedJobs   atomic.Uint64
	// ewmaNsPerOp stores math.Float64bits of the throughput EWMA; 0 means
	// "no observation yet".
	ewmaNsPerOp atomic.Uint64
}
