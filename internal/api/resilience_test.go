package api

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

func newResilientServer(t *testing.T, qc jobq.Config, opts Options) (*Server, *jobq.Queue) {
	t.Helper()
	q := jobq.New(qc)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	})
	s, err := NewWithOptions(q, simcache.New(1<<20), opts)
	if err != nil {
		t.Fatal(err)
	}
	return s, q
}

// blockingJob returns a job function that parks until release closes.
func blockingJob(release <-chan struct{}) jobq.Func {
	return func(ctx context.Context, j *jobq.Job) (any, error) {
		j.SetProgress("working", 0, 1)
		select {
		case <-release:
			return nil, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestLoadSheddingAndOverload drives the two watermarks: past the shed
// watermark, low-priority submissions bounce with 429 while normal ones
// still queue; past the overload watermark, /readyz flips to 503 so load
// balancers steer away.
func TestLoadSheddingAndOverload(t *testing.T) {
	s, q := newResilientServer(t, jobq.Config{Workers: 1, Capacity: 10}, Options{})

	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 1)
	if _, err := q.Submit("pin", 0, func(ctx context.Context, j *jobq.Job) (any, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	for i := 0; i < 8; i++ {
		if _, err := q.Submit("fill-"+string(rune('a'+i)), 0, blockingJob(release)); err != nil {
			t.Fatal(err)
		}
	}
	// Depth 8 of capacity 10: past the 0.75 shed watermark, below the
	// 0.90 overload watermark.
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("readyz below overload watermark: %d", w.Code)
	}

	w = postSim(t, s, `{"benchmark": "b2c", "ops": 10000, "priority": -1}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("low-priority submit past shed watermark: %d %s, want 429", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("shed 429 without Retry-After")
	}
	if !strings.Contains(w.Body.String(), "load shedding") {
		t.Fatalf("shed body %s does not say why", w.Body)
	}

	w = postSim(t, s, `{"benchmark": "b2c", "ops": 10000}`)
	if w.Code != http.StatusAccepted {
		t.Fatalf("normal-priority submit past shed watermark: %d %s, want 202", w.Code, w.Body)
	}

	// Depth 9 of 10: past the overload watermark.
	w = httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/readyz", nil))
	if w.Code != http.StatusServiceUnavailable || !strings.Contains(w.Body.String(), "overloaded") {
		t.Fatalf("readyz past overload watermark: %d %s, want 503 overloaded", w.Code, w.Body)
	}

	mw := httptest.NewRecorder()
	s.ServeHTTP(mw, httptest.NewRequest("GET", "/metrics", nil))
	for _, series := range []string{"cdpd_shed_total 1", "cdpd_overloaded 1"} {
		if !strings.Contains(mw.Body.String(), series) {
			t.Errorf("metrics missing %q", series)
		}
	}
}

// TestAdaptiveTimeout pins the deadline math: disabled and cold states
// yield no per-job deadline, observations fold into the EWMA, and the
// prediction is headroom × rate × ops with clamping at both ends.
func TestAdaptiveTimeout(t *testing.T) {
	s, _ := newResilientServer(t, jobq.Config{Workers: 1}, Options{})
	s.observeSimRate(50*time.Millisecond, 10_000)
	if d := s.adaptiveTimeout(100_000); d != 0 {
		t.Fatalf("disabled adaptive timeout returned %v, want 0", d)
	}

	s, _ = newResilientServer(t, jobq.Config{Workers: 1}, Options{AdaptiveTimeout: true})
	if d := s.adaptiveTimeout(100_000); d != 0 {
		t.Fatalf("cold adaptive timeout returned %v, want 0", d)
	}
	s.observeSimRate(50*time.Millisecond, 10_000) // 5000 ns/µop
	within := func(got, want, tol time.Duration) {
		t.Helper()
		if got < want-tol || got > want+tol {
			t.Fatalf("timeout %v, want %v ± %v", got, want, tol)
		}
	}
	within(s.adaptiveTimeout(100_000), 4*time.Second, time.Millisecond)
	s.observeSimRate(150*time.Millisecond, 10_000) // EWMA → 8000 ns/µop
	within(s.adaptiveTimeout(100_000), 6400*time.Millisecond, time.Millisecond)
	if d := s.adaptiveTimeout(10); d != adaptiveMinTimeout {
		t.Fatalf("tiny job timeout %v, want floor %v", d, adaptiveMinTimeout)
	}
	if d := s.adaptiveTimeout(1 << 40); d != adaptiveMaxTimeout {
		t.Fatalf("huge job timeout %v, want cap %v", d, adaptiveMaxTimeout)
	}
}

// TestCheckpointRecoveryResumesByteIdentical is the crash-recovery
// tentpole at the API layer: a daemon dies mid-simulation (injected abort
// standing in for SIGKILL), a fresh daemon over the same checkpoint
// directory recovers the job, resumes from the persisted snapshot, and
// produces a result byte-identical to an uninterrupted run.
func TestCheckpointRecoveryResumesByteIdentical(t *testing.T) {
	dir := t.TempDir()
	body := `{"benchmark": "b2c", "ops": 10000, "checkpoint_every_ops": 2000, "wait": true}`

	// Daemon A: the run aborts at its third boundary; snapshots for the
	// first two made it to disk.
	a, _ := newResilientServer(t, jobq.Config{Workers: 1, Capacity: 4}, Options{CheckpointDir: dir})
	prev := faultinject.Enable(faultinject.MustParse(11, "sim.checkpoint.abort:after=2"))
	w := postSim(t, a, body)
	faultinject.Enable(prev)
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("aborted run answered %d %s, want 500", w.Code, w.Body)
	}
	reqs, err := filepath.Glob(filepath.Join(dir, "*"+reqSuffix))
	if err != nil || len(reqs) != 1 {
		t.Fatalf("persisted requests: %v (%v), want exactly one", reqs, err)
	}
	id := strings.TrimSuffix(filepath.Base(reqs[0]), reqSuffix)
	if _, err := os.Stat(filepath.Join(dir, id+snapSuffix)); err != nil {
		t.Fatalf("no snapshot survived the crash: %v", err)
	}

	// Daemon B: same directory, fresh queue and cache.
	b, _ := newResilientServer(t, jobq.Config{Workers: 1, Capacity: 4}, Options{CheckpointDir: dir})
	n, err := b.RecoverJobs()
	if err != nil || n != 1 {
		t.Fatalf("RecoverJobs = (%d, %v), want (1, nil)", n, err)
	}
	if got := b.resumedJobs.Load(); got != 1 {
		t.Fatalf("resumed %d jobs from snapshots, want 1", got)
	}
	// Attaching the identical request rides the recovered job to its result.
	w = postSim(t, b, body)
	if w.Code != http.StatusOK {
		t.Fatalf("recovered run: %d %s", w.Code, w.Body)
	}
	var resumed envelope
	if err := json.Unmarshal(w.Body.Bytes(), &resumed); err != nil {
		t.Fatal(err)
	}

	// Reference: the same request, uninterrupted, on an unrelated daemon.
	c, _ := newResilientServer(t, jobq.Config{Workers: 1, Capacity: 4}, Options{})
	w = postSim(t, c, body)
	if w.Code != http.StatusOK {
		t.Fatalf("reference run: %d %s", w.Code, w.Body)
	}
	var ref envelope
	if err := json.Unmarshal(w.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}
	if string(resumed.Result) != string(ref.Result) {
		t.Fatalf("resumed result drifted from the uninterrupted run:\nresumed %s\nref     %s",
			resumed.Result, ref.Result)
	}

	// Success must clear the persisted files so the job cannot resurrect.
	for _, suffix := range []string{reqSuffix, snapSuffix} {
		if _, err := os.Stat(filepath.Join(dir, id+suffix)); !os.IsNotExist(err) {
			t.Errorf("%s%s still present after success (%v)", id, suffix, err)
		}
	}
}

// TestRecoverJobsWithoutStore: a storeless server recovers nothing and
// does not error.
func TestRecoverJobsWithoutStore(t *testing.T) {
	s, _ := newResilientServer(t, jobq.Config{Workers: 1}, Options{})
	if n, err := s.RecoverJobs(); n != 0 || err != nil {
		t.Fatalf("RecoverJobs = (%d, %v), want (0, nil)", n, err)
	}
}

// TestRespondLatencyFault: the api.respond.latency point stalls the
// response without corrupting it.
func TestRespondLatencyFault(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	body := `{"benchmark": "b2c", "ops": 10000, "wait": true}`
	if w := postSim(t, s, body); w.Code != http.StatusOK {
		t.Fatalf("prime: %d %s", w.Code, w.Body)
	}

	prev := faultinject.Enable(faultinject.MustParse(12, "api.respond.latency:delay=60ms"))
	defer faultinject.Enable(prev)
	start := time.Now()
	w := postSim(t, s, body)
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("latency fault added only %v", elapsed)
	}
	if w.Code != http.StatusOK {
		t.Fatalf("delayed response: %d %s", w.Code, w.Body)
	}
	var env envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil || !env.Cached {
		t.Fatalf("delayed response corrupted: %v %s", err, w.Body)
	}
}

// TestRespondPartialWriteFault: api.respond.partialwrite truncates the
// body and kills the connection; the next attempt succeeds, which is
// exactly the contract the retrying client depends on.
func TestRespondPartialWriteFault(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := `{"benchmark": "b2c", "ops": 10000, "wait": true}`

	post := func() (*http.Response, []byte, error) {
		resp, err := ts.Client().Post(ts.URL+"/v1/sim", "application/json", strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}
	if _, _, err := post(); err != nil {
		t.Fatalf("prime: %v", err)
	}

	prev := faultinject.Enable(faultinject.MustParse(13, "api.respond.partialwrite:times=1"))
	defer faultinject.Enable(prev)
	resp, data, err := post()
	var env envelope
	if err == nil && json.Unmarshal(data, &env) == nil {
		t.Fatalf("partial write produced a clean response: %d %q", resp.StatusCode, data)
	}

	resp, data, err = post()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after partial write: %v / %+v", err, resp)
	}
	if err := json.Unmarshal(data, &env); err != nil || !env.Cached {
		t.Fatalf("retry body: %v %q", err, data)
	}
}

// TestStreamDropFault: api.stream.drop terminates the NDJSON stream
// mid-flight — the handler returns with the job still running — and a
// fresh subscription works once the fault clears.
func TestStreamDropFault(t *testing.T) {
	s, q := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	release := make(chan struct{})
	j, err := q.Submit("long", 0, blockingJob(release))
	if err != nil {
		t.Fatal(err)
	}

	prev := faultinject.Enable(faultinject.MustParse(14, "api.stream.drop:times=1"))
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/long/stream", nil))
		done <- w
	}()
	var w *httptest.ResponseRecorder
	select {
	case w = <-done:
	case <-time.After(5 * time.Second):
		faultinject.Enable(prev)
		t.Fatal("dropped stream did not terminate")
	}
	faultinject.Enable(prev)

	var last jobq.Update
	lines := 0
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		lines++
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
	}
	if lines == 0 || last.State.Terminal() {
		t.Fatalf("dropped stream ended cleanly (%d lines, state %q); the drop should truncate it", lines, last.State)
	}

	close(release)
	<-j.Done()
	sw := httptest.NewRecorder()
	s.ServeHTTP(sw, httptest.NewRequest("GET", "/v1/jobs/long/stream", nil))
	sc = bufio.NewScanner(sw.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatal(err)
		}
	}
	if !last.State.Terminal() {
		t.Fatalf("post-fault stream still truncated (state %q)", last.State)
	}
}

// TestStreamClientDisconnectFreesHandler is the streaming satellite: when
// an NDJSON subscriber goes away, the handler goroutine must exit promptly
// instead of blocking on the next update of a long job.
func TestStreamClientDisconnectFreesHandler(t *testing.T) {
	s, q := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})
	ts := httptest.NewServer(s)
	defer ts.Close()

	release := make(chan struct{})
	defer close(release)
	if _, err := q.Submit("long", 0, blockingJob(release)); err != nil {
		t.Fatal(err)
	}

	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const streams = 4
	for i := 0; i < streams; i++ {
		req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/long/stream", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream %d: %d", i, resp.StatusCode)
		}
		// One full line proves the handler reached its subscription loop.
		if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
			t.Fatalf("stream %d first line: %v", i, err)
		}
	}
	if g := runtime.NumGoroutine(); g <= base {
		t.Fatalf("streams added no goroutines (%d <= %d); test is vacuous", g, base)
	}

	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= base+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("handler goroutines leaked after disconnect: %d > %d\n%s",
				runtime.NumGoroutine(), base+2, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmitPersistsRequest: with a store configured, a submission writes
// its request file immediately (the pre-first-boundary crash window), and
// completion clears it.
func TestSubmitPersistsRequest(t *testing.T) {
	dir := t.TempDir()
	s, _ := newResilientServer(t, jobq.Config{Workers: 1, Capacity: 4},
		Options{CheckpointDir: dir, CheckpointEveryOps: 4000})

	w := postSim(t, s, `{"benchmark": "quake", "ops": 10000, "wait": true}`)
	if w.Code != http.StatusOK {
		t.Fatalf("submit: %d %s", w.Code, w.Body)
	}
	left, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("store not cleared after success: %v", left)
	}
	// The server default interval segmented the run and wrote snapshots.
	if got := s.ckptWrites.Load(); got == 0 {
		t.Fatal("segmented run persisted no snapshots")
	}
}
