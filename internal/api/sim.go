package api

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/prefetch/registry"
	"repro/internal/sim"
	"repro/internal/simcache"
	"repro/internal/workloads"
)

// SimRequest is the POST /v1/sim body. Every field beyond Benchmark is
// optional and defaults to the Table 1 baseline (mirroring cmd/cdpsim's
// flags). Pointer fields distinguish "omitted" from an explicit zero.
type SimRequest struct {
	Benchmark string `json:"benchmark"`
	// Ops is the µop budget (0 = the default ~1.2 M-µop trace).
	Ops int `json:"ops,omitempty"`

	// CDP enables the content-directed prefetcher.
	CDP       bool  `json:"cdp,omitempty"`
	Depth     int   `json:"depth,omitempty"` // 0 = paper default 3
	NextLines *int  `json:"next_lines,omitempty"`
	PrevLines *int  `json:"prev_lines,omitempty"`
	Reinforce *bool `json:"reinforce,omitempty"`

	// MarkovKB enables the Markov comparator with the given STAB budget
	// (-1 = unbounded).
	MarkovKB int `json:"markov_kb,omitempty"`

	// Engine selects an interface-native prefetcher from the registry by
	// spec ("pangloss", "bestoffset:offsets=best", ...). The three engines
	// with bespoke simulator wiring keep their dedicated knobs above
	// (stride is the always-on baseline, cdp and markov_kb enable theirs);
	// naming them here is rejected so every configuration has exactly one
	// request spelling — and therefore exactly one content key. The
	// coordinator's arena fan-out rides this field so a cell lands on a
	// worker under the exact content key the worker's own arena would use.
	Engine string `json:"engine,omitempty"`

	L2KB       int  `json:"l2_kb,omitempty"`       // 0 = 1024
	L2Ways     int  `json:"l2_ways,omitempty"`     // 0 = 8
	TLBEntries int  `json:"tlb_entries,omitempty"` // 0 = 64
	Inject     bool `json:"inject,omitempty"`

	// CheckpointEveryOps segments the run, pausing at every multiple of
	// this many fetched µops; with a checkpoint store configured each
	// boundary snapshot is persisted for crash recovery. 0 inherits the
	// server default (which may itself be 0 = unsegmented). Segmentation
	// perturbs timing, so it is part of the result's content key.
	CheckpointEveryOps int `json:"checkpoint_every_ops,omitempty"`

	// Trace attaches a cycle-level event tracer to the run; the captured
	// Chrome trace is then served by GET /v1/jobs/{id}/trace. Tracing does
	// not perturb results (traced and untraced runs are byte-identical), so
	// it is deliberately not part of the content key — but that also means
	// a request answered from the cache runs no simulation and captures no
	// trace.
	Trace bool `json:"trace,omitempty"`

	// Priority orders the job against other queued work (higher first).
	Priority int `json:"priority,omitempty"`
	// Wait makes the submission synchronous: the response carries the
	// result instead of a job handle. ?wait=1 is equivalent.
	Wait bool `json:"wait,omitempty"`
}

// buildSim resolves a request into the simulation inputs. The returned
// configuration is fully determined by (benchmark, request, ops) — warm-up
// and MPTU bucketing derive from the µop budget, not the generated trace —
// so it can be validated and content-hashed before any checkpoint exists.
func buildSim(req SimRequest) (workloads.Spec, sim.Config, int, error) {
	spec, err := workloads.ByName(req.Benchmark)
	if err != nil {
		return workloads.Spec{}, sim.Config{}, 0,
			fmt.Errorf("unknown benchmark %q (valid: %s)", req.Benchmark, strings.Join(benchmarkNames(), ", "))
	}
	ops := req.Ops
	if ops < 0 {
		return workloads.Spec{}, sim.Config{}, 0, fmt.Errorf("negative ops %d", ops)
	}
	if ops == 0 {
		ops = workloads.DefaultOps
	}

	cfg := sim.Default()
	cfg.WarmupOps = uint64(ops / 8)
	cfg.MPTUBucketOps = uint64(ops / 48)
	if cfg.MPTUBucketOps == 0 {
		cfg.MPTUBucketOps = 1
	}
	if req.L2KB > 0 {
		cfg.L2.SizeBytes = req.L2KB * 1024
	}
	if req.L2Ways > 0 {
		cfg.L2.Ways = req.L2Ways
	}
	if req.TLBEntries > 0 {
		cfg.TLB.Entries = req.TLBEntries
	}
	cfg.InjectBadPrefetches = req.Inject
	if req.CheckpointEveryOps != 0 {
		// Negative values flow through so Validate rejects them with a
		// proper 400 instead of being silently dropped.
		cfg.CheckpointEveryOps = req.CheckpointEveryOps
	}
	if req.CDP {
		cc := core.DefaultConfig
		if req.Depth > 0 {
			cc.DepthThreshold = req.Depth
		}
		if req.NextLines != nil {
			cc.NextLines = *req.NextLines
		}
		if req.PrevLines != nil {
			cc.PrevLines = *req.PrevLines
		}
		if req.Reinforce != nil {
			cc.Reinforce = *req.Reinforce
		}
		cfg = cfg.WithContent(cc)
	}
	if req.MarkovKB != 0 {
		budget := req.MarkovKB * 1024
		if req.MarkovKB < 0 {
			budget = 0
		}
		cfg = cfg.WithMarkov(budget, cfg.L2)
	}
	if req.Engine != "" {
		name, _, err := registry.ParseSpec(req.Engine)
		if err != nil {
			return workloads.Spec{}, sim.Config{}, 0, err
		}
		switch name {
		case "stride", "cdp", "markov":
			return workloads.Spec{}, sim.Config{}, 0, fmt.Errorf(
				"engine %q has a dedicated request knob (stride is always on; use \"cdp\" or \"markov_kb\"); \"engine\" is for interface-native entrants", name)
		}
		cfg = cfg.WithEngine(req.Engine)
	}
	if err := cfg.Validate(); err != nil {
		return workloads.Spec{}, sim.Config{}, 0, fmt.Errorf("invalid configuration: %w", err)
	}
	return spec, cfg, ops, nil
}

// ResolveSim resolves a request exactly as the submit handler does, for
// callers that must agree with this server about content keys — the
// cluster coordinator routes by simcache.KeyFor over these outputs, and
// where its routing disagreed with the workers' own resolution the
// "same key, same owner, computed once" guarantee would silently rot.
func ResolveSim(req SimRequest) (workloads.Spec, sim.Config, int, error) {
	return buildSim(req)
}

// SimJobID is the content-keyed job ID for one simulation. Deriving the ID
// from the key (not a sequence number) is what makes retries, duplicate
// submissions, daemon restarts, and cluster work stealing all converge on
// one job handle.
func SimJobID(key simcache.Key) string { return "sim-" + key.String() }

func benchmarkNames() []string {
	specs := workloads.All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// prefetchStats is the per-source slice of a SimResult.
type prefetchStats struct {
	Issued        uint64  `json:"issued"`
	FullHits      uint64  `json:"full_hits"`
	PartialHits   uint64  `json:"partial_hits"`
	EvictedUnused uint64  `json:"evicted_unused"`
	Accuracy      float64 `json:"accuracy"`
}

// SimResult is the rendered simulation outcome the cache stores and the
// API serves. It is a stable subset of sim.Result; the full counter block
// stays an internal type.
type SimResult struct {
	Benchmark string `json:"benchmark"`
	Config    string `json:"config"`
	Ops       int    `json:"ops"`

	RetiredUops    uint64 `json:"retired_uops"`
	Cycles         int64  `json:"cycles"`
	MeasuredUops   uint64 `json:"measured_uops"`
	MeasuredCycles int64  `json:"measured_cycles"`

	IPC  float64 `json:"ipc"`
	MPTU float64 `json:"mptu"`

	L1Hits   uint64 `json:"l1_hits"`
	L1Misses uint64 `json:"l1_misses"`
	L2Hits   uint64 `json:"l2_hits"`
	L2Misses uint64 `json:"l2_misses"`

	TLBHits   uint64 `json:"tlb_hits"`
	TLBMisses uint64 `json:"tlb_misses"`

	Prefetch map[string]prefetchStats `json:"prefetch,omitempty"`
}

// renderResult marshals the cacheable payload for one finished simulation.
func renderResult(benchmark string, ops int, res *sim.Result) ([]byte, error) {
	c := res.Counters
	out := SimResult{
		Benchmark:      benchmark,
		Config:         res.Config.Name,
		Ops:            ops,
		RetiredUops:    res.Core.Retired,
		Cycles:         res.Core.Cycles,
		MeasuredUops:   res.MeasuredUops,
		MeasuredCycles: res.MeasuredCycles,
		IPC:            res.IPC(),
		MPTU:           c.MPTUFor(res.MeasuredUops),
		L1Hits:         c.L1Hits,
		L1Misses:       c.L1Misses,
		L2Hits:         c.L2Hits,
		L2Misses:       c.L2Misses,
		TLBHits:        res.TLBHits,
		TLBMisses:      res.TLBMisses,
	}
	srcs := []cache.Source{cache.SrcStride, cache.SrcContent, cache.SrcMarkov}
	names := []string{"stride", "content", "markov"}
	for i, s := range srcs {
		if c.PrefIssued[s] == 0 {
			continue
		}
		if out.Prefetch == nil {
			out.Prefetch = map[string]prefetchStats{}
		}
		out.Prefetch[names[i]] = prefetchStats{
			Issued:        c.PrefIssued[s],
			FullHits:      c.FullHits[s],
			PartialHits:   c.PartialHits[s],
			EvictedUnused: c.PrefEvictedUnused[s],
			Accuracy:      c.Accuracy(s),
		}
	}
	return json.Marshal(out)
}
