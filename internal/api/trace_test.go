package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/jobq"
	"repro/internal/simcache"
)

// jobIDFor recomputes the deterministic job ID the submit handler derives
// from a request body.
func jobIDFor(t *testing.T, body string) string {
	t.Helper()
	var req SimRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	spec, cfg, ops, err := buildSim(req)
	if err != nil {
		t.Fatal(err)
	}
	return "sim-" + simcache.KeyFor(spec, cfg, ops).String()
}

// TestJobTraceEndpoint drives a traced submission end to end: the trace
// endpoint serves Chrome trace_event JSON for the job that computed, and
// 404s for unknown jobs.
func TestJobTraceEndpoint(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})

	body := `{"benchmark": "b2c", "ops": 10000, "cdp": true, "wait": true, "trace": true}`
	if w := postSim(t, s, body); w.Code != http.StatusOK {
		t.Fatalf("traced sim: %d %s", w.Code, w.Body)
	}

	id := jobIDFor(t, body)
	tw := httptest.NewRecorder()
	s.ServeHTTP(tw, httptest.NewRequest("GET", "/v1/jobs/"+id+"/trace", nil))
	if tw.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", tw.Code, tw.Body)
	}
	if ct := tw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("trace content type %q", ct)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Metadata    map[string]any   `json:"metadata"`
	}
	if err := json.Unmarshal(tw.Body.Bytes(), &trace); err != nil {
		t.Fatalf("trace body is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if _, ok := trace.Metadata["dropped_events"]; !ok {
		t.Fatal("trace metadata missing dropped_events")
	}

	uw := httptest.NewRecorder()
	s.ServeHTTP(uw, httptest.NewRequest("GET", "/v1/jobs/nope/trace", nil))
	if uw.Code != http.StatusNotFound {
		t.Fatalf("unknown job trace: %d", uw.Code)
	}
}

// TestUntracedJobHasNoTrace: a job submitted without the trace flag must
// 404 on the trace endpoint with an explanation, not serve an empty body.
func TestUntracedJobHasNoTrace(t *testing.T) {
	s, _ := newTestServer(t, jobq.Config{Workers: 1, Capacity: 4})

	body := `{"benchmark": "quake", "ops": 10000, "wait": true}`
	if w := postSim(t, s, body); w.Code != http.StatusOK {
		t.Fatalf("sim: %d %s", w.Code, w.Body)
	}

	tw := httptest.NewRecorder()
	s.ServeHTTP(tw, httptest.NewRequest("GET", "/v1/jobs/"+jobIDFor(t, body)+"/trace", nil))
	if tw.Code != http.StatusNotFound {
		t.Fatalf("untraced job trace: %d %s", tw.Code, tw.Body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(tw.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Fatalf("404 body should explain the absence: %s", tw.Body)
	}
}
