package api

import "sync"

// traceStore keeps the rendered Chrome-trace JSON of recently finished
// traced jobs, bounded FIFO so a long-lived daemon cannot accumulate
// unbounded trace payloads. Traces exist only for jobs that actually ran a
// simulation: a submission answered from the result cache (or collapsed
// into another in-flight computation) never executes, so it has nothing to
// trace.
type traceStore struct {
	mu    sync.Mutex
	max   int
	order []string          // simlint:guardedby mu (insertion order, FIFO eviction)
	byID  map[string][]byte // simlint:guardedby mu
}

func newTraceStore(max int) *traceStore {
	return &traceStore{max: max, byID: make(map[string][]byte)}
}

func (t *traceStore) put(id string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.byID[id]; !ok {
		t.order = append(t.order, id)
	}
	t.byID[id] = data
	for len(t.order) > t.max {
		old := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, old)
	}
}

func (t *traceStore) get(id string) ([]byte, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	data, ok := t.byID[id]
	return data, ok
}
