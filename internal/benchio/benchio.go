// Package benchio defines the schema-versioned benchmark telemetry record
// cmd/bench emits (BENCH_<n>.json at the repository root) and the helpers
// for numbering, writing, and reading those files. Keeping the schema in a
// library package lets tests pin it and future tooling (trend plots, CI
// regression gates) parse old files by their embedded schema version.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SchemaVersion identifies the report layout. Bump it when a field changes
// meaning; additive fields may keep the version.
const SchemaVersion = 1

// Metrics is one benchmark measurement in Go testing units.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// HotPath records the simulator hot-path benchmark before and after the
// allocation-and-dispatch pass, so the very first report carries its own
// baseline. BeforeRef names the commit the Before column was measured at.
type HotPath struct {
	Benchmark string  `json:"benchmark"`
	BeforeRef string  `json:"before_ref"`
	Before    Metrics `json:"before"`
	After     Metrics `json:"after"`
}

// Experiment is the telemetry for one registered experiment run at the
// reduced budget.
type Experiment struct {
	ID         string  `json:"id"`
	Title      string  `json:"title"`
	WallMS     float64 `json:"wall_ms"`
	Sims       uint64  `json:"sims"`
	SimsPerSec float64 `json:"sims_per_sec"`
	AllocMB    float64 `json:"alloc_mb"` // heap bytes allocated during the run
	Allocs     uint64  `json:"allocs"`   // heap objects allocated during the run
}

// Report is one full cmd/bench run.
type Report struct {
	Schema      int    `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// Ops is the per-benchmark µop budget the experiments ran at.
	Ops int `json:"ops"`
	// PeakRSSKB is the process high-water resident set after all
	// experiments (VmHWM; 0 where the platform does not expose it).
	PeakRSSKB   uint64       `json:"peak_rss_kb"`
	HotPath     *HotPath     `json:"hot_path,omitempty"`
	Experiments []Experiment `json:"experiments"`
}

// NextPath returns the first unused BENCH_<n>.json path in dir (n >= 1) and
// the chosen n. Numbering never reuses a gap below the maximum, so reports
// stay in chronological order.
func NextPath(dir string) (string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	maxN := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > maxN {
			maxN = n
		}
	}
	n := maxN + 1
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n)), n, nil
}

// List returns the BENCH_<n>.json paths in dir in numeric order.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil {
			found = append(found, numbered{n, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	out := make([]string, len(found))
	for i, f := range found {
		out[i] = f.path
	}
	return out, nil
}

// Write marshals the report and writes it atomically (temp file + rename),
// so a crashed run never leaves a truncated report behind.
func Write(path string, r *Report) error {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Read parses one report, rejecting schema versions this code does not
// understand.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("benchio: %s: unsupported schema %d (want %d)", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}
