// Package benchio defines the schema-versioned benchmark telemetry record
// cmd/bench emits (BENCH_<n>.json at the repository root) and the helpers
// for numbering, writing, and reading those files. Keeping the schema in a
// library package lets tests pin it and future tooling (trend plots, CI
// regression gates) parse old files by their embedded schema version.
//
// Schema v2 (the current version) extends v1 with:
//
//   - nullable rate fields: wall-only experiments (table1, table3) omit
//     "sims"/"sims_per_sec" instead of emitting zeros, so trajectory diffs
//     can tell "not measured" from "zero throughput";
//   - a nullable "peak_rss_kb" plus an "rss_unsupported" note on platforms
//     without VmHWM, so verdicts skip RSS comparison instead of flagging a
//     100% regression;
//   - per-run profiler summaries (pprof CPU top-N flat%, heap alloc bytes
//     by site, runtime/trace artifacts) with artifact paths;
//   - cluster runs reconciling client-observed latency percentiles against
//     the server's own lock-free histograms;
//   - the suite name and regression tolerances the run was declared with,
//     so `bench -verdict` gates against what the suite asked for.
//
// Read accepts both v1 and v2: the regression verdict always compares a
// fresh v2 report against the previous file in the trajectory, which may
// predate the bump.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// SchemaVersion identifies the report layout. Bump it when a field changes
// meaning; additive fields may keep the version.
const SchemaVersion = 2

// minReadableSchema is the oldest layout Read still understands. v1 differs
// from v2 only by fields v2 made nullable or added, so one struct decodes
// both.
const minReadableSchema = 1

// NoteRSSUnsupported is appended to Report.Notes when the platform cannot
// report a resident-set high-water mark; peak_rss_kb is null in that case.
const NoteRSSUnsupported = "rss_unsupported"

// Metrics is one benchmark measurement in Go testing units.
type Metrics struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  uint64  `json:"bytes_per_op"`
	AllocsPerOp uint64  `json:"allocs_per_op"`
}

// HotPath records the simulator hot-path benchmark before and after the
// allocation-and-dispatch pass, so the very first report carries its own
// baseline. BeforeRef names the commit the Before column was measured at.
type HotPath struct {
	Benchmark string  `json:"benchmark"`
	BeforeRef string  `json:"before_ref"`
	Before    Metrics `json:"before"`
	After     Metrics `json:"after"`
	// Profiles lists profiler captures attached to the hot-path job (v2).
	Profiles []Profile `json:"profiles,omitempty"`
}

// HotFunc is one entry of a CPU profile's top-N table: the flat share of a
// function (samples attributed to the function itself, not its callees).
type HotFunc struct {
	Function string  `json:"function"`
	FlatPct  float64 `json:"flat_pct"`
	// Flat is the raw flat value in the profile's unit (nanoseconds for
	// CPU profiles).
	Flat int64 `json:"flat"`
}

// AllocSite is one entry of a heap profile's allocation table: bytes
// allocated (alloc_space, lifetime of the profile) attributed to the
// allocating function.
type AllocSite struct {
	Function string `json:"function"`
	Bytes    int64  `json:"bytes"`
}

// Profile is one profiler capture attached to a run: where the artifact
// landed and what its summary says. CPU profiles carry TopHot, heap
// profiles carry AllocSites/TotalAllocBytes, runtime/trace captures carry
// only the artifact (the trace is for Perfetto, not for numbers).
type Profile struct {
	Kind     string `json:"kind"`     // "cpu", "heap" or "trace"
	Artifact string `json:"artifact"` // path of the capture, as written
	Bytes    int64  `json:"bytes"`    // artifact size on disk

	TopHot          []HotFunc   `json:"top_hot,omitempty"`
	AllocSites      []AllocSite `json:"alloc_sites,omitempty"`
	TotalAllocBytes int64       `json:"total_alloc_bytes,omitempty"`

	// Note records a non-fatal capture or summary problem ("empty
	// profile", a parse error); the run itself still counted.
	Note string `json:"note,omitempty"`
}

// Experiment is the telemetry for one registered experiment run at the
// reduced budget.
type Experiment struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	// Job names the suite job that ran this experiment (v2; empty in v1
	// reports and for runs outside a suite).
	Job string `json:"job,omitempty"`
	// Rep is the 1-based repetition index when the suite asked for more
	// than one repetition; omitted for single runs.
	Rep    int     `json:"rep,omitempty"`
	WallMS float64 `json:"wall_ms"`
	// Sims and SimsPerSec are nil for wall-only experiments that run no
	// simulations (table1, table3): "not measured", not "zero". v1 files
	// wrote zeros for those; treat both spellings as unmeasured.
	Sims       *uint64  `json:"sims,omitempty"`
	SimsPerSec *float64 `json:"sims_per_sec,omitempty"`
	AllocMB    float64  `json:"alloc_mb"` // heap bytes allocated during the run
	Allocs     uint64   `json:"allocs"`   // heap objects allocated during the run
	// Profiles lists the profiler captures attached to this run.
	Profiles []Profile `json:"profiles,omitempty"`
}

// Measured reports whether the experiment carries a usable throughput
// figure. Wall-only experiments omit the fields in v2 and wrote zeros in
// v1; both mean "do not gate on this".
func (e *Experiment) Measured() bool {
	return e.Sims != nil && *e.Sims > 0 && e.SimsPerSec != nil && *e.SimsPerSec > 0
}

// LatencySummary is one side of a cluster run's latency reconciliation:
// either the client-observed request latencies or the server's own
// histogram-derived estimates, in milliseconds.
type LatencySummary struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms,omitempty"`
}

// ClusterRun is the telemetry of one cluster-kind suite job: a real
// in-process cdpd cluster (coordinator + workers) driven over HTTP, with
// the client-observed latency distribution reconciled against the
// aggregated per-worker run-duration histograms the servers also export
// on /metrics.
type ClusterRun struct {
	Job      string  `json:"job"`
	Workers  int     `json:"workers"`
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	WallMS   float64 `json:"wall_ms"`

	// Client is measured at the submitting client (full round trip:
	// routing, queue wait, simulation, response). Server is the cluster's
	// own view (every worker's run-duration histogram, aggregated), which
	// can only be faster.
	Client LatencySummary `json:"client"`
	Server LatencySummary `json:"server"`
	// QueueWaitP99MS is the aggregated worker queue-wait tail, the main
	// legitimate gap between the two views.
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`

	// Consistent is the reconciliation verdict: the servers ran exactly
	// one simulation per successful request and the client-observed
	// median is no faster than the server's own estimate.
	Consistent bool     `json:"consistent"`
	Notes      []string `json:"notes,omitempty"`
}

// Tolerance is the per-suite regression budget `bench -verdict` gates
// with.
type Tolerance struct {
	// SimsPerSecDropPct fails the verdict when a measured experiment's
	// throughput drops by more than this percentage against the baseline.
	SimsPerSecDropPct float64 `json:"sims_per_sec_drop_pct"`
	// HotpathAllocGrowthPct fails the verdict when the hot-path
	// benchmark's allocs/op grows by more than this percentage. The
	// default 0 means any growth at all fails — the simlint:hotpath
	// ratchet's contract.
	HotpathAllocGrowthPct float64 `json:"hotpath_alloc_growth_pct"`
	// NsPerOpGrowthPct fails the verdict when the hot-path ns/op grows by
	// more than this percentage (only gated when the environments match).
	NsPerOpGrowthPct float64 `json:"ns_per_op_growth_pct"`
}

// DefaultTolerance is used when a suite declares none: 10% sims/sec drop,
// zero allocs/op growth, 25% ns/op growth.
var DefaultTolerance = Tolerance{
	SimsPerSecDropPct:     10,
	HotpathAllocGrowthPct: 0,
	NsPerOpGrowthPct:      25,
}

// Report is one full cmd/bench run.
type Report struct {
	Schema      int    `json:"schema"`
	CreatedUnix int64  `json:"created_unix"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	// Suite names the declarative suite that produced this report (v2;
	// empty in v1 reports).
	Suite string `json:"suite,omitempty"`
	// Tolerance records the suite's regression budget so the verdict
	// gates against what the run was declared with.
	Tolerance *Tolerance `json:"tolerance,omitempty"`
	// Ops is the per-benchmark µop budget the experiments ran at.
	Ops int `json:"ops"`
	// PeakRSSKB is the process high-water resident set after all
	// experiments (VmHWM). Null — with NoteRSSUnsupported in Notes —
	// where the platform does not expose it; v1 wrote 0 for that.
	PeakRSSKB   *uint64      `json:"peak_rss_kb"`
	Notes       []string     `json:"notes,omitempty"`
	HotPath     *HotPath     `json:"hot_path,omitempty"`
	Experiments []Experiment `json:"experiments"`
	Cluster     []ClusterRun `json:"cluster,omitempty"`
}

// EnvComparable reports whether wall-clock-derived metrics (sims/sec,
// ns/op, RSS) of two reports can be compared at all: same toolchain, same
// platform, same core count. Allocation counts are deterministic and stay
// comparable across environments.
func EnvComparable(a, b *Report) bool {
	return a.GoVersion == b.GoVersion && a.GOOS == b.GOOS &&
		a.GOARCH == b.GOARCH && a.NumCPU == b.NumCPU
}

// NextPath returns the first unused BENCH_<n>.json path in dir (n >= 1) and
// the chosen n. Numbering never reuses a gap below the maximum, so reports
// stay in chronological order.
func NextPath(dir string) (string, int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	maxN := 0
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil && n > maxN {
			maxN = n
		}
	}
	n := maxN + 1
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n)), n, nil
}

// List returns the BENCH_<n>.json paths in dir in numeric order.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "BENCH_%d.json", &n); err == nil {
			found = append(found, numbered{n, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	out := make([]string, len(found))
	for i, f := range found {
		out[i] = f.path
	}
	return out, nil
}

// Write marshals the report and writes it atomically (temp file + rename),
// so a crashed run never leaves a truncated report behind.
func Write(path string, r *Report) error {
	if r.Schema == 0 {
		r.Schema = SchemaVersion
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Read parses one report, rejecting schema versions this code does not
// understand. Both the current schema and v1 parse; callers that care
// which layout they got check Report.Schema.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("benchio: %s: %w", path, err)
	}
	if r.Schema < minReadableSchema || r.Schema > SchemaVersion {
		return nil, fmt.Errorf("benchio: %s: unsupported schema %d (want %d..%d)",
			path, r.Schema, minReadableSchema, SchemaVersion)
	}
	return &r, nil
}

// U64 and F64 build the nullable telemetry fields.
func U64(v uint64) *uint64   { return &v }
func F64(v float64) *float64 { return &v }
