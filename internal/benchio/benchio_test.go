package benchio

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		CreatedUnix: 1_700_000_000,
		GoVersion:   "go-test",
		GOOS:        "linux",
		GOARCH:      "amd64",
		NumCPU:      8,
		Suite:       "default",
		Tolerance:   &Tolerance{SimsPerSecDropPct: 10, NsPerOpGrowthPct: 25},
		Ops:         60_000,
		PeakRSSKB:   U64(123_456),
		HotPath: &HotPath{
			Benchmark: "BenchmarkSimulatorUopsPerSecond",
			BeforeRef: "abc1234",
			Before:    Metrics{NsPerOp: 4e7, BytesPerOp: 12_917_656, AllocsPerOp: 421_396},
			After:     Metrics{NsPerOp: 2.4e7, BytesPerOp: 1_468_546, AllocsPerOp: 16_497},
		},
		Experiments: []Experiment{
			{ID: "table2", Title: "Table 2", Job: "matrix", WallMS: 1234.5,
				Sims: U64(30), SimsPerSec: F64(24.3), AllocMB: 800, Allocs: 1_000_000,
				Profiles: []Profile{{
					Kind: "cpu", Artifact: "artifacts/matrix-table2.cpu.pb.gz", Bytes: 512,
					TopHot: []HotFunc{{Function: "repro/internal/sim.step", FlatPct: 41.5, Flat: 415}},
				}}},
			{ID: "table1", Title: "Table 1", Job: "matrix", WallMS: 0.06, AllocMB: 0.01, Allocs: 136},
		},
		Cluster: []ClusterRun{{
			Job: "cluster", Workers: 2, Requests: 8, WallMS: 4000,
			Client:     LatencySummary{Count: 8, P50MS: 450, P90MS: 600, P99MS: 700, MaxMS: 720},
			Server:     LatencySummary{Count: 8, P50MS: 400, P90MS: 550, P99MS: 650},
			Consistent: true,
		}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	want := sampleReport()
	if err := Write(path, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", got.Schema, SchemaVersion)
	}
	if got.HotPath == nil || !reflect.DeepEqual(*got.HotPath, *want.HotPath) {
		t.Fatalf("hot path round trip: %+v vs %+v", got.HotPath, want.HotPath)
	}
	if got.Suite != "default" || got.Tolerance == nil || got.Tolerance.SimsPerSecDropPct != 10 {
		t.Fatalf("suite/tolerance round trip: %q %+v", got.Suite, got.Tolerance)
	}
	if got.PeakRSSKB == nil || *got.PeakRSSKB != 123_456 {
		t.Fatalf("peak RSS round trip: %v", got.PeakRSSKB)
	}
	if len(got.Experiments) != 2 {
		t.Fatalf("experiments round trip: %+v", got.Experiments)
	}
	e := got.Experiments[0]
	if !e.Measured() || *e.Sims != 30 || *e.SimsPerSec != 24.3 {
		t.Fatalf("measured experiment round trip: %+v", e)
	}
	if len(e.Profiles) != 1 || e.Profiles[0].TopHot[0].Function != "repro/internal/sim.step" {
		t.Fatalf("profile round trip: %+v", e.Profiles)
	}
	if got.Experiments[1].Measured() {
		t.Fatalf("wall-only experiment claims a throughput measurement: %+v", got.Experiments[1])
	}
	if len(got.Cluster) != 1 || !got.Cluster[0].Consistent || got.Cluster[0].Client.P99MS != 700 {
		t.Fatalf("cluster round trip: %+v", got.Cluster)
	}
}

// Wall-only experiments must serialize without rate fields at all: a v2
// report never spells "not measured" as zero.
func TestWallOnlyExperimentOmitsRates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := Write(path, sampleReport()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"sims": 0`) || strings.Contains(string(data), `"sims_per_sec": 0`) {
		t.Fatalf("zero-valued rate fields leaked into the report:\n%s", data)
	}
}

// A report from a platform without VmHWM carries an explicit null and the
// rss_unsupported note, not a zero.
func TestUnsupportedRSSIsNull(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	r := sampleReport()
	r.PeakRSSKB = nil
	r.Notes = append(r.Notes, NoteRSSUnsupported)
	if err := Write(path, r); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"peak_rss_kb": null`) {
		t.Fatalf("expected explicit null peak_rss_kb:\n%s", data)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.PeakRSSKB != nil {
		t.Fatalf("null peak_rss_kb decoded as %v", *got.PeakRSSKB)
	}
	if len(got.Notes) != 1 || got.Notes[0] != NoteRSSUnsupported {
		t.Fatalf("notes round trip: %v", got.Notes)
	}
}

// Read must keep accepting the v1 layout: the verdict compares fresh v2
// reports against the checked-in trajectory, which starts at schema 1.
func TestReadAcceptsSchemaV1(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	v1 := `{
  "schema": 1,
  "go_version": "go1.24.0", "goos": "linux", "goarch": "amd64", "num_cpu": 1,
  "ops": 60000, "peak_rss_kb": 269808,
  "hot_path": {"benchmark": "B", "before_ref": "abc",
    "before": {"ns_per_op": 4e7, "bytes_per_op": 2, "allocs_per_op": 421396},
    "after": {"ns_per_op": 2e7, "bytes_per_op": 1, "allocs_per_op": 16497}},
  "experiments": [
    {"id": "table1", "title": "T1", "wall_ms": 0.06, "sims": 0, "sims_per_sec": 0, "alloc_mb": 0.01, "allocs": 136},
    {"id": "fig9", "title": "F9", "wall_ms": 2477, "sims": 258, "sims_per_sec": 104.1, "alloc_mb": 276, "allocs": 2116718}
  ]
}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Read(path)
	if err != nil {
		t.Fatalf("Read(v1): %v", err)
	}
	if r.Schema != 1 {
		t.Fatalf("schema = %d", r.Schema)
	}
	// v1 zeros decode as "unmeasured", real rates stay measured.
	if r.Experiments[0].Measured() {
		t.Fatalf("v1 zero-rate experiment treated as measured: %+v", r.Experiments[0])
	}
	if !r.Experiments[1].Measured() || *r.Experiments[1].SimsPerSec != 104.1 {
		t.Fatalf("v1 measured experiment lost its rate: %+v", r.Experiments[1])
	}
	if r.PeakRSSKB == nil || *r.PeakRSSKB != 269808 {
		t.Fatalf("v1 peak RSS: %v", r.PeakRSSKB)
	}
}

func TestReadRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted schema 999")
	}
}

func TestNextPathNumbering(t *testing.T) {
	dir := t.TempDir()
	path, n, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || filepath.Base(path) != "BENCH_1.json" {
		t.Fatalf("empty dir: got n=%d path=%s", n, path)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, n, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numbering continues past the maximum; the gap at 2 is not reused.
	if n != 4 || filepath.Base(path) != "BENCH_4.json" {
		t.Fatalf("got n=%d path=%s, want BENCH_4.json", n, path)
	}
	paths, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "BENCH_1.json" || filepath.Base(paths[1]) != "BENCH_3.json" {
		t.Fatalf("List = %v", paths)
	}
}

func TestPeakRSSReportsOnLinux(t *testing.T) {
	if _, err := os.Stat("/proc/self/status"); err != nil {
		t.Skip("no /proc/self/status on this platform")
	}
	kb, ok := PeakRSS()
	if !ok || kb == 0 {
		t.Fatalf("PeakRSS = (%d, %v) with /proc available", kb, ok)
	}
	if PeakRSSKB() == 0 {
		t.Fatal("PeakRSSKB returned 0 with /proc available")
	}
}
