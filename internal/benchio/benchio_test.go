package benchio

import (
	"os"
	"path/filepath"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		CreatedUnix: 1_700_000_000,
		GoVersion:   "go-test",
		GOOS:        "linux",
		GOARCH:      "amd64",
		NumCPU:      8,
		Ops:         60_000,
		PeakRSSKB:   123_456,
		HotPath: &HotPath{
			Benchmark: "BenchmarkSimulatorUopsPerSecond",
			BeforeRef: "abc1234",
			Before:    Metrics{NsPerOp: 4e7, BytesPerOp: 12_917_656, AllocsPerOp: 421_396},
			After:     Metrics{NsPerOp: 2.4e7, BytesPerOp: 1_468_546, AllocsPerOp: 16_497},
		},
		Experiments: []Experiment{
			{ID: "table2", Title: "Table 2", WallMS: 1234.5, Sims: 30, SimsPerSec: 24.3, AllocMB: 800, Allocs: 1_000_000},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	want := sampleReport()
	if err := Write(path, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Schema != SchemaVersion {
		t.Fatalf("schema %d, want %d", got.Schema, SchemaVersion)
	}
	if got.HotPath == nil || *got.HotPath != *want.HotPath {
		t.Fatalf("hot path round trip: %+v vs %+v", got.HotPath, want.HotPath)
	}
	if len(got.Experiments) != 1 || got.Experiments[0] != want.Experiments[0] {
		t.Fatalf("experiments round trip: %+v", got.Experiments)
	}
}

func TestReadRejectsUnknownSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_1.json")
	if err := os.WriteFile(path, []byte(`{"schema": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(path); err == nil {
		t.Fatal("Read accepted schema 999")
	}
}

func TestNextPathNumbering(t *testing.T) {
	dir := t.TempDir()
	path, n, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || filepath.Base(path) != "BENCH_1.json" {
		t.Fatalf("empty dir: got n=%d path=%s", n, path)
	}
	for _, name := range []string{"BENCH_1.json", "BENCH_3.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	path, n, err = NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numbering continues past the maximum; the gap at 2 is not reused.
	if n != 4 || filepath.Base(path) != "BENCH_4.json" {
		t.Fatalf("got n=%d path=%s, want BENCH_4.json", n, path)
	}
	paths, err := List(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || filepath.Base(paths[0]) != "BENCH_1.json" || filepath.Base(paths[1]) != "BENCH_3.json" {
		t.Fatalf("List = %v", paths)
	}
}

func TestPeakRSSReportsOnLinux(t *testing.T) {
	if _, err := os.Stat("/proc/self/status"); err != nil {
		t.Skip("no /proc/self/status on this platform")
	}
	if PeakRSSKB() == 0 {
		t.Fatal("PeakRSSKB returned 0 with /proc available")
	}
}
