//go:build linux

package benchio

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// PeakRSS reads the process's resident-set high-water mark (VmHWM) from
// /proc/self/status, in KiB. ok is false when the field cannot be read —
// reports then record an explicit null rather than a zero a verdict would
// mistake for a 100% regression.
func PeakRSS() (kb uint64, ok bool) {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0, false
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, "VmHWM:"), "%d kB", &kb); err == nil {
			return kb, true
		}
		return 0, false
	}
	return 0, false
}

// PeakRSSKB is the legacy spelling kept for gauge exports (/metrics), where
// 0 is an acceptable "unavailable" encoding.
func PeakRSSKB() uint64 {
	kb, _ := PeakRSS()
	return kb
}
