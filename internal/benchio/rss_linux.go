//go:build linux

package benchio

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// PeakRSSKB reads the process's resident-set high-water mark (VmHWM) from
// /proc/self/status, in KiB. Returns 0 if the field cannot be read.
func PeakRSSKB() uint64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		var kb uint64
		if _, err := fmt.Sscanf(strings.TrimPrefix(line, "VmHWM:"), "%d kB", &kb); err == nil {
			return kb
		}
		return 0
	}
	return 0
}
