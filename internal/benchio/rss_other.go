//go:build !linux

package benchio

// PeakRSS reports no high-water mark on platforms without
// /proc/self/status. The false return makes the report write an explicit
// "peak_rss_kb": null plus an "rss_unsupported" note, so verdicts skip the
// RSS comparison instead of flagging a 100% regression against a real
// measurement.
func PeakRSS() (kb uint64, ok bool) { return 0, false }

// PeakRSSKB is the legacy spelling kept for gauge exports (/metrics), where
// 0 is an acceptable "unavailable" encoding.
func PeakRSSKB() uint64 { return 0 }
