//go:build !linux

package benchio

// PeakRSSKB returns 0 on platforms without /proc/self/status; the report's
// peak_rss_kb field is documented as 0 when unavailable.
func PeakRSSKB() uint64 { return 0 }
