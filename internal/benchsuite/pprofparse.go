package benchsuite

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"

	"repro/internal/benchio"
)

// This file reads the pprof protobuf profiles runtime/pprof writes, with a
// hand-rolled wire-format decoder (the container's zero-dependency stance
// rules out google.golang.org/protobuf; the handful of fields a summary
// needs decode in ~150 lines). Only the fields the summaries consume are
// modeled: sample types, samples, locations, lines, functions, and the
// string table. Unknown fields are skipped by wire type, so profiles from
// newer runtimes keep parsing.

// pprofProfile is the decoded slice of a profile the summaries need.
type pprofProfile struct {
	sampleTypes []pprofValueType
	samples     []pprofSample
	// locations maps location id -> function name of the innermost
	// (leaf-most) line, the frame flat values attribute to.
	locations     map[uint64]string
	durationNanos int64
}

type pprofValueType struct {
	Type string // "samples", "cpu", "alloc_space", ...
	Unit string // "count", "nanoseconds", "bytes", ...
}

type pprofSample struct {
	locationIDs []uint64
	values      []int64
}

// parsePprof decodes a (possibly gzipped) pprof protobuf profile.
func parsePprof(data []byte) (*pprofProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("pprof gzip: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("pprof gunzip: %w", err)
		}
	}

	var (
		strTab    []string
		functions = map[uint64]int64{}  // function id -> name string index
		locFuncs  = map[uint64]uint64{} // location id -> leaf function id
		p         = &pprofProfile{locations: map[uint64]string{}}
		stIdx     []pprofValueTypeIdx
	)

	r := wire{data: data}
	for !r.done() {
		num, typ, err := r.tag()
		if err != nil {
			return nil, err
		}
		switch num {
		case 1: // sample_type: ValueType
			msg, err := r.bytesField(typ)
			if err != nil {
				return nil, err
			}
			vt, err := parseValueTypeIdx(msg)
			if err != nil {
				return nil, err
			}
			stIdx = append(stIdx, vt)
		case 2: // sample
			msg, err := r.bytesField(typ)
			if err != nil {
				return nil, err
			}
			s, err := parseSample(msg)
			if err != nil {
				return nil, err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			msg, err := r.bytesField(typ)
			if err != nil {
				return nil, err
			}
			id, fid, err := parseLocation(msg)
			if err != nil {
				return nil, err
			}
			locFuncs[id] = fid
		case 5: // function
			msg, err := r.bytesField(typ)
			if err != nil {
				return nil, err
			}
			id, nameIdx, err := parseFunction(msg)
			if err != nil {
				return nil, err
			}
			functions[id] = nameIdx
		case 6: // string_table
			msg, err := r.bytesField(typ)
			if err != nil {
				return nil, err
			}
			strTab = append(strTab, string(msg))
		case 10: // duration_nanos
			v, err := r.varintField(typ)
			if err != nil {
				return nil, err
			}
			p.durationNanos = int64(v)
		default:
			if err := r.skip(typ); err != nil {
				return nil, err
			}
		}
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strTab) {
			return fmt.Sprintf("?str%d", i)
		}
		return strTab[i]
	}
	for _, vt := range stIdx {
		p.sampleTypes = append(p.sampleTypes, pprofValueType{Type: str(vt.typeIdx), Unit: str(vt.unitIdx)})
	}
	for id, fid := range locFuncs {
		if nameIdx, ok := functions[fid]; ok {
			p.locations[id] = str(nameIdx)
		}
	}
	return p, nil
}

type pprofValueTypeIdx struct{ typeIdx, unitIdx int64 }

func parseValueTypeIdx(msg []byte) (pprofValueTypeIdx, error) {
	var vt pprofValueTypeIdx
	r := wire{data: msg}
	for !r.done() {
		num, typ, err := r.tag()
		if err != nil {
			return vt, err
		}
		switch num {
		case 1:
			v, err := r.varintField(typ)
			if err != nil {
				return vt, err
			}
			vt.typeIdx = int64(v)
		case 2:
			v, err := r.varintField(typ)
			if err != nil {
				return vt, err
			}
			vt.unitIdx = int64(v)
		default:
			if err := r.skip(typ); err != nil {
				return vt, err
			}
		}
	}
	return vt, nil
}

func parseSample(msg []byte) (pprofSample, error) {
	var s pprofSample
	r := wire{data: msg}
	for !r.done() {
		num, typ, err := r.tag()
		if err != nil {
			return s, err
		}
		switch num {
		case 1: // location_id: repeated uint64 (packed or not)
			ids, err := r.packedVarints(typ)
			if err != nil {
				return s, err
			}
			s.locationIDs = append(s.locationIDs, ids...)
		case 2: // value: repeated int64
			vs, err := r.packedVarints(typ)
			if err != nil {
				return s, err
			}
			for _, v := range vs {
				s.values = append(s.values, int64(v))
			}
		default:
			if err := r.skip(typ); err != nil {
				return s, err
			}
		}
	}
	return s, nil
}

// parseLocation returns the location id and the function id of its
// innermost line (line[0] is the leaf of any inline stack).
func parseLocation(msg []byte) (id, funcID uint64, err error) {
	r := wire{data: msg}
	sawLine := false
	for !r.done() {
		num, typ, err := r.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			if id, err = r.varintField(typ); err != nil {
				return 0, 0, err
			}
		case 4: // line
			lmsg, err := r.bytesField(typ)
			if err != nil {
				return 0, 0, err
			}
			if sawLine {
				continue // keep the first (innermost) line
			}
			sawLine = true
			lr := wire{data: lmsg}
			for !lr.done() {
				lnum, ltyp, err := lr.tag()
				if err != nil {
					return 0, 0, err
				}
				if lnum == 1 {
					if funcID, err = lr.varintField(ltyp); err != nil {
						return 0, 0, err
					}
				} else if err := lr.skip(ltyp); err != nil {
					return 0, 0, err
				}
			}
		default:
			if err := r.skip(typ); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, funcID, nil
}

func parseFunction(msg []byte) (id uint64, nameIdx int64, err error) {
	r := wire{data: msg}
	for !r.done() {
		num, typ, err := r.tag()
		if err != nil {
			return 0, 0, err
		}
		switch num {
		case 1:
			if id, err = r.varintField(typ); err != nil {
				return 0, 0, err
			}
		case 2:
			v, err := r.varintField(typ)
			if err != nil {
				return 0, 0, err
			}
			nameIdx = int64(v)
		default:
			if err := r.skip(typ); err != nil {
				return 0, 0, err
			}
		}
	}
	return id, nameIdx, nil
}

// valueIndex finds the sample-type column named typ, or -1.
func (p *pprofProfile) valueIndex(typ string) int {
	for i, st := range p.sampleTypes {
		if st.Type == typ {
			return i
		}
	}
	return -1
}

// flatByFunction sums column vi of every sample into the leaf location's
// function.
func (p *pprofProfile) flatByFunction(vi int) map[string]int64 {
	out := map[string]int64{}
	for _, s := range p.samples {
		if vi >= len(s.values) || len(s.locationIDs) == 0 {
			continue
		}
		fn := p.locations[s.locationIDs[0]]
		if fn == "" {
			fn = "(unknown)"
		}
		out[fn] += s.values[vi]
	}
	return out
}

// topNProfileSummary caps the hot-function and alloc-site tables; enough
// to name the hot path, small enough to keep BENCH files reviewable.
const topNProfileSummary = 5

// summarizeCPU builds the top-N flat% table of a CPU profile. The column
// is the "cpu" nanoseconds sample type (falling back to the last column,
// which runtime/pprof puts the weight in).
func summarizeCPU(data []byte) ([]benchio.HotFunc, error) {
	p, err := parsePprof(data)
	if err != nil {
		return nil, err
	}
	vi := p.valueIndex("cpu")
	if vi < 0 {
		if len(p.sampleTypes) == 0 {
			return nil, fmt.Errorf("cpu profile has no sample types")
		}
		vi = len(p.sampleTypes) - 1
	}
	flat := p.flatByFunction(vi)
	var total int64
	for _, v := range flat {
		total += v
	}
	if total == 0 {
		return nil, nil // profile captured no samples (run too short)
	}
	out := make([]benchio.HotFunc, 0, len(flat))
	for fn, v := range flat {
		out = append(out, benchio.HotFunc{Function: fn, Flat: v,
			FlatPct: 100 * float64(v) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Function < out[j].Function
	})
	if len(out) > topNProfileSummary {
		out = out[:topNProfileSummary]
	}
	return out, nil
}

// summarizeHeap builds the top-N allocation-site table (alloc_space: bytes
// allocated over the profile's lifetime, the column the allocs/op
// trajectory cares about) and the total.
func summarizeHeap(data []byte) ([]benchio.AllocSite, int64, error) {
	p, err := parsePprof(data)
	if err != nil {
		return nil, 0, err
	}
	vi := p.valueIndex("alloc_space")
	if vi < 0 {
		return nil, 0, fmt.Errorf("heap profile has no alloc_space column")
	}
	flat := p.flatByFunction(vi)
	var total int64
	out := make([]benchio.AllocSite, 0, len(flat))
	for fn, v := range flat {
		total += v
		if v > 0 {
			out = append(out, benchio.AllocSite{Function: fn, Bytes: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Function < out[j].Function
	})
	if len(out) > topNProfileSummary {
		out = out[:topNProfileSummary]
	}
	return out, total, nil
}

// ---- protobuf wire-format reader -----------------------------------------

const (
	wtVarint  = 0
	wtFixed64 = 1
	wtBytes   = 2
	wtFixed32 = 5
)

type wire struct {
	data []byte
	pos  int
}

func (r *wire) done() bool { return r.pos >= len(r.data) }

func (r *wire) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.pos >= len(r.data) {
			return 0, fmt.Errorf("pprof: truncated varint at %d", r.pos)
		}
		b := r.data[r.pos]
		r.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("pprof: varint overflow at %d", r.pos)
}

func (r *wire) tag() (num int, typ int, err error) {
	k, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(k >> 3), int(k & 7), nil
}

func (r *wire) lengthDelimited() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if uint64(len(r.data)-r.pos) < n {
		return nil, fmt.Errorf("pprof: truncated field (%d bytes wanted, %d left)", n, len(r.data)-r.pos)
	}
	b := r.data[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return b, nil
}

// bytesField expects a length-delimited field.
func (r *wire) bytesField(typ int) ([]byte, error) {
	if typ != wtBytes {
		return nil, fmt.Errorf("pprof: wire type %d where bytes expected", typ)
	}
	return r.lengthDelimited()
}

// varintField expects a varint field.
func (r *wire) varintField(typ int) (uint64, error) {
	if typ != wtVarint {
		return 0, fmt.Errorf("pprof: wire type %d where varint expected", typ)
	}
	return r.varint()
}

// packedVarints reads a repeated varint field in either encoding: packed
// (one length-delimited blob) or one-per-tag.
func (r *wire) packedVarints(typ int) ([]uint64, error) {
	switch typ {
	case wtVarint:
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	case wtBytes:
		blob, err := r.lengthDelimited()
		if err != nil {
			return nil, err
		}
		sub := wire{data: blob}
		var out []uint64
		for !sub.done() {
			v, err := sub.varint()
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("pprof: wire type %d where repeated varint expected", typ)
	}
}

func (r *wire) skip(typ int) error {
	switch typ {
	case wtVarint:
		_, err := r.varint()
		return err
	case wtFixed64:
		if len(r.data)-r.pos < 8 {
			return fmt.Errorf("pprof: truncated fixed64")
		}
		r.pos += 8
		return nil
	case wtBytes:
		_, err := r.lengthDelimited()
		return err
	case wtFixed32:
		if len(r.data)-r.pos < 4 {
			return fmt.Errorf("pprof: truncated fixed32")
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("pprof: unsupported wire type %d", typ)
	}
}
