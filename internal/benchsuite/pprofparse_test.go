package benchsuite

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
)

// ---- protobuf wire-format writer (test-only) ------------------------------

type pbw struct{ bytes.Buffer }

func (w *pbw) varint(v uint64) {
	for v >= 0x80 {
		w.WriteByte(byte(v) | 0x80)
		v >>= 7
	}
	w.WriteByte(byte(v))
}

func (w *pbw) field(num int, typ int) { w.varint(uint64(num)<<3 | uint64(typ)) }

func (w *pbw) varintField(num int, v uint64) {
	w.field(num, wtVarint)
	w.varint(v)
}

func (w *pbw) bytesField(num int, b []byte) {
	w.field(num, wtBytes)
	w.varint(uint64(len(b)))
	w.Write(b)
}

func (w *pbw) packed(num int, vs ...uint64) {
	var inner pbw
	for _, v := range vs {
		inner.varint(v)
	}
	w.bytesField(num, inner.Bytes())
}

// buildProfile hand-encodes a pprof Profile message:
//
//	sample types: (samples, count), (cpu, nanoseconds)
//	functions:    1=main.hot 2=main.warm 3=main.cold
//	locations:    1->hot 2->warm 3->cold
//	samples:      [1]      values (3, 600)  leaf hot
//	              [2, 1]   values (2, 300)  leaf warm (hot is its caller frame)
//	              [3]      values (1, 100)  leaf cold
//
// So flat cpu: hot=600 (60%), warm=300 (30%), cold=100 (10%).
func buildProfile(t *testing.T, gzipped bool) []byte {
	t.Helper()
	var st []string
	strIdx := func(s string) uint64 {
		for i, v := range st {
			if v == s {
				return uint64(i)
			}
		}
		st = append(st, s)
		return uint64(len(st) - 1)
	}
	strIdx("") // index 0 must be the empty string

	var p pbw
	vt := func(typ, unit string) []byte {
		var m pbw
		m.varintField(1, strIdx(typ))
		m.varintField(2, strIdx(unit))
		return m.Bytes()
	}
	sampleTypes := [][]byte{vt("samples", "count"), vt("cpu", "nanoseconds")}

	fn := func(id uint64, name string) []byte {
		var m pbw
		m.varintField(1, id)
		m.varintField(2, strIdx(name))
		return m.Bytes()
	}
	funcs := [][]byte{fn(1, "main.hot"), fn(2, "main.warm"), fn(3, "main.cold")}

	loc := func(id, funcID uint64) []byte {
		var line pbw
		line.varintField(1, funcID)
		var m pbw
		m.varintField(1, id)
		m.bytesField(4, line.Bytes())
		return m.Bytes()
	}
	locs := [][]byte{loc(1, 1), loc(2, 2), loc(3, 3)}

	sample := func(locIDs []uint64, vals ...uint64) []byte {
		var m pbw
		m.packed(1, locIDs...)
		m.packed(2, vals...)
		return m.Bytes()
	}
	samples := [][]byte{
		sample([]uint64{1}, 3, 600),
		sample([]uint64{2, 1}, 2, 300),
		sample([]uint64{3}, 1, 100),
	}

	// string_table must come after the indices are assigned, but field
	// order within a protobuf message is free, so emit in any order.
	for _, b := range sampleTypes {
		p.bytesField(1, b)
	}
	for _, b := range samples {
		p.bytesField(2, b)
	}
	for _, b := range locs {
		p.bytesField(4, b)
	}
	for _, b := range funcs {
		p.bytesField(5, b)
	}
	for _, s := range st {
		p.bytesField(6, []byte(s))
	}
	p.varintField(10, 2_000_000_000) // duration_nanos

	raw := p.Bytes()
	if !gzipped {
		return raw
	}
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	if _, err := zw.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return gz.Bytes()
}

func TestParsePprofHandEncoded(t *testing.T) {
	for _, gzipped := range []bool{false, true} {
		p, err := parsePprof(buildProfile(t, gzipped))
		if err != nil {
			t.Fatalf("gzipped=%v: %v", gzipped, err)
		}
		if len(p.sampleTypes) != 2 || p.sampleTypes[1].Type != "cpu" || p.sampleTypes[1].Unit != "nanoseconds" {
			t.Fatalf("sample types: %+v", p.sampleTypes)
		}
		if len(p.samples) != 3 {
			t.Fatalf("samples: %+v", p.samples)
		}
		if p.locations[1] != "main.hot" || p.locations[2] != "main.warm" || p.locations[3] != "main.cold" {
			t.Fatalf("locations: %+v", p.locations)
		}
		if p.durationNanos != 2_000_000_000 {
			t.Fatalf("duration: %d", p.durationNanos)
		}
	}
}

func TestSummarizeCPUExactMath(t *testing.T) {
	hot, err := summarizeCPU(buildProfile(t, true))
	if err != nil {
		t.Fatal(err)
	}
	if len(hot) != 3 {
		t.Fatalf("hot funcs: %+v", hot)
	}
	want := []struct {
		fn   string
		flat int64
		pct  float64
	}{
		{"main.hot", 600, 60},
		{"main.warm", 300, 30},
		{"main.cold", 100, 10},
	}
	for i, w := range want {
		h := hot[i]
		if h.Function != w.fn || h.Flat != w.flat || h.FlatPct != w.pct {
			t.Fatalf("hot[%d] = %+v, want %+v", i, h, w)
		}
	}
}

func TestSummarizeHeapErrorsWithoutAllocSpace(t *testing.T) {
	// The hand-built profile is a CPU profile; alloc_space is absent.
	if _, _, err := summarizeHeap(buildProfile(t, true)); err == nil ||
		!strings.Contains(err.Error(), "alloc_space") {
		t.Fatalf("err = %v", err)
	}
}

func TestParsePprofTruncated(t *testing.T) {
	raw := buildProfile(t, false)
	if _, err := parsePprof(raw[:len(raw)/2]); err == nil {
		t.Fatal("expected error on truncated profile")
	}
}

// TestSummarizeHeapRealProfile exercises the parser against a genuine
// runtime-written heap profile, the format the suite actually consumes.
func TestSummarizeHeapRealProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "heap.pb.gz")
	// Allocate something attributable, then capture.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	_ = sink
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pprof.WriteHeapProfile(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	sites, total, err := summarizeHeap(data)
	if err != nil {
		t.Fatalf("summarizeHeap on real profile: %v", err)
	}
	if total <= 0 {
		t.Fatalf("total alloc bytes = %d", total)
	}
	if len(sites) == 0 || len(sites) > topNProfileSummary {
		t.Fatalf("sites = %+v", sites)
	}
	// Sorted descending by bytes.
	for i := 1; i < len(sites); i++ {
		if sites[i].Bytes > sites[i-1].Bytes {
			t.Fatalf("sites not sorted: %+v", sites)
		}
	}
}
