package benchsuite

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"

	"repro/internal/benchio"
)

// A profiler wraps one measured run: start before, stop after, then
// summarize the artifact it wrote into a benchio.Profile. Profilers are
// process-global (runtime/pprof and runtime/trace allow one capture at a
// time), so the runner attaches them to sequential runs only — never to
// two runs concurrently.
type profiler interface {
	// start begins capture, writing to path.
	start(path string) error
	// stop ends capture and flushes the artifact.
	stop() error
	// summarize reads the artifact back into report fields.
	summarize(data []byte, p *benchio.Profile) error
	// ext is the artifact filename extension.
	ext() string
}

func newProfiler(kind string) (profiler, error) {
	switch kind {
	case ProfileCPU:
		return &cpuProfiler{}, nil
	case ProfileHeap:
		return &heapProfiler{}, nil
	case ProfileTrace:
		return &traceProfiler{}, nil
	default:
		return nil, fmt.Errorf("unknown profiler %q", kind)
	}
}

type cpuProfiler struct{ f *os.File }

func (c *cpuProfiler) ext() string { return "cpu.pb.gz" }

func (c *cpuProfiler) start(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	c.f = f
	return nil
}

func (c *cpuProfiler) stop() error {
	pprof.StopCPUProfile()
	return c.f.Close()
}

func (c *cpuProfiler) summarize(data []byte, p *benchio.Profile) error {
	hot, err := summarizeCPU(data)
	if err != nil {
		return err
	}
	if len(hot) == 0 {
		p.Note = "no cpu samples captured (run too short)"
		return nil
	}
	p.TopHot = hot
	return nil
}

// heapProfiler is stop-only: the heap profile is a snapshot, so there is
// nothing to begin at start time beyond remembering the path.
type heapProfiler struct{ path string }

func (h *heapProfiler) ext() string { return "heap.pb.gz" }

func (h *heapProfiler) start(path string) error {
	h.path = path
	return nil
}

func (h *heapProfiler) stop() error {
	f, err := os.Create(h.path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Flush recently-freed objects into the profile so alloc_space reflects
	// everything the run allocated, not just what is still live.
	runtime.GC()
	return pprof.WriteHeapProfile(f)
}

func (h *heapProfiler) summarize(data []byte, p *benchio.Profile) error {
	sites, total, err := summarizeHeap(data)
	if err != nil {
		return err
	}
	p.AllocSites = sites
	p.TotalAllocBytes = total
	return nil
}

type traceProfiler struct{ f *os.File }

func (t *traceProfiler) ext() string { return "trace.out" }

func (t *traceProfiler) start(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return err
	}
	t.f = f
	return nil
}

func (t *traceProfiler) stop() error {
	trace.Stop()
	return t.f.Close()
}

func (t *traceProfiler) summarize(data []byte, p *benchio.Profile) error {
	// Execution traces have no flat summary worth inventing here; the
	// artifact is the deliverable (go tool trace <file>). Record its size
	// so a truncated capture is visible in the report.
	if len(data) == 0 {
		return fmt.Errorf("empty trace artifact")
	}
	return nil
}

// profiledRun executes fn with the named profilers attached one at a time
// (the runtime allows a single CPU profile and a single trace at once, and
// sequential captures keep each artifact clean of the others' overhead).
// fn runs once per profiler, plus once unprofiled when kinds is empty.
// Artifacts land in dir as <stem>.<ext>. Capture failures degrade to a
// Profile with a Note rather than failing the suite.
func profiledRun(dir, stem string, kinds []string, fn func() error) ([]benchio.Profile, error) {
	if len(kinds) == 0 {
		return nil, fn()
	}
	var out []benchio.Profile
	for _, kind := range kinds {
		prof := benchio.Profile{Kind: kind}
		pr, err := newProfiler(kind)
		if err != nil {
			return out, err
		}
		path := filepath.Join(dir, stem+"."+pr.ext())
		if err := pr.start(path); err != nil {
			prof.Note = fmt.Sprintf("start failed: %v", err)
			out = append(out, prof)
			if err := fn(); err != nil {
				return out, err
			}
			continue
		}
		runErr := fn()
		if err := pr.stop(); err != nil && runErr == nil {
			runErr = fmt.Errorf("stop %s profiler: %w", kind, err)
		}
		if runErr != nil {
			return out, runErr
		}
		prof.Artifact = path
		if data, err := os.ReadFile(path); err != nil {
			prof.Note = fmt.Sprintf("artifact unreadable: %v", err)
		} else {
			prof.Bytes = int64(len(data))
			if err := pr.summarize(data, &prof); err != nil {
				prof.Note = fmt.Sprintf("summarize failed: %v", err)
			}
		}
		out = append(out, prof)
	}
	return out, nil
}
