package benchsuite

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// burn keeps the CPU busy long enough for the 100Hz profiler to land a few
// samples, with allocations the heap profiler can attribute.
func burn(d time.Duration) {
	deadline := time.Now().Add(d)
	buf := make([]byte, 4096)
	for time.Now().Before(deadline) {
		for i := 0; i < 64; i++ {
			sum := sha256.Sum256(buf)
			copy(buf, sum[:])
			buf = append(buf[:0:0], buf...) // force a fresh allocation
		}
	}
}

func TestProfiledRunNoProfilers(t *testing.T) {
	ran := 0
	profs, err := profiledRun(t.TempDir(), "x", nil, func() error { ran++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 || profs != nil {
		t.Fatalf("ran=%d profs=%v", ran, profs)
	}
}

func TestProfiledRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	ran := 0
	profs, err := profiledRun(dir, "job-wl", []string{ProfileCPU, ProfileHeap, ProfileTrace},
		func() error {
			ran++
			burn(250 * time.Millisecond)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("fn ran %d times, want one per profiler", ran)
	}
	if len(profs) != 3 {
		t.Fatalf("profiles: %+v", profs)
	}
	wantExt := map[string]string{
		ProfileCPU:   "cpu.pb.gz",
		ProfileHeap:  "heap.pb.gz",
		ProfileTrace: "trace.out",
	}
	for _, p := range profs {
		if p.Artifact == "" {
			t.Fatalf("profile %q has no artifact: %+v", p.Kind, p)
		}
		if got := filepath.Base(p.Artifact); got != "job-wl."+wantExt[p.Kind] {
			t.Fatalf("artifact name %q for kind %q", got, p.Kind)
		}
		st, err := os.Stat(p.Artifact)
		if err != nil {
			t.Fatalf("artifact missing: %v", err)
		}
		if st.Size() == 0 || p.Bytes != st.Size() {
			t.Fatalf("artifact size %d, report says %d", st.Size(), p.Bytes)
		}
		switch p.Kind {
		case ProfileHeap:
			if p.Note != "" {
				t.Fatalf("heap summarize note: %q", p.Note)
			}
			if p.TotalAllocBytes <= 0 || len(p.AllocSites) == 0 {
				t.Fatalf("heap summary empty: %+v", p)
			}
		case ProfileCPU:
			// A quarter-second of hashing should land samples, but a heavily
			// shared CI machine may starve the profiler; accept the explicit
			// "no samples" note, reject real failures.
			if p.Note != "" && p.Note != "no cpu samples captured (run too short)" {
				t.Fatalf("cpu summarize note: %q", p.Note)
			}
			if p.Note == "" && len(p.TopHot) == 0 {
				t.Fatalf("cpu summary empty with no note: %+v", p)
			}
		case ProfileTrace:
			if p.Note != "" {
				t.Fatalf("trace note: %q", p.Note)
			}
		}
	}
}

func TestProfiledRunPropagatesRunError(t *testing.T) {
	_, err := profiledRun(t.TempDir(), "x", []string{ProfileHeap},
		func() error { return os.ErrDeadlineExceeded })
	if err == nil {
		t.Fatal("expected the run's error back")
	}
}
