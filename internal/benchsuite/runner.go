package benchsuite

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/benchio"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// hotPathBefore is BenchmarkSimulatorUopsPerSecond measured at the commit
// named by hotPathBeforeRef — the last tree before the allocation-and-
// dispatch pass over the simulation hot path. Keeping the baseline in
// every report makes each BENCH file self-describing. (Moved here from
// cmd/bench when the suite runner took over measurement.)
var hotPathBefore = benchio.Metrics{
	NsPerOp:     39_227_232,
	BytesPerOp:  12_917_652,
	AllocsPerOp: 421_396,
}

const hotPathBeforeRef = "3ec0134"

// Hot-path measurement constants. These must not drift: the verdict gates
// allocs/op at zero growth against prior BENCH files, so the measured
// workload has to stay byte-identical to what bench_test.go's
// BenchmarkSimulatorUopsPerSecond and every earlier cmd/bench ran.
const (
	hotPathBenchmark = "BenchmarkSimulatorUopsPerSecond"
	hotPathWorkload  = "tpcc-1"
	hotPathWarmupOps = 20_000
)

// RunOptions configures one suite execution.
type RunOptions struct {
	// ProfileDir receives profiler artifacts ("" = "artifacts"). Created
	// on demand; unused when no job declares profilers.
	ProfileDir string
	// Log receives human narration (nil discards).
	Log func(format string, args ...any)
}

func (o *RunOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

// RunSuite executes every job of the suite in declaration order and
// returns the schema-v2 report. Jobs run sequentially — profilers are
// process-global, and sequential runs keep each measurement clean of its
// neighbours' cache and GC pressure.
func RunSuite(s *Suite, opts RunOptions) (*benchio.Report, error) {
	if opts.ProfileDir == "" {
		opts.ProfileDir = "artifacts"
	}
	for _, j := range s.Jobs {
		if len(j.Profilers) > 0 {
			if err := os.MkdirAll(opts.ProfileDir, 0o755); err != nil {
				return nil, fmt.Errorf("profile dir: %w", err)
			}
			break
		}
	}

	tol := s.Tolerance
	report := &benchio.Report{
		Schema:      benchio.SchemaVersion,
		CreatedUnix: time.Now().Unix(),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Suite:       s.Name,
		Tolerance:   &tol,
		Ops:         s.defaultOps(),
	}

	for i := range s.Jobs {
		j := &s.Jobs[i]
		reps := j.repeat(s)
		for rep := 1; rep <= reps; rep++ {
			var err error
			switch j.Kind {
			case KindExperiments:
				err = runExperimentsJob(s, j, rep, reps, report, &opts)
			case KindHotPath:
				err = runHotPathJob(s, j, rep, report, &opts)
			case KindCluster:
				err = runClusterJob(s, j, rep, report, &opts)
			}
			if err != nil {
				return nil, fmt.Errorf("job %q: %w", j.Name, err)
			}
		}
	}

	if kb, ok := benchio.PeakRSS(); ok {
		report.PeakRSSKB = benchio.U64(kb)
	} else {
		report.Notes = append(report.Notes, benchio.NoteRSSUnsupported)
	}
	return report, nil
}

func (s *Suite) defaultOps() int {
	if s.Ops > 0 {
		return s.Ops
	}
	return 60_000
}

// stem names profiler artifacts: <job>-<unit>[-repN].
func stem(job, unit string, rep, reps int) string {
	s := job + "-" + unit
	if reps > 1 {
		s = fmt.Sprintf("%s-rep%d", s, rep)
	}
	return s
}

// runExperimentsJob measures each workload unprofiled first (telemetry
// must not carry profiler overhead), then repeats the run once per
// declared profiler for the artifacts.
func runExperimentsJob(s *Suite, j *Job, rep, reps int, report *benchio.Report, opts *RunOptions) error {
	ids := j.Workloads
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	opt := experiments.Options{Ops: j.ops(s), Reps: s.Representatives}
	for _, id := range ids {
		r, err := experiments.Get(id)
		if err != nil {
			return err
		}
		var before, after runtime.MemStats
		simsBefore := experiments.SimsRun()
		runtime.ReadMemStats(&before)
		start := time.Now()
		out, err := r.Run(opt)
		if err != nil {
			return err
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		if out.Text == "" {
			return fmt.Errorf("experiment %s produced no output", r.ID)
		}
		sims := experiments.SimsRun() - simsBefore
		e := benchio.Experiment{
			ID:      r.ID,
			Title:   r.Title,
			Job:     j.Name,
			WallMS:  float64(wall.Nanoseconds()) / 1e6,
			AllocMB: float64(after.TotalAlloc-before.TotalAlloc) / (1 << 20),
			Allocs:  after.Mallocs - before.Mallocs,
		}
		if reps > 1 {
			e.Rep = rep
		}
		if sims > 0 {
			e.Sims = benchio.U64(sims)
			e.SimsPerSec = benchio.F64(float64(sims) / wall.Seconds())
			opts.logf("%-10s %8.0f ms  %3d sims  %6.1f sims/s  %8.1f MB alloc",
				r.ID, e.WallMS, sims, *e.SimsPerSec, e.AllocMB)
		} else {
			opts.logf("%-10s %8.0f ms  wall-only  %8.1f MB alloc", r.ID, e.WallMS, e.AllocMB)
		}
		if len(j.Profilers) > 0 {
			profs, err := profiledRun(opts.ProfileDir, stem(j.Name, id, rep, reps), j.Profilers,
				func() error { _, err := r.Run(opt); return err })
			if err != nil {
				return err
			}
			e.Profiles = profs
		}
		report.Experiments = append(report.Experiments, e)
	}
	return nil
}

// runHotPathJob reruns bench_test.go's BenchmarkSimulatorUopsPerSecond
// workload under testing.Benchmark. With repeat > 1 the best (lowest
// ns/op) repetition is kept, the usual benchmarking practice; allocation
// counts are deterministic across repetitions.
func runHotPathJob(s *Suite, j *Job, rep int, report *benchio.Report, opts *RunOptions) error {
	spec, err := workloads.ByName(hotPathWorkload)
	if err != nil {
		return err
	}
	ck := workloads.Checkpoint(spec, j.ops(s))
	cfg := sim.Default().WithContent(core.DefaultConfig)
	cfg.WarmupOps = hotPathWarmupOps

	// Quiesce the heap first: after an experiment-matrix job the process
	// carries pending sweeps and finalizers whose allocations would land
	// inside the benchmark window and show up as phantom allocs/op growth
	// against the zero-tolerance ratchet (BENCH_1/2 measured the hot path
	// in a fresh process).
	runtime.GC()
	runtime.GC()

	var benchErr error
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if r := sim.Run(ck, cfg); r.Core.Retired == 0 {
				benchErr = fmt.Errorf("%s: nothing retired", hotPathBenchmark)
				b.FailNow()
			}
		}
	})
	if benchErr != nil {
		return benchErr
	}
	after := benchio.Metrics{
		NsPerOp:     float64(res.NsPerOp()),
		BytesPerOp:  uint64(res.AllocedBytesPerOp()),
		AllocsPerOp: uint64(res.AllocsPerOp()),
	}
	opts.logf("%s rep %d: %.1f ms/op, %d B/op, %d allocs/op",
		hotPathBenchmark, rep, after.NsPerOp/1e6, after.BytesPerOp, after.AllocsPerOp)

	if report.HotPath == nil || after.NsPerOp < report.HotPath.After.NsPerOp {
		var profiles []benchio.Profile
		if report.HotPath != nil {
			profiles = report.HotPath.Profiles
		}
		report.HotPath = &benchio.HotPath{
			Benchmark: hotPathBenchmark,
			BeforeRef: hotPathBeforeRef,
			Before:    hotPathBefore,
			After:     after,
			Profiles:  profiles,
		}
	}

	// Profile a batch of simulations per profiler — a single ~23 ms run
	// yields only 2–3 samples at the CPU profiler's 100 Hz, too few to
	// rank hot functions reliably — and keep profiler overhead out of the
	// measured numbers above.
	if len(j.Profilers) > 0 && rep == 1 {
		const profiledSims = 10
		profs, err := profiledRun(opts.ProfileDir, stem(j.Name, "hotpath", 1, 1), j.Profilers,
			func() error {
				for range profiledSims {
					if r := sim.Run(ck, cfg); r.Core.Retired == 0 {
						return fmt.Errorf("profiled run retired nothing")
					}
				}
				return nil
			})
		if err != nil {
			return err
		}
		report.HotPath.Profiles = profs
	}
	return nil
}

// runClusterJob brings up a real in-process cdpd cluster (coordinator +
// workers, the chaos harness's bring-up with its teardown, journal, and
// goroutine-leak checks) and drives concurrent submissions through the
// coordinator's front door, then reconciles the client-observed latency
// distribution against the workers' own lock-free histograms.
func runClusterJob(s *Suite, j *Job, rep int, report *benchio.Report, opts *RunOptions) error {
	cr := benchio.ClusterRun{Job: j.Name, Workers: j.Workers, Requests: j.Requests}

	type outcome struct {
		dur time.Duration
		ok  bool
	}
	results := make([]outcome, j.Requests)
	var merged map[string]api.HistogramSnapshot

	scenario := chaos.Scenario{
		Name:        "bench-" + j.Name,
		Description: "bench suite cluster latency job",
		Run: func(r *chaos.Run) {
			r.StartCoordinator(nil)
			for i := 0; i < j.Workers; i++ {
				r.StartWorker(fmt.Sprintf("w%d", i+1))
			}
			r.WaitForWorkers(j.Workers)

			url := r.CoordinatorURL() + "/v1/sim?wait=1"
			start := time.Now()
			var wg sync.WaitGroup
			sem := make(chan struct{}, j.Concurrency)
			for i := 0; i < j.Requests; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					// Unique op counts make every request a distinct cache
					// key, so each one really simulates: the reconciliation
					// below counts on one run-duration observation per
					// successful request.
					req := api.SimRequest{
						Benchmark: j.Benchmarks[i%len(j.Benchmarks)],
						Ops:       j.ops(s) + i,
						CDP:       true,
					}
					body, _ := json.Marshal(req)
					t0 := time.Now()
					resp, err := http.Post(url, "application/json", bytes.NewReader(body))
					d := time.Since(t0)
					ok := err == nil && resp.StatusCode == http.StatusOK
					if resp != nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					results[i] = outcome{dur: d, ok: ok}
				}(i)
			}
			wg.Wait()
			cr.WallMS = float64(time.Since(start).Nanoseconds()) / 1e6

			merged = map[string]api.HistogramSnapshot{}
			for _, name := range r.WorkerNames() {
				w := r.Worker(name)
				if w == nil {
					continue
				}
				for series, snap := range w.API().LatencySnapshots() {
					m, ok := merged[series]
					if !ok {
						merged[series] = snap
						continue
					}
					if err := m.Merge(snap); err != nil {
						cr.Notes = append(cr.Notes, err.Error())
						continue
					}
					merged[series] = m
				}
			}
		},
	}
	chaosRep := chaos.Execute(scenario, chaos.Options{Seed: int64(rep), Log: opts.Log})
	for _, v := range chaosRep.Violations {
		cr.Notes = append(cr.Notes, "harness: "+v)
	}

	var clientDurs []time.Duration
	for _, o := range results {
		if o.ok {
			clientDurs = append(clientDurs, o.dur)
		} else {
			cr.Errors++
		}
	}
	cr.Client = clientSummary(clientDurs)

	runDur := merged["cdpd_run_duration"]
	cr.Server = benchio.LatencySummary{
		Count: runDur.Count,
		P50MS: runDur.Quantile(0.50) * 1e3,
		P90MS: runDur.Quantile(0.90) * 1e3,
		P99MS: runDur.Quantile(0.99) * 1e3,
	}
	qw := merged["cdpd_queue_wait"]
	cr.QueueWaitP99MS = qw.Quantile(0.99) * 1e3

	// Reconciliation. The bucket quantiles above are estimates, but two
	// exact invariants must hold when the cluster behaved: every successful
	// request ran exactly one simulation (unique cache keys, hedging off),
	// and the mean client round trip can only exceed the mean server-side
	// run duration (the round trip contains it).
	cr.Consistent = len(chaosRep.Violations) == 0
	if int(runDur.Count) != len(clientDurs) {
		cr.Consistent = false
		cr.Notes = append(cr.Notes, fmt.Sprintf(
			"server ran %d simulations for %d successful requests", runDur.Count, len(clientDurs)))
	}
	if len(clientDurs) == 0 {
		cr.Consistent = false
		cr.Notes = append(cr.Notes, "no successful requests")
	} else {
		var sum time.Duration
		for _, d := range clientDurs {
			sum += d
		}
		clientMean := sum.Seconds() / float64(len(clientDurs))
		serverMean := 0.0
		if runDur.Count > 0 {
			serverMean = runDur.SumSecs / float64(runDur.Count)
		}
		if clientMean < serverMean {
			cr.Consistent = false
			cr.Notes = append(cr.Notes, fmt.Sprintf(
				"client mean %.3fms below server run-duration mean %.3fms",
				clientMean*1e3, serverMean*1e3))
		}
	}
	opts.logf("cluster %s: %d workers, %d/%d ok, client p50 %.1fms server p50 %.1fms consistent=%v",
		j.Name, j.Workers, len(clientDurs), j.Requests, cr.Client.P50MS, cr.Server.P50MS, cr.Consistent)

	report.Cluster = append(report.Cluster, cr)
	return nil
}

// clientSummary renders observed durations as nearest-rank percentiles in
// milliseconds.
func clientSummary(durs []time.Duration) benchio.LatencySummary {
	if len(durs) == 0 {
		return benchio.LatencySummary{}
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pick := func(q float64) float64 {
		idx := int(q*float64(len(sorted))+0.999999) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx].Nanoseconds()) / 1e6
	}
	return benchio.LatencySummary{
		Count: uint64(len(sorted)),
		P50MS: pick(0.50),
		P90MS: pick(0.90),
		P99MS: pick(0.99),
		MaxMS: float64(sorted[len(sorted)-1].Nanoseconds()) / 1e6,
	}
}
