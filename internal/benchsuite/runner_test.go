package benchsuite

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/benchio"
)

// TestRunSuiteExperiments covers the experiments kind end to end: a
// wall-only workload (table1 runs no simulations) and a measured one
// (fig4 simulates), with profilers attached to the measured job.
func TestRunSuiteExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s, err := ParseSuite([]byte(`
[suite]
name = "runner-test"
ops = 4000

[[job]]
name = "wallonly"
kind = "experiments"
workloads = ["table1"]

[[job]]
name = "measured"
kind = "experiments"
workloads = ["fig4"]
profilers = ["heap"]
`))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	rep, err := RunSuite(s, RunOptions{ProfileDir: dir, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != benchio.SchemaVersion || rep.Suite != "runner-test" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Tolerance == nil || rep.Tolerance.SimsPerSecDropPct != benchio.DefaultTolerance.SimsPerSecDropPct {
		t.Fatalf("tolerance: %+v", rep.Tolerance)
	}
	if len(rep.Experiments) != 2 {
		t.Fatalf("experiments: %+v", rep.Experiments)
	}
	wall := rep.Experiments[0]
	if wall.ID != "table1" || wall.Job != "wallonly" || wall.Measured() {
		t.Fatalf("wall-only run: %+v", wall)
	}
	if wall.Sims != nil || wall.SimsPerSec != nil {
		t.Fatalf("wall-only run carries rates: %+v", wall)
	}
	meas := rep.Experiments[1]
	if meas.ID != "fig4" || !meas.Measured() {
		t.Fatalf("measured run: %+v", meas)
	}
	if len(meas.Profiles) != 1 || meas.Profiles[0].Kind != ProfileHeap {
		t.Fatalf("profiles: %+v", meas.Profiles)
	}
	p := meas.Profiles[0]
	if p.TotalAllocBytes <= 0 || len(p.AllocSites) == 0 {
		t.Fatalf("heap summary: %+v", p)
	}
	if filepath.Base(p.Artifact) != "measured-fig4.heap.pb.gz" {
		t.Fatalf("artifact: %q", p.Artifact)
	}
	if _, err := os.Stat(p.Artifact); err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" {
		if rep.PeakRSSKB == nil || *rep.PeakRSSKB == 0 {
			t.Fatalf("peak rss: %+v", rep.PeakRSSKB)
		}
	} else if rep.PeakRSSKB != nil || !hasNote(rep.Notes, benchio.NoteRSSUnsupported) {
		t.Fatalf("off-linux rss: %+v notes %v", rep.PeakRSSKB, rep.Notes)
	}
}

// TestRunSuiteCluster exercises the cluster kind: a one-worker cdpd
// cluster, concurrent submits, and the client/server reconciliation.
func TestRunSuiteCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("brings up a cluster")
	}
	s, err := ParseSuite([]byte(`
[suite]
name = "cluster-test"

[[job]]
name = "storm"
kind = "cluster"
ops = 2000
workers = 1
requests = 4
concurrency = 2
`))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunSuite(s, RunOptions{ProfileDir: t.TempDir(), Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cluster) != 1 {
		t.Fatalf("cluster runs: %+v", rep.Cluster)
	}
	cr := rep.Cluster[0]
	if cr.Job != "storm" || cr.Workers != 1 || cr.Requests != 4 {
		t.Fatalf("cluster shape: %+v", cr)
	}
	if cr.Errors != 0 {
		t.Fatalf("errors: %+v", cr)
	}
	if !cr.Consistent {
		t.Fatalf("inconsistent cluster run: %+v", cr)
	}
	if cr.Client.Count != 4 || cr.Server.Count != 4 {
		t.Fatalf("counts: client %d server %d (%+v)", cr.Client.Count, cr.Server.Count, cr)
	}
	if cr.Client.P50MS <= 0 || cr.Server.P50MS <= 0 {
		t.Fatalf("percentiles: %+v", cr)
	}
	if cr.Client.P90MS < cr.Client.P50MS || cr.Server.P99MS < cr.Server.P50MS {
		t.Fatalf("percentile ordering: %+v", cr)
	}
}

func TestRunSuiteRejectsFailingJobName(t *testing.T) {
	s := &Suite{Name: "x", Jobs: []Job{{Name: "bad", Kind: KindExperiments, Workloads: []string{"nope"}}}}
	_, err := RunSuite(s, RunOptions{ProfileDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), `job "bad"`) {
		t.Fatalf("err = %v", err)
	}
}

func hasNote(notes []string, want string) bool {
	for _, n := range notes {
		if n == want {
			return true
		}
	}
	return false
}
