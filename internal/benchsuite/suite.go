// Package benchsuite turns the repository's performance trajectory into a
// declared, self-certifying observability surface. A suite file (a TOML
// subset, see toml.go) names jobs — experiment-matrix runs, the hot-path
// micro-benchmark, and in-process cdpd cluster scenarios — together with
// op budgets, repetitions, the profilers to attach per run (pprof CPU,
// heap, runtime/trace), and the regression tolerances `bench -verdict`
// gates with. Running a suite yields one schema-v2 benchio.Report:
// wall/sims-per-sec/MemStats/VmHWM telemetry plus per-run profile
// summaries and artifact paths, comparable against the previous BENCH
// file in the trajectory.
//
// The vocabulary follows felixge/go-observability-bench: a workload is a
// small measured function (here: one registered experiment, the hot-path
// benchmark, or one cluster request storm), a job is a named set of runs
// with the profilers to enable, and a suite is the set of jobs one bench
// invocation executes.
package benchsuite

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/benchio"
	"repro/internal/experiments"
)

// Job kinds.
const (
	KindExperiments = "experiments" // registered experiment matrix runs
	KindHotPath     = "hotpath"     // the end-to-end simulator micro-benchmark
	KindCluster     = "cluster"     // in-process coordinator+workers latency storm
)

// Profiler kinds attachable per run.
const (
	ProfileCPU   = "cpu"   // pprof CPU profile
	ProfileHeap  = "heap"  // pprof heap profile (alloc_space summarized)
	ProfileTrace = "trace" // runtime/trace capture
)

// Suite is one parsed suite file.
type Suite struct {
	// Name tags the report ("default", "quick", "nightly").
	Name string
	// Ops is the per-benchmark µop budget jobs inherit (0 = 60000).
	Ops int
	// Repeat is how many times each job's runs execute (0 = 1). Every
	// repetition lands in the report, tagged with its 1-based index.
	Repeat int
	// Representatives restricts multi-config sweeps to one benchmark per
	// suite, the same knob cmd/bench always ran with (default true).
	Representatives bool
	// Tolerance is the regression budget recorded into the report and
	// used by the verdict.
	Tolerance benchio.Tolerance
	Jobs      []Job
}

// Job is one named set of runs.
type Job struct {
	Name string
	Kind string
	// Profilers to attach to every run of this job (cpu, heap, trace).
	Profilers []string
	// Ops and Repeat override the suite defaults when positive.
	Ops    int
	Repeat int

	// KindExperiments: the registered experiment ids to run; empty means
	// all registered.
	Workloads []string

	// KindCluster: cluster shape and load.
	Workers     int      // worker processes (default 2)
	Requests    int      // distinct sim requests to drive (default 4)
	Concurrency int      // concurrent submitting clients (default 2)
	Benchmarks  []string // workload benchmarks to draw requests from (default ["b2c"])
}

func (j *Job) ops(s *Suite) int {
	if j.Ops > 0 {
		return j.Ops
	}
	if s.Ops > 0 {
		return s.Ops
	}
	return 60_000
}

func (j *Job) repeat(s *Suite) int {
	if j.Repeat > 0 {
		return j.Repeat
	}
	if s.Repeat > 0 {
		return s.Repeat
	}
	return 1
}

// LoadSuite reads and parses one suite file.
func LoadSuite(path string) (*Suite, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := ParseSuite(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return s, nil
}

// ParseSuite parses and validates suite TOML.
func ParseSuite(data []byte) (*Suite, error) {
	doc, err := parseTOML(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{}
	s := &Suite{Representatives: true, Tolerance: benchio.DefaultTolerance}

	st := d.table(doc, "suite")
	if st == nil {
		return nil, fmt.Errorf("missing [suite] table")
	}
	s.Name = d.str(st, "suite", "name", "")
	s.Ops = int(d.num(st, "suite", "ops", 0))
	s.Repeat = int(d.num(st, "suite", "repeat", 0))
	s.Representatives = d.boolean(st, "suite", "representatives", true)
	if tt := d.table(st, "tolerance"); tt != nil {
		s.Tolerance.SimsPerSecDropPct = d.num(tt, "suite.tolerance", "sims_per_sec_drop_pct", s.Tolerance.SimsPerSecDropPct)
		s.Tolerance.HotpathAllocGrowthPct = d.num(tt, "suite.tolerance", "hotpath_alloc_growth_pct", s.Tolerance.HotpathAllocGrowthPct)
		s.Tolerance.NsPerOpGrowthPct = d.num(tt, "suite.tolerance", "ns_per_op_growth_pct", s.Tolerance.NsPerOpGrowthPct)
		d.checkKnown(tt, "suite.tolerance",
			"sims_per_sec_drop_pct", "hotpath_alloc_growth_pct", "ns_per_op_growth_pct")
	}
	d.checkKnown(st, "suite", "name", "ops", "repeat", "representatives", "tolerance")

	jobs, _ := doc["job"].([]map[string]any)
	for i, jt := range jobs {
		where := fmt.Sprintf("job[%d]", i)
		j := Job{
			Name:        d.str(jt, where, "name", ""),
			Kind:        d.str(jt, where, "kind", KindExperiments),
			Profilers:   d.strs(jt, where, "profilers"),
			Ops:         int(d.num(jt, where, "ops", 0)),
			Repeat:      int(d.num(jt, where, "repeat", 0)),
			Workloads:   d.strs(jt, where, "workloads"),
			Workers:     int(d.num(jt, where, "workers", 0)),
			Requests:    int(d.num(jt, where, "requests", 0)),
			Concurrency: int(d.num(jt, where, "concurrency", 0)),
			Benchmarks:  d.strs(jt, where, "benchmarks"),
		}
		d.checkKnown(jt, where, "name", "kind", "profilers", "ops", "repeat",
			"workloads", "workers", "requests", "concurrency", "benchmarks")
		s.Jobs = append(s.Jobs, j)
	}
	d.checkKnown(doc, "", "suite", "job")

	if len(d.errs) > 0 {
		return nil, fmt.Errorf("%s", strings.Join(d.errs, "; "))
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// validate applies the cross-field rules a decoder can't.
func (s *Suite) validate() error {
	if s.Name == "" {
		return fmt.Errorf("suite.name is required")
	}
	if len(s.Jobs) == 0 {
		return fmt.Errorf("suite %q declares no [[job]]", s.Name)
	}
	seen := map[string]bool{}
	for i := range s.Jobs {
		j := &s.Jobs[i]
		if j.Name == "" {
			return fmt.Errorf("job[%d]: name is required", i)
		}
		if seen[j.Name] {
			return fmt.Errorf("duplicate job name %q", j.Name)
		}
		seen[j.Name] = true
		for _, p := range j.Profilers {
			switch p {
			case ProfileCPU, ProfileHeap, ProfileTrace:
			default:
				return fmt.Errorf("job %q: unknown profiler %q (valid: cpu, heap, trace)", j.Name, p)
			}
		}
		switch j.Kind {
		case KindExperiments:
			for _, id := range j.Workloads {
				if _, err := experiments.Get(id); err != nil {
					return fmt.Errorf("job %q: %w", j.Name, err)
				}
			}
		case KindHotPath:
			if len(j.Workloads) > 0 || j.Workers > 0 || j.Requests > 0 {
				return fmt.Errorf("job %q: hotpath jobs take no workloads or cluster shape", j.Name)
			}
		case KindCluster:
			if j.Workers == 0 {
				j.Workers = 2
			}
			if j.Requests == 0 {
				j.Requests = 4
			}
			if j.Concurrency == 0 {
				j.Concurrency = 2
			}
			if len(j.Benchmarks) == 0 {
				j.Benchmarks = []string{"b2c"}
			}
			if j.Workers < 1 || j.Workers > 8 {
				return fmt.Errorf("job %q: workers must be in [1,8], got %d", j.Name, j.Workers)
			}
			if j.Concurrency > j.Requests {
				j.Concurrency = j.Requests
			}
			if len(j.Profilers) > 0 {
				// The interesting profile of a cluster job is the workers'
				// own pprof endpoints; a whole-process profile of the bench
				// binary would mix client and N servers into one stream.
				return fmt.Errorf("job %q: cluster jobs take no profilers", j.Name)
			}
		default:
			return fmt.Errorf("job %q: unknown kind %q (valid: %s, %s, %s)",
				j.Name, j.Kind, KindExperiments, KindHotPath, KindCluster)
		}
	}
	return nil
}

// decoder accumulates type errors while pulling fields out of the generic
// TOML document, so a malformed suite reports every problem at once.
type decoder struct{ errs []string }

func (d *decoder) errf(format string, args ...any) {
	d.errs = append(d.errs, fmt.Sprintf(format, args...))
}

func (d *decoder) table(m map[string]any, key string) map[string]any {
	switch v := m[key].(type) {
	case nil:
		return nil
	case map[string]any:
		return v
	default:
		d.errf("%s: expected a table, got %T", key, v)
		return nil
	}
}

func (d *decoder) str(m map[string]any, where, key, def string) string {
	switch v := m[key].(type) {
	case nil:
		return def
	case string:
		return v
	default:
		d.errf("%s.%s: expected a string, got %T", where, key, v)
		return def
	}
}

func (d *decoder) num(m map[string]any, where, key string, def float64) float64 {
	switch v := m[key].(type) {
	case nil:
		return def
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		d.errf("%s.%s: expected a number, got %T", where, key, v)
		return def
	}
}

func (d *decoder) boolean(m map[string]any, where, key string, def bool) bool {
	switch v := m[key].(type) {
	case nil:
		return def
	case bool:
		return v
	default:
		d.errf("%s.%s: expected a boolean, got %T", where, key, v)
		return def
	}
}

func (d *decoder) strs(m map[string]any, where, key string) []string {
	switch v := m[key].(type) {
	case nil:
		return nil
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			s, ok := e.(string)
			if !ok {
				d.errf("%s.%s: expected strings, got %T", where, key, e)
				return nil
			}
			out = append(out, s)
		}
		return out
	default:
		d.errf("%s.%s: expected an array of strings, got %T", where, key, v)
		return nil
	}
}

// checkKnown flags keys the schema does not define — a typo'd key silently
// defaulting is how a "profilers = [...]" that never attaches slips into a
// nightly.
func (d *decoder) checkKnown(m map[string]any, where string, known ...string) {
	var unknown []string
	for k := range m {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
				break
			}
		}
		if !found {
			unknown = append(unknown, k)
		}
	}
	sort.Strings(unknown)
	for _, k := range unknown {
		if where == "" {
			d.errf("unknown top-level key %q", k)
		} else {
			d.errf("%s: unknown key %q", where, k)
		}
	}
}
