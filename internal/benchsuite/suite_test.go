package benchsuite

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleSuite = `
[suite]
name = "test"
ops = 50000
repeat = 2

[suite.tolerance]
sims_per_sec_drop_pct = 12.5
hotpath_alloc_growth_pct = 0.0

[[job]]
name = "matrix"
kind = "experiments"
workloads = ["table1", "fig1"]

[[job]]
name = "profiled"
kind = "experiments"
workloads = ["limit"]
profilers = ["cpu", "heap", "trace"]
repeat = 1

[[job]]
name = "hot"
kind = "hotpath"
ops = 150000

[[job]]
name = "cluster"
kind = "cluster"
workers = 2
requests = 6
benchmarks = ["b2c"]
`

func TestParseSuite(t *testing.T) {
	s, err := ParseSuite([]byte(sampleSuite))
	if err != nil {
		t.Fatalf("ParseSuite: %v", err)
	}
	if s.Name != "test" || s.Ops != 50000 || s.Repeat != 2 || !s.Representatives {
		t.Fatalf("suite header: %+v", s)
	}
	if s.Tolerance.SimsPerSecDropPct != 12.5 || s.Tolerance.HotpathAllocGrowthPct != 0 {
		t.Fatalf("tolerance: %+v", s.Tolerance)
	}
	// Unset tolerance fields keep their defaults.
	if s.Tolerance.NsPerOpGrowthPct != 25 {
		t.Fatalf("ns/op tolerance default: %+v", s.Tolerance)
	}
	if len(s.Jobs) != 4 {
		t.Fatalf("jobs: %+v", s.Jobs)
	}
	m := s.Jobs[0]
	if m.Kind != KindExperiments || len(m.Workloads) != 2 || m.ops(s) != 50000 || m.repeat(s) != 2 {
		t.Fatalf("matrix job: %+v", m)
	}
	p := s.Jobs[1]
	if len(p.Profilers) != 3 || p.repeat(s) != 1 {
		t.Fatalf("profiled job: %+v", p)
	}
	h := s.Jobs[2]
	if h.Kind != KindHotPath || h.ops(s) != 150000 {
		t.Fatalf("hotpath job: %+v", h)
	}
	c := s.Jobs[3]
	if c.Kind != KindCluster || c.Workers != 2 || c.Requests != 6 || c.Concurrency != 2 {
		t.Fatalf("cluster job defaults: %+v", c)
	}
}

func TestParseSuiteClusterDefaults(t *testing.T) {
	s, err := ParseSuite([]byte(`
[suite]
name = "c"
[[job]]
name = "cl"
kind = "cluster"
`))
	if err != nil {
		t.Fatal(err)
	}
	c := s.Jobs[0]
	if c.Workers != 2 || c.Requests != 4 || c.Concurrency != 2 || len(c.Benchmarks) != 1 || c.Benchmarks[0] != "b2c" {
		t.Fatalf("cluster defaults: %+v", c)
	}
}

func TestParseSuiteErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"no suite table", `[[job]]` + "\n" + `name = "x"`, "missing [suite]"},
		{"no name", "[suite]\nops = 1\n[[job]]\nname = \"x\"\nkind = \"hotpath\"", "suite.name is required"},
		{"no jobs", "[suite]\nname = \"x\"", "declares no [[job]]"},
		{"dup job", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nkind = \"hotpath\"\n[[job]]\nname = \"a\"\nkind = \"hotpath\"", "duplicate job name"},
		{"bad kind", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nkind = \"quake3\"", "unknown kind"},
		{"bad profiler", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nkind = \"hotpath\"\nprofilers = [\"flamegraph\"]", "unknown profiler"},
		{"bad workload", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nworkloads = [\"quake3\"]", "unknown id"},
		{"typo'd key", "[suite]\nname = \"x\"\nrepitions = 3\n[[job]]\nname = \"a\"\nkind = \"hotpath\"", `unknown key "repitions"`},
		{"typo'd job key", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nkind = \"hotpath\"\nprofiler = [\"cpu\"]", `unknown key "profiler"`},
		{"cluster profilers", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nkind = \"cluster\"\nprofilers = [\"cpu\"]", "cluster jobs take no profilers"},
		{"hotpath workloads", "[suite]\nname = \"x\"\n[[job]]\nname = \"a\"\nkind = \"hotpath\"\nworkloads = [\"fig1\"]", "hotpath jobs take no workloads"},
		{"wrong type", "[suite]\nname = 7\n[[job]]\nname = \"a\"\nkind = \"hotpath\"", "expected a string"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSuite([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestShippedSuitesParse loads the suite files the repo actually ships —
// CI and the nightly workflow reference them by path, so a typo'd key or
// an unregistered workload must fail here, not at 3am.
func TestShippedSuitesParse(t *testing.T) {
	dir := filepath.Join("..", "..", "suites")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".toml") {
			continue
		}
		n++
		s, err := LoadSuite(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Errorf("%s: %v", e.Name(), err)
			continue
		}
		var hotpaths int
		for i := range s.Jobs {
			j := &s.Jobs[i]
			if j.Kind != KindHotPath {
				continue
			}
			hotpaths++
			// The allocation ratchet compares allocs/op across reports;
			// that only means anything if every suite measures the
			// identical workload.
			if got := j.ops(s); got != 150_000 {
				t.Errorf("%s job %q: hotpath ops = %d, want 150000 (allocs/op comparability)",
					e.Name(), j.Name, got)
			}
			if i != 0 {
				t.Errorf("%s: hotpath job %q is not first (must run on a quiet heap)",
					e.Name(), j.Name)
			}
		}
		if hotpaths != 1 {
			t.Errorf("%s: %d hotpath jobs, want exactly 1", e.Name(), hotpaths)
		}
	}
	if n != 3 {
		t.Errorf("found %d suite files, want 3 (default, quick, nightly)", n)
	}
}
