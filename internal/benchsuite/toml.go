package benchsuite

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// This file is a parser for the TOML subset suite files use, in keeping
// with the repo's zero-dependency stance (the exemplar, golang/benchmarks'
// bent, declares its suites in TOML too). Supported grammar:
//
//	# comment
//	key = value                  # bare keys: letters, digits, '_', '-'
//	[table]                      # dotted names allowed: [suite.tolerance]
//	[[array-of-table]]           # appends one table to the named array
//
// Values: basic strings "..." (with \" \\ \n \t \r escapes), integers,
// floats, booleans, and single- or multi-line arrays of those. What TOML
// allows beyond this — literal strings, datetimes, inline tables, dotted
// keys — is rejected with a line-numbered error rather than misparsed.

// tomlDoc is the generic parse result: scalar values, []any arrays, nested
// map[string]any tables, and []map[string]any arrays of tables.
type tomlDoc = map[string]any

// parseTOML parses the subset described above.
func parseTOML(data []byte) (tomlDoc, error) {
	root := tomlDoc{}
	cur := root // table new keys land in

	lines := strings.Split(string(data), "\n")
	for i := 0; i < len(lines); i++ {
		ln := i + 1
		line := stripComment(lines[i])
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}

		// [[array.of.tables]]
		if strings.HasPrefix(trimmed, "[[") {
			if !strings.HasSuffix(trimmed, "]]") {
				return nil, fmt.Errorf("line %d: unterminated table-array header %q", ln, trimmed)
			}
			name := strings.TrimSpace(trimmed[2 : len(trimmed)-2])
			parent, last, err := walkTables(root, name, ln)
			if err != nil {
				return nil, err
			}
			arr, _ := parent[last].([]map[string]any)
			if parent[last] != nil && arr == nil {
				return nil, fmt.Errorf("line %d: %q is not an array of tables", ln, name)
			}
			t := map[string]any{}
			parent[last] = append(arr, t)
			cur = t
			continue
		}

		// [table]
		if strings.HasPrefix(trimmed, "[") {
			if !strings.HasSuffix(trimmed, "]") {
				return nil, fmt.Errorf("line %d: unterminated table header %q", ln, trimmed)
			}
			name := strings.TrimSpace(trimmed[1 : len(trimmed)-1])
			parent, last, err := walkTables(root, name, ln)
			if err != nil {
				return nil, err
			}
			t, ok := parent[last].(map[string]any)
			if parent[last] != nil && !ok {
				return nil, fmt.Errorf("line %d: %q already holds a value", ln, name)
			}
			if t == nil {
				t = map[string]any{}
				parent[last] = t
			}
			cur = t
			continue
		}

		// key = value
		key, raw, ok := strings.Cut(trimmed, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: expected `key = value`, got %q", ln, trimmed)
		}
		key = strings.TrimSpace(key)
		if !validBareKey(key) {
			return nil, fmt.Errorf("line %d: invalid key %q (bare keys only)", ln, key)
		}
		raw = strings.TrimSpace(raw)
		// Multi-line array: keep appending lines until brackets balance
		// outside strings.
		for strings.HasPrefix(raw, "[") && !bracketsBalanced(raw) {
			i++
			if i >= len(lines) {
				return nil, fmt.Errorf("line %d: unterminated array for key %q", ln, key)
			}
			raw += " " + strings.TrimSpace(stripComment(lines[i]))
		}
		v, err := parseValue(raw, ln)
		if err != nil {
			return nil, err
		}
		if _, dup := cur[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", ln, key)
		}
		cur[key] = v
	}
	return root, nil
}

// walkTables resolves all but the last segment of a dotted table name,
// creating intermediate tables, and returns the parent map plus the final
// segment.
func walkTables(root tomlDoc, name string, ln int) (map[string]any, string, error) {
	if name == "" {
		return nil, "", fmt.Errorf("line %d: empty table name", ln)
	}
	segs := strings.Split(name, ".")
	parent := root
	for _, s := range segs[:len(segs)-1] {
		s = strings.TrimSpace(s)
		if !validBareKey(s) {
			return nil, "", fmt.Errorf("line %d: invalid table name segment %q", ln, s)
		}
		next, ok := parent[s].(map[string]any)
		if parent[s] != nil && !ok {
			// Descending into the latest element of an array of tables
			// ([[job]] then [job.tolerance]) is valid TOML but not part of
			// this subset; suites have no use for it.
			return nil, "", fmt.Errorf("line %d: %q is not a table", ln, s)
		}
		if next == nil {
			next = map[string]any{}
			parent[s] = next
		}
		parent = next
	}
	last := strings.TrimSpace(segs[len(segs)-1])
	if !validBareKey(last) {
		return nil, "", fmt.Errorf("line %d: invalid table name segment %q", ln, last)
	}
	return parent, last, nil
}

func validBareKey(k string) bool {
	if k == "" {
		return false
	}
	for _, r := range k {
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
			return false
		}
	}
	return true
}

// stripComment removes a trailing # comment, respecting strings.
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case '#':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

// bracketsBalanced reports whether every '[' outside a string has its ']'.
func bracketsBalanced(s string) bool {
	depth, inStr := 0, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inStr {
				i++
			}
		case '"':
			inStr = !inStr
		case '[':
			if !inStr {
				depth++
			}
		case ']':
			if !inStr {
				depth--
			}
		}
	}
	return depth == 0
}

// parseValue parses one scalar or array value.
func parseValue(raw string, ln int) (any, error) {
	raw = strings.TrimSpace(raw)
	switch {
	case raw == "":
		return nil, fmt.Errorf("line %d: missing value", ln)
	case raw == "true":
		return true, nil
	case raw == "false":
		return false, nil
	case raw[0] == '"':
		s, rest, err := parseString(raw)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", ln, err)
		}
		if strings.TrimSpace(rest) != "" {
			return nil, fmt.Errorf("line %d: trailing data %q after string", ln, rest)
		}
		return s, nil
	case raw[0] == '[':
		return parseArray(raw, ln)
	case raw[0] == '\'':
		return nil, fmt.Errorf("line %d: literal strings are outside the suite TOML subset; use \"...\"", ln)
	default:
		// Numbers. TOML allows underscores as digit separators.
		clean := strings.ReplaceAll(raw, "_", "")
		if n, err := strconv.ParseInt(clean, 10, 64); err == nil {
			return n, nil
		}
		if f, err := strconv.ParseFloat(clean, 64); err == nil {
			return f, nil
		}
		return nil, fmt.Errorf("line %d: cannot parse value %q", ln, raw)
	}
}

// parseString consumes a leading basic string and returns it with the
// remainder of the input.
func parseString(raw string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(raw); i++ {
		switch raw[i] {
		case '"':
			return b.String(), raw[i+1:], nil
		case '\\':
			i++
			if i >= len(raw) {
				return "", "", fmt.Errorf("unterminated escape in %q", raw)
			}
			switch raw[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			default:
				return "", "", fmt.Errorf("unsupported escape \\%c", raw[i])
			}
		default:
			b.WriteByte(raw[i])
		}
	}
	return "", "", fmt.Errorf("unterminated string %q", raw)
}

// parseArray parses a (possibly already line-joined) array of scalars.
func parseArray(raw string, ln int) ([]any, error) {
	if !strings.HasSuffix(strings.TrimSpace(raw), "]") {
		return nil, fmt.Errorf("line %d: unterminated array %q", ln, raw)
	}
	inner := strings.TrimSpace(raw)
	inner = strings.TrimSpace(inner[1 : len(inner)-1])
	out := []any{}
	for inner != "" {
		var (
			elem any
			rest string
			err  error
		)
		switch inner[0] {
		case '"':
			var s string
			s, rest, err = parseString(inner)
			elem = s
		case '[':
			return nil, fmt.Errorf("line %d: nested arrays are outside the suite TOML subset", ln)
		default:
			tok := inner
			if j := strings.IndexByte(inner, ','); j >= 0 {
				tok, rest = inner[:j], inner[j:]
			} else {
				rest = ""
			}
			elem, err = parseValue(strings.TrimSpace(tok), ln)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, elem)
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] != ',' {
			return nil, fmt.Errorf("line %d: expected ',' between array elements, got %q", ln, rest)
		}
		inner = strings.TrimSpace(rest[1:])
	}
	return out, nil
}
