package benchsuite

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseTOMLScalarsAndTables(t *testing.T) {
	doc, err := parseTOML([]byte(`
# top comment
title = "hello \"world\"" # trailing comment
count = 1_000
ratio = 2.5
neg = -3
on = true
off = false

[outer.inner]
key = "v"

[[item]]
name = "a"
tags = ["x", "y"]

[[item]]
name = "b"
nums = [1, 2, 3]
`))
	if err != nil {
		t.Fatalf("parseTOML: %v", err)
	}
	if doc["title"] != `hello "world"` {
		t.Fatalf("title = %q", doc["title"])
	}
	if doc["count"] != int64(1000) || doc["ratio"] != 2.5 || doc["neg"] != int64(-3) {
		t.Fatalf("numbers = %v %v %v", doc["count"], doc["ratio"], doc["neg"])
	}
	if doc["on"] != true || doc["off"] != false {
		t.Fatalf("booleans = %v %v", doc["on"], doc["off"])
	}
	inner := doc["outer"].(map[string]any)["inner"].(map[string]any)
	if inner["key"] != "v" {
		t.Fatalf("dotted table: %v", inner)
	}
	items := doc["item"].([]map[string]any)
	if len(items) != 2 || items[0]["name"] != "a" || items[1]["name"] != "b" {
		t.Fatalf("array of tables: %v", items)
	}
	if !reflect.DeepEqual(items[0]["tags"], []any{"x", "y"}) {
		t.Fatalf("string array: %v", items[0]["tags"])
	}
	if !reflect.DeepEqual(items[1]["nums"], []any{int64(1), int64(2), int64(3)}) {
		t.Fatalf("int array: %v", items[1]["nums"])
	}
}

func TestParseTOMLMultilineArray(t *testing.T) {
	doc, err := parseTOML([]byte(`
[suite]
workloads = [
  "table1", # the config table
  "fig1",
  "fig9",
]
`))
	if err != nil {
		t.Fatalf("parseTOML: %v", err)
	}
	got := doc["suite"].(map[string]any)["workloads"]
	if !reflect.DeepEqual(got, []any{"table1", "fig1", "fig9"}) {
		t.Fatalf("multiline array = %v", got)
	}
}

func TestParseTOMLErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"bare junk", "not a kv", "expected `key = value`"},
		{"bad value", "k = nope", "cannot parse value"},
		{"dup key", "k = 1\nk = 2", "duplicate key"},
		{"unterminated string", `k = "abc`, "unterminated string"},
		{"unterminated array", "k = [1, 2", "unterminated array"},
		{"literal string", "k = 'abc'", "outside the suite TOML subset"},
		{"nested array", `k = [[1], [2]]`, "nested arrays"},
		{"table over value", "k = 1\n[k]\nx = 2", "already holds a value"},
		{"array over table", "[k]\nx = 1\n[[k]]\ny = 2", "not an array of tables"},
		{"bad key", "a b = 1", "invalid key"},
		{"unterminated header", "[table\nk = 1", "unterminated table header"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseTOML([]byte(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			// Every parse error names a line.
			if err != nil && !strings.Contains(err.Error(), "line ") {
				t.Fatalf("error carries no line number: %v", err)
			}
		})
	}
}

func TestParseTOMLCommentInsideString(t *testing.T) {
	doc, err := parseTOML([]byte(`k = "a # not a comment"`))
	if err != nil {
		t.Fatal(err)
	}
	if doc["k"] != "a # not a comment" {
		t.Fatalf("k = %q", doc["k"])
	}
}
