package benchsuite

import (
	"fmt"
	"strings"

	"repro/internal/benchio"
)

// Verdict is the outcome of comparing a fresh BENCH report against the
// previous one in the trajectory. Failures are tolerance breaches; Skipped
// records every gate that could not be applied and why, so a verdict that
// passed because nothing was comparable is visibly different from one that
// passed on the merits.
type Verdict struct {
	Pass     bool
	Failures []string
	Skipped  []string
	Infos    []string
}

func (v *Verdict) failf(format string, args ...any) {
	v.Failures = append(v.Failures, fmt.Sprintf(format, args...))
}

func (v *Verdict) skipf(format string, args ...any) {
	v.Skipped = append(v.Skipped, fmt.Sprintf(format, args...))
}

func (v *Verdict) infof(format string, args ...any) {
	v.Infos = append(v.Infos, fmt.Sprintf(format, args...))
}

// Render formats the verdict for terminal and CI logs, one line per
// finding, ending with the PASS/FAIL summary line.
func (v *Verdict) Render() string {
	var b strings.Builder
	for _, f := range v.Failures {
		fmt.Fprintf(&b, "FAIL  %s\n", f)
	}
	for _, s := range v.Skipped {
		fmt.Fprintf(&b, "skip  %s\n", s)
	}
	for _, i := range v.Infos {
		fmt.Fprintf(&b, "ok    %s\n", i)
	}
	if v.Pass {
		fmt.Fprintf(&b, "verdict: PASS (%d checks skipped)\n", len(v.Skipped))
	} else {
		fmt.Fprintf(&b, "verdict: FAIL (%d breaches, %d checks skipped)\n", len(v.Failures), len(v.Skipped))
	}
	return b.String()
}

// CompareReports gates current against baseline with the tolerances the
// current report was declared with (its suite's, or the defaults for
// reports that predate suites).
//
// Two classes of metric gate differently:
//
//   - Allocation counts (hot-path allocs/op) are deterministic — the same
//     tree allocates the same number of objects on any machine — so they
//     gate unconditionally.
//   - Wall-derived metrics (sims/sec, ns/op) only gate when the two
//     reports come from comparable environments (same toolchain, OS,
//     arch, core count); otherwise the drop is as likely a slower CI
//     machine as a slower tree, and the gate is skipped loudly.
//
// Cluster runs self-gate: a current report whose cluster reconciliation
// came back inconsistent fails regardless of the baseline.
func CompareReports(baseline, current *benchio.Report) *Verdict {
	v := &Verdict{}
	tol := benchio.DefaultTolerance
	if current.Tolerance != nil {
		tol = *current.Tolerance
	}
	env := benchio.EnvComparable(baseline, current)
	if !env {
		v.skipf("environments differ (%s/%s/%s/%dcpu vs %s/%s/%s/%dcpu): wall-derived gates disabled",
			baseline.GoVersion, baseline.GOOS, baseline.GOARCH, baseline.NumCPU,
			current.GoVersion, current.GOOS, current.GOARCH, current.NumCPU)
	}

	compareHotPath(v, baseline, current, tol, env)
	compareExperiments(v, baseline, current, tol, env)
	compareRSS(v, baseline, current)

	for _, cr := range current.Cluster {
		if cr.Consistent {
			v.infof("cluster %s: %d/%d requests, client p50 %.1fms vs server p50 %.1fms, reconciled",
				cr.Job, cr.Requests-cr.Errors, cr.Requests, cr.Client.P50MS, cr.Server.P50MS)
			continue
		}
		v.failf("cluster %s: client/server latency reconciliation failed: %s",
			cr.Job, strings.Join(cr.Notes, "; "))
	}

	v.Pass = len(v.Failures) == 0
	return v
}

func compareHotPath(v *Verdict, baseline, current *benchio.Report, tol benchio.Tolerance, env bool) {
	switch {
	case current.HotPath == nil:
		v.skipf("hot path: not measured in current report")
		return
	case baseline.HotPath == nil:
		v.skipf("hot path: baseline carries no measurement")
		return
	}
	b, c := baseline.HotPath.After, current.HotPath.After

	if b.AllocsPerOp == 0 {
		v.skipf("hot path allocs/op: baseline value missing")
	} else {
		growth := pctChange(float64(b.AllocsPerOp), float64(c.AllocsPerOp))
		// allocCountSlack absorbs testing.Benchmark's counting noise: the
		// mallocs delta spans the whole process during the timed window, so
		// a background allocation (GC worker, timer) amortized over b.N can
		// shift the truncated per-op count by ±1–2 even on an identical
		// tree. Real growth — one new allocation on the per-µop path —
		// moves the count by thousands and sails past this.
		const allocCountSlack = 2
		if growth > tol.HotpathAllocGrowthPct && c.AllocsPerOp > b.AllocsPerOp+allocCountSlack {
			v.failf("hot path allocs/op grew %.2f%% (%d -> %d, tolerance %.0f%% + %d count noise)",
				growth, b.AllocsPerOp, c.AllocsPerOp, tol.HotpathAllocGrowthPct, allocCountSlack)
		} else {
			v.infof("hot path allocs/op: %d -> %d (%+.2f%%)", b.AllocsPerOp, c.AllocsPerOp, growth)
		}
	}

	switch {
	case !env:
		v.skipf("hot path ns/op: environments differ")
	case b.NsPerOp == 0:
		v.skipf("hot path ns/op: baseline value missing")
	default:
		growth := pctChange(b.NsPerOp, c.NsPerOp)
		if growth > tol.NsPerOpGrowthPct {
			v.failf("hot path ns/op grew %.1f%% (%.1fms -> %.1fms, tolerance %.0f%%)",
				growth, b.NsPerOp/1e6, c.NsPerOp/1e6, tol.NsPerOpGrowthPct)
		} else {
			v.infof("hot path ns/op: %.1fms -> %.1fms (%+.1f%%)", b.NsPerOp/1e6, c.NsPerOp/1e6, growth)
		}
	}
}

func compareExperiments(v *Verdict, baseline, current *benchio.Report, tol benchio.Tolerance, env bool) {
	base := bestRates(baseline.Experiments)
	cur := bestRates(current.Experiments)
	// Walk current order so the verdict reads like the run did.
	seen := map[string]bool{}
	for _, e := range current.Experiments {
		if seen[e.ID] {
			continue
		}
		seen[e.ID] = true
		c, measured := cur[e.ID]
		if !measured {
			continue // wall-only: nothing to gate
		}
		b, ok := base[e.ID]
		if !ok {
			v.skipf("%s: baseline has no measured sims/sec", e.ID)
			continue
		}
		if !env {
			continue // covered by the one environment skip line
		}
		drop := pctChange(b, c) * -1
		if drop > tol.SimsPerSecDropPct {
			v.failf("%s sims/sec dropped %.1f%% (%.1f -> %.1f, tolerance %.0f%%)",
				e.ID, drop, b, c, tol.SimsPerSecDropPct)
		} else {
			v.infof("%s sims/sec: %.1f -> %.1f (%+.1f%%)", e.ID, b, c, -drop)
		}
	}
}

// bestRates indexes the best (highest) measured sims/sec per experiment
// id: with repetitions, the fastest rep is the least-noisy estimate of
// what the tree can do.
func bestRates(exps []benchio.Experiment) map[string]float64 {
	out := map[string]float64{}
	for i := range exps {
		e := &exps[i]
		if !e.Measured() {
			continue
		}
		if r := *e.SimsPerSec; r > out[e.ID] {
			out[e.ID] = r
		}
	}
	return out
}

// compareRSS is informational only: the resident-set high-water mark folds
// in every job the suite ran, so its trajectory is worth printing but too
// load-shaped to gate on.
func compareRSS(v *Verdict, baseline, current *benchio.Report) {
	switch {
	case current.PeakRSSKB == nil:
		v.skipf("peak RSS: unsupported on this platform (%s)", benchio.NoteRSSUnsupported)
	case baseline.PeakRSSKB == nil || *baseline.PeakRSSKB == 0:
		v.skipf("peak RSS: baseline value missing")
	default:
		v.infof("peak RSS: %d KiB -> %d KiB (%+.1f%%)",
			*baseline.PeakRSSKB, *current.PeakRSSKB,
			pctChange(float64(*baseline.PeakRSSKB), float64(*current.PeakRSSKB)))
	}
}

// pctChange is the signed percent change from base to cur (positive =
// grew).
func pctChange(base, cur float64) float64 {
	return (cur - base) / base * 100
}
