package benchsuite

import (
	"strings"
	"testing"

	"repro/internal/benchio"
)

func baseReport() *benchio.Report {
	return &benchio.Report{
		Schema: 1, GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 1,
		PeakRSSKB: benchio.U64(250_000),
		HotPath: &benchio.HotPath{
			After: benchio.Metrics{NsPerOp: 22e6, BytesPerOp: 1.6e6, AllocsPerOp: 16_497},
		},
		Experiments: []benchio.Experiment{
			{ID: "fig9", Sims: benchio.U64(900), SimsPerSec: benchio.F64(100)},
			{ID: "table1"}, // wall-only
		},
	}
}

func curReport(mutate func(*benchio.Report)) *benchio.Report {
	r := baseReport()
	r.Schema = benchio.SchemaVersion
	if mutate != nil {
		mutate(r)
	}
	return r
}

func TestVerdictPassesOnIdenticalReports(t *testing.T) {
	v := CompareReports(baseReport(), curReport(nil))
	if !v.Pass || len(v.Failures) != 0 {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestVerdictSimsPerSecBreach(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.Experiments[0].SimsPerSec = benchio.F64(85) // -15% > default 10%
	}))
	if v.Pass || len(v.Failures) != 1 || !strings.Contains(v.Failures[0], "fig9 sims/sec dropped 15.0%") {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestVerdictSimsPerSecWithinTolerance(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.Experiments[0].SimsPerSec = benchio.F64(95) // -5%
	}))
	if !v.Pass {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestVerdictAllocBreachGatesAcrossEnvs(t *testing.T) {
	// A different machine disables wall-derived gates, but allocation
	// counts are deterministic and still gate.
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.NumCPU = 8
		r.HotPath.After.AllocsPerOp = 16_500
		r.Experiments[0].SimsPerSec = benchio.F64(10) // would breach, but env differs
	}))
	if v.Pass {
		t.Fatalf("verdict passed: %+v", v)
	}
	if len(v.Failures) != 1 || !strings.Contains(v.Failures[0], "allocs/op grew") {
		t.Fatalf("failures: %+v", v.Failures)
	}
	found := false
	for _, s := range v.Skipped {
		if strings.Contains(s, "environments differ") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no environment skip: %+v", v.Skipped)
	}
}

func TestVerdictAllocCountNoiseSlack(t *testing.T) {
	// ±2 allocs/op is testing.Benchmark counting noise (a background
	// allocation amortized over b.N), not growth; the zero-tolerance
	// ratchet must not trip on it. +3 is past the slack and fails.
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.HotPath.After.AllocsPerOp = 16_499
	}))
	if !v.Pass {
		t.Fatalf("+2 allocs/op should be inside counting-noise slack: %+v", v.Failures)
	}
	v = CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.HotPath.After.AllocsPerOp = 16_500
	}))
	if v.Pass {
		t.Fatalf("+3 allocs/op should breach the zero-growth ratchet")
	}
}

func TestVerdictCustomTolerance(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.Tolerance = &benchio.Tolerance{SimsPerSecDropPct: 20, HotpathAllocGrowthPct: 1, NsPerOpGrowthPct: 25}
		r.Experiments[0].SimsPerSec = benchio.F64(85) // -15% < 20%
		r.HotPath.After.AllocsPerOp = 16_500          // +0.02% < 1%
	}))
	if !v.Pass {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestVerdictSkipsMissingBaselineExperiment(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.Experiments = append(r.Experiments, benchio.Experiment{
			ID: "tlb", Sims: benchio.U64(10), SimsPerSec: benchio.F64(5)})
	}))
	if !v.Pass {
		t.Fatalf("verdict: %+v", v)
	}
	found := false
	for _, s := range v.Skipped {
		if strings.Contains(s, "tlb: baseline has no measured sims/sec") {
			found = true
		}
	}
	if !found {
		t.Fatalf("skips: %+v", v.Skipped)
	}
}

func TestVerdictSkipsNullRSS(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.PeakRSSKB = nil
		r.Notes = []string{benchio.NoteRSSUnsupported}
	}))
	if !v.Pass {
		t.Fatalf("verdict: %+v", v)
	}
	found := false
	for _, s := range v.Skipped {
		if strings.Contains(s, benchio.NoteRSSUnsupported) {
			found = true
		}
	}
	if !found {
		t.Fatalf("skips: %+v", v.Skipped)
	}
}

func TestVerdictFailsInconsistentClusterRun(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		r.Cluster = []benchio.ClusterRun{{
			Job: "storm", Workers: 2, Requests: 4,
			Consistent: false, Notes: []string{"server ran 5 simulations for 4 successful requests"},
		}}
	}))
	if v.Pass || !strings.Contains(v.Failures[0], "reconciliation failed") {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestVerdictBestRepWins(t *testing.T) {
	v := CompareReports(baseReport(), curReport(func(r *benchio.Report) {
		// Rep 1 breaches, rep 2 is fine: the best rep is the estimate.
		r.Experiments[0] = benchio.Experiment{ID: "fig9", Rep: 1,
			Sims: benchio.U64(900), SimsPerSec: benchio.F64(70)}
		r.Experiments = append(r.Experiments, benchio.Experiment{ID: "fig9", Rep: 2,
			Sims: benchio.U64(900), SimsPerSec: benchio.F64(98)})
	}))
	if !v.Pass {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestVerdictRender(t *testing.T) {
	v := &Verdict{Failures: []string{"x dropped"}, Skipped: []string{"y missing"}, Infos: []string{"z ok"}}
	out := v.Render()
	for _, want := range []string{"FAIL  x dropped", "skip  y missing", "ok    z ok", "verdict: FAIL (1 breaches, 1 checks skipped)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	v = &Verdict{Pass: true}
	if !strings.Contains(v.Render(), "verdict: PASS") {
		t.Fatalf("render: %s", v.Render())
	}
}
