// Package bus models the memory-request path below the L2: the L2 request
// arbiter, the bus queue, and the front-side bus itself. Table 1's numbers
// are built in as defaults: a 460-processor-cycle round trip (8 bus cycles
// through the chipset plus 55 ns of DRAM at 4 GHz), 4.26 GB/s of bandwidth
// (one 64-byte line occupies the bus for ~60 cycles), a 32-entry bus queue
// and a 128-entry L2 queue.
//
// Arbiters keep the paper's strict priority order — demand requests first,
// stride prefetches over content prefetches (higher accuracy), shallower
// request depths over deeper ones — and implement its overflow rules: a
// full arbiter drops incoming prefetches, and an incoming demand request
// squashes the lowest-priority queued prefetch rather than stalling.
package bus

import "fmt"

// Class ranks request sources for arbitration.
type Class uint8

const (
	// ClassDemand is a demand fetch (highest priority). Page walks are
	// demand-class: a stalled translation blocks a demand access.
	ClassDemand Class = iota
	// ClassStride is a stride-prefetcher request, favoured over content
	// requests because of its higher accuracy.
	ClassStride
	// ClassContent is a content-directed prefetch.
	ClassContent
	// ClassMarkov is a Markov prefetch (same rank as content).
	ClassMarkov
)

// rank collapses classes to arbitration levels.
func (c Class) rank() int {
	switch c {
	case ClassDemand:
		return 0
	case ClassStride:
		return 1
	default:
		return 2
	}
}

// IsPrefetch reports whether the class is speculative.
func (c Class) IsPrefetch() bool { return c != ClassDemand }

func (c Class) String() string {
	switch c {
	case ClassDemand:
		return "demand"
	case ClassStride:
		return "stride"
	case ClassContent:
		return "content"
	case ClassMarkov:
		return "markov"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Request is one memory transaction below the L2.
type Request struct {
	ID       uint64
	PABase   uint32 // physical line base address
	VABase   uint32 // virtual line base (content scanning context)
	TrigVA   uint32 // effective VA of the triggering access (scan compare)
	Class    Class
	Depth    int  // request depth (0 = non-speculative)
	PageWalk bool // page-table fill: bypasses the content scanner
	IsStore  bool
	Injected bool // bad-prefetch injection (limit study): never scanned
	Overlap  bool // content prefetch also covered by the stride engine
	// Widened marks a next-/previous-line companion prefetch. Widened
	// fills are not scanned: chaining recurses only through the lines
	// candidate pointers actually name, which keeps the candidate tree
	// from exploding combinatorially (cf. the page-walk bypass).
	Widened bool
	// Chain is the content-prefetch chain this request belongs to (0 for
	// demand, stride and Markov traffic). Deeper prefetches triggered by
	// this request's fill inherit it, so a whole pointer chase shares one
	// ID — the lineage simtrace reconstructs.
	Chain uint64

	Enqueued int64 // cycle the request entered the memory system
	Granted  int64 // cycle the bus transfer began
	Arrive   int64 // cycle the fill returns

	// Waiters are completions to run when the fill arrives; the demand
	// promotion path appends here when a load catches an in-flight
	// prefetch (a "partial" mask in Figure 10's terms).
	Waiters []func(arrive int64)

	// DemandWaited marks that some demand access attached to this
	// request while it was in flight (partial timeliness accounting).
	DemandWaited bool
}

// Better reports whether r should be granted before o: lower class rank
// first, then shallower depth, then older.
func (r *Request) Better(o *Request) bool {
	if a, b := r.Class.rank(), o.Class.rank(); a != b {
		return a < b
	}
	if r.Depth != o.Depth {
		return r.Depth < o.Depth
	}
	return r.ID < o.ID
}

// Arbiter is a bounded priority queue of requests.
type Arbiter struct {
	name string
	cap  int
	q    []*Request
}

// NewArbiter builds an arbiter holding at most capacity requests.
func NewArbiter(name string, capacity int) *Arbiter {
	if capacity <= 0 {
		panic("bus: arbiter needs positive capacity")
	}
	return &Arbiter{name: name, cap: capacity, q: make([]*Request, 0, capacity)}
}

// Len returns the number of queued requests.
func (a *Arbiter) Len() int { return len(a.q) }

// Full reports whether the arbiter has no free slot.
func (a *Arbiter) Full() bool { return len(a.q) >= a.cap }

// Enqueue inserts r, or reports false when full. Per the paper a full
// arbiter simply drops prefetch requests — no retry buffering. Demand
// requests should use EnqueueDemand.
func (a *Arbiter) Enqueue(r *Request) bool {
	if a.Full() {
		return false
	}
	a.q = append(a.q, r)
	if debugInvariants {
		a.checkBounds()
	}
	return true
}

// EnqueueDemand inserts a demand-class request. If the arbiter is full, the
// lowest-priority queued prefetch is removed (squashed) to make room; the
// squashed request is returned so the caller can account for the drop. A
// demand request is never rejected unless the arbiter is full of demands,
// which the caller treats as back-pressure (ok = false).
func (a *Arbiter) EnqueueDemand(r *Request) (squashed *Request, ok bool) {
	if !a.Full() {
		a.q = append(a.q, r)
		if debugInvariants {
			a.checkBounds()
		}
		return nil, true
	}
	worst := -1
	for i, q := range a.q {
		if !q.Class.IsPrefetch() {
			continue
		}
		if worst == -1 || a.q[worst].Better(q) {
			worst = i
		}
	}
	if worst == -1 {
		return nil, false // all demands: stall
	}
	squashed = a.q[worst]
	a.q[worst] = r
	if debugInvariants {
		a.checkBounds()
	}
	return squashed, true
}

// PopBest removes and returns the highest-priority request, or nil when
// empty.
func (a *Arbiter) PopBest() *Request {
	if len(a.q) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(a.q); i++ {
		if a.q[i].Better(a.q[best]) {
			best = i
		}
	}
	r := a.q[best]
	a.q[best] = a.q[len(a.q)-1]
	a.q = a.q[:len(a.q)-1]
	if debugInvariants {
		a.checkBounds()
	}
	return r
}

// Requests returns the queued requests in insertion order. The slice is the
// arbiter's own backing store — callers (the simdebug invariant layer) must
// treat it as read-only.
func (a *Arbiter) Requests() []*Request { return a.q }

// Find returns the queued request for the given physical line base, or nil.
func (a *Arbiter) Find(paBase uint32) *Request {
	for _, r := range a.q {
		if r.PABase == paBase {
			return r
		}
	}
	return nil
}

func (a *Arbiter) String() string {
	return fmt.Sprintf("arbiter{%s %d/%d}", a.name, len(a.q), a.cap)
}

// Bus models front-side-bus timing: one transfer at a time, each occupying
// the bus for Occupancy cycles and returning its fill Latency cycles after
// the transfer begins.
type Bus struct {
	Latency   int64
	Occupancy int64
	freeAt    int64

	transfers uint64
	busyCycle uint64
}

// DefaultLatency is Table 1's 460-processor-cycle bus round trip.
const DefaultLatency = 460

// DefaultOccupancy is one 64-byte line at 4.26 GB/s on a 4 GHz core:
// 64 / 4.26e9 s ≈ 15 ns ≈ 60 cycles.
const DefaultOccupancy = 60

// NewBus returns a bus with the given timing; zero values select Table 1
// defaults.
func NewBus(latency, occupancy int64) *Bus {
	if latency == 0 {
		latency = DefaultLatency
	}
	if occupancy == 0 {
		occupancy = DefaultOccupancy
	}
	return &Bus{Latency: latency, Occupancy: occupancy}
}

// FreeAt returns the cycle at which the bus can begin its next transfer.
func (b *Bus) FreeAt() int64 { return b.freeAt }

// Idle reports whether the bus could start a transfer at cycle now.
func (b *Bus) Idle(now int64) bool { return now >= b.freeAt }

// Grant starts a transfer at or after cycle now and returns when the
// transfer begins and when the fill arrives.
func (b *Bus) Grant(now int64) (start, arrive int64) {
	start = now
	if b.freeAt > start {
		start = b.freeAt
	}
	b.freeAt = start + b.Occupancy
	b.transfers++
	b.busyCycle += uint64(b.Occupancy)
	return start, start + b.Latency
}

// Stats returns the number of transfers granted and total occupied cycles.
func (b *Bus) Stats() (transfers, busyCycles uint64) { return b.transfers, b.busyCycle }

// State is a checkpointable copy of the bus clock and lifetime counters.
// Arbiter queues are intentionally absent: checkpoints are taken at
// quiesce points, where both arbiters are empty.
type State struct {
	FreeAt     int64
	Transfers  uint64
	BusyCycles uint64
}

// State snapshots the bus.
func (b *Bus) State() State {
	return State{FreeAt: b.freeAt, Transfers: b.transfers, BusyCycles: b.busyCycle}
}

// Restore overwrites the bus clock and counters.
func (b *Bus) Restore(st State) {
	b.freeAt = st.FreeAt
	b.transfers = st.Transfers
	b.busyCycle = st.BusyCycles
}
