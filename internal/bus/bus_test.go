package bus

import (
	"testing"
	"testing/quick"
)

func req(id uint64, class Class, depth int) *Request {
	return &Request{ID: id, Class: class, Depth: depth, PABase: uint32(id) << 6}
}

func TestPriorityOrdering(t *testing.T) {
	a := NewArbiter("test", 16)
	a.Enqueue(req(1, ClassContent, 3))
	a.Enqueue(req(2, ClassStride, 1))
	a.Enqueue(req(3, ClassDemand, 0))
	a.Enqueue(req(4, ClassContent, 1))
	a.Enqueue(req(5, ClassMarkov, 1))

	order := []uint64{}
	for r := a.PopBest(); r != nil; r = a.PopBest() {
		order = append(order, r.ID)
	}
	// demand, stride, then content/markov by depth then age.
	want := []uint64{3, 2, 4, 5, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", order, want)
		}
	}
}

func TestDepthOrdersWithinClass(t *testing.T) {
	a := NewArbiter("test", 8)
	a.Enqueue(req(1, ClassContent, 3))
	a.Enqueue(req(2, ClassContent, 0))
	a.Enqueue(req(3, ClassContent, 2))
	if got := a.PopBest().ID; got != 2 {
		t.Fatalf("first pop = %d, want 2 (shallowest)", got)
	}
	if got := a.PopBest().ID; got != 3 {
		t.Fatalf("second pop = %d, want 3", got)
	}
}

func TestEnqueueDropsWhenFull(t *testing.T) {
	a := NewArbiter("test", 2)
	if !a.Enqueue(req(1, ClassContent, 1)) || !a.Enqueue(req(2, ClassContent, 1)) {
		t.Fatal("enqueue failed below capacity")
	}
	if a.Enqueue(req(3, ClassContent, 1)) {
		t.Fatal("enqueue succeeded when full")
	}
	if a.Len() != 2 {
		t.Fatalf("len = %d", a.Len())
	}
}

func TestDemandSquashesLowestPrefetch(t *testing.T) {
	a := NewArbiter("test", 3)
	a.Enqueue(req(1, ClassStride, 0))
	a.Enqueue(req(2, ClassContent, 1))
	a.Enqueue(req(3, ClassContent, 3)) // lowest priority
	squashed, ok := a.EnqueueDemand(req(4, ClassDemand, 0))
	if !ok {
		t.Fatal("demand rejected")
	}
	if squashed == nil || squashed.ID != 3 {
		t.Fatalf("squashed = %+v, want ID 3", squashed)
	}
	if a.Len() != 3 {
		t.Fatalf("len = %d", a.Len())
	}
	if got := a.PopBest().ID; got != 4 {
		t.Fatalf("best = %d, want the demand", got)
	}
}

func TestDemandStallsWhenAllDemand(t *testing.T) {
	a := NewArbiter("test", 2)
	a.EnqueueDemand(req(1, ClassDemand, 0))
	a.EnqueueDemand(req(2, ClassDemand, 0))
	if _, ok := a.EnqueueDemand(req(3, ClassDemand, 0)); ok {
		t.Fatal("demand accepted into a full all-demand arbiter")
	}
}

func TestFind(t *testing.T) {
	a := NewArbiter("test", 4)
	r := req(7, ClassContent, 2)
	a.Enqueue(r)
	if a.Find(r.PABase) != r {
		t.Fatal("Find missed queued request")
	}
	if a.Find(0xFFFF_FFC0) != nil {
		t.Fatal("Find invented a request")
	}
}

func TestBusTiming(t *testing.T) {
	b := NewBus(0, 0)
	if b.Latency != DefaultLatency || b.Occupancy != DefaultOccupancy {
		t.Fatalf("defaults = %d/%d", b.Latency, b.Occupancy)
	}
	s1, a1 := b.Grant(100)
	if s1 != 100 || a1 != 560 {
		t.Fatalf("first grant = %d/%d", s1, a1)
	}
	// Second transfer must wait for occupancy, not full latency.
	s2, a2 := b.Grant(100)
	if s2 != 160 || a2 != 620 {
		t.Fatalf("second grant = %d/%d, want 160/620", s2, a2)
	}
	if !b.Idle(220) || b.Idle(219) {
		t.Fatalf("idle boundary wrong: freeAt=%d", b.FreeAt())
	}
	if tr, busy := b.Stats(); tr != 2 || busy != 120 {
		t.Fatalf("stats = %d/%d", tr, busy)
	}
}

func TestBusGrantAfterIdleGap(t *testing.T) {
	b := NewBus(460, 60)
	b.Grant(0)
	s, _ := b.Grant(1000) // long idle gap: starts immediately
	if s != 1000 {
		t.Fatalf("start = %d, want 1000", s)
	}
}

// Property: PopBest drains exactly what was enqueued, in non-increasing
// priority order.
func TestArbiterDrainQuick(t *testing.T) {
	f := func(seeds []uint8) bool {
		a := NewArbiter("q", 64)
		n := 0
		for i, s := range seeds {
			if n >= 64 {
				break
			}
			r := req(uint64(i), Class(s%4), int(s%5))
			if a.Enqueue(r) {
				n++
			}
		}
		var prev *Request
		for i := 0; i < n; i++ {
			r := a.PopBest()
			if r == nil {
				return false
			}
			if prev != nil && r.Better(prev) {
				return false // priority inversion
			}
			prev = r
		}
		return a.PopBest() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
