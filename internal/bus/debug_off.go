//go:build !simdebug

package bus

// debugInvariants gates the arbiter bounds assertions. False in normal
// builds, so the checkBounds calls const-fold away; -tags simdebug swaps in
// debug_on.go.
const debugInvariants = false

// checkBounds is a no-op in normal builds.
func (a *Arbiter) checkBounds() {}
