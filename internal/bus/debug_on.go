//go:build simdebug

package bus

import "fmt"

// debugInvariants enables the arbiter bounds assertions: every mutation of
// an arbiter's queue re-verifies it never exceeds its configured capacity.
// Normal builds (no -tags simdebug) compile the checks away; see
// debug_off.go.
const debugInvariants = true

// checkBounds panics when the arbiter's queue has grown past its capacity —
// a squash/enqueue bookkeeping bug that release builds would let corrupt
// the paper's queue-pressure results silently.
func (a *Arbiter) checkBounds() {
	if len(a.q) > a.cap {
		panic(fmt.Sprintf("bus: arbiter %q holds %d requests, capacity %d", a.name, len(a.q), a.cap))
	}
}
