//go:build simdebug

package bus

import "testing"

// Under -tags simdebug, an arbiter whose queue has been corrupted past its
// capacity must panic on the next bounds check.
func TestArbiterCheckBoundsPanics(t *testing.T) {
	a := NewArbiter("test", 1)
	// Corrupt the queue directly: two requests in a capacity-1 arbiter is a
	// state no legal Enqueue/EnqueueDemand sequence can reach.
	a.q = append(a.q, &Request{ID: 1}, &Request{ID: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("checkBounds did not panic with 2 requests in a capacity-1 arbiter")
		}
	}()
	a.checkBounds()
}
