// Package cache implements the set-associative, write-back caches of the
// performance model: the virtually indexed DL1 and the physically indexed
// unified L2. Each line carries the small amount of extra state the content
// prefetcher needs for feedback-directed path reinforcement: a prefetched
// flag, the originating requester, and the stored request depth (two bits
// in hardware — less than ½% space overhead, as the paper reports).
package cache

import (
	"fmt"
	"math/bits"
)

// Source identifies which agent brought a line into a cache.
type Source uint8

const (
	// SrcDemand marks a demand-fetched line.
	SrcDemand Source = iota
	// SrcStride marks a line prefetched by the stride prefetcher.
	SrcStride
	// SrcContent marks a line prefetched by the content-directed prefetcher.
	SrcContent
	// SrcMarkov marks a line prefetched by the Markov prefetcher.
	SrcMarkov
)

func (s Source) String() string {
	switch s {
	case SrcDemand:
		return "demand"
	case SrcStride:
		return "stride"
	case SrcContent:
		return "content"
	case SrcMarkov:
		return "markov"
	default:
		return fmt.Sprintf("Source(%d)", uint8(s))
	}
}

// Line is one cache line's bookkeeping. Contents live in the memory image;
// the simulator only tracks presence and metadata.
type Line struct {
	LineAddr   uint32 // address >> lineShift
	Valid      bool
	Dirty      bool
	Prefetched bool   // set by prefetch fill, cleared on first demand touch
	Source     Source // who filled it
	Depth      uint8  // stored request depth (reinforcement state)
	VA         uint32 // virtual line base of the fill (for rescans)
	Overlap    bool   // content prefetch whose line stride also covered
	Chain      uint64 // content-prefetch chain the fill belonged to (0 = none)
	lru        uint64
}

// Config sizes a cache.
type Config struct {
	SizeBytes int
	Ways      int
	LineSize  int
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineSize) }

// Validate checks the cache geometry; New panics on what this rejects.
func (c Config) Validate() error { return c.validate() }

func (c Config) validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineSize <= 0 {
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	sets := c.Sets()
	if sets <= 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a positive power of two", sets)
	}
	if sets*c.Ways*c.LineSize != c.SizeBytes {
		return fmt.Errorf("cache: size %d not divisible by ways*line", c.SizeBytes)
	}
	return nil
}

// Cache is a single-level, true-LRU, set-associative cache. The geometry
// constants every access needs — line shift and mask, set-index mask, way
// count — are flattened out of the Config at construction so the lookup
// path loads them directly instead of rederiving them per access.
type Cache struct {
	cfg       Config
	lineShift uint
	lineMask  uint32 // LineSize-1: low bits within a line
	setMask   uint32 // Sets()-1: line-address bits selecting the set
	ways      int
	sets      []Line // sets*ways lines, flattened
	clock     uint64
}

// New builds a cache. It panics on an invalid geometry: configurations are
// static experiment inputs, not runtime data.
func New(cfg Config) *Cache {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Cache{
		cfg:       cfg,
		lineShift: uint(bits.TrailingZeros32(uint32(cfg.LineSize))),
		lineMask:  uint32(cfg.LineSize - 1),
		setMask:   uint32(cfg.Sets() - 1),
		ways:      cfg.Ways,
		sets:      make([]Line, cfg.Sets()*cfg.Ways),
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineAddr maps an address to its line address (addr >> lineShift).
func (c *Cache) LineAddr(addr uint32) uint32 { return addr >> c.lineShift }

// LineBase maps an address to the first byte of its line.
func (c *Cache) LineBase(addr uint32) uint32 { return addr &^ c.lineMask }

func (c *Cache) set(lineAddr uint32) []Line {
	idx := int(lineAddr&c.setMask) * c.ways
	return c.sets[idx : idx+c.ways]
}

// Lookup finds the line containing addr. When touch is set, a hit updates
// LRU state (a probe with touch=false leaves replacement state alone, which
// is what the prefetchers' presence checks need). Returns nil on miss.
func (c *Cache) Lookup(addr uint32, touch bool) *Line {
	la := c.LineAddr(addr)
	set := c.set(la)
	for i := range set {
		if set[i].Valid && set[i].LineAddr == la {
			if touch {
				c.clock++
				set[i].lru = c.clock
			}
			return &set[i]
		}
	}
	return nil
}

// Fill installs the line containing addr with the given metadata, evicting
// the LRU victim if the set is full. It returns the evicted line (Valid
// false if the set had a free way). Filling a line that is already present
// refreshes its metadata in place without eviction.
func (c *Cache) Fill(addr uint32, meta Line) (evicted Line) {
	la := c.LineAddr(addr)
	set := c.set(la)
	c.clock++
	victim := -1
	for i := range set {
		switch {
		case set[i].Valid && set[i].LineAddr == la:
			meta.LineAddr = la
			meta.Valid = true
			meta.lru = c.clock
			set[i] = meta
			return Line{} // refresh, no eviction
		case !set[i].Valid && victim == -1:
			victim = i
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		evicted = set[victim]
	}
	meta.LineAddr = la
	meta.Valid = true
	meta.lru = c.clock
	set[victim] = meta
	return evicted
}

// Invalidate drops the line containing addr if present, returning whether
// it was present.
func (c *Cache) Invalidate(addr uint32) bool {
	if l := c.Lookup(addr, false); l != nil {
		l.Valid = false
		return true
	}
	return false
}

// ValidLines counts resident lines (test and reporting helper).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.sets {
		if c.sets[i].Valid {
			n++
		}
	}
	return n
}

func (c *Cache) String() string {
	return fmt.Sprintf("cache{%dKB %d-way %dB lines, %d sets}",
		c.cfg.SizeBytes/1024, c.cfg.Ways, c.cfg.LineSize, c.cfg.Sets())
}

// LineState is one resident line in a State, with its replacement stamp and
// its position in the flattened set array made explicit so a restored cache
// replays evictions identically.
type LineState struct {
	Index int // position in the flattened sets array
	LRU   uint64
	Line  Line
}

// State is a checkpointable deep copy of a cache's mutable contents. Only
// valid lines are recorded; geometry is not part of the state and must
// match at Restore.
type State struct {
	Clock uint64
	Lines []LineState
}

// State snapshots the cache. The copy shares nothing with the cache, so it
// stays stable while simulation continues.
func (c *Cache) State() State {
	st := State{Clock: c.clock}
	for i := range c.sets {
		if c.sets[i].Valid {
			st.Lines = append(st.Lines, LineState{Index: i, LRU: c.sets[i].lru, Line: c.sets[i]})
		}
	}
	return st
}

// Restore overwrites the cache's contents with a previously captured State.
// The cache must have the same geometry the state was captured from.
func (c *Cache) Restore(st State) error {
	for i := range c.sets {
		c.sets[i] = Line{}
	}
	for _, ls := range st.Lines {
		if ls.Index < 0 || ls.Index >= len(c.sets) {
			return fmt.Errorf("cache: state index %d outside %d lines (geometry mismatch)", ls.Index, len(c.sets))
		}
		l := ls.Line
		l.lru = ls.LRU
		c.sets[ls.Index] = l
	}
	c.clock = st.Clock
	return nil
}
