package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() *Cache {
	// 4 sets x 2 ways x 64B = 512B.
	return New(Config{SizeBytes: 512, Ways: 2, LineSize: 64})
}

func TestGeometryValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, LineSize: 64},
		{SizeBytes: 512, Ways: 2, LineSize: 48},     // line not power of two
		{SizeBytes: 96 * 64, Ways: 2, LineSize: 64}, // 48 sets, not power of two
		{SizeBytes: 1024, Ways: 0, LineSize: 64},
	}
	for _, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
	// The 7-way Markov-share geometry of Table 3 must be accepted.
	c := New(Config{SizeBytes: 896 * 1024, Ways: 7, LineSize: 64})
	if c.Config().Sets() != 2048 {
		t.Fatalf("896KB 7-way sets = %d, want 2048", c.Config().Sets())
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := small()
	if c.Lookup(0x1000, true) != nil {
		t.Fatal("empty cache hit")
	}
	c.Fill(0x1000, Line{Source: SrcDemand})
	l := c.Lookup(0x103F, true) // same 64B line
	if l == nil {
		t.Fatal("fill then lookup missed")
	}
	if l.Source != SrcDemand || l.Prefetched {
		t.Fatalf("metadata wrong: %+v", l)
	}
	if c.Lookup(0x1040, true) != nil {
		t.Fatal("adjacent line wrongly hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2 ways
	// Three addresses mapping to the same set (set stride = 4 sets * 64B = 256B).
	a, b, d := uint32(0x0000), uint32(0x0100), uint32(0x0200)
	c.Fill(a, Line{})
	c.Fill(b, Line{})
	c.Lookup(a, true) // make a MRU
	ev := c.Fill(d, Line{})
	if !ev.Valid || ev.LineAddr != c.LineAddr(b) {
		t.Fatalf("expected b evicted, got %+v", ev)
	}
	if c.Lookup(a, false) == nil || c.Lookup(d, false) == nil {
		t.Fatal("a and d must be resident")
	}
	if c.Lookup(b, false) != nil {
		t.Fatal("b must be gone")
	}
}

func TestProbeDoesNotTouchLRU(t *testing.T) {
	c := small()
	a, b, d := uint32(0x0000), uint32(0x0100), uint32(0x0200)
	c.Fill(a, Line{})
	c.Fill(b, Line{})
	c.Lookup(a, false) // probe only; a stays LRU
	ev := c.Fill(d, Line{})
	if ev.LineAddr != c.LineAddr(a) {
		t.Fatalf("probe disturbed LRU: evicted %#x", ev.LineAddr<<6)
	}
}

func TestFillRefreshNoEvict(t *testing.T) {
	c := small()
	c.Fill(0x0000, Line{Prefetched: true, Source: SrcContent, Depth: 2})
	c.Fill(0x0100, Line{})
	ev := c.Fill(0x0000, Line{Source: SrcDemand}) // refresh
	if ev.Valid {
		t.Fatalf("refresh evicted %+v", ev)
	}
	l := c.Lookup(0x0000, false)
	if l.Prefetched || l.Source != SrcDemand {
		t.Fatalf("refresh did not replace metadata: %+v", l)
	}
	if c.ValidLines() != 2 {
		t.Fatalf("lines = %d, want 2", c.ValidLines())
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x40, Line{})
	if !c.Invalidate(0x40) {
		t.Fatal("invalidate missed resident line")
	}
	if c.Invalidate(0x40) {
		t.Fatal("invalidate hit twice")
	}
	if c.Lookup(0x40, false) != nil {
		t.Fatal("line survived invalidation")
	}
}

func TestDepthMetadataSurvives(t *testing.T) {
	c := small()
	c.Fill(0x2000, Line{Prefetched: true, Source: SrcContent, Depth: 3, VA: 0x7000})
	l := c.Lookup(0x2000, true)
	if l.Depth != 3 || l.VA != 0x7000 || l.Source != SrcContent {
		t.Fatalf("metadata = %+v", l)
	}
	l.Depth = 0 // reinforcement promotion mutates in place
	l.Prefetched = false
	l2 := c.Lookup(0x2000, false)
	if l2.Depth != 0 || l2.Prefetched {
		t.Fatal("in-place mutation lost")
	}
}

// Property: the cache never holds two lines with the same line address and
// never exceeds its capacity, under random fills/invalidates.
func TestNoDuplicatesQuick(t *testing.T) {
	c := New(Config{SizeBytes: 4096, Ways: 4, LineSize: 64})
	rng := rand.New(rand.NewSource(9))
	f := func(n uint16) bool {
		for i := 0; i < 64; i++ {
			addr := uint32(rng.Intn(1 << 14))
			if rng.Intn(4) == 0 {
				c.Invalidate(addr)
			} else {
				c.Fill(addr, Line{})
			}
		}
		seen := map[uint32]bool{}
		count := 0
		for la := uint32(0); la < 1<<8; la++ {
			if l := c.Lookup(la<<6, false); l != nil {
				if seen[l.LineAddr] {
					return false
				}
				seen[l.LineAddr] = true
				count++
			}
		}
		return count <= 64 // capacity in lines
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a line filled and never evicted (working set <= one set's ways)
// always hits.
func TestResidencyQuick(t *testing.T) {
	f := func(base uint32) bool {
		c := small()
		a1 := base &^ 63
		c.Fill(a1, Line{})
		return c.Lookup(a1, true) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
