package cache

import (
	"math/rand"
	"testing"
)

// refCache is an obviously-correct cache model: one slice per set holding
// line addresses most-recently-used first. The real Cache must agree with
// it on every hit/miss outcome and every eviction victim.
type refCache struct {
	sets [][]uint32
	ways int
	mask uint32
}

func newRefCache(cfg Config) *refCache {
	return &refCache{
		sets: make([][]uint32, cfg.Sets()),
		ways: cfg.Ways,
		mask: uint32(cfg.Sets() - 1),
	}
}

func (r *refCache) set(la uint32) int { return int(la & r.mask) }

// lookup reports presence; touch moves the line to the MRU position.
func (r *refCache) lookup(la uint32, touch bool) bool {
	s := r.sets[r.set(la)]
	for i, v := range s {
		if v == la {
			if touch {
				copy(s[1:i+1], s[:i])
				s[0] = la
			}
			return true
		}
	}
	return false
}

// fill installs la at the MRU position, returning the evicted line address
// and whether an eviction happened. A refill of a present line refreshes
// recency without evicting.
func (r *refCache) fill(la uint32) (evicted uint32, did bool) {
	si := r.set(la)
	if r.lookup(la, true) {
		return 0, false
	}
	s := r.sets[si]
	if len(s) == r.ways {
		evicted, did = s[len(s)-1], true
		s = s[:len(s)-1]
	}
	r.sets[si] = append([]uint32{la}, s...)
	return evicted, did
}

// geometries mixes power-of-two and odd way counts (the markov_1/8 config
// runs a 7-way UL2) at two line sizes.
var geometries = []Config{
	{SizeBytes: 4 * 1024, Ways: 1, LineSize: 32},
	{SizeBytes: 8 * 1024, Ways: 2, LineSize: 64},
	{SizeBytes: 16 * 1024, Ways: 4, LineSize: 64},
	{SizeBytes: 896, Ways: 7, LineSize: 64}, // 7-way, 2 sets
	{SizeBytes: 32 * 1024, Ways: 8, LineSize: 64},
}

// TestCacheMatchesReferenceModelQuick drives random lookup/probe/fill
// sequences through the Cache and the reference model and requires exact
// agreement on hits, misses, evictions, and residency. This pins the
// true-LRU stack property the reinforcement accounting depends on.
func TestCacheMatchesReferenceModelQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range geometries {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("test geometry %+v invalid: %v", cfg, err)
		}
		c := New(cfg)
		ref := newRefCache(cfg)
		// A small address pool forces set conflicts; spread across a few
		// "pages" so tags repeat within sets.
		pool := make([]uint32, 64)
		for i := range pool {
			pool[i] = uint32(rng.Intn(1<<14)) * uint32(cfg.LineSize)
		}
		var hits, misses, accesses int
		for op := 0; op < 20000; op++ {
			addr := pool[rng.Intn(len(pool))] + uint32(rng.Intn(cfg.LineSize))
			la := c.LineAddr(addr)
			switch rng.Intn(3) {
			case 0: // touching lookup
				accesses++
				got := c.Lookup(addr, true) != nil
				want := ref.lookup(la, true)
				if got != want {
					t.Fatalf("%v op %d: Lookup(%#x) hit=%v, reference %v", cfg, op, addr, got, want)
				}
				if got {
					hits++
				} else {
					misses++
				}
			case 1: // probe must not disturb LRU state
				got := c.Lookup(addr, false) != nil
				want := ref.lookup(la, false)
				if got != want {
					t.Fatalf("%v op %d: Probe(%#x) hit=%v, reference %v", cfg, op, addr, got, want)
				}
			case 2:
				ev := c.Fill(addr, Line{Source: SrcDemand, VA: c.LineBase(addr)})
				refEv, refDid := ref.fill(la)
				if ev.Valid != refDid {
					t.Fatalf("%v op %d: Fill(%#x) evicted=%v, reference %v", cfg, op, addr, ev.Valid, refDid)
				}
				if ev.Valid && ev.LineAddr != refEv {
					t.Fatalf("%v op %d: Fill(%#x) evicted line %#x, reference chose LRU %#x",
						cfg, op, addr, ev.LineAddr, refEv)
				}
				// Inclusion: the just-filled tag must be resident in its
				// indexed set.
				if l := c.Lookup(addr, false); l == nil || l.LineAddr != la {
					t.Fatalf("%v op %d: line %#x absent immediately after Fill", cfg, op, la)
				}
			}
		}
		if hits+misses != accesses {
			t.Fatalf("%v: accounting leak: %d hits + %d misses != %d accesses", cfg, hits, misses, accesses)
		}
		refResident := 0
		for _, s := range ref.sets {
			refResident += len(s)
		}
		if got := c.ValidLines(); got != refResident {
			t.Fatalf("%v: ValidLines = %d, reference holds %d", cfg, got, refResident)
		}
	}
}

// TestPrecomputedGeometryConstants checks the construction-time flattened
// constants against the Config-derived definitions for every geometry.
func TestPrecomputedGeometryConstants(t *testing.T) {
	for _, cfg := range geometries {
		c := New(cfg)
		if 1<<c.lineShift != cfg.LineSize {
			t.Errorf("%v: lineShift %d does not recover line size %d", cfg, c.lineShift, cfg.LineSize)
		}
		if c.lineMask != uint32(cfg.LineSize-1) {
			t.Errorf("%v: lineMask %#x, want %#x", cfg, c.lineMask, cfg.LineSize-1)
		}
		if c.setMask != uint32(cfg.Sets()-1) {
			t.Errorf("%v: setMask %#x, want %#x", cfg, c.setMask, cfg.Sets()-1)
		}
		if c.ways != cfg.Ways {
			t.Errorf("%v: ways %d, want %d", cfg, c.ways, cfg.Ways)
		}
		for _, addr := range []uint32{0, 1, uint32(cfg.LineSize) - 1, 0xdead_beef, 0xffff_ffff} {
			if c.LineBase(addr) != addr&^uint32(cfg.LineSize-1) {
				t.Errorf("%v: LineBase(%#x) = %#x", cfg, addr, c.LineBase(addr))
			}
		}
	}
}
