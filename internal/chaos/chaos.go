// Package chaos is a deterministic fault-schedule orchestrator for the cdpd
// cluster. A scenario composes faultinject plans and lifecycle events (kill
// the coordinator mid-arena, partition a worker mid-job, tear disk spills,
// expire leases under load) against a real in-process cluster, then checks
// the survivability invariants the design promises:
//
//   - exactly-once: sim.Runs() deltas match the work submitted (allowing
//     only the documented partition double-run window),
//   - byte-identity: every result equals an uninterrupted standalone run,
//   - a closed ledger: the replayed journal holds no open placements and
//     no double-completions,
//   - no leaked goroutines once the cluster is torn down.
//
// Runs are deterministic per (scenario, seed): fault plans derive from the
// seed, victims are chosen by hashing it, and no ambient randomness is
// consulted. CI sweeps the scenario × seed matrix; on failure the
// coordinator journal is preserved as the artifact that explains what the
// ledger thought was true.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

// Options configure one chaos run.
type Options struct {
	// Seed drives every nondeterministic-looking choice: faultinject plans,
	// victim selection, op counts. Same seed, same schedule.
	Seed int64
	// ArtifactDir receives the coordinator journal when the run fails
	// ("" = $CHAOS_ARTIFACT_DIR, or nothing).
	ArtifactDir string
	// Log receives narration ("" events are fine to drop; nil discards).
	Log func(format string, args ...any)
}

// Scenario is one named fault schedule.
type Scenario struct {
	Name        string
	Description string
	Run         func(*Run)
}

// Report is the outcome of executing a scenario.
type Report struct {
	Scenario   string
	Seed       int64
	Violations []string
	// JournalPath points at the preserved journal artifact ("" if the run
	// passed or the scenario used no state dir).
	JournalPath string
}

// Err folds the violations into one error (nil = the run held every
// invariant).
func (r *Report) Err() error {
	if len(r.Violations) == 0 {
		return nil
	}
	errs := make([]error, 0, len(r.Violations))
	for _, v := range r.Violations {
		errs = append(errs, errors.New(v))
	}
	return errors.Join(errs...)
}

// Run is the live harness a scenario drives: an in-process cluster whose
// coordinator address survives coordinator restarts (the listener stays up
// across swap, the way a fixed host:port does) and whose workers sit behind
// a front door the scenario can partition.
type Run struct {
	opts       Options
	violations []string

	baseDir  string
	stateDir string
	ckptDir  string
	cacheDir string

	coordTS   *httptest.Server
	coordCur  atomic.Value // *cluster.Coordinator (typed nil when dead)
	coord     *cluster.Coordinator
	coordOpts cluster.CoordinatorOptions

	workers map[string]*workerNode

	startGoroutines int
}

// workerNode is one worker plus its partitionable front door.
type workerNode struct {
	name        string
	w           *cluster.Worker
	ts          *httptest.Server
	handler     atomic.Value // http.Handler
	partitioned atomic.Bool
	killed      bool
}

// Execute runs one scenario under the given options and audits the
// invariants every scenario shares: journal ledger closed, goroutines
// reclaimed. Scenario-specific checks accumulate through Run.Check.
func Execute(sc Scenario, opts Options) *Report {
	if opts.ArtifactDir == "" {
		opts.ArtifactDir = os.Getenv("CHAOS_ARTIFACT_DIR")
	}
	rep := &Report{Scenario: sc.Name, Seed: opts.Seed}
	base, err := os.MkdirTemp("", "chaos-"+sc.Name+"-")
	if err != nil {
		rep.Violations = append(rep.Violations, fmt.Sprintf("harness: temp dir: %v", err))
		return rep
	}

	r := &Run{
		opts:     opts,
		baseDir:  base,
		stateDir: filepath.Join(base, "state"),
		ckptDir:  filepath.Join(base, "ckpt"),
		cacheDir: filepath.Join(base, "cache"),
		workers:  map[string]*workerNode{},
	}
	for _, d := range []string{r.stateDir, r.ckptDir, r.cacheDir} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("harness: %v", err))
			return rep
		}
	}
	r.startGoroutines = runtime.NumGoroutine()

	func() {
		defer func() {
			if p := recover(); p != nil {
				buf := make([]byte, 16<<10)
				r.violations = append(r.violations,
					fmt.Sprintf("scenario panicked: %v\n%s", p, buf[:runtime.Stack(buf, false)]))
			}
		}()
		sc.Run(r)
	}()

	r.teardown()
	r.checkJournalClosed()
	r.checkGoroutines()

	rep.Violations = r.violations
	if len(rep.Violations) > 0 {
		rep.JournalPath = r.preserveJournal(sc.Name)
	} else {
		os.RemoveAll(base)
	}
	return rep
}

// Scenarios returns the registry in a stable order, matching the names the
// CI matrix sweeps.
func Scenarios() []Scenario {
	return []Scenario{
		KillCoordinatorMidArena,
		PartitionWorkerMidJob,
		CorruptCacheTier,
		LeaseExpiryUnderLoad,
	}
}

// ByName looks up a registered scenario.
func ByName(name string) (Scenario, bool) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// Logf narrates progress.
func (r *Run) Logf(format string, args ...any) {
	if r.opts.Log != nil {
		r.opts.Log(format, args...)
	}
}

// Check records a violation when cond is false. Scenarios keep going after
// a failed check — later invariants often explain earlier ones.
func (r *Run) Check(cond bool, format string, args ...any) {
	if !cond {
		r.violations = append(r.violations, fmt.Sprintf(format, args...))
	}
}

// Failf records a violation unconditionally.
func (r *Run) Failf(format string, args ...any) { r.Check(false, format, args...) }

// Seed exposes the run's seed for scenario-local derivations.
func (r *Run) Seed() int64 { return r.opts.Seed }

// pick deterministically selects an index in [0, n) from the seed and a
// salt, so "which worker is the victim" varies across seeds but never
// across reruns of one.
func (r *Run) pick(salt string, n int) int {
	h := uint64(r.opts.Seed) * 0x9e3779b97f4a7c15
	for _, b := range []byte(salt) {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	h ^= h >> 33
	return int(h % uint64(n))
}

// ---- cluster lifecycle ----------------------------------------------------

// StartCoordinator boots the coordinator behind the durable address. mutate
// (optional) adjusts the options before boot; the same options are reused
// by RestartCoordinator.
func (r *Run) StartCoordinator(mutate func(*cluster.CoordinatorOptions)) {
	if r.coordTS == nil {
		r.coordCur.Store((*cluster.Coordinator)(nil))
		r.coordTS = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			if c, _ := r.coordCur.Load().(*cluster.Coordinator); c != nil {
				c.ServeHTTP(w, req)
				return
			}
			panic(http.ErrAbortHandler) // dead process: abort the connection
		}))
	}
	opts := cluster.CoordinatorOptions{
		LeaseTTL: 60 * time.Second,
		StateDir: r.stateDir,
		// Hedging off by default so exactly-once deltas are strict; the
		// hedge path has its own unit coverage.
		HedgeDelay:         time.Hour,
		CheckpointEveryOps: 50_000,
	}
	if mutate != nil {
		mutate(&opts)
	}
	r.coordOpts = opts
	c, err := cluster.NewCoordinator(opts)
	if err != nil {
		panic(fmt.Sprintf("NewCoordinator: %v", err))
	}
	r.coord = c
	r.coordCur.Store(c)
}

// KillCoordinator is the SIGKILL stand-in: the journal stops first (a dead
// process appends nothing), in-flight forwards die, and the address starts
// aborting connections.
func (r *Run) KillCoordinator() {
	r.coordCur.Store((*cluster.Coordinator)(nil))
	if r.coord != nil {
		r.coord.Kill()
		r.coord = nil
	}
	r.Logf("coordinator killed")
}

// RestartCoordinator boots a new incarnation over the same state dir and
// address.
func (r *Run) RestartCoordinator() {
	c, err := cluster.NewCoordinator(r.coordOpts)
	if err != nil {
		panic(fmt.Sprintf("restart coordinator: %v", err))
	}
	r.coord = c
	r.coordCur.Store(c)
	r.Logf("coordinator restarted over %s", r.coordOpts.StateDir)
}

// CoordinatorURL is the durable coordinator address.
func (r *Run) CoordinatorURL() string { return r.coordTS.URL }

// Coordinator exposes the live incarnation (nil while killed).
func (r *Run) Coordinator() *cluster.Coordinator { return r.coord }

// StartWorker boots a named worker that shares the run's checkpoint and
// spill directories (the shared tier is what makes steals and restarts
// cheap) behind a partitionable front door.
func (r *Run) StartWorker(name string) {
	node := &workerNode{name: name}
	node.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if node.partitioned.Load() {
			panic(http.ErrAbortHandler)
		}
		if h, _ := node.handler.Load().(http.Handler); h != nil {
			h.ServeHTTP(w, req)
			return
		}
		http.Error(w, "starting", http.StatusServiceUnavailable)
	}))
	w, err := cluster.NewWorker(cluster.WorkerOptions{
		Name:     name,
		SelfURL:  node.ts.URL,
		JoinURL:  r.coordTS.URL,
		CacheDir: r.cacheDir,
		Queue:    jobq.Config{Workers: 2, Capacity: 32},
		API:      api.Options{CheckpointDir: r.ckptDir},
	})
	if err != nil {
		node.ts.Close()
		panic(fmt.Sprintf("NewWorker(%s): %v", name, err))
	}
	node.w = w
	node.handler.Store(http.Handler(w))
	w.Start()
	r.workers[name] = node
}

// WorkerURL is the worker's advertised address.
func (r *Run) WorkerURL(name string) string { return r.workers[name].ts.URL }

// Worker returns the named worker for in-process inspection (the bench
// suite reads its API server's latency histograms), or nil if the worker
// was never started or has been killed.
func (r *Run) Worker(name string) *cluster.Worker {
	node := r.workers[name]
	if node == nil || node.killed {
		return nil
	}
	return node.w
}

// WorkerNames returns the live (non-killed) workers in stable order.
func (r *Run) WorkerNames() []string {
	var names []string
	for name, node := range r.workers {
		if !node.killed {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// PartitionWorker makes the worker's inbound side unreachable — placements
// and peer fetches abort — while its own outbound traffic (heartbeats,
// local jobs) keeps flowing: the classic asymmetric partition.
func (r *Run) PartitionWorker(name string) {
	r.workers[name].partitioned.Store(true)
	r.Logf("worker %s partitioned (inbound aborted)", name)
}

// HealWorker ends the partition.
func (r *Run) HealWorker(name string) {
	r.workers[name].partitioned.Store(false)
	r.Logf("worker %s healed", name)
}

// KillWorker is the worker SIGKILL stand-in: loops stop without a leave,
// running jobs die uncounted, and the address goes dark.
func (r *Run) KillWorker(name string) {
	node := r.workers[name]
	if node.killed {
		return
	}
	node.killed = true
	node.ts.CloseClientConnections()
	node.ts.Close()
	node.w.Kill()
	r.Logf("worker %s killed", name)
}

// WaitForWorkers polls the coordinator's member table until n workers hold
// live leases.
func (r *Run) WaitForWorkers(n int) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if r.liveWorkers() == n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	r.Failf("coordinator never reached %d live workers (have %d)", n, r.liveWorkers())
}

func (r *Run) liveWorkers() int    { return r.coordGauge("cdpd_cluster_workers_live") }
func (r *Run) openPlacements() int { return r.coordGauge("cdpd_cluster_placements_open") }

// coordGauge scrapes one integer series off the coordinator's /metrics
// (-1 when unreachable or absent).
func (r *Run) coordGauge(series string) int {
	resp, err := http.Get(r.coordTS.URL + "/metrics")
	if err != nil {
		return -1
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range bytes.Split(body, []byte("\n")) {
		var v int
		if n, _ := fmt.Sscanf(string(line), series+" %d", &v); n == 1 {
			return v
		}
	}
	return -1
}

func (r *Run) teardown() {
	// Let in-flight placements settle before tearing the cluster down: a
	// graceful-or-not coordinator exit correctly leaves unfinished
	// placements open in the journal, and the ledger audit below asserts a
	// SETTLED cluster owes nothing.
	if r.coord != nil {
		deadline := time.Now().Add(30 * time.Second)
		for r.openPlacements() > 0 && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
		if n := r.openPlacements(); n > 0 {
			r.Failf("%d placements still open at teardown after 30s", n)
		}
	}
	for _, node := range r.workers {
		if node.killed {
			continue
		}
		node.partitioned.Store(false)
		node.ts.Close()
		node.w.Kill()
	}
	if r.coord != nil {
		r.coord.Kill()
		r.coord = nil
	}
	if r.coordTS != nil {
		r.coordTS.Close()
	}
}

// ---- invariants ------------------------------------------------------------

// checkJournalClosed replays the settled journal: every accepted placement
// must have reached exactly one terminal record.
func (r *Run) checkJournalClosed() {
	if r.coordOpts.StateDir == "" {
		return
	}
	state, err := cluster.ReadJournal(r.coordOpts.StateDir)
	if err != nil {
		r.Failf("journal replay: %v", err)
		return
	}
	if len(state.Open) != 0 {
		var jobs []string
		for id := range state.Open {
			jobs = append(jobs, id)
		}
		sort.Strings(jobs)
		r.Failf("journal holds %d open placements after settle (lost jobs): %v", len(state.Open), jobs)
	}
	if state.DoubleCompletes != 0 {
		r.Failf("journal recorded %d double-completed placements", state.DoubleCompletes)
	}
}

// checkGoroutines polls until the goroutine count returns near its
// pre-scenario level — a stuck forward, hedge, or heartbeat loop shows up
// here.
func (r *Run) checkGoroutines() {
	const slack = 12
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= r.startGoroutines+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			r.Failf("goroutine leak: %d live vs %d at start (+%d slack)\n%s",
				n, r.startGoroutines, slack, buf[:runtime.Stack(buf, true)])
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// preserveJournal copies the journal into the artifact dir so a failed CI
// run ships the ledger that explains it.
func (r *Run) preserveJournal(scenario string) string {
	src := filepath.Join(r.stateDir, "coordinator.journal")
	raw, err := os.ReadFile(src)
	if err != nil {
		return ""
	}
	dir := r.opts.ArtifactDir
	if dir == "" {
		return src // keep the temp copy alive for local debugging
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return src
	}
	dst := filepath.Join(dir, fmt.Sprintf("%s-seed%d.journal", scenario, r.opts.Seed))
	if err := os.WriteFile(dst, raw, 0o644); err != nil {
		return src
	}
	return dst
}

// ---- traffic helpers -------------------------------------------------------

type envelope struct {
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

type jobView struct {
	State  jobq.State      `json:"state"`
	Error  string          `json:"error"`
	Result json.RawMessage `json:"result"`
}

// SubmitSim posts a waited simulation to the coordinator and returns the
// result bytes ("" error recorded as a violation → nil).
func (r *Run) SubmitSim(req api.SimRequest) []byte {
	body, _ := json.Marshal(req)
	resp, err := http.Post(r.coordTS.URL+"/v1/sim?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		r.Failf("POST /v1/sim: %v", err)
		return nil
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		r.Failf("POST /v1/sim: %d %s", resp.StatusCode, payload)
		return nil
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		r.Failf("bad envelope %s: %v", payload, err)
		return nil
	}
	return env.Result
}

// SubmitSimAsync posts without wait; the coordinator answers 202 and
// forwards in the background.
func (r *Run) SubmitSimAsync(req api.SimRequest) {
	body, _ := json.Marshal(req)
	resp, err := http.Post(r.coordTS.URL+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		r.Failf("async POST /v1/sim: %v", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		r.Failf("async POST /v1/sim: %d, want 202", resp.StatusCode)
	}
}

// SubmitArenaAsync submits an arena sweep and returns its job ID.
func (r *Run) SubmitArenaAsync(params string) string {
	resp, err := http.Get(r.coordTS.URL + "/v1/arena?" + params)
	if err != nil {
		r.Failf("arena submit: %v", err)
		return ""
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		r.Failf("arena submit: %d %s", resp.StatusCode, payload)
		return ""
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(payload, &sub); err != nil {
		r.Failf("arena submit body %s: %v", payload, err)
		return ""
	}
	return sub.JobID
}

// WaitJob polls the coordinator's job view until terminal, returning the
// result bytes (nil + violation on failure or timeout).
func (r *Run) WaitJob(jobID string, timeout time.Duration) []byte {
	deadline := time.Now().Add(timeout)
	var last jobView
	for {
		resp, err := http.Get(r.coordTS.URL + "/v1/jobs/" + jobID)
		if err == nil {
			payload, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && json.Unmarshal(payload, &last) == nil && last.State.Terminal() {
				if last.State != jobq.StateDone {
					r.Failf("job %s ended %s: %s", jobID, last.State, last.Error)
					return nil
				}
				return last.Result
			}
		}
		if time.Now().After(deadline) {
			r.Failf("job %s never finished (last state %q)", jobID, last.State)
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// WaitSnapshot blocks until the job's first boundary snapshot lands in the
// shared checkpoint dir.
func (r *Run) WaitSnapshot(jobID string) {
	path := filepath.Join(r.ckptDir, jobID+".snap")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil {
			return
		}
		if time.Now().After(deadline) {
			r.Failf("job %s never persisted a snapshot", jobID)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ---- standalone references -------------------------------------------------

// standaloneServer builds a single-process api.Server with the same
// checkpoint stamping as the cluster, so result bytes (which echo the
// resolved config) are comparable.
func (r *Run) standaloneServer() (*api.Server, func()) {
	queue := jobq.New(jobq.Config{Workers: 2, Capacity: 32})
	dir, _ := os.MkdirTemp(r.baseDir, "standalone-")
	s, err := api.NewWithOptions(queue, simcache.New(1<<24), api.Options{
		CheckpointDir:      dir,
		CheckpointEveryOps: r.coordOpts.CheckpointEveryOps,
	})
	if err != nil {
		panic(fmt.Sprintf("standalone server: %v", err))
	}
	return s, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		queue.Shutdown(ctx)
	}
}

// StandaloneSim runs req on a fresh standalone daemon — the byte-identity
// reference.
func (r *Run) StandaloneSim(req api.SimRequest) []byte {
	s, done := r.standaloneServer()
	defer done()
	req.Wait = true
	body, _ := json.Marshal(req)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/sim", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		r.Failf("standalone sim: %d %s", w.Code, w.Body)
		return nil
	}
	var env envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		r.Failf("standalone envelope: %v", err)
		return nil
	}
	return env.Result
}

// StandaloneArena runs an arena sweep on a fresh standalone daemon and
// returns the report bytes.
func (r *Run) StandaloneArena(params string, timeout time.Duration) []byte {
	s, done := r.standaloneServer()
	defer done()
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/v1/arena?"+params, nil))
	if w.Code != http.StatusAccepted {
		r.Failf("standalone arena submit: %d %s", w.Code, w.Body)
		return nil
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		r.Failf("standalone arena body: %v", err)
		return nil
	}
	deadline := time.Now().Add(timeout)
	for {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/"+sub.JobID, nil))
		var view jobView
		if json.Unmarshal(w.Body.Bytes(), &view) == nil && view.State.Terminal() {
			if view.State != jobq.StateDone {
				r.Failf("standalone arena ended %s: %s", view.State, view.Error)
				return nil
			}
			return view.Result
		}
		if time.Now().After(deadline) {
			r.Failf("standalone arena never finished")
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// OwnedRequest searches the ops axis for a request owned by a specific
// member of the given ring, mirroring the coordinator's routing math so
// scenarios can steer placements deterministically.
func (r *Run) OwnedRequest(owner string, members []string, baseOps, ckptEvery int) (api.SimRequest, string) {
	if ckptEvery == 0 {
		// Mirror the coordinator's stamping: it writes its default interval
		// onto unset requests before keying, so ownership must be computed
		// against the stamped value.
		ckptEvery = r.coordOpts.CheckpointEveryOps
	}
	ring := cluster.NewRing(cluster.DefaultVirtualNodes)
	ring.SetMembers(members)
	for ops := baseOps; ops < baseOps+200_000; ops += 1000 {
		req := api.SimRequest{Benchmark: "quake", Ops: ops, CheckpointEveryOps: ckptEvery}
		spec, cfg, resolvedOps, err := api.ResolveSim(req)
		if err != nil {
			panic(err)
		}
		key := simcache.KeyFor(spec, cfg, resolvedOps)
		if name, _ := ring.Owner(key); name == owner {
			return req, api.SimJobID(key)
		}
	}
	r.Failf("no ops near %d produced a key owned by %s", baseOps, owner)
	return api.SimRequest{}, ""
}

// waitCacheFiles polls the shared spill dir until at least n entries with
// the given suffix exist ("" matches any spill artifact).
func (r *Run) waitCacheFiles(suffix string, n int) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		count := 0
		entries, _ := os.ReadDir(r.cacheDir)
		for _, e := range entries {
			if suffix == "" || filepath.Ext(e.Name()) == suffix {
				count++
			}
		}
		if count >= n {
			return
		}
		if time.Now().After(deadline) {
			r.Failf("spill dir never reached %d %q entries (have %d)", n, suffix, count)
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// RegisterGhost hand-registers a member with a dead address — a worker that
// will never heartbeat, for lease-expiry pressure.
func (r *Run) RegisterGhost(name string) {
	body, _ := json.Marshal(map[string]string{"name": name, "url": "http://127.0.0.1:1"})
	resp, err := http.Post(r.coordTS.URL+"/v1/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		r.Failf("register ghost %s: %v", name, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.Failf("register ghost %s: %d", name, resp.StatusCode)
	}
}
