package chaos

import (
	"strconv"
	"testing"
)

// TestChaos sweeps every scenario across the CI seed matrix. Subtests are
// named TestChaos/<scenario>/seed<N> so the workflow can shard them with
// -run; locally the whole matrix runs.
func TestChaos(t *testing.T) {
	for _, sc := range Scenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 1979} {
				t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
					rep := Execute(sc, Options{Seed: seed, Log: t.Logf})
					if err := rep.Err(); err != nil {
						if rep.JournalPath != "" {
							t.Logf("journal preserved at %s", rep.JournalPath)
						}
						t.Fatal(err)
					}
				})
			}
		})
	}
}

// TestScenarioRegistry pins the names the CI matrix depends on.
func TestScenarioRegistry(t *testing.T) {
	want := []string{"kill-coordinator", "partition-worker", "corrupt-cache", "lease-expiry"}
	got := Scenarios()
	if len(got) != len(want) {
		t.Fatalf("%d scenarios registered, want %d", len(got), len(want))
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("scenario %d = %q, want %q", i, got[i].Name, name)
		}
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%q) not found", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted an unknown scenario")
	}
}
