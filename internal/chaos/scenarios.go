package chaos

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/api"
	"repro/internal/cluster"
	"repro/internal/faultinject"
	"repro/internal/sim"
)

// KillCoordinatorMidArena is the acceptance scenario: SIGKILL the
// coordinator while a distributed arena sweep is in flight, restart it over
// the same state dir, then kill a worker while cells are still running. The
// re-submitted sweep must come back byte-identical to standalone, each cell
// must have simulated exactly once across the whole ordeal (the shared tier
// and content-keyed dedup absorb every re-placement), and the replayed
// journal must show a closed ledger.
var KillCoordinatorMidArena = Scenario{
	Name:        "kill-coordinator",
	Description: "SIGKILL coordinator mid-arena, restart over the journal, kill a worker owning in-flight cells",
	Run: func(r *Run) {
		// Arena cells run unsegmented on both sides: the standalone arena
		// resolves cells without the server's default checkpoint interval,
		// so the coordinator must not stamp one either or the cell configs
		// (and their measured counters) would differ by construction.
		r.StartCoordinator(func(o *cluster.CoordinatorOptions) {
			o.CheckpointEveryOps = 0
		})
		for _, name := range []string{"w1", "w2", "w3"} {
			r.StartWorker(name)
		}
		r.WaitForWorkers(3)

		// 2 benchmarks × (baseline + cdp) = 4 cells.
		ops := 600_000 + 1000*r.pick("arena-ops", 50)
		params := fmt.Sprintf("ops=%d&benchmarks=quake,speech&engines=cdp", ops)
		const cells = 4
		ref := r.StandaloneArena(params, 2*time.Minute)
		runs0 := sim.Runs()

		arenaJob := r.SubmitArenaAsync(params)
		r.Logf("arena %s submitted (%d cells)", arenaJob, cells)

		// Let the fan-out journal its cell placements, then pull the plug.
		time.Sleep(300 * time.Millisecond)
		r.KillCoordinator()

		r.RestartCoordinator()
		r.WaitForWorkers(3)

		// The orphaned cells are being re-adopted; while they run, kill one
		// worker. Its in-flight cell resumes from the shared checkpoint dir
		// on a survivor; its finished cells sit in the shared tier.
		victim := r.WorkerNames()[r.pick("victim", 3)]
		r.KillWorker(victim)

		// The arena assembly job died with the first coordinator (it was
		// local to that process); the cells survived in the journal. A
		// re-submitted sweep rides entirely on their results.
		result := r.WaitJob(r.SubmitArenaAsync(params), 2*time.Minute)
		r.Check(bytes.Equal(result, ref),
			"arena after crash+restart+worker-kill differs from standalone:\ncluster    %s\nstandalone %s", result, ref)

		delta := sim.Runs() - runs0
		r.Check(delta == cells,
			"exactly-once violated: %d simulation runs for %d cells", delta, cells)
	},
}

// PartitionWorkerMidJob drops the inbound side of the worker that owns a
// checkpointed job mid-run. The coordinator's placement fails at transport,
// steals the job to a survivor, and the survivor resumes from the boundary
// snapshot. The partitioned worker keeps its outbound heartbeats, so after
// healing it is re-admitted without a restart. The local run it finishes in
// isolation is the one documented double-run window, so the runs delta may
// be expected+1 — but bytes must match standalone exactly.
var PartitionWorkerMidJob = Scenario{
	Name:        "partition-worker",
	Description: "asymmetric partition of the owning worker mid-job; steal, resume, heal, re-admit",
	Run: func(r *Run) {
		r.StartCoordinator(nil)
		r.StartWorker("w1")
		r.StartWorker("w2")
		r.WaitForWorkers(2)

		victim := r.WorkerNames()[r.pick("victim", 2)]
		req, jobID := r.OwnedRequest(victim, []string{"w1", "w2"}, 2_000_000+1000*r.pick("ops", 100), 50_000)
		ref := r.StandaloneSim(req)
		runs0 := sim.Runs()

		r.SubmitSimAsync(req)
		r.WaitSnapshot(jobID)
		r.PartitionWorker(victim)

		result := r.WaitJob(jobID, 2*time.Minute)
		r.Check(bytes.Equal(result, ref),
			"stolen+resumed result differs from standalone:\ncluster    %s\nstandalone %s", result, ref)

		delta := sim.Runs() - runs0
		r.Check(delta == 1 || delta == 2,
			"runs delta %d, want 1 (stolen before the victim finished: 2 — the documented partition window)", delta)

		r.HealWorker(victim)
		r.WaitForWorkers(2) // outbound heartbeats re-admit it without a restart
	},
}

// CorruptCacheTier tears disk spills mid-payload via the
// disk.cache.torn-write fault, kills the worker that wrote them, and
// re-routes the job to a survivor reading the shared tier cold. The CRC
// trailer must quarantine the torn entry, the survivor must recompute, and
// the bytes must still match standalone — corruption costs a recompute,
// never a wrong answer.
var CorruptCacheTier = Scenario{
	Name:        "corrupt-cache",
	Description: "torn disk spills quarantined on cold read; recompute, never wrong bytes",
	Run: func(r *Run) {
		r.StartCoordinator(nil)
		r.StartWorker("w1")
		r.StartWorker("w2")
		r.WaitForWorkers(2)

		victim := r.WorkerNames()[r.pick("victim", 2)]
		req, _ := r.OwnedRequest(victim, []string{"w1", "w2"}, 100_000+1000*r.pick("ops", 100), 0)
		ref := r.StandaloneSim(req)
		runs0 := sim.Runs()

		// Every spill during the first run is torn on disk. The spill is
		// asynchronous to the response, so wait for it to land before
		// disarming.
		prev := faultinject.Enable(faultinject.MustParse(r.Seed(), "disk.cache.torn-write"))
		first := r.SubmitSim(req)
		r.Check(bytes.Equal(first, ref), "result under torn-write fault differs from standalone")
		r.waitCacheFiles("", 1)
		faultinject.Enable(prev)

		// Kill the owner: its memory tier dies with it, leaving only the
		// torn disk entry. The re-routed job (the dead owner is dropped at
		// the first failed placement) must hit the CRC check, not the
		// payload.
		r.KillWorker(victim)
		second := r.SubmitSim(req)
		r.Check(bytes.Equal(second, ref), "recomputed-after-quarantine result differs from standalone")

		delta := sim.Runs() - runs0
		r.Check(delta == 2,
			"runs delta %d, want 2 (original + recompute after quarantine; 1 would mean torn bytes were served)", delta)
		r.waitCacheFiles(".corrupt", 1)
	},
}

// LeaseExpiryUnderLoad runs a stream of waited jobs against a ring salted
// with ghost members whose leases expire mid-stream. Every placement that
// lands on a ghost fails at transport and must steal to a live worker;
// every job must finish byte-identical to standalone and the ring must end
// with only real members.
var LeaseExpiryUnderLoad = Scenario{
	Name:        "lease-expiry",
	Description: "ghost members expire under a stream of waited jobs; steals keep every job alive",
	Run: func(r *Run) {
		r.StartCoordinator(func(o *cluster.CoordinatorOptions) {
			o.LeaseTTL = 500 * time.Millisecond
		})
		r.StartWorker("w1")
		r.StartWorker("w2")
		r.RegisterGhost("ghost1")
		r.RegisterGhost("ghost2")
		r.WaitForWorkers(4)

		base := 50_000 + 1000*r.pick("ops", 100)
		for i := 0; i < 6; i++ {
			req := api.SimRequest{Benchmark: "quake", Ops: base + 10_000*i}
			ref := r.StandaloneSim(req)
			got := r.SubmitSim(req)
			r.Check(bytes.Equal(got, ref), "job %d (ops=%d) differs from standalone", i, req.Ops)
		}

		// The sweeper has had several TTLs to reap the ghosts.
		r.WaitForWorkers(2)
	},
}
