// Package client is a resilient Go client for the cdpd daemon. It wraps
// the HTTP API with the retry discipline the server's fault model calls
// for: context deadlines end everything early, transient failures (429
// backpressure, 503 drains, 5xx, torn responses, connection errors) retry
// with exponential backoff and full jitter, Retry-After hints are honored,
// and a circuit breaker stops hammering a daemon that is clearly down.
//
// Retries are idempotent by construction, not by client-side bookkeeping:
// cdpd keys simulation jobs and cached results by the content hash of
// (benchmark, configuration, µop budget), so a retried submission either
// hits the result cache, attaches to the still-running original job, or
// recomputes a byte-identical result. The client never needs to ask
// "did my first attempt actually go through?".
//
// Against a cluster the same discipline extends across daemons: redirects
// to a job's owning worker are followed transparently (requests are built
// with a rewindable body, so even a 307 on POST /v1/sim replays safely —
// content keying makes the replay idempotent), and circuit breakers are
// per endpoint, so one dead worker fails fast without cutting off the
// coordinator or its healthy peers (see WithBaseURL).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
)

// Config tunes a Client. The zero value of every field has a sane default;
// Rand, Sleep, and Now exist so tests can run the full retry loop without
// wall-clock time.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil uses http.DefaultClient. Per-request
	// deadlines come from the caller's context, not the http.Client.
	HTTP *http.Client

	// MaxRetries bounds re-attempts after the first try (0 defaults to 4,
	// so up to 5 requests total). Use -1 for no retries at all.
	MaxRetries int
	// BaseBackoff seeds the exponential schedule (0 defaults to 200ms);
	// attempt n sleeps rand(0, min(MaxBackoff, BaseBackoff·2ⁿ)) — "full
	// jitter", which decorrelates a thundering herd better than equal
	// jitter when many clients retry the same outage.
	BaseBackoff time.Duration
	// MaxBackoff caps a single sleep (0 defaults to 10s).
	MaxBackoff time.Duration

	// BreakerThreshold is how many consecutive transport-level failures
	// open the circuit (0 defaults to 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects calls before
	// letting one probe through (0 defaults to 5s).
	BreakerCooldown time.Duration

	// Rand returns a float64 in [0,1) for jitter; nil uses math/rand.
	Rand func() float64
	// Sleep blocks for d or until ctx ends; nil uses a timer.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the breaker's clock; nil uses time.Now.
	Now func() time.Time
}

func (c Config) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 4
	default:
		return c.MaxRetries
	}
}

func (c Config) baseBackoff() time.Duration {
	if c.BaseBackoff > 0 {
		return c.BaseBackoff
	}
	return 200 * time.Millisecond
}

func (c Config) maxBackoff() time.Duration {
	if c.MaxBackoff > 0 {
		return c.MaxBackoff
	}
	return 10 * time.Second
}

func (c Config) breakerThreshold() int {
	if c.BreakerThreshold == 0 {
		return 5
	}
	return c.BreakerThreshold
}

func (c Config) breakerCooldown() time.Duration {
	if c.BreakerCooldown > 0 {
		return c.BreakerCooldown
	}
	return 5 * time.Second
}

// ErrCircuitOpen fails a call fast while the breaker cools down; the
// daemon was unreachable (or answering only errors) on several consecutive
// attempts and hammering it helps nobody.
var ErrCircuitOpen = errors.New("client: circuit open, daemon recently unreachable")

// breaker is one endpoint's circuit state: consecutive transport failures,
// and when the circuit opened (zero when closed). Each endpoint gets its
// own — in a cluster the client talks to the coordinator and, via
// WithBaseURL or redirects, to individual workers, and one dead worker
// must not open the circuit for the whole fleet.
type breaker struct {
	mu       sync.Mutex
	failures int       // simlint:guardedby mu
	openedAt time.Time // simlint:guardedby mu
	probing  bool      // simlint:guardedby mu
}

// allow gates a call on the circuit state: closed lets everything through,
// open rejects until the cooldown elapses, then exactly one half-open
// probe is allowed through at a time.
func (b *breaker) allow(cfg *Config) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openedAt.IsZero() {
		return nil
	}
	if cfg.Now().Sub(b.openedAt) < cfg.breakerCooldown() || b.probing {
		return ErrCircuitOpen
	}
	b.probing = true
	return nil
}

// record feeds one attempt's outcome back. spoke means the server answered
// coherently — even a 429 or a 400 closes the circuit, because the daemon
// is demonstrably up and talking; only connection failures and torn
// responses count toward opening it.
func (b *breaker) record(cfg *Config, spoke bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if spoke {
		b.failures = 0
		b.openedAt = time.Time{}
		return
	}
	b.failures++
	if b.failures >= cfg.breakerThreshold() {
		b.openedAt = cfg.Now()
	}
}

// breakerSet maps endpoint (URL host) to its breaker. Clients derived with
// WithBaseURL share one set, so circuit history survives retargeting.
type breakerSet struct {
	mu sync.Mutex
	m  map[string]*breaker // simlint:guardedby mu
}

func (s *breakerSet) forHost(host string) *breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.m[host]
	if !ok {
		b = &breaker{}
		s.m[host] = b
	}
	return b
}

// APIError is a non-2xx answer that is NOT retryable (or exhausted its
// retries): the server spoke, and this is what it said.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server answered %d: %s", e.Status, e.Message)
}

// Client is safe for concurrent use.
type Client struct {
	cfg      Config
	http     *http.Client
	host     string // breaker key for cfg.BaseURL
	breakers *breakerSet
}

// New builds a client; cfg.BaseURL is the only required field.
func New(cfg Config) *Client {
	h := cfg.HTTP
	if h == nil {
		h = http.DefaultClient
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Float64
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Client{
		cfg:      cfg,
		http:     h,
		host:     hostOf(cfg.BaseURL),
		breakers: &breakerSet{m: map[string]*breaker{}},
	}
}

// hostOf extracts the breaker key for a base URL; an unparseable URL keys
// by its raw string (the request build will fail loudly anyway).
func hostOf(base string) string {
	u, err := url.Parse(base)
	if err != nil || u.Host == "" {
		return base
	}
	return u.Host
}

// WithBaseURL returns a client targeting base that shares this client's
// transport, retry configuration, and per-endpoint breaker state. Cluster
// callers hold one logical client and retarget it at the coordinator or an
// individual worker; a circuit opened against one endpoint stays open for
// the derived clients pointing there and only there.
func (c *Client) WithBaseURL(base string) *Client {
	dup := *c
	dup.cfg.BaseURL = base
	dup.host = hostOf(base)
	return &dup
}

// Envelope is a terminal result: the rendered simulation outcome plus
// whether the daemon served it from its content-addressed cache.
type Envelope struct {
	Cached bool          `json:"cached"`
	Result api.SimResult `json:"result"`
}

// RunSim submits a simulation synchronously (wait=1) and retries until it
// has a terminal answer, the context ends, retries are exhausted, or the
// error is one a retry cannot fix (4xx validation, job canceled).
func (c *Client) RunSim(ctx context.Context, req api.SimRequest) (*Envelope, error) {
	req.Wait = true
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var env Envelope
	if err := c.do(ctx, http.MethodPost, "/v1/sim", body, &env); err != nil {
		return nil, err
	}
	return &env, nil
}

// JobView mirrors the daemon's GET /v1/jobs/{id} response.
type JobView struct {
	JobID  string          `json:"job_id"`
	State  string          `json:"state"`
	Stage  string          `json:"stage,omitempty"`
	Error  string          `json:"error,omitempty"`
	Cached *bool           `json:"cached,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// Job polls one job.
func (c *Client) Job(ctx context.Context, id string) (*JobView, error) {
	var view JobView
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// Cancel asks the daemon to cancel a job. Cancellation is idempotent from
// the caller's perspective: a job that already finished reports 409, which
// is surfaced as an *APIError, not retried.
func (c *Client) Cancel(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil)
}

// Ready reports whether the daemon currently passes its own readiness
// check (a single attempt; readiness polling should not retry-loop).
func (c *Client) Ready(ctx context.Context) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+"/readyz", nil)
	if err != nil {
		return false
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// do runs one logical call through the breaker and the retry loop,
// decoding a 2xx body into out when out is non-nil.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := c.breakerAllow(); err != nil {
			// The breaker state belongs to this client's endpoint host; a
			// sibling client from WithBaseURL targeting a healthy daemon is
			// unaffected.
			if lastErr != nil {
				return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
			}
			return err
		}
		spoke, retryable, wait, err := c.once(ctx, method, path, body, out, c.cfg.maxRetries()-attempt)
		c.breakerRecord(spoke)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable || attempt >= c.cfg.maxRetries() {
			return lastErr
		}
		if wait <= 0 {
			wait = c.jitteredBackoff(attempt)
		}
		if err := c.cfg.Sleep(ctx, wait); err != nil {
			return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
		}
	}
}

// once performs a single HTTP exchange. spoke reports whether the server
// produced a coherent HTTP response (feeding the breaker: overload and
// validation answers prove the daemon is up; connection failures and torn
// bodies do not); retryable reports whether a failure is worth retrying,
// with any server-mandated wait (Retry-After). remaining is the retry
// budget left after this attempt; it rides along as a header so a cluster
// coordinator can shrink its own steal/hedge budget as the client's
// patience runs out, keeping client retries × server placements bounded.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any, remaining int) (spoke, retryable bool, wait time.Duration, err error) {
	var rd io.Reader
	if body != nil {
		// bytes.Reader gives NewRequest a GetBody, which is what lets the
		// transport replay the body across a 307/308 redirect to a job's
		// owning worker instead of failing the cross-daemon hop.
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return false, false, 0, err
	}
	req.Header.Set(api.RetryBudgetHeader, strconv.Itoa(max(remaining, 0)))
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Connection refused, reset, timeout: the class of failure the
		// fault points api.respond.partialwrite and jobq.worker.crash
		// produce. Never retry past the caller's deadline.
		if ctx.Err() != nil {
			return false, false, 0, ctx.Err()
		}
		return false, true, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		// Headers arrived but the body died: a torn response.
		return false, true, 0, fmt.Errorf("client: reading response: %w", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return true, false, 0, nil
		}
		if err := json.Unmarshal(data, out); err != nil {
			// A 200 with an unparseable body is a truncated write, not a
			// malformed request; the retry will be served whole.
			return false, true, 0, fmt.Errorf("client: decoding response: %w", err)
		}
		return true, false, 0, nil
	}

	msg := strings.TrimSpace(string(data))
	var jsonErr struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &jsonErr) == nil && jsonErr.Error != "" {
		msg = jsonErr.Error
	}
	apiErr := &APIError{Status: resp.StatusCode, Message: msg}
	switch {
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// Backpressure and drains are the server explicitly asking us to
		// come back later.
		return true, true, c.retryAfter(resp), apiErr
	case resp.StatusCode >= 500:
		return true, true, 0, apiErr
	default:
		// 4xx: the request itself is the problem; retrying reproduces it.
		return true, false, 0, apiErr
	}
}

// retryAfter parses a Retry-After seconds hint, capped to MaxBackoff so a
// confused server cannot park us for an hour.
func (c *Client) retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	if limit := c.cfg.maxBackoff(); d > limit {
		d = limit
	}
	return d
}

// jitteredBackoff is full jitter: uniform in (0, min(MaxBackoff, Base·2ⁿ)].
func (c *Client) jitteredBackoff(attempt int) time.Duration {
	ceil := c.cfg.baseBackoff() << uint(attempt)
	if limit := c.cfg.maxBackoff(); ceil > limit || ceil <= 0 {
		ceil = limit
	}
	d := time.Duration(c.cfg.Rand() * float64(ceil))
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

// breakerAllow gates a call on this endpoint's circuit.
func (c *Client) breakerAllow() error {
	if c.cfg.breakerThreshold() < 0 {
		return nil
	}
	return c.breakers.forHost(c.host).allow(&c.cfg)
}

// breakerRecord feeds one attempt's outcome back to this endpoint's
// circuit.
func (c *Client) breakerRecord(spoke bool) {
	if c.cfg.breakerThreshold() < 0 {
		return
	}
	c.breakers.forHost(c.host).record(&c.cfg, spoke)
}
