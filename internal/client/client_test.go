package client

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

// fakeClock is a manual clock for breaker tests.
type fakeClock struct{ now atomic.Int64 }

func (f *fakeClock) Now() time.Time                { return time.Unix(0, f.now.Load()) }
func (f *fakeClock) advance(d time.Duration)       { f.now.Add(int64(d)) }
func noSleep(context.Context, time.Duration) error { return nil }

// scriptedServer answers each request with the next status in script
// (the last entry repeats), recording sleeps the client takes.
func scriptedServer(t *testing.T, script []int, body string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		i := int(calls.Add(1)) - 1
		if i >= len(script) {
			i = len(script) - 1
		}
		code := script[i]
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "7")
		}
		w.WriteHeader(code)
		if code < 300 {
			_, _ = w.Write([]byte(body))
		} else {
			_, _ = w.Write([]byte(`{"error":"scripted failure"}`))
		}
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestRetryAfterHonored: a 429 with Retry-After sleeps exactly the hinted
// duration (not the jittered schedule) before succeeding.
func TestRetryAfterHonored(t *testing.T) {
	ts, calls := scriptedServer(t, []int{429, 429, 200}, `{"cached":true,"result":{}}`)
	var sleeps []time.Duration
	c := New(Config{
		BaseURL: ts.URL,
		Rand:    func() float64 { return 0.5 },
		Sleep: func(_ context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	})
	env, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "b2c"})
	if err != nil {
		t.Fatal(err)
	}
	if !env.Cached {
		t.Fatal("lost the cached flag")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d requests, want 3", got)
	}
	if len(sleeps) != 2 || sleeps[0] != 7*time.Second || sleeps[1] != 7*time.Second {
		t.Fatalf("sleeps %v, want two 7s Retry-After waits", sleeps)
	}
}

// TestFullJitterBackoff: without Retry-After the schedule is
// rand()·min(MaxBackoff, Base·2ⁿ).
func TestFullJitterBackoff(t *testing.T) {
	ts, calls := scriptedServer(t, []int{500}, "")
	var sleeps []time.Duration
	c := New(Config{
		BaseURL:     ts.URL,
		MaxRetries:  3,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  300 * time.Millisecond,
		Rand:        func() float64 { return 0.5 },
		Sleep: func(_ context.Context, d time.Duration) error {
			sleeps = append(sleeps, d)
			return nil
		},
	})
	_, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "b2c"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 500 {
		t.Fatalf("want exhausted 500, got %v", err)
	}
	if got := calls.Load(); got != 4 {
		t.Fatalf("%d requests, want 1 + 3 retries", got)
	}
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 150 * time.Millisecond}
	if len(sleeps) != len(want) {
		t.Fatalf("sleeps %v, want %v", sleeps, want)
	}
	for i := range want {
		if sleeps[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full jitter at rand=0.5, capped)", i, sleeps[i], want[i])
		}
	}
}

// TestBadRequestNotRetried: validation failures burn no retries.
func TestBadRequestNotRetried(t *testing.T) {
	ts, calls := scriptedServer(t, []int{400}, "")
	c := New(Config{BaseURL: ts.URL, Sleep: noSleep})
	_, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "nope"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 || apiErr.Message != "scripted failure" {
		t.Fatalf("want the 400 verbatim, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d requests, want exactly 1", got)
	}
}

// TestTornBodyRetried: a 200 whose body is not the promised JSON (the
// api.respond.partialwrite shape) is retried, not surfaced.
func TestTornBodyRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(200)
			_, _ = w.Write([]byte(`{"cached":`))
			return
		}
		w.WriteHeader(200)
		_, _ = w.Write([]byte(`{"cached":false,"result":{}}`))
	}))
	t.Cleanup(ts.Close)
	c := New(Config{BaseURL: ts.URL, Sleep: noSleep})
	if _, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "b2c"}); err != nil {
		t.Fatalf("torn body not recovered: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("%d requests, want 2", got)
	}
}

// TestContextDeadlineEndsRetries: the caller's context stops the retry
// loop even when the server keeps inviting retries.
func TestContextDeadlineEndsRetries(t *testing.T) {
	ts, _ := scriptedServer(t, []int{503}, "")
	c := New(Config{
		BaseURL: ts.URL,
		Sleep: func(ctx context.Context, d time.Duration) error {
			return context.DeadlineExceeded
		},
	})
	_, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "b2c"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
}

// TestCircuitBreaker: consecutive connection failures open the circuit
// (fail-fast, no dialing), the cooldown admits a half-open probe, and a
// healthy answer closes it again.
func TestCircuitBreaker(t *testing.T) {
	clk := &fakeClock{}
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	down.Close() // nothing listens: every dial fails
	c := New(Config{
		BaseURL:          down.URL,
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Second,
		Sleep:            noSleep,
		Now:              clk.Now,
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := c.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); err == nil {
			t.Fatal("dead server answered")
		}
	}
	if _, err := c.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("third call past threshold: %v, want circuit open", err)
	}

	// A live server comes back; before the cooldown the circuit still
	// rejects, after it the probe goes through and closes the circuit.
	up, _ := scriptedServer(t, []int{200}, `{"cached":false,"result":{}}`)
	c.cfg.BaseURL = up.URL
	if _, err := c.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call during cooldown: %v, want circuit open", err)
	}
	clk.advance(6 * time.Second)
	if _, err := c.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if _, err := c.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

// TestWithBaseURLBreakerIsolation: WithBaseURL shares the breaker set, but
// circuits are per endpoint host — opening the circuit against a dead
// worker leaves a sibling client pointed at a healthy coordinator working.
func TestWithBaseURLBreakerIsolation(t *testing.T) {
	clk := &fakeClock{}
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // port released: every dial is refused
	up, upCalls := scriptedServer(t, []int{200}, `{"cached":false,"result":{}}`)

	base := New(Config{
		BaseURL:          up.URL,
		MaxRetries:       -1,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour,
		Sleep:            noSleep,
		Now:              clk.Now,
	})
	worker := base.WithBaseURL(dead.URL)
	if worker.breakers != base.breakers {
		t.Fatal("WithBaseURL did not share the breaker set")
	}
	if worker.http != base.http {
		t.Fatal("WithBaseURL did not share the transport")
	}

	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := worker.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); err == nil {
			t.Fatal("dead worker answered")
		}
	}
	if _, err := worker.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("worker circuit past threshold: %v, want open", err)
	}
	// The coordinator's circuit never saw those failures.
	if _, err := base.RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); err != nil {
		t.Fatalf("healthy endpoint caught the dead worker's circuit: %v", err)
	}
	if got := upCalls.Load(); got != 1 {
		t.Fatalf("healthy endpoint saw %d calls, want 1", got)
	}
	// And a second derived client for the SAME dead host inherits the open
	// circuit — that is the point of sharing the set.
	if _, err := base.WithBaseURL(dead.URL).RunSim(ctx, api.SimRequest{Benchmark: "b2c"}); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("re-derived client to the open host: %v, want circuit open", err)
	}
}

// TestPostFollowsRedirectWithBody: a 307 from the coordinator to the job's
// owning worker replays the POST body (bytes.Reader supplies GetBody), so
// cross-daemon hops are invisible to the caller.
func TestPostFollowsRedirectWithBody(t *testing.T) {
	var gotBody atomic.Value
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		gotBody.Store(string(b))
		w.WriteHeader(200)
		_, _ = w.Write([]byte(`{"cached":true,"result":{}}`))
	}))
	t.Cleanup(owner.Close)
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, owner.URL+r.URL.Path, http.StatusTemporaryRedirect)
	}))
	t.Cleanup(front.Close)

	c := New(Config{BaseURL: front.URL, Sleep: noSleep})
	env, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "b2c", Ops: 12345})
	if err != nil {
		t.Fatalf("redirected POST: %v", err)
	}
	if !env.Cached {
		t.Fatal("lost the cached flag across the redirect")
	}
	body, _ := gotBody.Load().(string)
	if body == "" {
		t.Fatal("redirect target never saw the request")
	}
	if !strings.Contains(body, `"ops":12345`) || !strings.Contains(body, `"benchmark":"b2c"`) {
		t.Fatalf("body not replayed across the 307: %s", body)
	}
}

// TestEndToEndAgainstDaemonWithFaults is the cross-layer contract test:
// against the real API server with the partial-write fault armed, the
// client's retry discipline still delivers the correct result.
func TestEndToEndAgainstDaemonWithFaults(t *testing.T) {
	q := jobq.New(jobq.Config{Workers: 2, Capacity: 8})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	})
	srv := api.New(q, simcache.New(1<<20))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	prev := faultinject.Enable(faultinject.MustParse(21,
		"api.respond.partialwrite:times=1,api.respond.latency:times=1:delay=10ms"))
	defer faultinject.Enable(prev)

	c := New(Config{BaseURL: ts.URL, Sleep: noSleep})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	env, err := c.RunSim(ctx, api.SimRequest{Benchmark: "b2c", Ops: 10_000})
	if err != nil {
		t.Fatalf("client did not survive the fault plan: %v", err)
	}
	if env.Result.Benchmark != "b2c" || env.Result.Cycles <= 0 {
		t.Fatalf("result %+v", env.Result)
	}
	if !c.Ready(ctx) {
		t.Fatal("daemon not ready after the exchange")
	}
}

// TestRetryBudgetHeader: every attempt advertises its remaining retries in
// X-Cdpd-Retry-Budget, counting down as attempts burn — the coordinator
// reads it to cap placement attempts (primaries + steals + hedges) at what
// the client will actually wait around for.
func TestRetryBudgetHeader(t *testing.T) {
	var budgets []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		budgets = append(budgets, r.Header.Get(api.RetryBudgetHeader))
		if calls.Add(1) < 3 {
			w.WriteHeader(http.StatusInternalServerError)
			_, _ = w.Write([]byte(`{"error":"scripted failure"}`))
			return
		}
		_, _ = w.Write([]byte(`{"cached":false,"result":{}}`))
	}))
	t.Cleanup(ts.Close)

	c := New(Config{BaseURL: ts.URL, MaxRetries: 3, Sleep: noSleep, Rand: func() float64 { return 0.5 }})
	if _, err := c.RunSim(context.Background(), api.SimRequest{Benchmark: "b2c"}); err != nil {
		t.Fatal(err)
	}
	want := []string{"3", "2", "1"}
	if len(budgets) != len(want) {
		t.Fatalf("budget headers %v, want %v", budgets, want)
	}
	for i := range want {
		if budgets[i] != want[i] {
			t.Fatalf("attempt %d advertised budget %q, want %q", i, budgets[i], want[i])
		}
	}
}
