package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/jobq"
	"repro/internal/promtest"
	"repro/internal/sim"
	"repro/internal/simcache"
)

// startCoordinator brings up a coordinator on an httptest listener.
func startCoordinator(t *testing.T, opts CoordinatorOptions) (*Coordinator, *httptest.Server) {
	t.Helper()
	if opts.Queue.Workers == 0 {
		opts.Queue = jobq.Config{Workers: 2, Capacity: 32}
	}
	c, err := NewCoordinator(opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	ts := httptest.NewServer(c)
	t.Cleanup(func() {
		ts.Close()
		c.Close(t.Context())
	})
	return c, ts
}

// startWorker brings up a worker on an httptest listener whose URL is its
// advertised address. The listener must exist before the worker (the
// worker advertises its URL at registration), so the handler is swapped in
// after construction.
func startWorker(t *testing.T, joinURL, name string, opts WorkerOptions) (*Worker, *httptest.Server) {
	t.Helper()
	var handler atomic.Value // http.Handler
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if h, _ := handler.Load().(http.Handler); h != nil {
			h.ServeHTTP(w, r)
			return
		}
		http.Error(w, "starting", http.StatusServiceUnavailable)
	}))
	opts.Name = name
	opts.SelfURL = ts.URL
	opts.JoinURL = joinURL
	if opts.Queue.Workers == 0 {
		opts.Queue = jobq.Config{Workers: 2, Capacity: 32}
	}
	w, err := NewWorker(opts)
	if err != nil {
		ts.Close()
		t.Fatalf("NewWorker(%s): %v", name, err)
	}
	handler.Store(http.Handler(w))
	w.Start()
	t.Cleanup(func() {
		ts.Close()
		w.Close(t.Context())
	})
	return w, ts
}

// waitForWorkers polls the coordinator until n workers hold live leases.
func waitForWorkers(t *testing.T, c *Coordinator, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c.mu.Lock()
		c.expireLocked(time.Now())
		live := len(c.members)
		c.mu.Unlock()
		if live == n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("coordinator never reached %d live workers", n)
}

// postSimURL posts one request body to base/v1/sim?wait=1 and decodes the
// envelope.
func postSimURL(t *testing.T, base string, req api.SimRequest) (cached bool, result []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sim?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/sim: %v", err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/sim: %d %s", resp.StatusCode, payload)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", payload, err)
	}
	return env.Cached, env.Result
}

// standaloneResult runs req on a fresh single-process api.Server — the
// reference the cluster must agree with byte for byte.
func standaloneResult(t *testing.T, req api.SimRequest) []byte {
	t.Helper()
	queue := jobq.New(jobq.Config{Workers: 2, Capacity: 16})
	t.Cleanup(func() { queue.Shutdown(t.Context()) })
	s := api.New(queue, simcache.New(1<<24))
	req.Wait = true
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("POST", "/v1/sim", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("standalone sim: %d %s", w.Code, w.Body)
	}
	var env envelope
	if err := json.Unmarshal(w.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	return env.Result
}

// requestOwnedBy searches the ops axis for a request whose content key a
// specific member of the given ring owns, so tests can steer placements
// deterministically.
func requestOwnedBy(t *testing.T, owner string, members []string, baseOps, ckptEvery int) (api.SimRequest, string) {
	t.Helper()
	r := NewRing(DefaultVirtualNodes)
	r.SetMembers(members)
	for ops := baseOps; ops < baseOps+100_000; ops += 1000 {
		req := api.SimRequest{Benchmark: "quake", Ops: ops, CheckpointEveryOps: ckptEvery}
		spec, cfg, resolvedOps, err := api.ResolveSim(req)
		if err != nil {
			t.Fatal(err)
		}
		key := simcache.KeyFor(spec, cfg, resolvedOps)
		if name, _ := r.Owner(key); name == owner {
			return req, api.SimJobID(key)
		}
	}
	t.Fatalf("no ops near %d produced a key owned by %s", baseOps, owner)
	return api.SimRequest{}, ""
}

// scrape fetches a /metrics payload over HTTP and parses it.
func scrape(t *testing.T, base string) map[string]*promtest.Family {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d %s", resp.StatusCode, body)
	}
	return promtest.ParseExposition(t, string(body))
}

// TestClusterExactlyOnceSharedTier is the tentpole's first acceptance
// test: a coordinator with two workers serves byte-identical results to a
// standalone daemon, the simulation runs exactly once cluster-wide, and
// the second request is served from the shared tier (cached, zero extra
// runs).
func TestClusterExactlyOnceSharedTier(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{})
	startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	startWorker(t, coordTS.URL, "w2", WorkerOptions{})
	waitForWorkers(t, coord, 2)

	req := api.SimRequest{Benchmark: "quake", Ops: 20_000}
	ref := standaloneResult(t, req)

	runsBefore := sim.Runs()
	cached1, res1 := postSimURL(t, coordTS.URL, req)
	cached2, res2 := postSimURL(t, coordTS.URL, req)
	if delta := sim.Runs() - runsBefore; delta != 1 {
		t.Errorf("cluster ran the simulation %d times, want exactly 1", delta)
	}
	if cached1 {
		t.Errorf("first request reported cached")
	}
	if !cached2 {
		t.Errorf("second request not served from the shared tier")
	}
	if !bytes.Equal(res1, ref) {
		t.Errorf("cluster result differs from standalone:\ncluster    %s\nstandalone %s", res1, ref)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("second (cached) result differs from first")
	}
}

// TestClusterPeerFetch: when a join moves a key's ownership, the new owner
// serves it by fetching from the previous owner's cache tier instead of
// recomputing.
func TestClusterPeerFetch(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{})
	startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	waitForWorkers(t, coord, 1)

	// A request whose key w2 will own once it joins — but computed now,
	// while w1 is the whole ring.
	req, _ := requestOwnedBy(t, "w2", []string{"w1", "w2"}, 20_000, 0)
	_, res1 := postSimURL(t, coordTS.URL, req)

	w2, _ := startWorker(t, coordTS.URL, "w2", WorkerOptions{})
	waitForWorkers(t, coord, 2)

	runsBefore := sim.Runs()
	_, res2 := postSimURL(t, coordTS.URL, req)
	if delta := sim.Runs() - runsBefore; delta != 0 {
		t.Errorf("re-request after rebalance ran %d simulations, want 0 (peer fetch)", delta)
	}
	if got := w2.TierStats().PeerHits; got < 1 {
		t.Errorf("w2 peer hits = %d, want >= 1", got)
	}
	if !bytes.Equal(res1, res2) {
		t.Errorf("peer-fetched result differs:\nbefore %s\nafter  %s", res1, res2)
	}
}

// TestClusterStealResumesFromCheckpoint is the kill-mid-job drill: the
// owner dies while simulating, the coordinator steals the job for the
// survivor, and the survivor resumes from the shared checkpoint snapshot —
// finishing with bytes identical to an uninterrupted standalone run.
func TestClusterStealResumesFromCheckpoint(t *testing.T) {
	ckptDir := t.TempDir()
	coord, coordTS := startCoordinator(t, CoordinatorOptions{LeaseTTL: 60 * time.Second})
	workerOpts := func() WorkerOptions {
		return WorkerOptions{API: api.Options{CheckpointDir: ckptDir}}
	}
	_, w1TS := startWorker(t, coordTS.URL, "w1", workerOpts())
	w2, w2TS := startWorker(t, coordTS.URL, "w2", workerOpts())
	waitForWorkers(t, coord, 2)

	// A long, finely checkpointed run owned by w1.
	req, jobID := requestOwnedBy(t, "w1", []string{"w1", "w2"}, 2_000_000, 50_000)
	ref := standaloneResult(t, req)

	// Submit asynchronously; the coordinator answers 202 and forwards in
	// the background.
	body, _ := json.Marshal(req)
	resp, err := http.Post(coordTS.URL+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d", resp.StatusCode)
	}

	// Wait until w1 has persisted at least one boundary snapshot, then
	// kill it mid-job.
	snapPath := filepath.Join(ckptDir, jobID+".snap")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(snapPath); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("w1 never persisted a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	w1TS.CloseClientConnections()
	w1TS.Close()

	// The coordinator's in-flight forward fails, drops w1, and re-routes
	// to w2, which resumes from the snapshot. Poll the coordinator's job
	// view until the external job completes.
	var view struct {
		State  jobq.State      `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	deadline = time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(coordTS.URL + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if err := json.Unmarshal(payload, &view); err != nil {
			t.Fatalf("job view %s: %v", payload, err)
		}
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stolen job never finished (state %s)", view.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if view.State != jobq.StateDone {
		t.Fatalf("stolen job ended %s: %s", view.State, view.Error)
	}
	if !bytes.Equal(view.Result, ref) {
		t.Errorf("stolen+resumed result differs from uninterrupted standalone run:\nstolen     %s\nstandalone %s",
			view.Result, ref)
	}

	if got := coord.steals.Load(); got < 1 {
		t.Errorf("coordinator recorded %d steals, want >= 1", got)
	}
	// The survivor must have resumed from the snapshot rather than
	// restarting at op zero.
	fams := scrape(t, w2TS.URL)
	if fam := fams["cdpd_jobs_resumed_total"]; fam == nil || fam.Value(t, 0) < 1 {
		t.Errorf("w2 resumed no jobs from the shared checkpoint dir")
	}
	_ = w2
}

// TestClusterLeaseExpiry: a registered worker that stops heartbeating is
// dropped by the sweeper, and readiness reflects the empty ring.
func TestClusterLeaseExpiry(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{LeaseTTL: 150 * time.Millisecond})

	// Register a bare member by hand — no heartbeat loop behind it.
	body, _ := json.Marshal(joinRequest{Name: "ghost", URL: "http://127.0.0.1:1"})
	resp, err := http.Post(coordTS.URL+"/v1/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %d", resp.StatusCode)
	}
	waitForWorkers(t, coord, 1)
	waitForWorkers(t, coord, 0) // sweeper expires the lease

	r, err := http.Get(coordTS.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no workers: %d, want 503", r.StatusCode)
	}
}

// TestClusterArenaFanout: a distributed arena sweep produces bytes
// identical to a standalone daemon's sweep of the same matrix, computing
// each cell exactly once across the fleet.
func TestClusterArenaFanout(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{})
	startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	startWorker(t, coordTS.URL, "w2", WorkerOptions{})
	waitForWorkers(t, coord, 2)

	const params = "ops=20000&benchmarks=quake&engines=cdp"

	// Standalone reference: submit, then poll the arena job.
	queue := jobq.New(jobq.Config{Workers: 2, Capacity: 16})
	t.Cleanup(func() { queue.Shutdown(t.Context()) })
	ref := api.New(queue, simcache.New(1<<24))
	w := httptest.NewRecorder()
	ref.ServeHTTP(w, httptest.NewRequest("GET", "/v1/arena?"+params, nil))
	if w.Code != http.StatusAccepted {
		t.Fatalf("standalone arena submit: %d %s", w.Code, w.Body)
	}
	var sub struct {
		JobID string `json:"job_id"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &sub); err != nil {
		t.Fatal(err)
	}
	var refResult []byte
	deadline := time.Now().Add(60 * time.Second)
	for {
		w := httptest.NewRecorder()
		ref.ServeHTTP(w, httptest.NewRequest("GET", "/v1/jobs/"+sub.JobID, nil))
		var view struct {
			State  jobq.State      `json:"state"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.Unmarshal(w.Body.Bytes(), &view); err != nil {
			t.Fatal(err)
		}
		if view.State.Terminal() {
			if view.State != jobq.StateDone {
				t.Fatalf("standalone arena ended %s: %s", view.State, view.Error)
			}
			refResult = view.Result
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("standalone arena never finished")
		}
		time.Sleep(20 * time.Millisecond)
	}

	runsBefore := sim.Runs()
	resp, err := http.Get(coordTS.URL + "/v1/arena?" + params + "&wait=1")
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster arena: %d %s", resp.StatusCode, payload)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatal(err)
	}
	// One baseline cell + one cdp cell, each exactly once cluster-wide.
	if delta := sim.Runs() - runsBefore; delta != 2 {
		t.Errorf("distributed arena ran %d simulations, want 2", delta)
	}
	if !bytes.Equal(env.Result, refResult) {
		t.Errorf("distributed arena differs from standalone:\ncluster    %s\nstandalone %s", env.Result, refResult)
	}
}

// TestClusterMetrics: the coordinator's /metrics passes the exposition
// parser and carries the cluster series with believable values.
func TestClusterMetrics(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{})
	startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	startWorker(t, coordTS.URL, "w2", WorkerOptions{})
	waitForWorkers(t, coord, 2)

	postSimURL(t, coordTS.URL, api.SimRequest{Benchmark: "quake", Ops: 15_000})

	fams := scrape(t, coordTS.URL)
	for _, name := range []string{
		"cdpd_cluster_workers_live", "cdpd_cluster_steals_total",
		"cdpd_cluster_rebalances_total", "cdpd_cluster_generation",
		"cdpd_cluster_worker_inflight",
		"cdpd_cluster_hedges_total", "cdpd_cluster_hedge_wins_total",
		"cdpd_cluster_readopted_total", "cdpd_cluster_placements_open",
	} {
		if fams[name] == nil || len(fams[name].Samples) == 0 {
			t.Errorf("cluster series %s missing from coordinator /metrics", name)
		}
	}
	if got := fams["cdpd_cluster_workers_live"].Value(t, 0); got != 2 {
		t.Errorf("workers_live = %v, want 2", got)
	}
	if got := len(fams["cdpd_cluster_worker_inflight"].Samples); got != 2 {
		t.Errorf("worker_inflight has %d labelled samples, want 2", got)
	}
	for _, sample := range fams["cdpd_cluster_worker_inflight"].Samples {
		if !strings.Contains(sample, `worker="w1"`) && !strings.Contains(sample, `worker="w2"`) {
			t.Errorf("inflight sample %q lacks a worker label", sample)
		}
	}
	// Rebalances: two joins = at least two ring rebuilds.
	if got := fams["cdpd_cluster_rebalances_total"].Value(t, 0); got < 2 {
		t.Errorf("rebalances_total = %v after two joins, want >= 2", got)
	}
}

// TestClusterNoWorkers: with an empty ring, a waited submission fails with
// 503 rather than hanging.
func TestClusterNoWorkers(t *testing.T) {
	_, coordTS := startCoordinator(t, CoordinatorOptions{})
	body, _ := json.Marshal(api.SimRequest{Benchmark: "quake", Ops: 10_000, Wait: true})
	resp, err := http.Post(coordTS.URL+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	payload, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit with no workers: %d %s, want 503", resp.StatusCode, payload)
	}
	if !strings.Contains(string(payload), "no live workers") {
		t.Errorf("error %s does not name the cause", payload)
	}
}

// TestClusterTraceRedirect: trace requests are redirected to the worker
// that ran the job.
func TestClusterTraceRedirect(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{})
	_, w1TS := startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	waitForWorkers(t, coord, 1)

	req := api.SimRequest{Benchmark: "quake", Ops: 15_000, Trace: true}
	spec, cfg, ops, err := api.ResolveSim(req)
	if err != nil {
		t.Fatal(err)
	}
	jobID := api.SimJobID(simcache.KeyFor(spec, cfg, ops))
	postSimURL(t, coordTS.URL, req)

	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(coordTS.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTemporaryRedirect {
		t.Fatalf("trace redirect: %d, want 307", resp.StatusCode)
	}
	want := w1TS.URL + "/v1/jobs/" + jobID + "/trace"
	if got := resp.Header.Get("Location"); got != want {
		t.Fatalf("trace Location = %q, want %q", got, want)
	}
}

// TestWorkerCacheEndpoint: the peer-tier endpoint serves resident keys
// raw, 404s missing ones, and rejects malformed keys.
func TestWorkerCacheEndpoint(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{})
	_, w1TS := startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	waitForWorkers(t, coord, 1)

	req := api.SimRequest{Benchmark: "quake", Ops: 15_000}
	spec, cfg, ops, err := api.ResolveSim(req)
	if err != nil {
		t.Fatal(err)
	}
	key := simcache.KeyFor(spec, cfg, ops)
	_, want := postSimURL(t, coordTS.URL, req)

	resp, err := http.Get(w1TS.URL + simcache.PeerCachePath + key.Hex())
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache endpoint: %d %s", resp.StatusCode, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("cache endpoint served different bytes than the sim envelope")
	}

	for path, wantCode := range map[string]int{
		simcache.PeerCachePath + strings.Repeat("00", 32): http.StatusNotFound,
		simcache.PeerCachePath + "zz":                     http.StatusBadRequest,
	} {
		resp, err := http.Get(w1TS.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, wantCode)
		}
	}
}

// TestArenaCellRequestMatchesArenaConfig pins the key equivalence the
// distributed arena rests on: the /v1/sim request ArenaCellRequest builds
// for a cell must resolve to the exact content key the standalone arena
// computes that cell under. If arenaConfig and ArenaCellRequest ever
// drift, fan-out stops deduplicating against local sweeps.
func TestArenaCellRequestMatchesArenaConfig(t *testing.T) {
	const ops = 20_000
	for _, engine := range []string{"stride", "cdp", "markov"} {
		req, err := api.ArenaCellRequest("quake", engine, ops)
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		spec, cfg, resolvedOps, err := api.ResolveSim(req)
		if err != nil {
			t.Fatalf("%s: resolve: %v", engine, err)
		}
		got := simcache.KeyFor(spec, cfg, resolvedOps)
		want, err := api.ArenaCellKey("quake", engine, ops)
		if err != nil {
			t.Fatalf("%s: arena key: %v", engine, err)
		}
		if got != want {
			t.Errorf("engine %s: ArenaCellRequest key %s != arenaConfig key %s", engine, got, want)
		}
	}
	// Parameterised canonical engines are rejected on both paths.
	if _, err := api.ArenaCellRequest("quake", "markov(budget_kb=64)", ops); err == nil {
		t.Error("parameterised markov accepted by ArenaCellRequest")
	}
}
