package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/prefetch/registry"
	"repro/internal/report"
	"repro/internal/simcache"
	"repro/internal/workloads"
)

const (
	// DefaultLeaseTTL is how long a worker's registration survives without
	// a heartbeat. Workers heartbeat at a third of it, so one lost beat is
	// harmless and three in a row expire the lease.
	DefaultLeaseTTL = 3 * time.Second

	// maxRouteAttempts bounds how many distinct placements one job gets
	// before the coordinator gives up; each failed placement drops a dead
	// worker from the ring first, so the bound only bites when workers die
	// faster than they join.
	maxRouteAttempts = 8

	// maxPlacedEntries bounds the job→worker placement memory (used for
	// trace redirects). The map resets when full; a reset only costs trace
	// redirect accuracy for old jobs, never correctness.
	maxPlacedEntries = 4096

	// arenaFanout bounds concurrently in-flight cells during a distributed
	// arena sweep, so one sweep cannot flood a small fleet's queues into
	// backpressure.
	arenaFanout = 8

	// hedgeHeadroom scales the placement-rate EWMA into the hedge delay: a
	// placement this many times slower than the running mean is treated as
	// a likely straggler and a second placement races it. The multiplier
	// plays the p99 role the api layer's adaptive timeout uses headroom
	// for, just at hedging (not failing) aggressiveness.
	hedgeHeadroom = 4
	// hedgeDelayMin keeps hedges from firing on normal jitter once the
	// EWMA has converged on a fast fleet; hedgeDelayMax keeps a huge sim's
	// hedge from waiting out most of the job; hedgeDelayDefault covers the
	// cold start before any placement has been observed.
	hedgeDelayMin     = 250 * time.Millisecond
	hedgeDelayMax     = 30 * time.Second
	hedgeDelayDefault = 2 * time.Second
	// routeRateAlpha is the EWMA smoothing factor for placement ns/op
	// (same constant the api layer uses for run rate).
	routeRateAlpha = 0.3
)

// errNoWorkers fails jobs routed while the ring is empty.
var errNoWorkers = errors.New("cluster: no live workers")

// joinRequest is the register/heartbeat/leave body a worker posts.
type joinRequest struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// memberInfo is the public shape of one ring member.
type memberInfo struct {
	Name     string `json:"name"`
	URL      string `json:"url"`
	Inflight int    `json:"inflight,omitempty"`
}

// joinReply answers register and heartbeat: the lease the worker must keep
// renewing, plus the membership snapshot it syncs its ring replica from.
// Generation increments on every membership change, so a worker can skip
// rebuilding an identical ring.
type joinReply struct {
	TTLMillis  int64        `json:"ttl_ms"`
	Generation uint64       `json:"generation"`
	Members    []memberInfo `json:"members"`
}

// envelope mirrors the worker's terminal response shape.
type envelope struct {
	Cached bool            `json:"cached"`
	Result json.RawMessage `json:"result"`
}

// member is one registered worker. Fields are guarded by Coordinator.mu;
// they cannot carry a guardedby annotation because the mutex lives on the
// coordinator, not here (same convention as jobq's heap index).
type member struct {
	info     memberInfo
	expires  time.Time
	inflight int
}

// attempt is one in-flight placement of a job on a worker. Dropping the
// worker cancels the attempt's context, which unblocks the forward so it
// can steal the job back and re-route it.
type attempt struct {
	jobID  string
	worker string
	cancel context.CancelFunc
}

// CoordinatorOptions tunes a coordinator. The zero value works.
type CoordinatorOptions struct {
	// LeaseTTL is the heartbeat lease (0 = DefaultLeaseTTL). Tests shrink
	// it to make lease-lapse stealing fast.
	LeaseTTL time.Duration
	// CheckpointEveryOps is the default segmentation interval stamped onto
	// requests that do not choose their own — mirrored onto the forwarded
	// request explicitly, so every worker computes the same content key the
	// coordinator routed by.
	CheckpointEveryOps int
	// CacheBytes bounds the coordinator's local cache (assembled arena
	// reports; 0 = 64 MiB). Simulation results live on the workers.
	CacheBytes int64
	// Queue sizes the coordinator's local job pool (arena assembly jobs and
	// the external handles of proxied sims).
	Queue jobq.Config
	// StateDir persists the membership/placement write-ahead journal so a
	// restarted coordinator re-adopts its generation, re-leases surviving
	// workers, and re-routes orphaned placements ("" = memory only; a
	// restart forgets the cluster and workers must re-register from
	// scratch).
	StateDir string
	// HedgeDelay fixes the straggler threshold before a second placement
	// races the first (0 = derive it from the placement-rate EWMA). Tests
	// and chaos scenarios pin it to make hedging deterministic.
	HedgeDelay time.Duration
	// Logger receives cluster lifecycle logs. Nil discards.
	Logger *slog.Logger
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return DefaultLeaseTTL
}

func (o CoordinatorOptions) cacheBytes() int64 {
	if o.CacheBytes > 0 {
		return o.CacheBytes
	}
	return 64 << 20
}

// Coordinator owns cluster membership and routes content-keyed jobs to
// their ring owners. It embeds a full api.Server — job polling, streaming,
// cancellation, metrics and health all behave exactly as on a standalone
// daemon — and overrides the submit paths with routed versions.
type Coordinator struct {
	opts   CoordinatorOptions
	queue  *jobq.Queue
	cache  *simcache.Cache
	api    *api.Server
	mux    *http.ServeMux
	httpc  *http.Client
	logger *slog.Logger

	// rootCtx is the coordinator's lifecycle: forwards and the lease
	// sweeper run under it; Close cancels it.
	rootCtx    context.Context
	rootCancel context.CancelFunc
	sweeperWG  sync.WaitGroup

	// journal is the write-ahead membership/placement log (nil without
	// StateDir; every append site tolerates nil).
	journal *journal

	mu         sync.Mutex
	members    map[string]*member // simlint:guardedby mu
	ring       *Ring              // simlint:guardedby mu
	generation uint64             // simlint:guardedby mu
	assigns    map[*attempt]bool  // simlint:guardedby mu
	placed     map[string]string  // simlint:guardedby mu
	placeRefs  map[string]int     // simlint:guardedby mu

	steals     atomic.Uint64
	rebalances atomic.Uint64
	hedges     atomic.Uint64
	hedgeWins  atomic.Uint64
	readopted  atomic.Uint64
	// routeEwmaNs is Float64bits of the EWMA nanoseconds-per-op a
	// successful placement costs end to end; hedgeDelay derives the
	// straggler threshold from it (the api layer's adaptiveTimeout
	// pattern).
	routeEwmaNs atomic.Uint64
}

// NewCoordinator builds and starts a coordinator: its local queue, the
// embedded API server, and the lease sweeper. The coordinator is the
// cluster's lifecycle root — forwards and sweeps must outlive any single
// client request, and only Close stops them.
//
// simlint:rootctx
func NewCoordinator(opts CoordinatorOptions) (*Coordinator, error) {
	ctx, cancel := context.WithCancel(context.Background())
	c := &Coordinator{
		opts:       opts,
		queue:      jobq.New(opts.Queue),
		cache:      simcache.New(opts.cacheBytes()),
		mux:        http.NewServeMux(),
		httpc:      &http.Client{},
		logger:     opts.Logger,
		rootCtx:    ctx,
		rootCancel: cancel,
		members:    map[string]*member{},
		ring:       NewRing(DefaultVirtualNodes),
		assigns:    map[*attempt]bool{},
		placed:     map[string]string{},
		placeRefs:  map[string]int{},
	}
	if c.logger == nil {
		c.logger = slog.New(slog.DiscardHandler)
	}
	srv, err := api.NewWithOptions(c.queue, c.cache, api.Options{Logger: opts.Logger})
	if err != nil {
		cancel()
		return nil, err
	}
	c.api = srv

	// Crash recovery: replay the journal before serving anything, so the
	// first register/submit already sees the re-adopted ring.
	var recovered JournalState
	if opts.StateDir != "" {
		jr, state, err := openJournal(opts.StateDir)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("cluster: opening journal: %w", err)
		}
		c.journal = jr
		recovered = state
		c.adoptJournal(state)
	}

	// Every endpoint the coordinator does not reroute falls through to the
	// embedded API server, so jobs, streams, cancellation, experiments and
	// engine listings behave exactly as standalone.
	c.mux.Handle("/", srv)
	c.mux.HandleFunc("POST /v1/sim", c.handleSubmitSim)
	c.mux.HandleFunc("GET /v1/arena", c.handleArena)
	c.mux.HandleFunc("GET /v1/jobs/{id}/trace", c.handleTrace)
	c.mux.HandleFunc("POST /v1/cluster/register", c.handleRegister)
	c.mux.HandleFunc("POST /v1/cluster/heartbeat", c.handleHeartbeat)
	c.mux.HandleFunc("POST /v1/cluster/leave", c.handleLeave)
	c.mux.HandleFunc("GET /v1/cluster/members", c.handleMembers)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /readyz", c.handleReadyz)

	c.sweeperWG.Add(1)
	go c.sweepLeases(ctx)

	// Re-route placements the previous incarnation accepted but never
	// finished. The journaled members were re-leased above, so routing
	// works immediately; a member that actually died with the coordinator
	// transport-fails its placement and the steal path drops it.
	for _, pl := range recovered.Open {
		c.readoptPlacement(pl)
	}
	return c, nil
}

// adoptJournal installs replayed membership: every surviving worker gets a
// fresh lease (it has heartbeats in flight toward us already), and the
// ring rebuild bumps the generation past anything the fleet has seen, so
// the next heartbeat reply forces every worker to resync its replica.
func (c *Coordinator) adoptJournal(state JournalState) {
	if len(state.Members) == 0 && state.Generation == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for name, url := range state.Members {
		c.members[name] = &member{
			info:    memberInfo{Name: name, URL: url},
			expires: now.Add(c.opts.leaseTTL()),
		}
	}
	c.generation = state.Generation
	c.rebuildRingLocked()
	c.logger.Info("journal replayed", "workers", len(state.Members),
		"generation", c.generation, "open_placements", len(state.Open),
		"torn_records", state.TornRecords)
}

// readoptPlacement re-submits one orphaned placement from the journal and
// forwards it to the content key's current owner, where the submit-path
// checkpoint probe resumes the victim's snapshot if one exists. The job ID
// is recomputed from the request, so a corrupted record that no longer
// resolves is journaled done and dropped rather than re-routed blind.
func (c *Coordinator) readoptPlacement(pl Placement) {
	var req api.SimRequest
	if err := json.Unmarshal(pl.Req, &req); err != nil {
		c.logger.Warn("dropping unresolvable journaled placement", "job_id", pl.Job, "err", err)
		c.journal.append(journalRecord{T: "done", Job: pl.Job})
		return
	}
	spec, cfg, ops, err := api.ResolveSim(req)
	if err != nil {
		c.logger.Warn("dropping unresolvable journaled placement", "job_id", pl.Job, "err", err)
		c.journal.append(journalRecord{T: "done", Job: pl.Job})
		return
	}
	key := simcache.KeyFor(spec, cfg, ops)
	id := api.SimJobID(key)
	job, err := c.queue.SubmitExternal(id, req.Priority)
	if err != nil {
		// Duplicate means a live forward already owns it; anything else
		// means the queue is closing. Either way there is nothing to adopt.
		return
	}
	c.readopted.Add(1)
	c.logger.Info("placement re-adopted from journal", "job_id", id, "last_worker", pl.Worker)
	go c.forward(job, id, key, ops, req, maxRouteAttempts)
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// API exposes the embedded server (drain flips, tests).
func (c *Coordinator) API() *api.Server { return c.api }

// Close stops the sweeper, cancels in-flight forwards, and drains the
// local queue within ctx's deadline. The journal stays open until the
// forwards have settled, so their terminal records land.
func (c *Coordinator) Close(ctx context.Context) error {
	c.rootCancel()
	c.sweeperWG.Wait()
	err := c.queue.Shutdown(ctx)
	c.journal.Close()
	return err
}

// Kill tears the coordinator down the way a SIGKILL would, for the chaos
// orchestrator: the journal is closed first (a dead process appends
// nothing), so in-flight placements stay open on disk for the next
// incarnation to re-adopt, then everything running is canceled without
// grace.
//
// simlint:rootctx
func (c *Coordinator) Kill() {
	c.journal.Close()
	c.rootCancel()
	c.sweeperWG.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = c.queue.Shutdown(ctx)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// ---- membership ----

// handleRegister admits (or refreshes) a worker. The register.error fault
// point models an admission failure the worker must retry through.
func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if err := faultinject.Error("cluster.register.error"); err != nil {
		writeError(w, http.StatusInternalServerError, "registration failed: %v", err)
		return
	}
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad register body: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "register: empty worker name")
		return
	}
	if u, err := url.Parse(req.URL); err != nil || !u.IsAbs() || u.Host == "" {
		writeError(w, http.StatusBadRequest, "register: worker url %q is not absolute", req.URL)
		return
	}

	c.mu.Lock()
	c.expireLocked(time.Now())
	m, known := c.members[req.Name]
	if !known {
		m = &member{info: memberInfo{Name: req.Name, URL: req.URL}}
		c.members[req.Name] = m
		c.rebuildRingLocked()
		c.journal.append(journalRecord{T: "member", Name: req.Name, URL: req.URL, Gen: c.generation})
		c.logger.Info("worker joined", "worker", req.Name, "url", req.URL,
			"workers", len(c.members))
	} else if m.info.URL != req.URL {
		// Same name, new address: the worker restarted somewhere else. The
		// ring keys by name, so ownership is unchanged.
		m.info.URL = req.URL
		c.journal.append(journalRecord{T: "member", Name: req.Name, URL: req.URL, Gen: c.generation})
	}
	m.expires = time.Now().Add(c.opts.leaseTTL())
	reply := c.joinReplyLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

// handleHeartbeat renews a lease. Unknown workers get 404 and re-register
// — that is the recovery path after a lease lapses or the coordinator
// restarts with empty state.
func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad heartbeat body: %v", err)
		return
	}
	c.mu.Lock()
	c.expireLocked(time.Now())
	m, ok := c.members[req.Name]
	if !ok {
		c.mu.Unlock()
		writeError(w, http.StatusNotFound, "heartbeat from unregistered worker %q; re-register", req.Name)
		return
	}
	m.expires = time.Now().Add(c.opts.leaseTTL())
	reply := c.joinReplyLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

// handleLeave is a graceful departure: the worker drains, so drop it now
// instead of waiting out the lease.
func (c *Coordinator) handleLeave(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad leave body: %v", err)
		return
	}
	c.dropMember(req.Name, "left")
	writeJSON(w, http.StatusOK, map[string]string{"left": req.Name})
}

// handleMembers reports the live ring.
func (c *Coordinator) handleMembers(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.expireLocked(time.Now())
	reply := c.joinReplyLocked()
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, reply)
}

// joinReplyLocked snapshots membership for register/heartbeat/members
// replies. Caller holds c.mu.
func (c *Coordinator) joinReplyLocked() joinReply {
	reply := joinReply{
		TTLMillis:  c.opts.leaseTTL().Milliseconds(),
		Generation: c.generation,
	}
	for _, name := range c.ring.Members() {
		m := c.members[name]
		reply.Members = append(reply.Members, memberInfo{
			Name: m.info.Name, URL: m.info.URL, Inflight: m.inflight,
		})
	}
	return reply
}

// rebuildRingLocked recomputes the ring from the live member set and bumps
// the generation. Caller holds c.mu.
func (c *Coordinator) rebuildRingLocked() {
	names := make([]string, 0, len(c.members))
	for name := range c.members {
		names = append(names, name)
	}
	c.ring.SetMembers(names)
	c.generation++
	c.rebalances.Add(1)
}

// expireLocked drops every member whose lease has lapsed. Caller holds
// c.mu.
func (c *Coordinator) expireLocked(now time.Time) {
	for name, m := range c.members {
		if now.After(m.expires) {
			c.dropLocked(name, "lease expired")
		}
	}
}

// dropLocked removes one member, rebuilds the ring, and cancels the
// member's in-flight placements so their forwards steal the jobs back.
// Caller holds c.mu.
func (c *Coordinator) dropLocked(name, reason string) {
	if _, ok := c.members[name]; !ok {
		return
	}
	delete(c.members, name)
	c.rebuildRingLocked()
	c.journal.append(journalRecord{T: "leave", Name: name, Gen: c.generation})
	stolen := 0
	for at := range c.assigns {
		if at.worker == name {
			at.cancel()
			stolen++
		}
	}
	c.logger.Info("worker dropped", "worker", name, "reason", reason,
		"inflight_stolen", stolen, "workers", len(c.members))
}

func (c *Coordinator) dropMember(name, reason string) {
	c.mu.Lock()
	c.dropLocked(name, reason)
	c.mu.Unlock()
}

// sweepLeases expires lapsed leases on a timer, so a silent worker is
// dropped (and its jobs stolen) even when no request happens to touch the
// ring.
func (c *Coordinator) sweepLeases(ctx context.Context) {
	defer c.sweeperWG.Done()
	tick := time.NewTicker(c.opts.leaseTTL() / 2)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-tick.C:
			c.mu.Lock()
			c.expireLocked(now)
			c.mu.Unlock()
		}
	}
}

// ---- routing ----

// pickOwner lazily expires lapsed leases and returns key's ring owner.
func (c *Coordinator) pickOwner(key simcache.Key) (memberInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.expireLocked(time.Now())
	name, ok := c.ring.Owner(key)
	if !ok {
		return memberInfo{}, false
	}
	return c.members[name].info, true
}

// trackAttempt registers an in-flight placement (and the owner's inflight
// gauge) so dropping the worker can cancel it.
func (c *Coordinator) trackAttempt(at *attempt) {
	c.mu.Lock()
	c.assigns[at] = true
	if m, ok := c.members[at.worker]; ok {
		m.inflight++
	}
	c.mu.Unlock()
}

func (c *Coordinator) untrackAttempt(at *attempt) {
	c.mu.Lock()
	delete(c.assigns, at)
	if m, ok := c.members[at.worker]; ok && m.inflight > 0 {
		m.inflight--
	}
	c.mu.Unlock()
}

// notePlaced remembers which worker a job landed on, for trace redirects.
func (c *Coordinator) notePlaced(id, workerURL string) {
	c.mu.Lock()
	if len(c.placed) >= maxPlacedEntries {
		c.placed = map[string]string{}
	}
	c.placed[id] = workerURL
	c.mu.Unlock()
}

// observeRouteRate folds one successful placement's end-to-end cost into
// the EWMA hedgeDelay derives straggler thresholds from (the api layer's
// observeSimRate pattern: lock-free CAS over Float64bits).
func (c *Coordinator) observeRouteRate(elapsed time.Duration, ops int) {
	if ops <= 0 || elapsed <= 0 {
		return
	}
	sample := float64(elapsed.Nanoseconds()) / float64(ops)
	for {
		old := c.routeEwmaNs.Load()
		next := sample
		if old != 0 {
			next = routeRateAlpha*sample + (1-routeRateAlpha)*math.Float64frombits(old)
		}
		if c.routeEwmaNs.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// hedgeDelay is how long a placement may run before a second one races it:
// headroom × EWMA ns/op × ops, clamped, with a fixed default before the
// first observation.
func (c *Coordinator) hedgeDelay(ops int) time.Duration {
	if c.opts.HedgeDelay > 0 {
		return c.opts.HedgeDelay
	}
	bits := c.routeEwmaNs.Load()
	if bits == 0 || ops <= 0 {
		return hedgeDelayDefault
	}
	d := time.Duration(hedgeHeadroom * math.Float64frombits(bits) * float64(ops))
	return min(max(d, hedgeDelayMin), hedgeDelayMax)
}

// pickHedge returns a live member for a second placement of key that is
// not the primary: the key's next ring successor, where a replica of the
// result would land anyway.
func (c *Coordinator) pickHedge(key simcache.Key, primary string) (memberInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, name := range c.ring.Successors(key, 2) {
		if name == primary {
			continue
		}
		if m, ok := c.members[name]; ok {
			return m.info, true
		}
	}
	return memberInfo{}, false
}

// routeSim places one simulation on its ring owner and returns the
// worker's terminal answer, journaling the placement lifecycle so a
// coordinator crash can re-adopt it. A transport-level failure is treated
// as a dead worker: drop it from the ring (stealing its other in-flight
// jobs too) and re-route to the new owner, who resumes from the latest
// shared checkpoint snapshot when there is one. An HTTP-level error means
// the worker is alive and rejecting — that fails the job, it does not
// steal. A placement that outlives the EWMA-derived hedge delay gets a
// second placement racing it on the key's next successor; first completion
// wins, and the shared budget bounds primaries + steals + hedges together.
func (c *Coordinator) routeSim(ctx context.Context, id string, key simcache.Key, ops int, req api.SimRequest, budget int) ([]byte, bool, error) {
	budget = max(1, min(budget, maxRouteAttempts))
	req.Wait = true
	body, err := json.Marshal(req)
	if err != nil {
		return nil, false, err
	}
	c.journalBegin(id, body)
	defer c.journalEnd(id)
	var lastErr error
	for used := 0; used < budget; {
		owner, ok := c.pickOwner(key)
		if !ok {
			return nil, false, errNoWorkers
		}
		data, cached, spoke, err := c.placeHedged(ctx, id, key, owner, body, ops, &used, budget)
		if err == nil {
			return data, cached, nil
		}
		if ctx.Err() != nil {
			// The job was canceled or the coordinator is shutting down —
			// not a dead worker.
			return nil, false, ctx.Err()
		}
		if spoke {
			return nil, false, err
		}
		lastErr = err
	}
	return nil, false, fmt.Errorf("cluster: job %s exhausted its placement budget (%d); workers dying faster than they join (last: %v)", id, budget, lastErr)
}

// journalBegin reference-counts in-flight placements per job ID and
// journals "submit" only on the first: concurrent routes of the same
// content key (a re-adopted placement racing a re-submitted arena cell)
// are one logical placement, so the ledger must see exactly one open/close
// pair for it.
func (c *Coordinator) journalBegin(id string, req json.RawMessage) {
	c.mu.Lock()
	c.placeRefs[id]++
	first := c.placeRefs[id] == 1
	c.mu.Unlock()
	if first {
		c.journal.append(journalRecord{T: "submit", Job: id, Req: req})
	}
}

// journalEnd drops one reference; the last one journals "done" — unless the
// coordinator is dying, in which case the placement must stay open in the
// journal so the next incarnation re-adopts it. (A real crash would never
// reach this defer; the chaos stand-in Kill closes the journal first for
// the same effect.)
func (c *Coordinator) journalEnd(id string) {
	c.mu.Lock()
	c.placeRefs[id]--
	last := c.placeRefs[id] <= 0
	if last {
		delete(c.placeRefs, id)
	}
	c.mu.Unlock()
	if last && c.rootCtx.Err() == nil {
		c.journal.append(journalRecord{T: "done", Job: id})
	}
}

// placeOutcome is one placement's terminal result inside placeHedged.
type placeOutcome struct {
	owner  memberInfo
	data   []byte
	cached bool
	spoke  bool
	err    error
	hedge  bool
}

// placeHedged runs one placement round: the primary placement on owner,
// plus — if it outlives the hedge delay and the budget allows — a hedge on
// the key's next successor. First success wins and cancels the loser (the
// content-keyed job ID makes the duplicate placement collapse on the
// worker side, so "losing" costs nothing). Transport deaths drop the dead
// worker immediately, even while the sibling placement keeps running.
// spoke=true on error means a coherent HTTP rejection the caller must not
// retry.
func (c *Coordinator) placeHedged(ctx context.Context, id string, key simcache.Key, owner memberInfo, body []byte, ops int, used *int, budget int) (data []byte, cached, spoke bool, err error) {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resCh := make(chan placeOutcome, 2)
	launch := func(m memberInfo, hedge bool) {
		*used++
		c.journal.append(journalRecord{T: "placed", Job: id, Worker: m.Name})
		c.notePlaced(id, m.URL)
		go func() {
			start := time.Now()
			data, cached, spoke, err := c.postSim(pctx, m, id, body)
			if err == nil {
				c.observeRouteRate(time.Since(start), ops)
			}
			resCh <- placeOutcome{owner: m, data: data, cached: cached, spoke: spoke, err: err, hedge: hedge}
		}()
	}
	launch(owner, false)

	// The hedge timer only arms while budget remains. The hedge.fire fault
	// point collapses the delay so tests drive the hedge path without
	// waiting out a real straggler.
	var hedgeC <-chan time.Time
	if *used < budget {
		delay := c.hedgeDelay(ops)
		if faultinject.Should("cluster.hedge.fire") {
			delay = 0
		}
		timer := time.NewTimer(delay)
		defer timer.Stop()
		hedgeC = timer.C
	}

	inflight := 1
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			if next, ok := c.pickHedge(key, owner.Name); ok && *used < budget {
				c.hedges.Add(1)
				c.logger.Info("placement hedged", "job_id", id, "primary", owner.Name, "hedge", next.Name)
				launch(next, true)
				inflight++
			}
		case out := <-resCh:
			inflight--
			if out.err == nil {
				if out.hedge {
					c.hedgeWins.Add(1)
				}
				return out.data, out.cached, true, nil
			}
			if ctx.Err() != nil {
				return nil, false, false, ctx.Err()
			}
			if out.spoke {
				return nil, false, true, out.err
			}
			// Transport death: steal now, even if a sibling placement is
			// still in flight.
			c.steals.Add(1)
			c.dropMember(out.owner.Name, fmt.Sprintf("forward failed: %v", out.err))
			c.logger.Info("job stolen", "job_id", id, "from", out.owner.Name)
			// Fault point: a coordinator that dawdles between detecting the
			// death and re-routing; clients must simply keep waiting.
			_ = faultinject.Sleep(ctx, "cluster.steal.stall")
			if firstErr == nil {
				firstErr = out.err
			}
			if inflight == 0 {
				return nil, false, false, firstErr
			}
		case <-ctx.Done():
			return nil, false, false, ctx.Err()
		}
	}
}

// postSim performs one synchronous placement. spoke reports whether the
// worker produced a coherent HTTP response; transport failures (spoke
// false) are what trigger stealing. The attempt is tracked so a lease
// sweep can cancel it mid-flight.
func (c *Coordinator) postSim(ctx context.Context, owner memberInfo, id string, body []byte) (data []byte, cached, spoke bool, err error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	at := &attempt{jobID: id, worker: owner.Name, cancel: cancel}
	c.trackAttempt(at)
	defer c.untrackAttempt(at)

	req, err := http.NewRequestWithContext(actx, http.MethodPost, owner.URL+"/v1/sim?wait=1", bytes.NewReader(body))
	if err != nil {
		return nil, false, true, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, false, false, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false, false, fmt.Errorf("reading worker response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg := strings.TrimSpace(string(payload))
		var jsonErr struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &jsonErr) == nil && jsonErr.Error != "" {
			msg = jsonErr.Error
		}
		return nil, false, true, fmt.Errorf("worker %s answered %d: %s", owner.Name, resp.StatusCode, msg)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		// A torn 200 body: the worker died mid-response. Steal.
		return nil, false, false, fmt.Errorf("torn worker response: %w", err)
	}
	return env.Result, env.Cached, true, nil
}

// ---- proxied submission ----

// handleSubmitSim is the coordinator's POST /v1/sim: resolve and validate
// exactly as a worker would, derive the content key, and hand the job to
// its ring owner. The job is registered locally as an external job, so
// /v1/jobs/{id}, streams, and DELETE all work against the coordinator.
func (c *Coordinator) handleSubmitSim(w http.ResponseWriter, r *http.Request) {
	var req api.SimRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.CheckpointEveryOps == 0 {
		// Stamp the default explicitly before forwarding so every worker
		// resolves the same configuration — and the same content key —
		// regardless of its own flags.
		req.CheckpointEveryOps = c.opts.CheckpointEveryOps
	}
	spec, cfg, ops, err := api.ResolveSim(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := simcache.KeyFor(spec, cfg, ops)
	id := api.SimJobID(key)

	// A client that has already burned retries hands us a smaller budget:
	// the header caps primaries + steals + hedges for this placement, so
	// client retries × coordinator attempts cannot multiply unboundedly.
	budget := maxRouteAttempts
	if v := r.Header.Get(api.RetryBudgetHeader); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			budget = min(n+1, maxRouteAttempts)
		}
	}

	wait := req.Wait || r.URL.Query().Get("wait") == "1"
	job, err := c.queue.SubmitExternal(id, req.Priority)
	if errors.Is(err, jobq.ErrDuplicateID) {
		// Same content key already in flight: attach to it.
		if j, ok := c.queue.Get(id); ok {
			c.respondJob(w, r, wait, j)
			return
		}
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	go c.forward(job, id, key, ops, req, budget)
	c.respondJob(w, r, wait, job)
}

// forward drives one external job to its terminal state in the
// background: route (with stealing and hedging), then publish the result.
// Canceling the job cancels the placement.
func (c *Coordinator) forward(job *jobq.Job, id string, key simcache.Key, ops int, req api.SimRequest, budget int) {
	ctx, cancel := context.WithCancel(c.rootCtx)
	defer cancel()
	go func() {
		select {
		case <-job.Done():
			cancel()
		case <-ctx.Done():
		}
	}()
	data, cached, err := c.routeSim(ctx, id, key, ops, req, budget)
	if err != nil {
		c.queue.CompleteExternal(id, nil, err)
		return
	}
	c.queue.CompleteExternal(id, api.JobResult(data, cached), nil)
}

// respondJob mirrors the api server's submit response contract: 202 with
// job links, or block for the terminal result when wait is requested.
func (c *Coordinator) respondJob(w http.ResponseWriter, r *http.Request, wait bool, job *jobq.Job) {
	if !wait {
		writeJSON(w, http.StatusAccepted, map[string]string{
			"job_id": job.ID(),
			"status": "/v1/jobs/" + job.ID(),
			"stream": "/v1/jobs/" + job.ID() + "/stream",
		})
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		// Client gave up; the forward keeps running for the next caller.
		return
	}
	v, err := job.Result()
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, jobq.ErrCanceled) {
			code = http.StatusConflict
		}
		if errors.Is(err, errNoWorkers) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, "%v", err)
		return
	}
	data, cached, ok := api.JobResultBytes(v)
	if !ok {
		writeError(w, http.StatusInternalServerError, "job %s finished with an unexpected value", job.ID())
		return
	}
	writeJSON(w, http.StatusOK, envelope{Cached: cached, Result: data})
}

// handleTrace redirects a trace request to the worker that ran the job —
// traces are captured where the simulation ran and never cross the wire.
func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	c.mu.Lock()
	workerURL, ok := c.placed[id]
	c.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			"no placement recorded for job %q: traces live on the worker that ran the simulation", id)
		return
	}
	http.Redirect(w, r, workerURL+"/v1/jobs/"+id+"/trace", http.StatusTemporaryRedirect)
}

// ---- distributed arena ----

// handleArena fans an arena sweep's cells out across the fleet: every
// (benchmark, engine) cell becomes a /v1/sim placement routed by its own
// content key, so cells land on their owners, dedupe against every other
// request in the cluster, and fill the shared tiers. The assembled report
// is cached locally under the same arena key a standalone daemon uses.
func (c *Coordinator) handleArena(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ops := 0
	if v := q.Get("ops"); v != "" {
		var err error
		ops, err = strconv.Atoi(v)
		if err != nil || ops < 0 {
			writeError(w, http.StatusBadRequest, "bad ops %q", v)
			return
		}
	}
	if ops == 0 {
		ops = workloads.DefaultOps
	}
	priority := 0
	if v := q.Get("priority"); v != "" {
		var err error
		priority, err = strconv.Atoi(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad priority %q", v)
			return
		}
	}
	var benchmarks []string
	if v := q.Get("benchmarks"); v != "" {
		benchmarks = strings.Split(v, ",")
	} else {
		for _, spec := range workloads.SuiteRepresentatives() {
			benchmarks = append(benchmarks, spec.Name)
		}
	}
	engines := registry.Names()
	if v := q.Get("engines"); v != "" {
		engines = strings.Split(v, ",")
	}
	// Validate every cell up front (unknown benchmark, bad engine spec)
	// so errors are a 400 here, not a failed job later.
	for _, bench := range benchmarks {
		for _, eng := range append([]string{"stride"}, engines...) {
			cellReq, err := api.ArenaCellRequest(bench, eng, ops)
			if err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
			if _, _, _, err := api.ResolveSim(cellReq); err != nil {
				writeError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
	}

	key := simcache.KeyForArena(benchmarks, engines, ops)
	if data, ok := c.cache.Get(key); ok {
		writeJSON(w, http.StatusOK, envelope{Cached: true, Result: data})
		return
	}
	jobID := "arena-" + key.String()
	job, err := c.queue.Submit(jobID, priority, c.arenaJob(benchmarks, engines, ops, key))
	if errors.Is(err, jobq.ErrDuplicateID) {
		if j, ok := c.queue.Get(jobID); ok {
			c.respondJob(w, r, q.Get("wait") == "1", j)
			return
		}
	}
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	c.respondJob(w, r, q.Get("wait") == "1", job)
}

// arenaJob assembles one distributed sweep. Cells are dispatched
// concurrently (bounded by arenaFanout) and the report is assembled in the
// same benchmark-outer, engine-inner order as a standalone arena, so the
// rendered bytes agree with a single daemon sweeping the same matrix.
func (c *Coordinator) arenaJob(benchmarks, engines []string, ops int, key simcache.Key) jobq.Func {
	return func(ctx context.Context, j *jobq.Job) (any, error) {
		data, hit, err := c.cache.GetOrCompute(key, func() ([]byte, error) {
			return c.runArena(ctx, j, benchmarks, engines, ops)
		})
		if err != nil {
			return nil, err
		}
		return api.JobResult(data, hit), nil
	}
}

// arenaCellResult is one dispatched cell's decoded outcome.
type arenaCellResult struct {
	bench, engine string // engine "" = the stride baseline
	res           *api.SimResult
	err           error
}

// runArena dispatches every cell (plus each benchmark's stride baseline)
// across the fleet and assembles the report.
func (c *Coordinator) runArena(ctx context.Context, j *jobq.Job, benchmarks, engines []string, ops int) ([]byte, error) {
	type cellSpec struct{ bench, engine string }
	var specs []cellSpec
	for _, bench := range benchmarks {
		specs = append(specs, cellSpec{bench, ""})
		for _, eng := range engines {
			specs = append(specs, cellSpec{bench, eng})
		}
	}

	var (
		done    atomic.Int64
		total   = len(specs)
		sem     = make(chan struct{}, arenaFanout)
		results = make([]arenaCellResult, total)
		wg      sync.WaitGroup
	)
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec cellSpec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			engineSpec := spec.engine
			if engineSpec == "" {
				engineSpec = "stride"
			}
			res, err := c.dispatchCell(ctx, spec.bench, engineSpec, ops)
			results[i] = arenaCellResult{bench: spec.bench, engine: spec.engine, res: res, err: err}
			j.SetProgress("simulating", int(done.Add(1)), total)
		}(i, spec)
	}
	wg.Wait()

	baselines := map[string]*api.SimResult{}
	cellRes := map[cellSpec]*api.SimResult{}
	for i, spec := range specs {
		r := results[i]
		if r.err != nil {
			return nil, fmt.Errorf("cell %s/%s: %w", spec.bench, orStride(spec.engine), r.err)
		}
		if spec.engine == "" {
			baselines[spec.bench] = r.res
		} else {
			cellRes[spec] = r.res
		}
	}

	var cells []report.ArenaCell
	for _, bench := range benchmarks {
		base := baselines[bench]
		for _, eng := range engines {
			res := cellRes[cellSpec{bench, eng}]
			cells = append(cells, api.MakeArenaCell(eng, bench, base, res))
		}
	}
	return api.MarshalArenaReport(ops, benchmarks, engines, cells)
}

// dispatchCell routes one arena cell through the cluster under its /v1/sim
// content key.
func (c *Coordinator) dispatchCell(ctx context.Context, bench, engineSpec string, ops int) (*api.SimResult, error) {
	cellReq, err := api.ArenaCellRequest(bench, engineSpec, ops)
	if err != nil {
		return nil, err
	}
	if c.opts.CheckpointEveryOps != 0 && cellReq.CheckpointEveryOps == 0 {
		cellReq.CheckpointEveryOps = c.opts.CheckpointEveryOps
	}
	spec, cfg, resolvedOps, err := api.ResolveSim(cellReq)
	if err != nil {
		return nil, err
	}
	key := simcache.KeyFor(spec, cfg, resolvedOps)
	data, _, err := c.routeSim(ctx, api.SimJobID(key), key, resolvedOps, cellReq, maxRouteAttempts)
	if err != nil {
		return nil, err
	}
	var res api.SimResult
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("corrupt cell result: %w", err)
	}
	return &res, nil
}

func orStride(engine string) string {
	if engine == "" {
		return "stride(baseline)"
	}
	return engine
}

// ---- cluster telemetry ----

// handleReadyz: a coordinator with no live workers can accept nothing.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.expireLocked(time.Now())
	live := len(c.members)
	c.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !c.queue.Stats().Accepting {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	if live == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no live workers")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics appends the cluster block after the embedded server's
// standard series.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.api.ServeHTTP(w, r)

	c.mu.Lock()
	c.expireLocked(time.Now())
	type row struct {
		name     string
		inflight int
	}
	rows := make([]row, 0, len(c.members))
	for _, name := range c.ring.Members() {
		rows = append(rows, row{name, c.members[name].inflight})
	}
	generation := c.generation
	c.mu.Unlock()

	p := func(name, help, typ string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}
	p("cdpd_cluster_workers_live", "Workers holding a live lease.", "gauge", len(rows))
	p("cdpd_cluster_steals_total", "Jobs reclaimed from dead workers and re-routed.", "counter", c.steals.Load())
	p("cdpd_cluster_rebalances_total", "Hash-ring rebuilds from membership changes.", "counter", c.rebalances.Load())
	p("cdpd_cluster_generation", "Membership generation (increments per change).", "gauge", generation)
	p("cdpd_cluster_hedges_total", "Second placements raced against suspected stragglers.", "counter", c.hedges.Load())
	p("cdpd_cluster_hedge_wins_total", "Hedged placements that finished before the primary.", "counter", c.hedgeWins.Load())
	p("cdpd_cluster_readopted_total", "Orphaned placements re-adopted from the journal after a restart.", "counter", c.readopted.Load())
	p("cdpd_cluster_placements_open", "External placements accepted but not yet terminal.", "gauge", c.queue.ExternalInflight())
	if c.journal != nil {
		p("cdpd_cluster_journal_writes_total", "Records appended to the write-ahead journal.", "counter", c.journal.writes.Load())
		p("cdpd_cluster_journal_write_errors_total", "Journal appends that failed (recovery fidelity lost, requests unaffected).", "counter", c.journal.writeErrs.Load())
	}
	if len(rows) > 0 {
		fmt.Fprintf(w, "# HELP cdpd_cluster_worker_inflight Jobs currently placed on each worker.\n")
		fmt.Fprintf(w, "# TYPE cdpd_cluster_worker_inflight gauge\n")
		for _, row := range rows {
			fmt.Fprintf(w, "cdpd_cluster_worker_inflight{worker=%q} %d\n", row.name, row.inflight)
		}
	}
}
