package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/faultinject"
)

// journalFile is the coordinator's write-ahead journal under -state-dir.
const journalFile = "coordinator.journal"

// journalRecord is one JSON line in the coordinator journal. The journal
// records two things a coordinator cannot reconstruct from anywhere else
// after a crash: who the ring members were (name, URL, generation) and
// which external placements were accepted but not yet completed. Replay of
// those two sets is exactly what a rebooted coordinator needs to re-lease
// its fleet and re-route orphaned work.
type journalRecord struct {
	// T is the record type: "gen" (compaction generation marker), "member"
	// (admission or URL change), "leave" (departure or lease expiry),
	// "submit" (placement accepted), "placed" (placement landed on a
	// worker), "done" (placement reached a terminal outcome).
	T      string          `json:"t"`
	Name   string          `json:"name,omitempty"`   // member/leave: worker name
	URL    string          `json:"url,omitempty"`    // member: advertised URL
	Gen    uint64          `json:"gen,omitempty"`    // membership generation after the change
	Job    string          `json:"job,omitempty"`    // submit/placed/done: job ID
	Req    json.RawMessage `json:"req,omitempty"`    // submit: the routed SimRequest
	Worker string          `json:"worker,omitempty"` // placed: where the job landed
}

// Placement is one open external placement recovered from the journal: a
// job the previous coordinator incarnation accepted but never completed.
type Placement struct {
	Job    string
	Req    json.RawMessage
	Worker string // last worker it was placed on ("" = never placed)
}

// JournalState is the outcome of replaying a coordinator journal. Besides
// feeding recovery it doubles as the chaos orchestrator's evidence: after
// a run settles, Open must be empty (no lost jobs) and DoubleCompletes
// zero (no placement finished twice).
type JournalState struct {
	// Members maps surviving worker names to their advertised URLs.
	Members map[string]string
	// Generation is the highest membership generation journaled.
	Generation uint64
	// Open holds accepted-but-not-completed placements by job ID.
	Open map[string]Placement
	// DoubleCompletes counts "done" records with no matching open
	// placement — a completion journaled twice.
	DoubleCompletes int
	// TornRecords counts lines that failed to parse (a crash mid-append
	// tears at most the final line; replay tolerates and counts it).
	TornRecords int
}

// replayJournal reads the journal at path into a JournalState. A missing
// file is an empty state, not an error; torn lines are counted and
// skipped.
func replayJournal(path string) (JournalState, error) {
	state := JournalState{Members: map[string]string{}, Open: map[string]Placement{}}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return state, nil
	}
	if err != nil {
		return state, err
	}
	for _, line := range bytes.Split(raw, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			state.TornRecords++
			continue
		}
		if rec.Gen > state.Generation {
			state.Generation = rec.Gen
		}
		switch rec.T {
		case "member":
			if rec.Name != "" {
				state.Members[rec.Name] = rec.URL
			}
		case "leave":
			delete(state.Members, rec.Name)
		case "submit":
			if rec.Job != "" {
				pl := state.Open[rec.Job]
				pl.Job, pl.Req = rec.Job, rec.Req
				state.Open[rec.Job] = pl
			}
		case "placed":
			if pl, ok := state.Open[rec.Job]; ok {
				pl.Worker = rec.Worker
				state.Open[rec.Job] = pl
			}
		case "done":
			if _, ok := state.Open[rec.Job]; ok {
				delete(state.Open, rec.Job)
			} else {
				state.DoubleCompletes++
			}
		}
	}
	return state, nil
}

// ReadJournal replays the coordinator journal under stateDir. The chaos
// orchestrator and operators use it to audit a cluster's placement ledger
// without constructing a coordinator.
func ReadJournal(stateDir string) (JournalState, error) {
	return replayJournal(filepath.Join(stateDir, journalFile))
}

// journal is the append side of the write-ahead log. Appends are
// best-effort by design: a journal write failure (disk full, the
// cluster.journal.write-error fault) costs recovery fidelity for that one
// record, never a live request — the same stance the checkpoint store
// takes toward snapshot writes.
type journal struct {
	path string

	mu sync.Mutex
	f  *os.File // simlint:guardedby mu

	writes    atomic.Uint64
	writeErrs atomic.Uint64
}

// openJournal replays the journal under dir, compacts it (live state only,
// written tmp+rename like a checkpoint), and reopens it for appending. The
// returned state drives the coordinator's recovery.
func openJournal(dir string) (*journal, JournalState, error) {
	path := filepath.Join(dir, journalFile)
	state, err := replayJournal(path)
	if err != nil {
		return nil, state, err
	}

	// Compact: the snapshot of live state replaces the full history, so
	// the journal's size is bounded by the live member and placement sets
	// across restarts, not by lifetime traffic.
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	writeRec := func(rec journalRecord) error { return enc.Encode(rec) }
	if err := writeRec(journalRecord{T: "gen", Gen: state.Generation}); err != nil {
		return nil, state, err
	}
	for name, url := range state.Members {
		if err := writeRec(journalRecord{T: "member", Name: name, URL: url, Gen: state.Generation}); err != nil {
			return nil, state, err
		}
	}
	for _, pl := range state.Open {
		if err := writeRec(journalRecord{T: "submit", Job: pl.Job, Req: pl.Req}); err != nil {
			return nil, state, err
		}
		if pl.Worker != "" {
			if err := writeRec(journalRecord{T: "placed", Job: pl.Job, Worker: pl.Worker}); err != nil {
				return nil, state, err
			}
		}
	}
	tmp := fmt.Sprintf("%s.tmp%d", path, os.Getpid())
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return nil, state, err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, state, err
	}

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, state, err
	}
	return &journal{path: path, f: f}, state, nil
}

// append writes one record. Failures (and the cluster.journal.write-error
// fault) are counted and swallowed — journaling is recovery insurance, not
// a request dependency. Safe on a nil journal (no -state-dir).
func (j *journal) append(rec journalRecord) {
	if j == nil {
		return
	}
	line, err := json.Marshal(rec)
	if err != nil {
		j.writeErrs.Add(1)
		return
	}
	if err := faultinject.Error("cluster.journal.write-error"); err != nil {
		j.writeErrs.Add(1)
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		j.writeErrs.Add(1)
		return
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.writeErrs.Add(1)
		return
	}
	j.writes.Add(1)
}

// Close stops further appends. A closed journal counts attempted appends
// as write errors, which is exactly what a crashed process would have
// lost. Safe on nil.
func (j *journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		_ = j.f.Close()
		j.f = nil
	}
}
