package cluster

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// writeJournalLines hand-writes a journal file from raw lines, standing in
// for the history a previous coordinator incarnation left behind.
func writeJournalLines(t *testing.T, dir string, lines ...string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, journalFile), []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalReplayMissing: no journal file is an empty state, not an error
// — a first boot with -state-dir must come up clean.
func TestJournalReplayMissing(t *testing.T) {
	state, err := ReadJournal(t.TempDir())
	if err != nil {
		t.Fatalf("ReadJournal on empty dir: %v", err)
	}
	if len(state.Members) != 0 || len(state.Open) != 0 || state.Generation != 0 {
		t.Fatalf("empty dir replayed to non-empty state: %+v", state)
	}
}

// TestJournalReplaySemantics replays a hand-written history and checks every
// record type lands: members join and leave, placements open on submit,
// close on done, a done with no matching open counts as a double-complete,
// and a torn final line (the crash-mid-append case) is counted and skipped
// without poisoning the rest.
func TestJournalReplaySemantics(t *testing.T) {
	dir := t.TempDir()
	writeJournalLines(t, dir,
		`{"t":"member","name":"w1","url":"http://w1","gen":1}`,
		`{"t":"member","name":"w2","url":"http://w2","gen":2}`,
		`{"t":"leave","name":"w1","gen":3}`,
		`{"t":"submit","job":"sim-aaaa","req":{"benchmark":"quake","ops":1000}}`,
		`{"t":"placed","job":"sim-aaaa","worker":"w2"}`,
		`{"t":"submit","job":"sim-bbbb","req":{"benchmark":"gcc","ops":2000}}`,
		`{"t":"done","job":"sim-bbbb"}`,
		`{"t":"done","job":"sim-bbbb"}`,
		`{"t":"member","name":"w3","url":`, // torn mid-append
	)

	state, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(state.Members) != 1 || state.Members["w2"] != "http://w2" {
		t.Fatalf("members = %v, want only w2", state.Members)
	}
	if state.Generation != 3 {
		t.Fatalf("generation = %d, want 3 (highest journaled)", state.Generation)
	}
	if len(state.Open) != 1 {
		t.Fatalf("open placements = %v, want only sim-aaaa", state.Open)
	}
	pl := state.Open["sim-aaaa"]
	if pl.Worker != "w2" || !strings.Contains(string(pl.Req), "quake") {
		t.Fatalf("placement = %+v, want worker w2 and the quake request", pl)
	}
	if state.DoubleCompletes != 1 {
		t.Fatalf("double completes = %d, want 1 (second done for sim-bbbb)", state.DoubleCompletes)
	}
	if state.TornRecords != 1 {
		t.Fatalf("torn records = %d, want 1", state.TornRecords)
	}
}

// TestJournalCompaction: openJournal rewrites the file down to live state —
// the journal's size is bounded by surviving members and open placements,
// not lifetime traffic — and the compacted file replays to the same state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	var lines []string
	// A long churn history that nets out to one member and one open job.
	for i := 0; i < 50; i++ {
		lines = append(lines,
			`{"t":"member","name":"churn","url":"http://churn","gen":`+jsonInt(uint64(2*i+1))+`}`,
			`{"t":"leave","name":"churn","gen":`+jsonInt(uint64(2*i+2))+`}`,
			`{"t":"submit","job":"sim-done","req":{"ops":1}}`,
			`{"t":"done","job":"sim-done"}`,
		)
	}
	lines = append(lines,
		`{"t":"member","name":"w1","url":"http://w1","gen":101}`,
		`{"t":"submit","job":"sim-open","req":{"benchmark":"quake","ops":1000}}`,
		`{"t":"placed","job":"sim-open","worker":"w1"}`,
	)
	writeJournalLines(t, dir, lines...)

	jr, state, err := openJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(state.Members) != 1 || state.Members["w1"] != "http://w1" {
		t.Fatalf("members after churn = %v, want only w1", state.Members)
	}
	if state.Generation != 101 {
		t.Fatalf("generation = %d, want 101", state.Generation)
	}
	if len(state.Open) != 1 || state.Open["sim-open"].Worker != "w1" {
		t.Fatalf("open = %v, want sim-open on w1", state.Open)
	}

	// Compaction shrank ~203 history lines to 4 (gen + member + submit +
	// placed).
	raw, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), "\n"); n != 4 {
		t.Fatalf("compacted journal has %d lines, want 4:\n%s", n, raw)
	}

	// The compacted file replays to the same live state, and post-compaction
	// appends extend it.
	jr.append(journalRecord{T: "done", Job: "sim-open"})
	again, err := ReadJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Open) != 0 {
		t.Fatalf("open after appended done = %v, want empty", again.Open)
	}
	if again.Members["w1"] != "http://w1" || again.Generation != 101 {
		t.Fatalf("compacted replay lost state: %+v", again)
	}
}

func jsonInt(v uint64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// TestJournalWriteErrorFault: an armed cluster.journal.write-error drops the
// record and bumps the error counter — the append never fails the caller,
// and the journal keeps accepting once the fault clears.
func TestJournalWriteErrorFault(t *testing.T) {
	jr, _, err := openJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	prev := faultinject.Enable(faultinject.MustParse(1, "cluster.journal.write-error:times=1"))
	defer faultinject.Enable(prev)

	jr.append(journalRecord{T: "member", Name: "lost", URL: "http://lost", Gen: 1})
	if got := jr.writeErrs.Load(); got != 1 {
		t.Fatalf("write errors = %d after faulted append, want 1", got)
	}
	jr.append(journalRecord{T: "member", Name: "kept", URL: "http://kept", Gen: 2})
	if got := jr.writes.Load(); got != 1 {
		t.Fatalf("writes = %d after clean append, want 1", got)
	}

	state, err := replayJournal(jr.path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Members["lost"]; ok {
		t.Fatal("faulted record reached the journal")
	}
	if state.Members["kept"] != "http://kept" {
		t.Fatalf("clean record missing: %+v", state.Members)
	}
}

// TestJournalClosedAndNil: appends after Close count as write errors (the
// crashed-process stand-in appends nothing), and a nil journal — no
// -state-dir — swallows both append and Close.
func TestJournalClosedAndNil(t *testing.T) {
	jr, _, err := openJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	jr.Close()
	jr.append(journalRecord{T: "member", Name: "late", Gen: 1})
	if got := jr.writeErrs.Load(); got != 1 {
		t.Fatalf("write errors after close = %d, want 1", got)
	}
	jr.Close() // idempotent

	var nilJr *journal
	nilJr.append(journalRecord{T: "member", Name: "x"})
	nilJr.Close()
}
