// Package cluster promotes cdpd from a single process to a
// coordinator/worker fleet. The coordinator owns cluster membership (worker
// registration, heartbeat leases, expiry) and routes every simulation job
// by consistent hashing on its simcache content key, so identical requests
// from any client land on the same worker and hit that worker's cache
// tiers. Workers run the ordinary internal/api server plus a peer-fetch
// endpoint that serves their resident results to the rest of the ring.
//
// Failure handling is work stealing on top of the PR 4 resilience layer: a
// worker that stops answering (transport error mid-forward, or a lapsed
// heartbeat lease) is dropped from the ring and its in-flight jobs are
// re-routed to the next owner, which resumes from the latest persisted
// boundary snapshot when the checkpoint directory is shared. Content keys
// make the whole scheme idempotent — a stolen job recomputes or resumes to
// a byte-identical result under the same job ID.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/simcache"
)

// DefaultVirtualNodes is the per-member vnode count. 160 points per member
// keeps the peak/mean key-share ratio tight (the ring property test pins
// the bound) while membership changes stay O(members·vnodes·log) to
// rebuild.
const DefaultVirtualNodes = 160

// ringPoint is one virtual node: a position on the 64-bit ring owned by a
// member.
type ringPoint struct {
	hash   uint64
	member string
}

// Ring is a consistent-hash ring over member names with virtual nodes.
// Vnode positions depend only on the member's name, so adding or removing
// one member moves only the keys whose arc it claims or frees (~K/N of
// them), never reshuffles the rest — the property the ring tests pin.
//
// Ring is not safe for concurrent use; the coordinator and worker guard
// theirs with their own mutex.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

// NewRing builds an empty ring with the given vnode count per member
// (<=0 uses DefaultVirtualNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	return &Ring{vnodes: vnodes}
}

// vnodeHash positions one virtual node. sha256 keeps the positions
// uniform enough for the balance bound without a seeded RNG (simlint's
// detrand has nothing to flag here: positions are a pure function of the
// member name).
func vnodeHash(member string, i int) uint64 {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	sum := sha256.Sum256(append([]byte(member+"#"), buf[:]...))
	return binary.BigEndian.Uint64(sum[:8])
}

// SetMembers rebuilds the ring for exactly the given member names.
// Rebuilding from scratch is deliberate: vnode hashes are stable functions
// of the names, so the rebuilt ring is identical to an incrementally
// edited one and the minimal-movement property still holds.
func (r *Ring) SetMembers(names []string) {
	r.points = r.points[:0]
	for _, name := range names {
		for i := 0; i < r.vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(name, i), member: name})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		// Hash ties (astronomically rare) break by name so two ring
		// replicas built from the same member set agree on every owner.
		return r.points[a].member < r.points[b].member
	})
}

// Members returns the distinct member names on the ring, sorted.
func (r *Ring) Members() []string {
	seen := map[string]bool{}
	for _, p := range r.points {
		seen[p.member] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// keyPoint maps a content key onto the ring. Keys are already sha256
// outputs, so their leading bytes are uniform.
func keyPoint(key simcache.Key) uint64 {
	return binary.BigEndian.Uint64(key[:8])
}

// Owner returns the member owning key: the first vnode clockwise from the
// key's position. ok is false on an empty ring.
func (r *Ring) Owner(key simcache.Key) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member, true
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner. The second entry is the member that owned (part of) the
// key's arc before the newest remap in the common join case, which is why
// the peer-fetch tier asks it first when the owner itself misses.
func (r *Ring) Successors(key simcache.Key, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := keyPoint(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if start == len(r.points) {
		start = 0
	}
	var out []string
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// String renders the ring's occupancy for logs and the members endpoint.
func (r *Ring) String() string {
	return fmt.Sprintf("ring(%d members, %d points)", len(r.Members()), len(r.points))
}
