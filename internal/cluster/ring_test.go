package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"testing"

	"repro/internal/simcache"
)

// testKey derives a deterministic, well-mixed content key from an index —
// the same way real keys are made (sha256 of the request), so the
// distribution these tests measure is the distribution production sees.
func testKey(i int) simcache.Key {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(i))
	return simcache.Key(sha256.Sum256(buf[:]))
}

func memberNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("worker-%d", i)
	}
	return names
}

func ownersOf(r *Ring, keys int) map[int]string {
	out := make(map[int]string, keys)
	for i := 0; i < keys; i++ {
		name, ok := r.Owner(testKey(i))
		if !ok {
			panic("ring with members returned no owner")
		}
		out[i] = name
	}
	return out
}

// TestRingDistributionBalance: with the default virtual-node count, every
// member's share of a large keyspace stays within ±35% of the fair share.
// (160 vnodes gives a relative standard deviation around 8%; 35% is a
// comfortable, non-flaky bound that still catches a broken hash or a
// member accidentally inserted once instead of vnodes times.)
func TestRingDistributionBalance(t *testing.T) {
	const members, keys = 8, 100_000
	r := NewRing(DefaultVirtualNodes)
	r.SetMembers(memberNames(members))

	counts := map[string]int{}
	for _, owner := range ownersOf(r, keys) {
		counts[owner]++
	}
	if len(counts) != members {
		t.Fatalf("only %d of %d members own keys: %v", len(counts), members, counts)
	}
	fair := float64(keys) / members
	for name, n := range counts {
		if ratio := float64(n) / fair; ratio < 0.65 || ratio > 1.35 {
			t.Errorf("%s owns %d keys (%.2f× fair share %v); want within ±35%%", name, n, ratio, fair)
		}
	}
}

// TestRingJoinMovesOnlyToNewMember: adding a member may only move keys TO
// the new member — every key whose owner changed must now belong to the
// joiner, and the moved fraction must be near the ideal K/(N+1).
func TestRingJoinMovesOnlyToNewMember(t *testing.T) {
	const members, keys = 7, 50_000
	r := NewRing(DefaultVirtualNodes)
	r.SetMembers(memberNames(members))
	before := ownersOf(r, keys)

	const joined = "worker-new"
	r.SetMembers(append(memberNames(members), joined))
	after := ownersOf(r, keys)

	moved := 0
	for i := 0; i < keys; i++ {
		if before[i] != after[i] {
			moved++
			if after[i] != joined {
				t.Fatalf("key %d moved %s→%s, but only moves to the joiner %s are minimal",
					i, before[i], after[i], joined)
			}
		}
	}
	ideal := keys / (members + 1)
	if moved == 0 {
		t.Fatal("no keys moved to the new member")
	}
	if moved > 2*ideal {
		t.Errorf("join moved %d keys; ideal K/(N+1) = %d, want at most 2× that", moved, ideal)
	}
}

// TestRingLeaveMovesOnlyOrphans: removing a member may only move the keys
// it owned; every other key keeps its owner.
func TestRingLeaveMovesOnlyOrphans(t *testing.T) {
	const members, keys = 8, 50_000
	r := NewRing(DefaultVirtualNodes)
	r.SetMembers(memberNames(members))
	before := ownersOf(r, keys)

	const removed = "worker-3"
	var remaining []string
	for _, n := range memberNames(members) {
		if n != removed {
			remaining = append(remaining, n)
		}
	}
	r.SetMembers(remaining)
	after := ownersOf(r, keys)

	for i := 0; i < keys; i++ {
		if before[i] != after[i] && before[i] != removed {
			t.Fatalf("key %d moved %s→%s although %s is the member that left",
				i, before[i], after[i], removed)
		}
		if after[i] == removed {
			t.Fatalf("key %d still owned by removed member", i)
		}
	}
}

// TestRingDeterministicAcrossInsertionOrder: membership is a set — two
// rings built from permutations of the same names route identically, which
// is what lets every worker's replica agree with the coordinator.
func TestRingDeterministicAcrossInsertionOrder(t *testing.T) {
	names := memberNames(6)
	a := NewRing(DefaultVirtualNodes)
	a.SetMembers(names)
	reversed := make([]string, len(names))
	for i, n := range names {
		reversed[len(names)-1-i] = n
	}
	b := NewRing(DefaultVirtualNodes)
	b.SetMembers(reversed)
	for i := 0; i < 10_000; i++ {
		ao, _ := a.Owner(testKey(i))
		bo, _ := b.Owner(testKey(i))
		if ao != bo {
			t.Fatalf("key %d: owner %s vs %s across insertion orders", i, ao, bo)
		}
	}
}

// TestRingSuccessors: the successor list starts at the owner, never
// repeats a member, and is capped by the membership size.
func TestRingSuccessors(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	r.SetMembers(memberNames(4))
	for i := 0; i < 1000; i++ {
		key := testKey(i)
		succ := r.Successors(key, 6)
		if len(succ) != 4 {
			t.Fatalf("key %d: %d successors from 4 members", i, len(succ))
		}
		owner, _ := r.Owner(key)
		if succ[0] != owner {
			t.Fatalf("key %d: successors start at %s, owner is %s", i, succ[0], owner)
		}
		seen := map[string]bool{}
		for _, s := range succ {
			if seen[s] {
				t.Fatalf("key %d: duplicate successor %s", i, s)
			}
			seen[s] = true
		}
	}
}

// TestRingEmpty: an empty ring owns nothing and panics on nothing.
func TestRingEmpty(t *testing.T) {
	r := NewRing(DefaultVirtualNodes)
	if name, ok := r.Owner(testKey(0)); ok {
		t.Fatalf("empty ring returned owner %q", name)
	}
	if succ := r.Successors(testKey(0), 3); len(succ) != 0 {
		t.Fatalf("empty ring returned successors %v", succ)
	}
	if members := r.Members(); len(members) != 0 {
		t.Fatalf("empty ring has members %v", members)
	}
}
