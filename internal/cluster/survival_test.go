package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/sim"
)

// swapCoordinator is a coordinator address that outlives the coordinator
// process behind it: the listener stays up across a "SIGKILL" and restart,
// the way a fixed host:port does in production. swap(nil) makes the address
// a dead process (connections abort mid-request); swap(c) boots a new
// incarnation on the same address.
type swapCoordinator struct {
	ts      *httptest.Server
	current atomic.Value // *Coordinator (may hold (*Coordinator)(nil))
}

func newSwapCoordinator(t *testing.T) *swapCoordinator {
	t.Helper()
	sc := &swapCoordinator{}
	sc.current.Store((*Coordinator)(nil))
	sc.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c, _ := sc.current.Load().(*Coordinator); c != nil {
			c.ServeHTTP(w, r)
			return
		}
		panic(http.ErrAbortHandler) // dead process: abort the connection
	}))
	t.Cleanup(sc.ts.Close)
	return sc
}

func (sc *swapCoordinator) swap(c *Coordinator) { sc.current.Store(c) }

// submitAsync posts without wait and returns once the coordinator has
// accepted (202) the placement.
func submitAsync(t *testing.T, base string, req api.SimRequest) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/sim", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async submit: %d", resp.StatusCode)
	}
}

// waitForSnapshot blocks until the job's first boundary snapshot exists.
func waitForSnapshot(t *testing.T, ckptDir, jobID string) {
	t.Helper()
	snapPath := filepath.Join(ckptDir, jobID+".snap")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(snapPath); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never persisted a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// pollJob polls base/v1/jobs/{id} until the job is terminal and returns its
// final view.
func pollJob(t *testing.T, base, jobID string) (state jobq.State, errMsg string, result []byte) {
	t.Helper()
	var view struct {
		State  jobq.State      `json:"state"`
		Error  string          `json:"error"`
		Result json.RawMessage `json:"result"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + jobID)
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			if err := json.Unmarshal(payload, &view); err != nil {
				t.Fatalf("job view %s: %v", payload, err)
			}
			if view.State.Terminal() {
				return view.State, view.Error, view.Result
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished (state %s)", jobID, view.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCoordinatorRestartReadoptsPlacement is the crash-recovery acceptance
// test: a coordinator with -state-dir is killed (journal closed first, like
// a dead process) while a checkpointed placement is in flight. A new
// incarnation over the same state dir re-adopts the fleet from the journal,
// re-routes the orphaned placement to the key's current owner, and the job
// completes byte-identically with the simulation run exactly once — the
// worker-side content-keyed dedup absorbs the re-placement.
func TestCoordinatorRestartReadoptsPlacement(t *testing.T) {
	stateDir := t.TempDir()
	ckptDir := t.TempDir()
	opts := CoordinatorOptions{
		LeaseTTL:   60 * time.Second,
		StateDir:   stateDir,
		HedgeDelay: 5 * time.Minute, // keep hedging out of the exactly-once count
	}

	sc := newSwapCoordinator(t)
	coord1, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	sc.swap(coord1)

	workerOpts := func() WorkerOptions {
		return WorkerOptions{API: api.Options{CheckpointDir: ckptDir}}
	}
	startWorker(t, sc.ts.URL, "w1", workerOpts())
	startWorker(t, sc.ts.URL, "w2", workerOpts())
	waitForWorkers(t, coord1, 2)

	req, jobID := requestOwnedBy(t, "w1", []string{"w1", "w2"}, 2_000_000, 50_000)
	ref := standaloneResult(t, req)
	runs0 := sim.Runs()

	submitAsync(t, sc.ts.URL, req)
	waitForSnapshot(t, ckptDir, jobID)

	// SIGKILL the coordinator mid-placement: the journal is closed before
	// anything is canceled, so the placement stays open on disk.
	sc.swap(nil)
	coord1.Kill()

	state, err := ReadJournal(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := state.Open[jobID]; !ok {
		t.Fatalf("killed coordinator's journal lost the in-flight placement; open = %v", state.Open)
	}
	if len(state.Members) != 2 {
		t.Fatalf("journal members = %v, want w1 and w2", state.Members)
	}

	// Restart over the same state dir and address. Recovery re-leases the
	// journaled members and re-routes the orphaned placement.
	coord2, err := NewCoordinator(opts)
	if err != nil {
		t.Fatal(err)
	}
	sc.swap(coord2)
	t.Cleanup(func() { coord2.Close(t.Context()) })

	waitForWorkers(t, coord2, 2)
	if got := coord2.readopted.Load(); got < 1 {
		t.Fatalf("restarted coordinator re-adopted %d placements, want >= 1", got)
	}

	gotState, errMsg, result := pollJob(t, sc.ts.URL, jobID)
	if gotState != jobq.StateDone {
		t.Fatalf("re-adopted job ended %s: %s", gotState, errMsg)
	}
	if !bytes.Equal(result, ref) {
		t.Errorf("re-adopted result differs from uninterrupted standalone run:\nre-adopted %s\nstandalone %s", result, ref)
	}
	if delta := sim.Runs() - runs0; delta != 1 {
		t.Errorf("simulation ran %d times across the crash, want exactly once", delta)
	}

	// The settled journal shows a closed ledger: no lost jobs, no double
	// completions.
	after, err := ReadJournal(stateDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Open) != 0 {
		t.Errorf("journal still holds open placements after completion: %v", after.Open)
	}
	if after.DoubleCompletes != 0 {
		t.Errorf("journal recorded %d double-completes, want 0", after.DoubleCompletes)
	}

	fams := scrape(t, sc.ts.URL)
	for _, name := range []string{"cdpd_cluster_journal_writes_total", "cdpd_cluster_journal_write_errors_total"} {
		if fams[name] == nil {
			t.Errorf("journal series %s missing with -state-dir set", name)
		}
	}
	if got := fams["cdpd_cluster_readopted_total"].Value(t, 0); got < 1 {
		t.Errorf("readopted_total = %v, want >= 1", got)
	}
}

// TestRegisterJitterSpread: re-registration backoff is deterministic per
// (name, attempt) yet spread across the half-open window [base/2, base), so
// a fleet orphaned by the same coordinator crash does not stampede the
// restarted process in lockstep.
func TestRegisterJitterSpread(t *testing.T) {
	names := make([]string, 32)
	for i := range names {
		names[i] = "worker-" + strconv.Itoa(i)
	}

	for attempt, base := range map[int]time.Duration{
		0: registerBackoffMin,
		1: registerBackoffMin << 1,
		3: registerBackoffMax,
		9: registerBackoffMax, // capped
	} {
		distinct := map[time.Duration]bool{}
		for _, name := range names {
			d := registerJitter(name, attempt)
			if d < base/2 || d >= base {
				t.Fatalf("registerJitter(%s, %d) = %v outside [%v, %v)", name, attempt, d, base/2, base)
			}
			if d != registerJitter(name, attempt) {
				t.Fatalf("registerJitter(%s, %d) not deterministic", name, attempt)
			}
			distinct[d] = true
		}
		// 32 workers must not collapse onto a handful of instants.
		if len(distinct) < len(names)/2 {
			t.Errorf("attempt %d: %d workers share %d distinct delays — herd not spread", attempt, len(names), len(distinct))
		}
	}

	// Successive attempts for one name move through the window too.
	if registerJitter("w1", 0) == registerJitter("w1", 1)*1 && registerJitter("w1", 1) == registerJitter("w1", 2) {
		t.Error("attempts do not vary the delay")
	}
}

// postSimBudget posts a waited request with an explicit retry-budget header
// and returns the result bytes.
func postSimBudget(t *testing.T, base string, req api.SimRequest, budget int) []byte {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", base+"/v1/sim?wait=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(api.RetryBudgetHeader, strconv.Itoa(budget))
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	payload, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/sim: %d %s", resp.StatusCode, payload)
	}
	var env envelope
	if err := json.Unmarshal(payload, &env); err != nil {
		t.Fatalf("bad envelope %s: %v", payload, err)
	}
	return env.Result
}

// TestHedgedPlacement: with cluster.hedge.fire armed the straggler delay
// collapses to zero, so a second placement races the primary on the key's
// next successor. First completion wins, the result stays byte-identical to
// standalone, and a client retry budget of zero remaining suppresses the
// hedge entirely — the budget caps primaries + steals + hedges together.
func TestHedgedPlacement(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{LeaseTTL: 60 * time.Second})
	startWorker(t, coordTS.URL, "w1", WorkerOptions{})
	startWorker(t, coordTS.URL, "w2", WorkerOptions{})
	waitForWorkers(t, coord, 2)

	prev := faultinject.Enable(faultinject.MustParse(1, "cluster.hedge.fire"))
	defer faultinject.Enable(prev)

	req, _ := requestOwnedBy(t, "w1", []string{"w1", "w2"}, 400_000, 0)
	ref := standaloneResult(t, req)

	if _, result := postSimURL(t, coordTS.URL, req); !bytes.Equal(result, ref) {
		t.Errorf("hedged result differs from standalone:\nhedged     %s\nstandalone %s", result, ref)
	}
	hedged := coord.hedges.Load()
	if hedged < 1 {
		t.Fatalf("hedges = %d with cluster.hedge.fire armed, want >= 1", hedged)
	}

	// Remaining budget 0 → total budget 1 → no slot for a hedge even with
	// the fault forcing the timer.
	req2, _ := requestOwnedBy(t, "w2", []string{"w1", "w2"}, 600_000, 0)
	ref2 := standaloneResult(t, req2)
	if result := postSimBudget(t, coordTS.URL, req2, 0); !bytes.Equal(result, ref2) {
		t.Errorf("budget-capped result differs from standalone")
	}
	if got := coord.hedges.Load(); got != hedged {
		t.Errorf("hedges grew %d -> %d despite an exhausted retry budget", hedged, got)
	}

	fams := scrape(t, coordTS.URL)
	if got := fams["cdpd_cluster_hedges_total"].Value(t, 0); got < 1 {
		t.Errorf("cdpd_cluster_hedges_total = %v, want >= 1", got)
	}
}

// TestStealStallFault: cluster.steal.stall inserts its configured delay in
// the steal path without changing the outcome — the placement on a dead
// member still fails over to a live worker and returns standalone-identical
// bytes. Runs under -race in CI's fault-path pass.
func TestStealStallFault(t *testing.T) {
	coord, coordTS := startCoordinator(t, CoordinatorOptions{LeaseTTL: 60 * time.Second})

	// A hand-registered member with a dead address owns the key; placing on
	// it fails at transport, triggering the steal path.
	body, _ := json.Marshal(joinRequest{Name: "ghost", URL: "http://127.0.0.1:1"})
	resp, err := http.Post(coordTS.URL+"/v1/cluster/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	startWorker(t, coordTS.URL, "w2", WorkerOptions{})
	waitForWorkers(t, coord, 2)

	plan := faultinject.MustParse(7, "cluster.steal.stall:delay=50ms:times=1")
	prev := faultinject.Enable(plan)
	defer faultinject.Enable(prev)

	req, _ := requestOwnedBy(t, "ghost", []string{"ghost", "w2"}, 100_000, 0)
	ref := standaloneResult(t, req)
	if _, result := postSimURL(t, coordTS.URL, req); !bytes.Equal(result, ref) {
		t.Errorf("stalled steal returned different bytes")
	}
	if got := coord.steals.Load(); got < 1 {
		t.Errorf("steals = %d, want >= 1", got)
	}
	if plan.Fired() < 1 {
		t.Errorf("cluster.steal.stall never fired")
	}
}

// TestWorkerPartitionTolerance: a worker that loses its coordinator keeps
// serving local traffic, reports degraded-standalone readiness with a
// rising orphaned-seconds gauge, and rejoins a fresh coordinator on the
// same address — including the 404 path that forces a full ring resync when
// the replacement coordinator has no journal.
func TestWorkerPartitionTolerance(t *testing.T) {
	sc := newSwapCoordinator(t)
	coord1, err := NewCoordinator(CoordinatorOptions{LeaseTTL: 900 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sc.swap(coord1)

	w, wTS := startWorker(t, sc.ts.URL, "w1", WorkerOptions{})
	waitForWorkers(t, coord1, 1)

	// Partition: the coordinator dies and its address aborts connections.
	sc.swap(nil)
	coord1.Kill()

	// The worker notices within a heartbeat interval and annotates
	// readiness; local /v1/sim keeps working the whole time.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(wTS.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		payload, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK && strings.Contains(string(payload), "degraded-standalone") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never reported degraded-standalone (last: %s)", payload)
		}
		time.Sleep(20 * time.Millisecond)
	}

	ref := standaloneResult(t, api.SimRequest{Benchmark: "speech", Ops: 20_000})
	if _, result := postSimURL(t, wTS.URL, api.SimRequest{Benchmark: "speech", Ops: 20_000}); !bytes.Equal(result, ref) {
		t.Errorf("orphaned worker served wrong bytes for local traffic")
	}

	fams := scrape(t, wTS.URL)
	if fam := fams["cdpd_cluster_orphaned_seconds"]; fam == nil || fam.Value(t, 0) <= 0 {
		t.Errorf("cdpd_cluster_orphaned_seconds not rising while partitioned")
	}

	// A replacement coordinator boots on the same address with no memory of
	// the fleet. The worker's next heartbeat gets 404, resets its
	// generation, re-registers with jittered backoff, and resyncs the ring.
	coord2, err := NewCoordinator(CoordinatorOptions{LeaseTTL: 900 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sc.swap(coord2)
	t.Cleanup(func() { coord2.Close(t.Context()) })

	waitForWorkers(t, coord2, 1)
	deadline = time.Now().Add(10 * time.Second)
	for {
		fams = scrape(t, wTS.URL)
		if fam := fams["cdpd_cluster_orphaned_seconds"]; fam != nil && fam.Value(t, 0) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never cleared its orphaned clock after rejoining")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = w
}
