package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

// registerBackoff paces re-registration attempts while the coordinator is
// unreachable or rejecting (cluster.register.error): start fast, back off
// to a ceiling.
const (
	registerBackoffMin = 250 * time.Millisecond
	registerBackoffMax = 2 * time.Second
)

// WorkerOptions configures one worker. Name, SelfURL and JoinURL are
// required.
type WorkerOptions struct {
	// Name is the worker's stable ring identity. Ownership hashes the
	// name, so a worker that restarts under the same name owns the same
	// keys.
	Name string
	// SelfURL is the base URL peers and the coordinator reach this worker
	// at (advertised verbatim in register/heartbeat).
	SelfURL string
	// JoinURL is the coordinator's base URL.
	JoinURL string
	// CacheDir enables the disk spill tier ("" = memory + peers only).
	CacheDir string
	// CacheBytes bounds the in-memory tier (0 = 64 MiB).
	CacheBytes int64
	// Queue sizes the worker's simulation pool.
	Queue jobq.Config
	// API passes through to the embedded api.Server (checkpoint dir and
	// interval, shed watermarks, adaptive timeouts, logger).
	API api.Options
}

func (o WorkerOptions) cacheBytes() int64 {
	if o.CacheBytes > 0 {
		return o.CacheBytes
	}
	return 64 << 20
}

// Worker is one cluster member: a full cdpd API server whose result cache
// is the shared tier (memory → disk → peers), plus the heartbeat loop
// that keeps its lease and its ring replica current. The ring replica is
// what turns cache misses into peer fetches: the key's other ring
// successors are exactly where an earlier owner would have stored it.
type Worker struct {
	opts   WorkerOptions
	queue  *jobq.Queue
	tiered *simcache.TieredCache
	api    *api.Server
	mux    *http.ServeMux
	httpc  *http.Client
	logger *slog.Logger

	rootCtx    context.Context
	rootCancel context.CancelFunc
	loopWG     sync.WaitGroup
	started    bool

	mu            sync.Mutex
	ring          *Ring             // simlint:guardedby mu
	urls          map[string]string // simlint:guardedby mu
	generation    uint64            // simlint:guardedby mu
	registered    bool              // simlint:guardedby mu
	ttl           time.Duration     // simlint:guardedby mu
	orphanedSince time.Time         // simlint:guardedby mu
}

// NewWorker builds a worker (not yet registered; call Start). The worker
// is a process lifecycle root: its heartbeat loop and cache tier must
// outlive any single request, and only Close stops them.
//
// simlint:rootctx
func NewWorker(opts WorkerOptions) (*Worker, error) {
	if opts.Name == "" || opts.SelfURL == "" || opts.JoinURL == "" {
		return nil, errors.New("cluster: worker needs Name, SelfURL and JoinURL")
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		opts:       opts,
		queue:      jobq.New(opts.Queue),
		mux:        http.NewServeMux(),
		httpc:      &http.Client{},
		logger:     opts.API.Logger,
		rootCtx:    ctx,
		rootCancel: cancel,
		ring:       NewRing(DefaultVirtualNodes),
		urls:       map[string]string{},
		ttl:        DefaultLeaseTTL,
	}
	if w.logger == nil {
		w.logger = slog.New(slog.DiscardHandler)
	}
	mem := simcache.New(opts.cacheBytes())
	tiered := simcache.NewTiered(mem, opts.CacheDir, w)
	w.tiered = tiered
	srv, err := api.NewWithOptions(w.queue, tiered, opts.API)
	if err != nil {
		cancel()
		tiered.Close()
		return nil, err
	}
	w.api = srv
	w.mux.Handle("/", srv)
	w.mux.HandleFunc("GET /v1/cache/{key}", w.handleCacheGet)
	w.mux.HandleFunc("GET /readyz", w.handleReadyz)
	w.mux.HandleFunc("GET /metrics", w.handleMetrics)
	return w, nil
}

// ServeHTTP implements http.Handler.
func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) { w.mux.ServeHTTP(rw, r) }

// API exposes the embedded server (tests poke its counters directly).
func (w *Worker) API() *api.Server { return w.api }

// TierStats exposes the shared-tier counters (tests and peers' metrics).
func (w *Worker) TierStats() simcache.TierStats { return w.tiered.TierStats() }

// Start launches the heartbeat loop: register (retrying until admitted),
// then renew the lease at a third of its TTL.
func (w *Worker) Start() {
	if w.started {
		return
	}
	w.started = true
	w.loopWG.Add(1)
	go w.heartbeatLoop(w.rootCtx)
}

// Close leaves the cluster (best effort), stops the heartbeat loop, shuts
// the queue down within ctx's deadline, and closes the cache tier.
func (w *Worker) Close(ctx context.Context) error {
	w.leave(ctx)
	w.rootCancel()
	w.loopWG.Wait()
	err := w.queue.Shutdown(ctx)
	w.tiered.Close()
	return err
}

// Kill tears the worker down the way a SIGKILL would, for the chaos
// orchestrator: no leave call, no graceful drain. The heartbeat loop
// stops, running jobs' contexts are canceled (a segmented sim dies at its
// next checkpoint boundary, exactly like a killed process whose snapshot
// survives on shared disk), and the lease is left to lapse so the
// coordinator discovers the death on its own.
//
// simlint:rootctx
func (w *Worker) Kill() {
	w.rootCancel()
	w.loopWG.Wait()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = w.queue.Shutdown(ctx)
	w.tiered.Close()
}

// Peers implements simcache.PeerPicker: a missed key's other ring
// successors, in ring order — if any node computed and spilled this key,
// it is one of these.
func (w *Worker) Peers(key simcache.Key) []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var urls []string
	for _, name := range w.ring.Successors(key, 3) {
		if name == w.opts.Name {
			continue
		}
		if u := w.urls[name]; u != "" {
			urls = append(urls, u)
		}
		if len(urls) == 2 {
			break
		}
	}
	return urls
}

// handleCacheGet is GET /v1/cache/{key}: serve a payload from the local
// tiers only (memory, then disk). Peer fetch is deliberately excluded —
// two workers missing the same key must not chase each other in a loop.
func (w *Worker) handleCacheGet(rw http.ResponseWriter, r *http.Request) {
	key, err := simcache.ParseKey(r.PathValue("key"))
	if err != nil {
		writeError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	data, ok := w.tiered.GetLocal(key)
	if !ok {
		writeError(rw, http.StatusNotFound, "key %s not resident", key)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.Write(data)
}

// registerJitter spreads (re-)registration attempts across the backoff
// window so a restarted coordinator is not hit by a synchronized herd: a
// deterministic hash of (worker name, attempt) places this worker's next
// try uniformly in [base/2, base), where base doubles per attempt from
// registerBackoffMin up to registerBackoffMax. Hashing instead of ambient
// randomness keeps a fleet's schedule reproducible — the same property
// vnode placement relies on.
func registerJitter(name string, attempt int) time.Duration {
	base := registerBackoffMin << min(attempt, 3)
	if base > registerBackoffMax {
		base = registerBackoffMax
	}
	h := (uint64(attempt) + 1) * 0x9E3779B97F4A7C15
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001B3
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	half := base / 2
	return half + time.Duration(h%uint64(half))
}

// markOrphaned records the moment coordinator contact was lost (first
// failure wins); markContacted clears it.
func (w *Worker) markOrphaned() {
	w.mu.Lock()
	if w.orphanedSince.IsZero() {
		w.orphanedSince = time.Now()
	}
	w.mu.Unlock()
}

func (w *Worker) markContacted() {
	w.mu.Lock()
	w.orphanedSince = time.Time{}
	w.mu.Unlock()
}

// orphanedFor reports how long the worker has been without coordinator
// contact (0 = in contact).
func (w *Worker) orphanedFor() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.orphanedSince.IsZero() {
		return 0
	}
	return time.Since(w.orphanedSince)
}

// handleReadyz wraps the embedded server's readiness with the cluster
// dimension: a worker that has lost its coordinator keeps serving local
// /v1/sim traffic, so it stays ready — annotated degraded-standalone so
// operators and probes can tell partition from health.
func (w *Worker) handleReadyz(rw http.ResponseWriter, r *http.Request) {
	rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
	ok, status := w.api.Ready()
	if !ok {
		rw.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(rw, status)
		return
	}
	if d := w.orphanedFor(); d > 0 {
		fmt.Fprintf(rw, "ready (degraded-standalone: no coordinator contact for %s)\n", d.Round(time.Millisecond))
		return
	}
	fmt.Fprintln(rw, status)
}

// handleMetrics appends the worker's cluster-membership series after the
// embedded server's standard exposition.
func (w *Worker) handleMetrics(rw http.ResponseWriter, r *http.Request) {
	w.api.ServeHTTP(rw, r)
	w.mu.Lock()
	registered := 0
	if w.registered {
		registered = 1
	}
	var orphaned float64
	if !w.orphanedSince.IsZero() {
		orphaned = time.Since(w.orphanedSince).Seconds()
	}
	w.mu.Unlock()
	p := func(name, help string, v any) {
		fmt.Fprintf(rw, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	p("cdpd_cluster_registered", "Whether this worker currently holds a coordinator lease.", registered)
	p("cdpd_cluster_orphaned_seconds", "Seconds since coordinator contact was lost (0 = in contact).", orphaned)
}

// heartbeatLoop keeps the worker admitted: register with jittered backoff
// until the coordinator accepts, then heartbeat at TTL/3, falling back to
// re-registration whenever the coordinator forgets us (lease lapse or
// coordinator restart). Every reply refreshes the local ring replica.
// While the coordinator is unreachable the worker is merely degraded — the
// local /v1/sim surface keeps serving, /readyz says so, and the orphaned
// clock feeds the cdpd_cluster_orphaned_seconds gauge.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	defer w.loopWG.Done()
	attempt := 0
	timer := time.NewTimer(0) // first attempt immediately
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}

		w.mu.Lock()
		registered := w.registered
		ttl := w.ttl
		w.mu.Unlock()

		var wait time.Duration
		if !registered {
			if err := w.join(ctx, "/v1/cluster/register"); err != nil {
				w.logger.Warn("register failed", "coordinator", w.opts.JoinURL, "err", err)
				w.markOrphaned()
				wait = registerJitter(w.opts.Name, attempt)
				attempt++
			} else {
				w.logger.Info("registered", "worker", w.opts.Name, "coordinator", w.opts.JoinURL)
				w.markContacted()
				attempt = 0
				w.mu.Lock()
				wait = w.ttl / 3
				w.mu.Unlock()
			}
		} else {
			// Fault point: the beat never leaves the worker. Enough in a
			// row and the lease lapses — the steal drill.
			if faultinject.Should("cluster.heartbeat.drop") {
				wait = ttl / 3
			} else if err := w.join(ctx, "/v1/cluster/heartbeat"); err != nil {
				var httpErr *statusError
				if errors.As(err, &httpErr) && httpErr.code == http.StatusNotFound {
					// Coordinator no longer knows us (lease lapsed, or it
					// restarted without its journal). Re-register after a
					// jittered pause — every other worker got the same 404,
					// and the spread keeps the re-registration herd off a
					// coordinator that just came back. Resetting the
					// generation forces a full ring resync on readmission:
					// a restarted coordinator's generation numbering cannot
					// be trusted to be comparable with ours.
					w.mu.Lock()
					w.registered = false
					w.generation = 0
					w.mu.Unlock()
					wait = registerJitter(w.opts.Name, 0)
				} else {
					// Transport trouble; keep beating — the lease absorbs
					// a few misses, and the orphaned clock starts ticking
					// toward degraded-standalone.
					w.logger.Warn("heartbeat failed", "err", err)
					w.markOrphaned()
					wait = ttl / 3
				}
			} else {
				w.markContacted()
				wait = ttl / 3
			}
		}
		timer.Reset(wait)
	}
}

// statusError is a non-2xx coordinator reply.
type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("coordinator answered %d: %s", e.code, e.msg)
}

// join posts the worker's identity to one membership endpoint and applies
// the reply.
func (w *Worker) join(ctx context.Context, path string) error {
	body, err := json.Marshal(joinRequest{Name: w.opts.Name, URL: w.opts.SelfURL})
	if err != nil {
		return err
	}
	rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.opts.JoinURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return &statusError{code: resp.StatusCode, msg: string(bytes.TrimSpace(payload))}
	}
	var reply joinReply
	if err := json.Unmarshal(payload, &reply); err != nil {
		return fmt.Errorf("bad membership reply: %w", err)
	}
	w.applyReply(reply)
	return nil
}

// applyReply syncs the lease TTL and, when the generation moved, the local
// ring replica and peer URL map.
func (w *Worker) applyReply(reply joinReply) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.registered = true
	if reply.TTLMillis > 0 {
		w.ttl = time.Duration(reply.TTLMillis) * time.Millisecond
	}
	if reply.Generation == w.generation && w.generation != 0 {
		return
	}
	names := make([]string, 0, len(reply.Members))
	urls := make(map[string]string, len(reply.Members))
	for _, m := range reply.Members {
		names = append(names, m.Name)
		urls[m.Name] = m.URL
	}
	w.ring.SetMembers(names)
	w.urls = urls
	w.generation = reply.Generation
}

// leave tells the coordinator we are draining; failures are fine (the
// lease will lapse on its own).
func (w *Worker) leave(ctx context.Context) {
	body, err := json.Marshal(joinRequest{Name: w.opts.Name, URL: w.opts.SelfURL})
	if err != nil {
		return
	}
	rctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.opts.JoinURL+"/v1/cluster/leave", bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := w.httpc.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
