package core

import "fmt"

// AdaptiveConfig enables the paper's stated future-work extension
// (Section 4.1): runtime adjustment of the matching heuristic. The paper
// fixes compare/filter bits offline per workload population and notes the
// choice "would require further tuning if the content prefetcher was going
// to be used beyond the scope of this study"; the adaptive controller tunes
// the compare width online from the prefetcher's own accuracy feedback.
type AdaptiveConfig struct {
	// Window is the number of resolved prefetches (useful or evicted
	// unused) per adaptation step.
	Window uint64
	// MinCompare and MaxCompare bound the compare-bit excursion.
	MinCompare int
	MaxCompare int
	// LowAccuracy and HighAccuracy are the hysteresis thresholds: below
	// Low, the predictor tightens (more compare bits — fewer, better
	// candidates); above High, it loosens (fewer compare bits — more
	// coverage).
	LowAccuracy  float64
	HighAccuracy float64
}

// DefaultAdaptive is a conservative controller around the paper's chosen
// 8-compare-bit operating point.
var DefaultAdaptive = AdaptiveConfig{
	Window:       2048,
	MinCompare:   8,
	MaxCompare:   12,
	LowAccuracy:  0.10,
	HighAccuracy: 0.35,
}

// Validate checks the controller parameters.
func (a AdaptiveConfig) Validate() error {
	if a.Window == 0 {
		return fmt.Errorf("core: zero adaptation window")
	}
	if a.MinCompare < 1 || a.MaxCompare > 30 || a.MinCompare > a.MaxCompare {
		return fmt.Errorf("core: bad compare-bit bounds [%d,%d]", a.MinCompare, a.MaxCompare)
	}
	if !(0 <= a.LowAccuracy && a.LowAccuracy < a.HighAccuracy && a.HighAccuracy <= 1) {
		return fmt.Errorf("core: bad accuracy thresholds [%v,%v]", a.LowAccuracy, a.HighAccuracy)
	}
	return nil
}

// Adaptive is the runtime controller. The memory system reports each
// resolved prefetch (useful on a demand touch, useless on unused eviction);
// every Window resolutions the controller moves the compare width one step
// against the accuracy error and hands back the updated heuristic.
type Adaptive struct {
	cfg    AdaptiveConfig
	match  MatchConfig
	useful uint64
	total  uint64

	steps    uint64
	tightens uint64
	loosens  uint64
}

// NewAdaptive wraps a starting heuristic with the controller.
func NewAdaptive(cfg AdaptiveConfig, start MatchConfig) *Adaptive {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if start.CompareBits < cfg.MinCompare {
		start.CompareBits = cfg.MinCompare
	}
	if start.CompareBits > cfg.MaxCompare {
		start.CompareBits = cfg.MaxCompare
	}
	return &Adaptive{cfg: cfg, match: start}
}

// Match returns the current heuristic.
func (a *Adaptive) Match() MatchConfig { return a.match }

// Observe records one resolved prefetch and returns the (possibly updated)
// heuristic along with whether it changed this call.
func (a *Adaptive) Observe(useful bool) (m MatchConfig, changed bool) {
	a.total++
	if useful {
		a.useful++
	}
	if a.total < a.cfg.Window {
		return a.match, false
	}
	acc := float64(a.useful) / float64(a.total)
	a.useful, a.total = 0, 0
	a.steps++
	switch {
	case acc < a.cfg.LowAccuracy && a.match.CompareBits < a.cfg.MaxCompare:
		a.match.CompareBits++
		a.tightens++
		return a.match, true
	case acc > a.cfg.HighAccuracy && a.match.CompareBits > a.cfg.MinCompare:
		a.match.CompareBits--
		a.loosens++
		return a.match, true
	}
	return a.match, false
}

// Stats reports adaptation activity.
func (a *Adaptive) Stats() (steps, tightens, loosens uint64) {
	return a.steps, a.tightens, a.loosens
}
