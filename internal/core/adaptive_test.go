package core

import "testing"

func adapt() *Adaptive {
	return NewAdaptive(AdaptiveConfig{
		Window: 100, MinCompare: 8, MaxCompare: 12,
		LowAccuracy: 0.10, HighAccuracy: 0.35,
	}, DefaultMatch)
}

// feed pushes one window of observations with the given useful count.
func feed(a *Adaptive, useful, total int) (MatchConfig, bool) {
	var m MatchConfig
	var changed bool
	for i := 0; i < total; i++ {
		m, changed = a.Observe(i < useful)
	}
	return m, changed
}

func TestAdaptiveTightensOnLowAccuracy(t *testing.T) {
	a := adapt()
	m, changed := feed(a, 2, 100) // 2% accuracy
	if !changed || m.CompareBits != 9 {
		t.Fatalf("low accuracy: compare = %d, changed = %v", m.CompareBits, changed)
	}
	// Keep feeding junk: walks to the max and stays there.
	for i := 0; i < 10; i++ {
		m, _ = feed(a, 0, 100)
	}
	if m.CompareBits != 12 {
		t.Fatalf("compare = %d, want clamped at 12", m.CompareBits)
	}
}

func TestAdaptiveLoosensOnHighAccuracy(t *testing.T) {
	a := adapt()
	feed(a, 2, 100) // tighten to 9
	m, changed := feed(a, 80, 100)
	if !changed || m.CompareBits != 8 {
		t.Fatalf("high accuracy: compare = %d, changed = %v", m.CompareBits, changed)
	}
	// Already at minimum: no further loosening.
	if m, _ = feed(a, 90, 100); m.CompareBits != 8 {
		t.Fatalf("compare = %d, want clamped at 8", m.CompareBits)
	}
}

func TestAdaptiveHysteresisBand(t *testing.T) {
	a := adapt()
	m, changed := feed(a, 20, 100) // 20%: inside [10%, 35%]
	if changed || m.CompareBits != 8 {
		t.Fatalf("in-band accuracy moved the knob: %d, %v", m.CompareBits, changed)
	}
	steps, tightens, loosens := a.Stats()
	if steps != 1 || tightens != 0 || loosens != 0 {
		t.Fatalf("stats = %d/%d/%d", steps, tightens, loosens)
	}
}

func TestAdaptiveNoStepMidWindow(t *testing.T) {
	a := adapt()
	for i := 0; i < 99; i++ {
		if _, changed := a.Observe(false); changed {
			t.Fatal("changed before window filled")
		}
	}
}

func TestAdaptiveConfigValidate(t *testing.T) {
	bad := []AdaptiveConfig{
		{Window: 0, MinCompare: 8, MaxCompare: 12, LowAccuracy: 0.1, HighAccuracy: 0.3},
		{Window: 10, MinCompare: 12, MaxCompare: 8, LowAccuracy: 0.1, HighAccuracy: 0.3},
		{Window: 10, MinCompare: 8, MaxCompare: 12, LowAccuracy: 0.5, HighAccuracy: 0.3},
		{Window: 10, MinCompare: 0, MaxCompare: 12, LowAccuracy: 0.1, HighAccuracy: 0.3},
	}
	for _, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad adaptive config %+v accepted", c)
		}
	}
	if err := DefaultAdaptive.Validate(); err != nil {
		t.Fatalf("default adaptive config rejected: %v", err)
	}
}

func TestAdaptiveClampsStartPoint(t *testing.T) {
	a := NewAdaptive(AdaptiveConfig{
		Window: 10, MinCompare: 10, MaxCompare: 12,
		LowAccuracy: 0.1, HighAccuracy: 0.3,
	}, MatchConfig{CompareBits: 8, FilterBits: 4, AlignBits: 1, ScanStep: 2})
	if a.Match().CompareBits != 10 {
		t.Fatalf("start point not clamped: %d", a.Match().CompareBits)
	}
}

func TestPrefetcherAdaptiveIntegration(t *testing.T) {
	cfg := DefaultConfig
	ac := AdaptiveConfig{Window: 50, MinCompare: 8, MaxCompare: 12, LowAccuracy: 0.2, HighAccuracy: 0.6}
	cfg.Adaptive = &ac
	p := New(cfg)
	if p.Config().Match.CompareBits != 8 {
		t.Fatalf("start compare = %d", p.Config().Match.CompareBits)
	}
	for i := 0; i < 50; i++ {
		p.ResolvePrefetch(false) // all useless
	}
	if p.Config().Match.CompareBits != 9 {
		t.Fatalf("prefetcher did not tighten: %d", p.Config().Match.CompareBits)
	}
	if p.Adaptations() != 1 {
		t.Fatalf("adaptations = %d", p.Adaptations())
	}
	// Non-adaptive prefetcher ignores resolutions.
	q := New(DefaultConfig)
	for i := 0; i < 500; i++ {
		q.ResolvePrefetch(false)
	}
	if q.Adaptations() != 0 || q.Config().Match.CompareBits != 8 {
		t.Fatal("non-adaptive prefetcher moved")
	}
}
