package core

import "testing"

// fuzzMatchConfig derives an always-valid MatchConfig from four arbitrary
// fuzz bytes, exercising the whole legal knob space.
func fuzzMatchConfig(cmp, flt, aln, step uint32) MatchConfig {
	c := MatchConfig{
		CompareBits: 1 + int(cmp%30),
		AlignBits:   int(aln % 5),
		ScanStep:    []int{1, 2, 4}[step%3],
	}
	c.FilterBits = int(flt) % (addrBits - c.CompareBits + 1)
	return c
}

// FuzzIsCandidate checks the matcher's output is constrained by its own
// definition for arbitrary words and knobs: accepted words are aligned and
// share the compare field with the effective address, and an effective
// address always matches itself (the paper's sanity property) whenever it
// is aligned and outside the filtered extreme regions' rejection cases.
func FuzzIsCandidate(f *testing.F) {
	f.Add(uint32(0x1000_0000), uint32(0x1000_0040), uint32(8), uint32(4), uint32(1), uint32(2))
	f.Add(uint32(0), uint32(0), uint32(1), uint32(0), uint32(0), uint32(0))
	f.Add(uint32(0xffff_ffff), uint32(0xffff_fffc), uint32(30), uint32(2), uint32(2), uint32(2))
	f.Fuzz(func(t *testing.T, eff, word, cmp, flt, aln, step uint32) {
		c := fuzzMatchConfig(cmp, flt, aln, step)
		if err := c.Validate(); err != nil {
			t.Fatalf("fuzz-derived config %v invalid: %v", c, err)
		}
		if !c.IsCandidate(eff, word) {
			return
		}
		if c.AlignBits > 0 && word&(1<<uint(c.AlignBits)-1) != 0 {
			t.Fatalf("%v accepted misaligned word %#x", c, word)
		}
		n := uint(c.CompareBits)
		if word>>(addrBits-n) != eff>>(addrBits-n) {
			t.Fatalf("%v accepted word %#x whose compare field differs from eff %#x", c, word, eff)
		}
		if c.FilterBits == 0 {
			top := word >> (addrBits - n)
			if top == 0 || top == 1<<n-1 {
				t.Fatalf("%v accepted extreme-region word %#x with zero filter bits", c, word)
			}
		}
	})
}

// FuzzScanLine feeds arbitrary line bytes through the scanner and checks
// the structural invariants issueContentPrefetch relies on: every reported
// word passes IsCandidate, words are unique, the count never exceeds the
// number of scanned positions, and AppendScan agrees with ScanLine.
func FuzzScanLine(f *testing.F) {
	f.Add(uint32(0x1000_0000), uint32(8), uint32(4), uint32(1), uint32(2), []byte("\x40\x00\x00\x10\x00\x01\x00\x10"))
	f.Add(uint32(0), uint32(1), uint32(0), uint32(0), uint32(0), []byte{})
	f.Add(uint32(0xdead_beef), uint32(16), uint32(8), uint32(2), uint32(1), make([]byte, 64))
	f.Fuzz(func(t *testing.T, eff, cmp, flt, aln, step uint32, line []byte) {
		c := fuzzMatchConfig(cmp, flt, aln, step)
		words := c.ScanLine(eff, line)
		if len(line) >= 4 && len(words) > (len(line)-4)/c.ScanStep+1 {
			t.Fatalf("%v returned %d words from a %d-byte line", c, len(words), len(line))
		}
		if len(line) < 4 && len(words) != 0 {
			t.Fatalf("%v found words in a %d-byte line", c, len(line))
		}
		for i, w := range words {
			if !c.IsCandidate(eff, w) {
				t.Fatalf("%v reported %#x, which IsCandidate rejects", c, w)
			}
			for _, prev := range words[:i] {
				if prev == w {
					t.Fatalf("%v reported duplicate word %#x", c, w)
				}
			}
		}
		// AppendScan must append exactly ScanLine's words after existing
		// entries without disturbing them.
		prefix := []uint32{0xaaaa_aaaa, 0x5555_5554}
		got := c.AppendScan(append([]uint32(nil), prefix...), eff, line)
		if len(got) != len(prefix)+len(words) {
			t.Fatalf("AppendScan appended %d words, ScanLine found %d", len(got)-len(prefix), len(words))
		}
		for i, w := range prefix {
			if got[i] != w {
				t.Fatalf("AppendScan disturbed existing entry %d", i)
			}
		}
		for i, w := range words {
			if got[len(prefix)+i] != w {
				t.Fatalf("AppendScan word %d = %#x, ScanLine found %#x", i, got[len(prefix)+i], w)
			}
		}
	})
}
