// Package core implements the paper's primary contribution: the stateless,
// content-directed data prefetcher (CDP).
//
// When a cache line is filled into the L2, a copy of its contents is handed
// to the prefetcher, which examines every address-sized word for a "likely"
// virtual address — a technique modelled after conservative garbage
// collection. The *virtual address matching* heuristic (Figure 2 of the
// paper) deems a word a candidate when its upper compare bits equal those
// of the effective address that triggered the fill, with filter bits
// rescuing the all-zeros/all-ones regions and align bits rejecting
// misaligned bit patterns. Candidates are issued as prefetches; prefetch
// fills are scanned in turn (prefetch chaining), bounded by a request-depth
// threshold, and a per-line stored depth lets demand hits on prefetched
// lines re-arm the chain (feedback-directed path reinforcement, Figures 3
// and 4).
//
// The package is pure policy: it decides what to prefetch and when to
// rescan. Translation, arbitration, cache fills and timing live in
// internal/sim, which makes the heuristics directly unit- and
// property-testable.
package core

import (
	"encoding/binary"
	"fmt"
)

// addrBits is the width of the simulated virtual address space. The paper
// targets IA-32; Figure 2's compare/filter/align fields are positions in a
// 32-bit word.
const addrBits = 32

// MatchConfig is the virtual-address-matching heuristic's four knobs
// (Section 3.3 and Figures 7/8 of the paper).
type MatchConfig struct {
	// CompareBits is N: the number of upper bits of the candidate word
	// that must equal the triggering effective address's upper bits.
	CompareBits int
	// FilterBits is M: within the all-zeros (or all-ones) upper region,
	// a candidate must have a non-zero (non-one) bit among the M bits
	// following the compare field. Zero filter bits disables prediction
	// in both extreme regions entirely.
	FilterBits int
	// AlignBits is the number of low-order bits that must be zero for a
	// word to be considered (compilers place pointers on 2- or 4-byte
	// boundaries).
	AlignBits int
	// ScanStep is the byte step between scanned words in a cache line.
	ScanStep int
}

// DefaultMatch is the configuration the paper selects after tuning:
// 8 compare bits, 4 filter bits, 1 align bit, 2-byte scan step ("8.4.1.2").
var DefaultMatch = MatchConfig{CompareBits: 8, FilterBits: 4, AlignBits: 1, ScanStep: 2}

// Validate reports whether the knobs are self-consistent.
func (c MatchConfig) Validate() error {
	if c.CompareBits < 1 || c.CompareBits > 30 {
		return fmt.Errorf("core: compare bits %d out of range", c.CompareBits)
	}
	if c.FilterBits < 0 || c.CompareBits+c.FilterBits > addrBits {
		return fmt.Errorf("core: filter bits %d out of range", c.FilterBits)
	}
	if c.AlignBits < 0 || c.AlignBits > 4 {
		return fmt.Errorf("core: align bits %d out of range", c.AlignBits)
	}
	switch c.ScanStep {
	case 1, 2, 4:
	default:
		return fmt.Errorf("core: scan step %d not in {1,2,4}", c.ScanStep)
	}
	return nil
}

// String renders the paper's compact "N.M.A.S" notation (e.g. "8.4.1.2").
func (c MatchConfig) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", c.CompareBits, c.FilterBits, c.AlignBits, c.ScanStep)
}

// IsCandidate implements Figure 2: it reports whether word looks like a
// virtual address, judged against the effective address eff of the memory
// request that triggered the fill.
func (c MatchConfig) IsCandidate(eff, word uint32) bool {
	// Alignment: any non-zero bit among the low align bits disqualifies.
	if c.AlignBits > 0 && word&(1<<uint(c.AlignBits)-1) != 0 {
		return false
	}
	n := uint(c.CompareBits)
	topWord := word >> (addrBits - n)
	topEff := eff >> (addrBits - n)
	if topWord != topEff {
		return false
	}
	// Extreme regions: upper compare bits all zeros or all ones match far
	// too much (small positive and negative integers). Demand a
	// non-zero (resp. non-one) bit in the filter field to accept.
	switch topWord {
	case 0:
		if c.FilterBits == 0 {
			return false
		}
		filter := word << n >> (addrBits - uint(c.FilterBits))
		return filter != 0
	case 1<<n - 1:
		if c.FilterBits == 0 {
			return false
		}
		filter := word << n >> (addrBits - uint(c.FilterBits))
		return filter != 1<<uint(c.FilterBits)-1
	default:
		return true
	}
}

// ScanLine scans a cache line's bytes for candidate virtual addresses,
// comparing each address-sized word against the triggering effective
// address eff. Words are sampled every ScanStep bytes; the final partial
// word positions are skipped, matching the paper's counts (61 values at
// step 1 in a 64-byte line, 16 at step 4). Duplicate candidate values
// within one line are reported once.
func (c MatchConfig) ScanLine(eff uint32, line []byte) []uint32 {
	return c.AppendScan(nil, eff, line)
}

// AppendScan is the allocation-free form of ScanLine: it appends the line's
// candidate words to dst and returns the extended slice, deduplicating only
// against words appended by this call.
func (c MatchConfig) AppendScan(dst []uint32, eff uint32, line []byte) []uint32 {
	start := len(dst)
	for off := 0; off+4 <= len(line); off += c.ScanStep {
		w := binary.LittleEndian.Uint32(line[off : off+4])
		if !c.IsCandidate(eff, w) {
			continue
		}
		dup := false
		for _, prev := range dst[start:] {
			if prev == w {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, w)
		}
	}
	return dst
}

// WordsScanned returns how many words one line scan examines, a proxy for
// the scanner's work (the paper notes 61 vs 16 for steps 1 and 4).
func (c MatchConfig) WordsScanned(lineSize int) int {
	if lineSize < 4 {
		return 0
	}
	return (lineSize-4)/c.ScanStep + 1
}
