package core

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// eff is a heap-looking effective address with upper byte 0x10.
const eff = uint32(0x1040_2030)

func TestIsCandidateBasicMatch(t *testing.T) {
	m := DefaultMatch // 8.4.1.2
	cases := []struct {
		word uint32
		want bool
		why  string
	}{
		{0x1000_0000, true, "same upper byte, aligned"},
		{0x10FF_FFFE, true, "same upper byte, 2-byte aligned"},
		{0x1100_0000, false, "different upper byte"},
		{0x0F40_2030, false, "different upper byte (close)"},
		{0x1040_2031, false, "misaligned (align bit set)"},
		{0x0000_0000, false, "zero word"},
	}
	for _, c := range cases {
		if got := m.IsCandidate(eff, c.word); got != c.want {
			t.Errorf("IsCandidate(%#x, %#x) = %v, want %v (%s)", eff, c.word, got, c.want, c.why)
		}
	}
}

func TestIsCandidateLowRegionFilter(t *testing.T) {
	m := DefaultMatch
	lowEff := uint32(0x0004_2030) // upper 8 bits all zero
	// Filter bits are bits 23..20 (the 4 bits after the compare field).
	if m.IsCandidate(lowEff, 0x0000_1234) {
		t.Error("small integer accepted in low region (filter bits zero)")
	}
	if !m.IsCandidate(lowEff, 0x0010_1234) {
		t.Error("low-region address with non-zero filter bit rejected")
	}
	if m.IsCandidate(lowEff, 0x0000_0004) {
		t.Error("tiny aligned integer accepted")
	}
}

func TestIsCandidateHighRegionFilter(t *testing.T) {
	m := DefaultMatch
	highEff := uint32(0xFF80_0010) // upper 8 bits all ones (stack-like)
	// A large negative like -4 (0xFFFFFFFC) has all-ones filter bits.
	if m.IsCandidate(highEff, 0xFFFF_FFFC) {
		t.Error("small negative accepted in high region")
	}
	// A genuine high-region address with a non-one filter bit.
	if !m.IsCandidate(highEff, 0xFF70_1234) {
		t.Error("high-region address with non-one filter bit rejected")
	}
}

func TestZeroFilterBitsDisablesExtremes(t *testing.T) {
	m := MatchConfig{CompareBits: 8, FilterBits: 0, AlignBits: 0, ScanStep: 4}
	if m.IsCandidate(0x0000_1000, 0x0010_0000) {
		t.Error("low region predicted with zero filter bits")
	}
	if m.IsCandidate(0xFF00_1000, 0xFF70_0000) {
		t.Error("high region predicted with zero filter bits")
	}
	// Interior regions unaffected.
	if !m.IsCandidate(0x1000_0000, 0x1023_4560) {
		t.Error("interior region broken by zero filter bits")
	}
}

func TestAlignBitsReject(t *testing.T) {
	for _, align := range []int{0, 1, 2} {
		m := MatchConfig{CompareBits: 8, FilterBits: 4, AlignBits: align, ScanStep: 2}
		w := uint32(0x1000_0002) // 2-byte aligned, not 4-byte aligned
		got := m.IsCandidate(0x1000_0000, w)
		want := align <= 1
		if got != want {
			t.Errorf("align=%d: IsCandidate(2-aligned) = %v, want %v", align, got, want)
		}
		odd := uint32(0x1000_0001)
		if m.IsCandidate(0x1000_0000, odd) != (align == 0) {
			t.Errorf("align=%d: odd word acceptance wrong", align)
		}
	}
}

func TestMoreCompareBitsStricter(t *testing.T) {
	// Monotonicity: any word accepted at N+1 compare bits is accepted at N
	// (for interior-region effective addresses).
	f := func(word uint32) bool {
		e := uint32(0x4A3B_2C10)
		for n := 8; n < 12; n++ {
			mN := MatchConfig{CompareBits: n, FilterBits: 4, AlignBits: 1, ScanStep: 2}
			mN1 := MatchConfig{CompareBits: n + 1, FilterBits: 4, AlignBits: 1, ScanStep: 2}
			if mN1.IsCandidate(e, word) && !mN.IsCandidate(e, word) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestScanLineFindsPlantedPointers(t *testing.T) {
	m := DefaultMatch
	line := make([]byte, 64)
	binary.LittleEndian.PutUint32(line[8:], 0x1012_3450)  // pointer
	binary.LittleEndian.PutUint32(line[20:], 42)          // data
	binary.LittleEndian.PutUint32(line[32:], 0x10AB_CDE0) // pointer
	binary.LittleEndian.PutUint32(line[48:], 0xDEAD_BEEF) // wrong region
	got := m.ScanLine(eff, line)
	want := []uint32{0x1012_3450, 0x10AB_CDE0}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ScanLine = %#x, want %#x", got, want)
	}
}

func TestScanLineDeduplicates(t *testing.T) {
	m := DefaultMatch
	line := make([]byte, 64)
	binary.LittleEndian.PutUint32(line[0:], 0x1012_3450)
	binary.LittleEndian.PutUint32(line[8:], 0x1012_3450)
	if got := m.ScanLine(eff, line); len(got) != 1 {
		t.Fatalf("duplicate candidate reported: %#x", got)
	}
}

func TestScanStepMissesUnalignedPointer(t *testing.T) {
	line := make([]byte, 64)
	// Plant a pointer at byte offset 3 — visible to step 1 only.
	binary.LittleEndian.PutUint32(line[3:], 0x1012_3450)
	m1 := MatchConfig{CompareBits: 8, FilterBits: 4, AlignBits: 0, ScanStep: 1}
	m4 := MatchConfig{CompareBits: 8, FilterBits: 4, AlignBits: 0, ScanStep: 4}
	if len(m1.ScanLine(eff, line)) != 1 {
		t.Error("step-1 scan missed offset-3 pointer")
	}
	if len(m4.ScanLine(eff, line)) != 0 {
		t.Error("step-4 scan saw offset-3 pointer")
	}
}

func TestWordsScanned(t *testing.T) {
	// The paper: 61 words at step 1 in a 64-byte line, 16 at step 4.
	if n := (MatchConfig{ScanStep: 1}).WordsScanned(64); n != 61 {
		t.Fatalf("step 1: %d words, want 61", n)
	}
	if n := (MatchConfig{ScanStep: 4}).WordsScanned(64); n != 16 {
		t.Fatalf("step 4: %d words, want 16", n)
	}
	if n := (MatchConfig{ScanStep: 2}).WordsScanned(64); n != 31 {
		t.Fatalf("step 2: %d words, want 31", n)
	}
}

func TestMatchConfigValidate(t *testing.T) {
	good := []MatchConfig{DefaultMatch, {8, 0, 0, 1}, {12, 4, 2, 4}}
	for _, m := range good {
		if err := m.Validate(); err != nil {
			t.Errorf("good config %v rejected: %v", m, err)
		}
	}
	bad := []MatchConfig{
		{0, 4, 1, 2}, {31, 4, 1, 2}, {8, -1, 1, 2},
		{30, 4, 1, 2}, {8, 4, 5, 2}, {8, 4, 1, 3},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad config %v accepted", m)
		}
	}
}

func TestMatchString(t *testing.T) {
	if s := DefaultMatch.String(); s != "8.4.1.2" {
		t.Fatalf("String = %q", s)
	}
}

// Property: a word equal to the effective address itself is always a
// candidate when it is aligned and outside the extreme regions.
func TestSelfAddressAlwaysCandidateQuick(t *testing.T) {
	m := DefaultMatch
	f := func(a uint32) bool {
		a &^= 1 // 2-byte align
		top := a >> 24
		if top == 0 || top == 0xFF {
			return true // extreme regions handled by filter tests
		}
		return m.IsCandidate(a, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: candidates returned by ScanLine always pass IsCandidate and
// appear in the line at some scanned offset.
func TestScanLineSoundQuick(t *testing.T) {
	m := DefaultMatch
	f := func(raw []byte, e uint32) bool {
		line := make([]byte, 64)
		copy(line, raw)
		for _, w := range m.ScanLine(e, line) {
			if !m.IsCandidate(e, w) {
				return false
			}
			found := false
			for off := 0; off+4 <= 64; off += m.ScanStep {
				if binary.LittleEndian.Uint32(line[off:off+4]) == w {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
