package core

import (
	"fmt"

	"repro/internal/simtrace"
)

// Config assembles the full content-prefetcher policy: the matching
// heuristic plus the chaining, width and reinforcement knobs explored in
// Section 4.2 of the paper.
type Config struct {
	Match MatchConfig
	// DepthThreshold bounds prefetch chaining: requests whose depth
	// would exceed it are dropped, and lines arriving at the threshold
	// depth are not scanned (Figure 3). The paper's best setting is 3.
	DepthThreshold int
	// NextLines is how many sequentially following cache lines are
	// prefetched along with each candidate ("wider" instead of
	// "deeper", Section 3.4.3). The paper's best setting is 3.
	NextLines int
	// PrevLines prefetches lines preceding the candidate; the paper
	// finds this unhelpful on average (Figure 9) but evaluates it.
	PrevLines int
	// Reinforce enables feedback-directed path reinforcement: demand
	// (or shallower) hits on prefetched lines promote the stored depth
	// and rescan the line to re-arm the chain (Figure 4(b)).
	Reinforce bool
	// RescanSlack is the minimum difference between stored and incoming
	// depth required to trigger a rescan. 1 reproduces Figure 4(b); 2
	// halves the rescan traffic as in Figure 4(c).
	RescanSlack int
	// LineSize is the cache line size scanned (64 in Table 1).
	LineSize int
	// Adaptive, when non-nil, enables runtime tuning of the compare
	// width from accuracy feedback (the paper's stated future work).
	Adaptive *AdaptiveConfig
}

// DefaultConfig is the paper's chosen operating point: virtual address
// matching at 8.4.1.2, depth threshold 3, three next-line prefetches, path
// reinforcement on.
var DefaultConfig = Config{
	Match:          DefaultMatch,
	DepthThreshold: 3,
	NextLines:      3,
	PrevLines:      0,
	Reinforce:      true,
	RescanSlack:    1,
	LineSize:       64,
}

// Validate checks the policy's self-consistency.
func (c Config) Validate() error {
	if err := c.Match.Validate(); err != nil {
		return err
	}
	if c.DepthThreshold < 1 {
		return fmt.Errorf("core: depth threshold %d < 1", c.DepthThreshold)
	}
	if c.NextLines < 0 || c.PrevLines < 0 {
		return fmt.Errorf("core: negative line width")
	}
	if c.Reinforce && c.RescanSlack < 1 {
		return fmt.Errorf("core: rescan slack %d < 1", c.RescanSlack)
	}
	if c.LineSize < 4 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("core: bad line size %d", c.LineSize)
	}
	if c.Adaptive != nil {
		if err := c.Adaptive.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Candidate is one prefetch the policy wants issued.
type Candidate struct {
	// VA is the virtual line base address to prefetch.
	VA uint32
	// Pointer is the raw candidate word that produced this request (for
	// next-/prev-line candidates, the word that anchored the group).
	Pointer uint32
	// Depth is the request depth the prefetch will carry.
	Depth int
	// Widened marks next-/prev-line companions (not the pointer's own
	// line); useful for ablation accounting.
	Widened bool
}

// Prefetcher holds the policy state. It is deliberately tiny — the paper's
// titular point is that the mechanism is *stateless*: no history tables, no
// training. The only persistent state in the whole scheme is the 2-bit
// stored depth per L2 line, which lives in the cache, not here.
type Prefetcher struct {
	cfg      Config
	adaptive *Adaptive

	linesScanned  uint64
	wordsMatched  uint64
	rescans       uint64
	chainsStopped uint64 // scans suppressed by the depth threshold
	adaptations   uint64

	// words and out are scratch buffers reused across fills; the slice
	// OnFill returns aliases out and is valid only until the next call.
	words []uint32
	out   []Candidate

	// tr, when non-nil, receives candidate-match events. Events are
	// stamped by the tracer's clock (the memory system announces the
	// cycle before running the scanner).
	tr *simtrace.Tracer
}

// AttachTracer wires an event tracer into the scanner (nil detaches).
func (p *Prefetcher) AttachTracer(tr *simtrace.Tracer) { p.tr = tr }

// New builds a content prefetcher; it panics on invalid configuration
// (configurations are static experiment inputs).
func New(cfg Config) *Prefetcher {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	p := &Prefetcher{cfg: cfg}
	if cfg.Adaptive != nil {
		p.adaptive = NewAdaptive(*cfg.Adaptive, cfg.Match)
		p.cfg.Match = p.adaptive.Match()
	}
	return p
}

// Config returns the active policy.
func (p *Prefetcher) Config() Config { return p.cfg }

// lineBase truncates an address to its cache-line base.
func (p *Prefetcher) lineBase(addr uint32) uint32 {
	return addr &^ uint32(p.cfg.LineSize-1)
}

// ShouldScan reports whether a line that arrived with the given request
// depth is scanned. Lines at the threshold depth terminate the chain
// (Figure 3, step D).
func (p *Prefetcher) ShouldScan(depth int) bool {
	if depth >= p.cfg.DepthThreshold {
		p.chainsStopped++
		return false
	}
	return true
}

// OnFill scans a newly filled line and returns the prefetch candidates.
// trigVA is the effective virtual address of the request that caused the
// fill; depth is that request's depth (0 for a demand fetch). The returned
// candidates carry depth+1 and include the configured next/previous lines
// for each matched pointer. Candidate lines equal to the scanned line
// itself are suppressed (a self-pointer prefetches nothing new). The
// returned slice aliases an internal scratch buffer and is valid only until
// the next OnFill call.
func (p *Prefetcher) OnFill(trigVA uint32, depth int, lineVA uint32, line []byte) []Candidate {
	if !p.ShouldScan(depth) {
		return nil
	}
	p.linesScanned++
	p.words = p.cfg.Match.AppendScan(p.words[:0], trigVA, line)
	words := p.words
	p.wordsMatched += uint64(len(words))
	if len(words) == 0 {
		return nil
	}
	scanned := p.lineBase(lineVA)
	nd := depth + 1
	out := p.out[:0]
	ls := uint32(p.cfg.LineSize)
	for _, w := range words {
		base := p.lineBase(w)
		out = addCandidate(out, scanned, base, w, nd, false)
		for k := 1; k <= p.cfg.NextLines; k++ {
			out = addCandidate(out, scanned, base+uint32(k)*ls, w, nd, true)
		}
		for k := 1; k <= p.cfg.PrevLines; k++ {
			out = addCandidate(out, scanned, base-uint32(k)*ls, w, nd, true)
		}
	}
	p.out = out
	if p.tr.Enabled() {
		for i := range out {
			widened := uint64(0)
			if out[i].Widened {
				widened = 1
			}
			p.tr.Emit(simtrace.Event{
				Kind: simtrace.KindCandidate, Comp: simtrace.CompCDP,
				Addr: out[i].VA, Addr2: out[i].Pointer,
				Depth: int16(out[i].Depth), Arg: widened,
			})
		}
	}
	return out
}

// addCandidate appends one candidate line unless it targets the scanned
// line itself or duplicates an earlier candidate. Per-line candidate counts
// are tiny, so a linear dedup scan beats building a set for every fill.
func addCandidate(out []Candidate, scanned, base, ptr uint32, depth int, widened bool) []Candidate {
	if base == scanned {
		return out
	}
	for i := range out {
		if out[i].VA == base {
			return out
		}
	}
	return append(out, Candidate{VA: base, Pointer: ptr, Depth: depth, Widened: widened})
}

// OnCacheHit applies the reinforcement rules when a request of depth
// incoming hits a line whose stored depth is stored. It returns the new
// stored depth (promotion keeps the invariant that depth counts links since
// a non-speculative request) and whether the line should be rescanned to
// extend the chain.
func (p *Prefetcher) OnCacheHit(stored, incoming int) (newDepth int, rescan bool) {
	if incoming >= stored {
		return stored, false
	}
	if !p.cfg.Reinforce {
		// Without reinforcement the stored depth is still promoted (it
		// is just bookkeeping), but no rescan is triggered.
		return incoming, false
	}
	rescan = stored-incoming >= p.cfg.RescanSlack
	if rescan {
		p.rescans++
	}
	return incoming, rescan
}

// ResolvePrefetch feeds the adaptive controller with one resolved content
// prefetch: useful (touched by a demand access) or useless (evicted
// untouched). Without an adaptive configuration it is a no-op.
func (p *Prefetcher) ResolvePrefetch(useful bool) {
	if p.adaptive == nil {
		return
	}
	if m, changed := p.adaptive.Observe(useful); changed {
		p.cfg.Match = m
		p.adaptations++
	}
}

// Stats reports scanner activity counters.
func (p *Prefetcher) Stats() (linesScanned, wordsMatched, rescans, chainsStopped uint64) {
	return p.linesScanned, p.wordsMatched, p.rescans, p.chainsStopped
}

// Adaptations reports how many times the adaptive controller changed the
// heuristic.
func (p *Prefetcher) Adaptations() uint64 { return p.adaptations }

func (p *Prefetcher) String() string {
	r := "nr"
	if p.cfg.Reinforce {
		r = "reinf"
	}
	return fmt.Sprintf("cdp{%s d%d p%d.n%d %s}", p.cfg.Match, p.cfg.DepthThreshold,
		p.cfg.PrevLines, p.cfg.NextLines, r)
}

// AdaptiveState is the checkpointable part of the Adaptive controller.
type AdaptiveState struct {
	Match    MatchConfig
	Useful   uint64
	Total    uint64
	Steps    uint64
	Tightens uint64
	Loosens  uint64
}

// State snapshots the controller.
func (a *Adaptive) State() AdaptiveState {
	return AdaptiveState{
		Match: a.match, Useful: a.useful, Total: a.total,
		Steps: a.steps, Tightens: a.tightens, Loosens: a.loosens,
	}
}

// Restore overwrites the controller with a previously captured state.
func (a *Adaptive) Restore(st AdaptiveState) error {
	if err := st.Match.Validate(); err != nil {
		return fmt.Errorf("core: adaptive state carries invalid heuristic: %v", err)
	}
	a.match = st.Match
	a.useful, a.total = st.Useful, st.Total
	a.steps, a.tightens, a.loosens = st.Steps, st.Tightens, st.Loosens
	return nil
}

// State is the checkpointable part of the prefetcher: the live heuristic
// (which the adaptive controller may have moved off its configured start)
// and the activity counters. The scratch buffers are per-fill and never
// cross a checkpoint boundary.
type State struct {
	Match         MatchConfig
	LinesScanned  uint64
	WordsMatched  uint64
	Rescans       uint64
	ChainsStopped uint64
	Adaptations   uint64
	Adaptive      *AdaptiveState
}

// State snapshots the prefetcher.
func (p *Prefetcher) State() State {
	st := State{
		Match:        p.cfg.Match,
		LinesScanned: p.linesScanned, WordsMatched: p.wordsMatched,
		Rescans: p.rescans, ChainsStopped: p.chainsStopped,
		Adaptations: p.adaptations,
	}
	if p.adaptive != nil {
		as := p.adaptive.State()
		st.Adaptive = &as
	}
	return st
}

// Restore overwrites the prefetcher with a previously captured state. The
// snapshot must agree with the prefetcher's static configuration on whether
// an adaptive controller is present.
func (p *Prefetcher) Restore(st State) error {
	if (st.Adaptive != nil) != (p.adaptive != nil) {
		return fmt.Errorf("core: adaptive state presence mismatch (snapshot %v, config %v)",
			st.Adaptive != nil, p.adaptive != nil)
	}
	if err := st.Match.Validate(); err != nil {
		return fmt.Errorf("core: prefetcher state carries invalid heuristic: %v", err)
	}
	if p.adaptive != nil {
		if err := p.adaptive.Restore(*st.Adaptive); err != nil {
			return err
		}
	}
	p.cfg.Match = st.Match
	p.linesScanned, p.wordsMatched = st.LinesScanned, st.WordsMatched
	p.rescans, p.chainsStopped = st.Rescans, st.ChainsStopped
	p.adaptations = st.Adaptations
	return nil
}
