package core

import (
	"encoding/binary"
	"testing"
)

func lineWith(ptrs map[int]uint32) []byte {
	line := make([]byte, 64)
	for off, v := range ptrs {
		binary.LittleEndian.PutUint32(line[off:], v)
	}
	return line
}

func TestOnFillEmitsCandidateAndNextLines(t *testing.T) {
	cfg := DefaultConfig // next 3, prev 0, depth threshold 3
	p := New(cfg)
	trig := uint32(0x1000_0100)
	line := lineWith(map[int]uint32{8: 0x1020_3040})
	cands := p.OnFill(trig, 0, 0x1000_0100, line)
	if len(cands) != 4 {
		t.Fatalf("candidates = %d, want 4 (pointer line + 3 next)", len(cands))
	}
	base := uint32(0x1020_3040) &^ 63
	for i, c := range cands {
		if c.VA != base+uint32(i)*64 {
			t.Fatalf("cand %d VA = %#x, want %#x", i, c.VA, base+uint32(i)*64)
		}
		if c.Depth != 1 {
			t.Fatalf("cand %d depth = %d, want 1", i, c.Depth)
		}
		if c.Widened != (i > 0) {
			t.Fatalf("cand %d widened = %v", i, c.Widened)
		}
		if c.Pointer != 0x1020_3040 {
			t.Fatalf("cand %d pointer = %#x", i, c.Pointer)
		}
	}
}

func TestOnFillPrevLines(t *testing.T) {
	cfg := DefaultConfig
	cfg.NextLines = 0
	cfg.PrevLines = 1
	p := New(cfg)
	line := lineWith(map[int]uint32{0: 0x1020_3040})
	cands := p.OnFill(0x1000_0000, 0, 0x1000_0000, line)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2", len(cands))
	}
	base := uint32(0x1020_3040) &^ 63
	if cands[1].VA != base-64 {
		t.Fatalf("prev-line VA = %#x, want %#x", cands[1].VA, base-64)
	}
}

func TestOnFillDepthChainsAndTerminates(t *testing.T) {
	p := New(DefaultConfig) // threshold 3
	line := lineWith(map[int]uint32{8: 0x1020_3040})
	// Depth 2 fill scans and yields depth-3 candidates.
	cands := p.OnFill(0x1000_0000, 2, 0x1000_0000, line)
	if len(cands) == 0 || cands[0].Depth != 3 {
		t.Fatalf("depth-2 fill candidates = %+v", cands)
	}
	// Depth 3 fill (at threshold) is not scanned: chain terminated.
	if got := p.OnFill(0x1000_0000, 3, 0x1000_0000, line); got != nil {
		t.Fatalf("depth-3 fill scanned: %+v", got)
	}
	_, _, _, stopped := p.Stats()
	if stopped != 1 {
		t.Fatalf("chainsStopped = %d", stopped)
	}
}

func TestOnFillSuppressesSelfLine(t *testing.T) {
	cfg := DefaultConfig
	cfg.NextLines = 0
	p := New(cfg)
	// The line contains a pointer into itself.
	self := uint32(0x1000_0040)
	line := lineWith(map[int]uint32{4: self + 8})
	if cands := p.OnFill(self, 0, self, line); len(cands) != 0 {
		t.Fatalf("self-pointing line produced %+v", cands)
	}
}

func TestOnFillDeduplicatesAcrossPointers(t *testing.T) {
	cfg := DefaultConfig
	cfg.NextLines = 1
	p := New(cfg)
	// Two pointers into adjacent lines: B and B+64. Candidate sets
	// {B, B+64} and {B+64, B+128} overlap at B+64.
	line := lineWith(map[int]uint32{0: 0x1020_0000, 8: 0x1020_0040})
	cands := p.OnFill(0x1000_0000, 0, 0x1000_0000, line)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d, want 3 (deduplicated)", len(cands))
	}
	seen := map[uint32]bool{}
	for _, c := range cands {
		if seen[c.VA] {
			t.Fatalf("duplicate VA %#x", c.VA)
		}
		seen[c.VA] = true
	}
}

func TestOnCacheHitPromotionAndRescan(t *testing.T) {
	p := New(DefaultConfig) // reinforce, slack 1
	// Demand (0) hits a depth-2 prefetched line: promote + rescan.
	nd, rescan := p.OnCacheHit(2, 0)
	if nd != 0 || !rescan {
		t.Fatalf("hit(2,0) = %d,%v", nd, rescan)
	}
	// Equal depth: nothing.
	if nd, rescan = p.OnCacheHit(1, 1); nd != 1 || rescan {
		t.Fatalf("hit(1,1) = %d,%v", nd, rescan)
	}
	// Deeper incoming: nothing.
	if nd, rescan = p.OnCacheHit(0, 2); nd != 0 || rescan {
		t.Fatalf("hit(0,2) = %d,%v", nd, rescan)
	}
}

func TestOnCacheHitRescanSlack(t *testing.T) {
	cfg := DefaultConfig
	cfg.RescanSlack = 2 // Figure 4(c)
	p := New(cfg)
	if _, rescan := p.OnCacheHit(1, 0); rescan {
		t.Fatal("slack 2 rescanned on difference 1")
	}
	nd, rescan := p.OnCacheHit(2, 0)
	if !rescan || nd != 0 {
		t.Fatalf("slack 2 failed on difference 2: %d,%v", nd, rescan)
	}
}

func TestOnCacheHitNoReinforce(t *testing.T) {
	cfg := DefaultConfig
	cfg.Reinforce = false
	p := New(cfg)
	nd, rescan := p.OnCacheHit(3, 0)
	if rescan {
		t.Fatal("rescan without reinforcement")
	}
	if nd != 0 {
		t.Fatalf("depth bookkeeping should still promote: %d", nd)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig
	bad.DepthThreshold = 0
	if bad.Validate() == nil {
		t.Error("zero depth threshold accepted")
	}
	bad = DefaultConfig
	bad.LineSize = 48
	if bad.Validate() == nil {
		t.Error("non-power-of-two line accepted")
	}
	bad = DefaultConfig
	bad.RescanSlack = 0
	if bad.Validate() == nil {
		t.Error("zero rescan slack with reinforcement accepted")
	}
}

func TestPrefetcherString(t *testing.T) {
	if s := New(DefaultConfig).String(); s != "cdp{8.4.1.2 d3 p0.n3 reinf}" {
		t.Fatalf("String = %q", s)
	}
}
