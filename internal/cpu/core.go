package cpu

import (
	"fmt"

	"repro/internal/simtrace"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config sizes the core per Table 1.
type Config struct {
	FetchWidth  int
	IssueWidth  int
	RetireWidth int
	ROBSize     int
	LoadBuf     int
	StoreBuf    int
	IntUnits    int
	MemUnits    int
	FPUnits     int
	// MispredictPenalty is the fetch-redirect penalty in cycles, applied
	// after a mispredicted branch resolves.
	MispredictPenalty int64
	// GshareBits is log2 of the predictor table (14 = 16K entries).
	GshareBits uint
	// FPLatency and IntLatency are execution latencies.
	IntLatency int64
	FPLatency  int64
}

// Validate checks the core geometry; cpu.New panics on what this rejects.
func (c Config) Validate() error {
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.RetireWidth <= 0 {
		return fmt.Errorf("cpu: non-positive pipeline width %+v", c)
	}
	if c.ROBSize <= 0 || c.LoadBuf <= 0 || c.StoreBuf <= 0 {
		return fmt.Errorf("cpu: non-positive buffer size %+v", c)
	}
	if c.IntUnits <= 0 || c.MemUnits <= 0 || c.FPUnits <= 0 {
		return fmt.Errorf("cpu: every functional-unit class needs at least one unit %+v", c)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("cpu: negative mispredict penalty %d", c.MispredictPenalty)
	}
	if c.GshareBits < 1 || c.GshareBits > 30 {
		return fmt.Errorf("cpu: gshare bits %d outside [1,30]", c.GshareBits)
	}
	if c.IntLatency <= 0 || c.FPLatency <= 0 {
		return fmt.Errorf("cpu: non-positive execution latency %+v", c)
	}
	return nil
}

// DefaultConfig is the 4 GHz machine of Table 1.
func DefaultConfig() Config {
	return Config{
		FetchWidth: 3, IssueWidth: 3, RetireWidth: 3,
		ROBSize: 128, LoadBuf: 48, StoreBuf: 32,
		IntUnits: 3, MemUnits: 2, FPUnits: 1,
		MispredictPenalty: 28, GshareBits: 14,
		IntLatency: 1, FPLatency: 3,
	}
}

// MemPort is the memory system as seen by the core.
type MemPort interface {
	// Tick processes memory-system events up to and including cycle.
	Tick(cycle int64)
	// NextEvent returns the cycle of the earliest pending memory event,
	// or -1 when none (used to skip idle cycles).
	NextEvent() int64
	// Load issues a demand load; done is called exactly once with the
	// cycle at which the value is available. done may be invoked
	// synchronously (cache hit) or from a later Tick (miss).
	Load(cycle int64, va, pc uint32, done func(at int64))
	// Store issues a committed store; done is called when the store has
	// drained from the store buffer's perspective.
	Store(cycle int64, va, pc uint32, done func(at int64))
}

// Result summarises one run.
type Result struct {
	Cycles      int64
	Retired     uint64
	Branches    uint64
	Mispredicts uint64
	Loads       uint64
	Stores      uint64
}

// IPC returns retired µops per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Retired) / float64(r.Cycles)
}

type entryState uint8

const (
	esEmpty entryState = iota
	esWaiting
	esReady
	esIssued
	esDone
)

type robEntry struct {
	op          trace.Op
	seq         uint64
	state       entryState
	pendingSrcs int
	dependents  []int32
	mispredict  bool
}

type writerRef struct {
	slot  int32
	seq   uint64
	valid bool
}

type completion struct {
	at   int64
	slot int32
	seq  uint64
}

// completionHeap is a hand-rolled binary min-heap ordered by (at, seq).
// container/heap would box every completion into an `any` on Push — one
// heap allocation per issued µop, the single largest allocation source in
// the simulator. The (at, seq) order is total, so pop order is fully
// deterministic; equal-cycle completions are all drained within one
// complete() call, which makes their relative order unobservable anyway.
type completionHeap []completion

func (h completion) less(o completion) bool {
	if h.at != o.at {
		return h.at < o.at
	}
	return h.seq < o.seq
}

func (h *completionHeap) push(c completion) {
	*h = append(*h, c)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].less(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *completionHeap) pop() completion {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s[r].less(s[l]) {
			m = r
		}
		if !s[m].less(s[i]) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

func (h completionHeap) peekAt() int64 { return h[0].at }

// Core runs traces against a memory port.
type Core struct {
	cfg Config
	bp  *Gshare
	st  *stats.Counters

	rob   []robEntry
	head  int32
	count int

	lastWriter [trace.NumRegs]writerRef
	readyQ     []int32
	completed  completionHeap

	// loadDone and storeDone are memory-port completion callbacks built
	// once at construction. A per-load closure literal would escape (the
	// memory system stores it on miss) and cost one allocation per load;
	// the per-slot callback is safe because a ROB slot holds at most one
	// outstanding load, whose seq cannot change until it completes.
	loadDone  []func(at int64)
	storeDone func(at int64)

	outstandingLoads  int
	outstandingStores int

	fetchIdx          int
	nextSeq           uint64
	haltFetch         bool
	fetchBlockedUntil int64

	cycle int64
	res   Result

	// OnRetire, if set, is called after each retired µop with the
	// running retired count and current cycle (warm-up detection). The
	// callback may set OnRetire to nil to unsubscribe once it has seen
	// what it needs; retirement accounting is batched while no observer
	// is attached.
	OnRetire func(retired uint64, cycle int64)

	// tr, when non-nil, receives ROB-stall events; robStallStart tracks
	// the cycle an ongoing full-ROB fetch stall began (0 = not stalled).
	// Tracing-only state: it is not part of CoreState.
	tr            *simtrace.Tracer
	robStallStart int64
}

// AttachTracer wires an event tracer into the core (nil detaches).
func (c *Core) AttachTracer(tr *simtrace.Tracer) { c.tr = tr }

// New builds a core. counters may be nil.
func New(cfg Config, st *stats.Counters) *Core {
	if cfg.ROBSize <= 0 || cfg.FetchWidth <= 0 || cfg.IssueWidth <= 0 || cfg.RetireWidth <= 0 {
		panic(fmt.Sprintf("cpu: bad config %+v", cfg))
	}
	if st == nil {
		st = &stats.Counters{}
	}
	c := &Core{
		cfg: cfg,
		bp:  NewGshare(cfg.GshareBits),
		st:  st,
		rob: make([]robEntry, cfg.ROBSize),
	}
	c.loadDone = make([]func(at int64), cfg.ROBSize)
	for i := range c.loadDone {
		slot := int32(i)
		c.loadDone[i] = func(at int64) {
			c.markComplete(slot, c.rob[slot].seq, at)
		}
	}
	c.storeDone = func(int64) { c.outstandingStores-- }
	return c
}

// Run executes up to maxOps µops of tr (0 = all) and returns timing.
func (c *Core) Run(tr *trace.Trace, mp MemPort, maxOps int) Result {
	limit := len(tr.Ops)
	if maxOps > 0 && maxOps < limit {
		limit = maxOps
	}
	ops := tr.Ops[:limit]

	lastProgress := int64(0)
	for c.fetchIdx < len(ops) || c.count > 0 {
		c.cycle++
		mp.Tick(c.cycle)
		progress := false
		if c.complete() {
			progress = true
		}
		if c.retire(mp) {
			progress = true
		}
		if c.issue(mp) {
			progress = true
		}
		if c.fetch(ops) {
			progress = true
		}
		if progress {
			lastProgress = c.cycle
			continue
		}
		// Idle cycle: skip ahead to the next interesting time.
		next := int64(-1)
		consider := func(t int64) {
			if t > c.cycle && (next == -1 || t < next) {
				next = t
			}
		}
		if len(c.completed) > 0 {
			consider(c.completed.peekAt())
		}
		if !c.haltFetch && c.fetchBlockedUntil > c.cycle {
			consider(c.fetchBlockedUntil)
		}
		if t := mp.NextEvent(); t >= 0 {
			consider(t)
		}
		if next > c.cycle+1 {
			c.cycle = next - 1
		}
		if c.cycle-lastProgress > 5_000_000 {
			panic(fmt.Sprintf("cpu: no progress since cycle %d (rob %d, readyQ %d, loads %d, stores %d, fetch %d/%d)",
				lastProgress, c.count, len(c.readyQ), c.outstandingLoads, c.outstandingStores, c.fetchIdx, len(ops)))
		}
	}
	c.res.Cycles = c.cycle
	c.st.Cycles = c.cycle
	return c.res
}

// complete drains the completion heap for the current cycle, waking
// dependents.
func (c *Core) complete() bool {
	any := false
	for len(c.completed) > 0 && c.completed.peekAt() <= c.cycle {
		comp := c.completed.pop()
		e := &c.rob[comp.slot]
		if e.seq != comp.seq || e.state != esIssued {
			continue // stale (should not happen, but be safe)
		}
		e.state = esDone
		any = true
		if e.op.Kind == trace.KLoad {
			c.outstandingLoads--
		}
		if e.op.Kind == trace.KBranch && e.mispredict {
			c.haltFetch = false
			c.fetchBlockedUntil = c.cycle + c.cfg.MispredictPenalty
		}
		for _, dep := range e.dependents {
			d := &c.rob[dep]
			d.pendingSrcs--
			if d.pendingSrcs == 0 && d.state == esWaiting {
				d.state = esReady
				c.readyQ = append(c.readyQ, dep)
			}
		}
		e.dependents = e.dependents[:0]
	}
	return any
}

// markComplete schedules completion of an issued entry at cycle at.
func (c *Core) markComplete(slot int32, seq uint64, at int64) {
	if at <= c.cycle {
		at = c.cycle + 1
	}
	c.completed.push(completion{at: at, slot: slot, seq: seq})
}

// retire commits completed µops in order. Retirement accounting is batched:
// the counters are flushed once per retire burst rather than incremented
// per µop, except while an OnRetire observer is attached (warm-up only),
// where the flush precedes each callback so the warm-up reset sees exact
// counts.
func (c *Core) retire(mp MemPort) bool {
	any := false
	var retired, stores uint64
	for n := 0; n < c.cfg.RetireWidth && c.count > 0; n++ {
		e := &c.rob[c.head]
		if e.state != esDone {
			break
		}
		if e.op.Kind == trace.KStore {
			if c.outstandingStores >= c.cfg.StoreBuf {
				break // store buffer full: stall retirement
			}
			c.outstandingStores++
			stores++
			mp.Store(c.cycle, e.op.Addr, e.op.PC, c.storeDone)
		}
		e.state = esEmpty
		c.head = (c.head + 1) % int32(c.cfg.ROBSize)
		c.count--
		c.res.Retired++
		retired++
		if c.OnRetire != nil {
			c.st.AddRetired(retired, stores)
			retired, stores = 0, 0
			c.OnRetire(c.res.Retired, c.cycle)
		}
		any = true
	}
	c.st.AddRetired(retired, stores)
	return any
}

// issue selects ready µops oldest-first, bounded by issue width, functional
// units and the load buffer.
func (c *Core) issue(mp MemPort) bool {
	intLeft, memLeft, fpLeft := c.cfg.IntUnits, c.cfg.MemUnits, c.cfg.FPUnits
	any := false
	for issued := 0; issued < c.cfg.IssueWidth; issued++ {
		best := -1
		for qi, slot := range c.readyQ {
			e := &c.rob[slot]
			ok := false
			switch e.op.Kind {
			case trace.KInt, trace.KBranch:
				ok = intLeft > 0
			case trace.KFP:
				ok = fpLeft > 0
			case trace.KLoad:
				ok = memLeft > 0 && c.outstandingLoads < c.cfg.LoadBuf
			case trace.KStore:
				ok = memLeft > 0
			}
			if !ok {
				continue
			}
			if best == -1 || e.seq < c.rob[c.readyQ[best]].seq {
				best = qi
			}
		}
		if best == -1 {
			break
		}
		slot := c.readyQ[best]
		c.readyQ[best] = c.readyQ[len(c.readyQ)-1]
		c.readyQ = c.readyQ[:len(c.readyQ)-1]
		e := &c.rob[slot]
		e.state = esIssued
		any = true
		switch e.op.Kind {
		case trace.KInt:
			intLeft--
			c.markComplete(slot, e.seq, c.cycle+c.cfg.IntLatency)
		case trace.KBranch:
			intLeft--
			c.markComplete(slot, e.seq, c.cycle+c.cfg.IntLatency)
		case trace.KFP:
			fpLeft--
			c.markComplete(slot, e.seq, c.cycle+c.cfg.FPLatency)
		case trace.KLoad:
			memLeft--
			c.outstandingLoads++
			c.res.Loads++
			mp.Load(c.cycle, e.op.Addr, e.op.PC, c.loadDone[slot])
		case trace.KStore:
			memLeft--
			c.res.Stores++
			// Address generation only; memory traffic happens at retire.
			c.markComplete(slot, e.seq, c.cycle+c.cfg.IntLatency)
		}
	}
	return any
}

// fetch brings µops into the ROB, predicting branches and halting at a
// mispredicted one until it resolves.
func (c *Core) fetch(ops []trace.Op) bool {
	if c.tr.Enabled() && c.fetchIdx < len(ops) {
		// Edge-triggered ROB-stall tracking: record when fetch first finds
		// the ROB full, emit one event with the stall length once a slot
		// frees up.
		if c.count >= c.cfg.ROBSize {
			if c.robStallStart == 0 {
				c.robStallStart = c.cycle
			}
		} else if c.robStallStart != 0 {
			c.tr.Emit(simtrace.Event{
				Kind: simtrace.KindROBStall, Comp: simtrace.CompCore,
				Cycle: c.cycle, Arg: uint64(c.cycle - c.robStallStart),
			})
			c.robStallStart = 0
		}
	}
	any := false
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fetchIdx >= len(ops) || c.count >= c.cfg.ROBSize ||
			c.haltFetch || c.cycle < c.fetchBlockedUntil {
			break
		}
		op := ops[c.fetchIdx]
		c.fetchIdx++
		slot := (c.head + int32(c.count)) % int32(c.cfg.ROBSize)
		c.count++
		c.nextSeq++
		e := &c.rob[slot]
		*e = robEntry{op: op, seq: c.nextSeq, dependents: e.dependents[:0]}

		for _, src := range [2]uint8{op.Src1, op.Src2} {
			if src == trace.NoReg || src >= trace.NumRegs {
				continue
			}
			lw := c.lastWriter[src]
			if !lw.valid {
				continue
			}
			p := &c.rob[lw.slot]
			if p.seq != lw.seq || p.state == esDone || p.state == esEmpty {
				continue
			}
			p.dependents = append(p.dependents, slot)
			e.pendingSrcs++
		}
		if op.Dst != trace.NoReg && op.Dst < trace.NumRegs {
			c.lastWriter[op.Dst] = writerRef{slot: slot, seq: e.seq, valid: true}
		}
		if e.pendingSrcs == 0 {
			e.state = esReady
			c.readyQ = append(c.readyQ, slot)
		} else {
			e.state = esWaiting
		}
		any = true

		if op.Kind == trace.KBranch {
			c.res.Branches++
			pred := c.bp.Predict(op.PC)
			c.bp.Update(op.PC, op.Taken)
			if pred != op.Taken {
				c.res.Mispredicts++
				e.mispredict = true
				c.haltFetch = true
				break
			}
		}
	}
	return any
}
