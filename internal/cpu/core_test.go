package cpu

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/trace"
)

// fakeMem is a fixed-latency memory port with optional per-line "slow"
// addresses, used to test the core's timing in isolation.
type fakeMem struct {
	latency int64
	slow    map[uint32]int64
	loads   int
	stores  int
	pending []pendingFill
	now     int64
}

type pendingFill struct {
	at int64
	cb func(int64)
}

func (f *fakeMem) Tick(cycle int64) {
	f.now = cycle
	rest := f.pending[:0]
	for _, p := range f.pending {
		if p.at <= cycle {
			p.cb(p.at)
		} else {
			rest = append(rest, p)
		}
	}
	f.pending = rest
}

func (f *fakeMem) NextEvent() int64 {
	next := int64(-1)
	for _, p := range f.pending {
		if next == -1 || p.at < next {
			next = p.at
		}
	}
	return next
}

func (f *fakeMem) Load(cycle int64, va, pc uint32, done func(int64)) {
	f.loads++
	lat := f.latency
	if extra, ok := f.slow[va&^63]; ok {
		lat = extra
	}
	if lat <= 1 {
		done(cycle + 1)
		return
	}
	f.pending = append(f.pending, pendingFill{at: cycle + lat, cb: done})
}

func (f *fakeMem) Store(cycle int64, va, pc uint32, done func(int64)) {
	f.stores++
	done(cycle + 1)
}

func run(t *testing.T, ops []trace.Op, mem *fakeMem) Result {
	t.Helper()
	c := New(DefaultConfig(), &stats.Counters{})
	return c.Run(&trace.Trace{Ops: ops}, mem, 0)
}

func TestAllOpsRetire(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 1000; i++ {
		ops = append(ops, trace.Op{PC: uint32(i * 4), Kind: trace.KInt, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg})
	}
	res := run(t, ops, &fakeMem{latency: 3})
	if res.Retired != 1000 {
		t.Fatalf("retired = %d", res.Retired)
	}
	// 3-wide machine on independent single-cycle ops: IPC near 3.
	if ipc := res.IPC(); ipc < 2.0 {
		t.Fatalf("independent-int IPC = %.2f, want near 3", ipc)
	}
}

func TestRetireWidthBoundsIPC(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 3000; i++ {
		ops = append(ops, trace.Op{Kind: trace.KInt, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg})
	}
	res := run(t, ops, &fakeMem{latency: 1})
	if ipc := res.IPC(); ipc > 3.01 {
		t.Fatalf("IPC %.2f exceeds retire width", ipc)
	}
}

func TestDependenceChainSerialises(t *testing.T) {
	// r1 = op(r1) repeated: each op waits for the previous one.
	var ops []trace.Op
	for i := 0; i < 500; i++ {
		ops = append(ops, trace.Op{Kind: trace.KInt, Dst: 1, Src1: 1, Src2: trace.NoReg})
	}
	res := run(t, ops, &fakeMem{latency: 1})
	if res.Cycles < 499 {
		t.Fatalf("dependence chain finished in %d cycles, want >= 499", res.Cycles)
	}
}

func TestPointerChaseLatencyVisible(t *testing.T) {
	// Dependent loads: load r1 <- [r1]. With 100-cycle memory, each load
	// serialises: >= 100 cycles per load.
	var ops []trace.Op
	for i := 0; i < 50; i++ {
		ops = append(ops, trace.Op{Kind: trace.KLoad, Dst: 1, Src1: 1, Src2: trace.NoReg, Addr: uint32(i * 4096)})
	}
	slow := map[uint32]int64{}
	for i := 0; i < 50; i++ {
		slow[uint32(i*4096)&^63] = 100
	}
	res := run(t, ops, &fakeMem{latency: 3, slow: slow})
	if res.Cycles < 50*100 {
		t.Fatalf("dependent slow loads took %d cycles, want >= 5000", res.Cycles)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	// Independent loads to slow lines must overlap (non-blocking cache,
	// 48-entry load buffer): total well under 50 * 100.
	var ops []trace.Op
	slow := map[uint32]int64{}
	for i := 0; i < 50; i++ {
		ops = append(ops, trace.Op{Kind: trace.KLoad, Dst: uint8(i % 8), Src1: trace.NoReg, Src2: trace.NoReg, Addr: uint32(i * 4096)})
		slow[uint32(i*4096)&^63] = 100
	}
	res := run(t, ops, &fakeMem{latency: 3, slow: slow})
	if res.Cycles > 1000 {
		t.Fatalf("independent loads took %d cycles: no memory-level parallelism", res.Cycles)
	}
}

func TestLoadBufferLimitsMLP(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadBuf = 2
	var ops []trace.Op
	slow := map[uint32]int64{}
	for i := 0; i < 20; i++ {
		ops = append(ops, trace.Op{Kind: trace.KLoad, Dst: uint8(i % 8), Src1: trace.NoReg, Src2: trace.NoReg, Addr: uint32(i * 4096)})
		slow[uint32(i*4096)&^63] = 100
	}
	c := New(cfg, &stats.Counters{})
	res := c.Run(&trace.Trace{Ops: ops}, &fakeMem{latency: 3, slow: slow}, 0)
	// 20 loads, 2 at a time, 100 cycles each: >= 1000 cycles.
	if res.Cycles < 900 {
		t.Fatalf("load buffer not limiting: %d cycles", res.Cycles)
	}
}

func TestMispredictPenaltyCosts(t *testing.T) {
	// Alternating-taken branch defeats gshare only until it learns the
	// pattern; random-looking patterns stay mispredicted. Compare a
	// predictable all-taken loop against a pseudo-random pattern.
	mk := func(pattern func(i int) bool) []trace.Op {
		var ops []trace.Op
		for i := 0; i < 2000; i++ {
			ops = append(ops, trace.Op{Kind: trace.KInt, Dst: 1, Src1: trace.NoReg, Src2: trace.NoReg})
			ops = append(ops, trace.Op{PC: 0x40, Kind: trace.KBranch, Src1: 1, Src2: trace.NoReg, Dst: trace.NoReg, Taken: pattern(i)})
		}
		return ops
	}
	easy := run(t, mk(func(i int) bool { return true }), &fakeMem{latency: 1})
	lcg := uint32(12345)
	hard := run(t, mk(func(i int) bool {
		lcg = lcg*1664525 + 1013904223
		return lcg>>16&1 != 0
	}), &fakeMem{latency: 1})
	if easy.Mispredicts > 50 {
		t.Fatalf("all-taken branch mispredicted %d times", easy.Mispredicts)
	}
	if hard.Mispredicts < 200 {
		t.Fatalf("random branch mispredicted only %d times", hard.Mispredicts)
	}
	if hard.Cycles < easy.Cycles+int64(hard.Mispredicts-easy.Mispredicts)*20 {
		t.Fatalf("mispredicts too cheap: easy %d vs hard %d cycles (%d vs %d misses)",
			easy.Cycles, hard.Cycles, easy.Mispredicts, hard.Mispredicts)
	}
}

func TestStoresReachMemory(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 100; i++ {
		ops = append(ops, trace.Op{Kind: trace.KStore, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg, Addr: uint32(i * 64)})
	}
	mem := &fakeMem{latency: 1}
	res := run(t, ops, mem)
	if res.Stores != 100 || mem.stores != 100 {
		t.Fatalf("stores executed %d, reached memory %d", res.Stores, mem.stores)
	}
}

func TestMaxOpsLimits(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 1000; i++ {
		ops = append(ops, trace.Op{Kind: trace.KInt, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg})
	}
	c := New(DefaultConfig(), &stats.Counters{})
	res := c.Run(&trace.Trace{Ops: ops}, &fakeMem{latency: 1}, 250)
	if res.Retired != 250 {
		t.Fatalf("retired = %d, want 250", res.Retired)
	}
}

func TestGshareLearnsLoop(t *testing.T) {
	g := NewGshare(10)
	// taken, taken, taken, not-taken loop pattern (4-iteration loop).
	miss := 0
	for i := 0; i < 4000; i++ {
		taken := i%4 != 3
		if g.Predict(0x100) != taken {
			miss++
		}
		g.Update(0x100, taken)
	}
	if miss > 400 {
		t.Fatalf("gshare failed to learn 4-cycle loop: %d/4000 misses", miss)
	}
}

func TestOnRetireCallback(t *testing.T) {
	var ops []trace.Op
	for i := 0; i < 10; i++ {
		ops = append(ops, trace.Op{Kind: trace.KInt, Dst: trace.NoReg, Src1: trace.NoReg, Src2: trace.NoReg})
	}
	c := New(DefaultConfig(), &stats.Counters{})
	var calls []uint64
	c.OnRetire = func(r uint64, cyc int64) { calls = append(calls, r) }
	c.Run(&trace.Trace{Ops: ops}, &fakeMem{latency: 1}, 0)
	if len(calls) != 10 || calls[9] != 10 {
		t.Fatalf("OnRetire calls = %v", calls)
	}
}
