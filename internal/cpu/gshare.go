// Package cpu implements the timing model of the processor core in Table 1:
// a 3-wide fetch/issue/retire out-of-order machine with a 128-entry reorder
// buffer, 48-entry load and 32-entry store buffers, 3 integer / 2 memory /
// 1 floating-point units, a 16K-entry gshare branch predictor and a
// 28-cycle misprediction penalty.
//
// The model is trace-driven: it executes the correct path only, but
// reconstructs the program's true critical path from the register
// dependences carried in the trace — in particular, pointer-chasing loads
// serialise through the loads that produce their addresses, which is the
// property that makes memory latency visible and prefetching valuable.
package cpu

import "fmt"

// Gshare is the classic global-history XOR-indexed predictor with 2-bit
// saturating counters ("16K entry gshare" in Table 1 is bits=14).
type Gshare struct {
	table []uint8
	hist  uint32
	mask  uint32
}

// NewGshare builds a predictor with 2^bits counters.
func NewGshare(bits uint) *Gshare {
	if bits == 0 || bits > 24 {
		panic("cpu: gshare bits out of range")
	}
	g := &Gshare{table: make([]uint8, 1<<bits), mask: 1<<bits - 1}
	// Weakly taken start: loops predict well almost immediately.
	for i := range g.table {
		g.table[i] = 2
	}
	return g
}

func (g *Gshare) index(pc uint32) uint32 { return (pc>>2 ^ g.hist) & g.mask }

// Predict returns the predicted direction for the branch at pc.
func (g *Gshare) Predict(pc uint32) bool { return g.table[g.index(pc)] >= 2 }

// Update trains the predictor with the actual outcome and advances the
// global history.
func (g *Gshare) Update(pc uint32, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.hist = (g.hist<<1 | b2u(taken)) & g.mask
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// GshareState is a checkpointable copy of the predictor's counters and
// global history.
type GshareState struct {
	Table []uint8
	Hist  uint32
}

// State snapshots the predictor.
func (g *Gshare) State() GshareState {
	return GshareState{Table: append([]uint8(nil), g.table...), Hist: g.hist}
}

// Restore overwrites the predictor with a previously captured state. The
// table size must match the predictor's geometry.
func (g *Gshare) Restore(st GshareState) error {
	if len(st.Table) != len(g.table) {
		return fmt.Errorf("cpu: gshare state has %d counters, predictor has %d", len(st.Table), len(g.table))
	}
	copy(g.table, st.Table)
	g.hist = st.Hist
	return nil
}
