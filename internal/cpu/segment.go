package cpu

import (
	"fmt"

	"repro/internal/trace"
)

// SegmentPlan drives checkpointed execution. RunSegmented pauses fetch at
// every absolute multiple of Every fetched µops, drains the machine — ROB
// empty, store buffer empty, memory system quiesced per Quiesced — and
// calls OnBoundary at each such quiesce point. Because the boundaries are
// fixed op counts, a run resumed from a boundary snapshot replays exactly
// the segmentation of an uninterrupted checkpointed run, which is what
// makes resumed results byte-identical.
type SegmentPlan struct {
	// Every is the checkpoint interval in fetched µops (> 0).
	Every int
	// Quiesced reports whether the memory system has fully drained:
	// no scheduled events, no in-flight transactions, empty arbiters.
	Quiesced func() bool
	// OnBoundary runs at each mid-run quiesce point with the absolute
	// number of µops fetched so far. Returning an error aborts the run;
	// RunSegmented returns it with the partial Result.
	OnBoundary func(opsFetched int) error
}

// RunSegmented is Run with checkpoint boundaries. It executes up to maxOps
// µops of tr (0 = all), draining the machine at each plan boundary. Unlike
// Run, it also drains outstanding stores and waits for memory-system
// quiescence before finishing, so the final cycle count reflects a fully
// drained machine; this costs a few cycles versus Run and is part of why
// the checkpoint interval belongs in the simulation's content hash.
func (c *Core) RunSegmented(tr *trace.Trace, mp MemPort, maxOps int, plan SegmentPlan) (Result, error) {
	if plan.Every <= 0 || plan.Quiesced == nil || plan.OnBoundary == nil {
		return Result{}, fmt.Errorf("cpu: segment plan needs Every > 0, Quiesced and OnBoundary")
	}
	limit := len(tr.Ops)
	if maxOps > 0 && maxOps < limit {
		limit = maxOps
	}
	ops := tr.Ops[:limit]

	for c.fetchIdx < len(ops) || c.count > 0 || c.outstandingStores > 0 {
		// This segment's fetch ceiling: the next absolute multiple of
		// Every (so a resumed core, whose fetchIdx starts exactly on a
		// boundary, recomputes the same ceilings as the original run).
		fetchLimit := (c.fetchIdx/plan.Every + 1) * plan.Every
		if fetchLimit > len(ops) {
			fetchLimit = len(ops)
		}
		c.runSegment(ops[:fetchLimit], mp, plan.Quiesced)
		// Quiesce point: the pipeline is empty, so every lastWriter
		// reference is stale and ignored by the seq checks. Clearing
		// them keeps a restored core bit-identical to this one instead
		// of merely behaviorally equivalent.
		c.lastWriter = [trace.NumRegs]writerRef{}
		if c.fetchIdx < len(ops) {
			if err := plan.OnBoundary(c.fetchIdx); err != nil {
				c.res.Cycles = c.cycle
				c.st.Cycles = c.cycle
				return c.res, err
			}
		}
	}
	c.res.Cycles = c.cycle
	c.st.Cycles = c.cycle
	return c.res, nil
}

// runSegment advances the machine until the current segment is fully
// drained: every op below the fetch ceiling fetched and retired, stores
// drained, and the memory system quiesced.
func (c *Core) runSegment(ops []trace.Op, mp MemPort, quiesced func() bool) {
	lastProgress := c.cycle
	for c.fetchIdx < len(ops) || c.count > 0 || c.outstandingStores > 0 || !quiesced() {
		storesBefore := c.outstandingStores
		c.cycle++
		mp.Tick(c.cycle)
		progress := c.outstandingStores != storesBefore
		if c.complete() {
			progress = true
		}
		if c.retire(mp) {
			progress = true
		}
		if c.issue(mp) {
			progress = true
		}
		if c.fetch(ops) {
			progress = true
		}
		if progress {
			lastProgress = c.cycle
			continue
		}
		next := int64(-1)
		consider := func(t int64) {
			if t > c.cycle && (next == -1 || t < next) {
				next = t
			}
		}
		if len(c.completed) > 0 {
			consider(c.completed.peekAt())
		}
		if !c.haltFetch && c.fetchBlockedUntil > c.cycle {
			consider(c.fetchBlockedUntil)
		}
		if t := mp.NextEvent(); t >= 0 {
			consider(t)
		}
		if next > c.cycle+1 {
			c.cycle = next - 1
		}
		if c.cycle-lastProgress > 5_000_000 {
			panic(fmt.Sprintf("cpu: no progress since cycle %d (rob %d, readyQ %d, loads %d, stores %d, fetch %d/%d, quiesced %v)",
				lastProgress, c.count, len(c.readyQ), c.outstandingLoads, c.outstandingStores, c.fetchIdx, len(ops), quiesced()))
		}
	}
}

// CoreState is the checkpointable state of a quiesced core. In-flight
// structures (ROB, ready queue, completion heap, writer map) are absent by
// construction: State refuses to capture a core that is not drained.
type CoreState struct {
	Cycle             int64
	FetchIdx          int
	NextSeq           uint64
	FetchBlockedUntil int64
	Res               Result
	Gshare            GshareState
}

// State snapshots a quiesced core; it fails if anything is in flight.
func (c *Core) State() (CoreState, error) {
	if c.count != 0 || len(c.readyQ) != 0 || len(c.completed) != 0 ||
		c.outstandingLoads != 0 || c.outstandingStores != 0 {
		return CoreState{}, fmt.Errorf("cpu: core not quiesced (rob %d, ready %d, completions %d, loads %d, stores %d)",
			c.count, len(c.readyQ), len(c.completed), c.outstandingLoads, c.outstandingStores)
	}
	return CoreState{
		Cycle:             c.cycle,
		FetchIdx:          c.fetchIdx,
		NextSeq:           c.nextSeq,
		FetchBlockedUntil: c.fetchBlockedUntil,
		Res:               c.res,
		Gshare:            c.bp.State(),
	}, nil
}

// Restore loads a quiesce-point snapshot into a drained (typically freshly
// built) core. haltFetch is necessarily false at a boundary — a halting
// branch clears it when it completes, and completion precedes the drain.
func (c *Core) Restore(st CoreState) error {
	if c.count != 0 || len(c.readyQ) != 0 || len(c.completed) != 0 ||
		c.outstandingLoads != 0 || c.outstandingStores != 0 {
		return fmt.Errorf("cpu: cannot restore into a core with work in flight")
	}
	if st.FetchIdx < 0 || st.Cycle < 0 {
		return fmt.Errorf("cpu: negative progress in core state (fetchIdx %d, cycle %d)", st.FetchIdx, st.Cycle)
	}
	if err := c.bp.Restore(st.Gshare); err != nil {
		return err
	}
	c.cycle = st.Cycle
	c.fetchIdx = st.FetchIdx
	c.nextSeq = st.NextSeq
	c.fetchBlockedUntil = st.FetchBlockedUntil
	c.res = st.Res
	c.haltFetch = false
	c.lastWriter = [trace.NumRegs]writerRef{}
	return nil
}
