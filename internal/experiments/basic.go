package experiments

import (
	"fmt"
	"strings"

	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register("table1", "Table 1: performance model configuration", runTable1)
	register("fig1", "Figure 1: non-cumulative MPTU trace, 4 MB UL2", runFig1)
	register("table2", "Table 2: benchmark instructions, µops and L2 MPTU", runTable2)
}

func runTable1(o Options) (*Report, error) {
	cfg := baseConfig(o)
	t := &report.Table{
		Title:   "Table 1: 4-GHz system configuration (as modelled)",
		Headers: []string{"Parameter", "Value"},
	}
	t.AddRow("Width", fmt.Sprintf("fetch %d, issue %d, retire %d",
		cfg.Core.FetchWidth, cfg.Core.IssueWidth, cfg.Core.RetireWidth))
	t.AddRow("Misprediction penalty", fmt.Sprintf("%d cycles", cfg.Core.MispredictPenalty))
	t.AddRow("Buffer sizes", fmt.Sprintf("reorder %d, store %d, load %d",
		cfg.Core.ROBSize, cfg.Core.StoreBuf, cfg.Core.LoadBuf))
	t.AddRow("Functional units", fmt.Sprintf("integer %d, memory %d, floating point %d",
		cfg.Core.IntUnits, cfg.Core.MemUnits, cfg.Core.FPUnits))
	t.AddRow("Load-to-use latencies", fmt.Sprintf("L1: %d cycles, L2: %d cycles", cfg.L1Lat, cfg.L2Lat))
	t.AddRow("Branch predictor", fmt.Sprintf("%dK entry gshare", 1<<(cfg.Core.GshareBits-10)))
	t.AddRow("Data prefetcher", "hardware stride prefetcher (baseline)")
	t.AddRow("L2 throughput", "1 access/cycle")
	t.AddRow("L2 queue size", fmt.Sprintf("%d entries", cfg.L2QueueSize))
	t.AddRow("Bus latency", fmt.Sprintf("%d processor cycles", cfg.BusLatency))
	t.AddRow("Bus occupancy/line", fmt.Sprintf("%d cycles (4.26 GB/s at 4 GHz)", cfg.BusOccupancy))
	t.AddRow("Bus queue size", fmt.Sprintf("%d entries", cfg.BusQueueSize))
	t.AddRow("DTLB", fmt.Sprintf("%d entry, %d-way", cfg.TLB.Entries, cfg.TLB.Ways))
	t.AddRow("DL1 cache", fmt.Sprintf("%d KB, %d-way", cfg.L1.SizeBytes/1024, cfg.L1.Ways))
	t.AddRow("UL2 cache", fmt.Sprintf("%d KB, %d-way", cfg.L2.SizeBytes/1024, cfg.L2.Ways))
	t.AddRow("Line size", fmt.Sprintf("%d bytes", cfg.L2.LineSize))
	t.AddRow("Page size", "4 KB")
	return &Report{ID: "table1", Title: "Table 1", Text: t.Render()}, nil
}

func runFig1(o Options) (*Report, error) {
	specs := workloads.SuiteRepresentatives() // one per suite, as in the paper
	cfg := with4MB(baseConfig(o))
	cfg.WarmupOps = 0 // Figure 1 shows the transient itself
	results, err := runMatrix(o, specs, []sim.Config{cfg})
	if err != nil {
		return nil, err
	}

	maxLen, maxSteady := 0, 0
	for _, row := range results {
		vals := row[0].MPTU.Values()
		if len(vals) > maxLen {
			maxLen = len(vals)
		}
		// Tolerance is relative to each benchmark's own scale: phase-
		// alternating workloads oscillate in steady state too.
		peak := 0.0
		for _, v := range vals {
			if v > peak {
				peak = v
			}
		}
		tol := 0.4 * peak
		if tol < 2 {
			tol = 2
		}
		if s := row[0].MPTU.SteadyStateAfter(tol); s > maxSteady {
			maxSteady = s
		}
	}
	xs := make([]string, maxLen)
	for i := range xs {
		xs[i] = fmt.Sprintf("%dk", uint64(i+1)*cfg.MPTUBucketOps/1000)
	}
	names := make([]string, len(specs))
	series := make([][]float64, len(specs))
	for i, s := range specs {
		names[i] = s.Name
		series[i] = results[i][0].MPTU.Values()
	}
	text := report.Series("Figure 1: non-cumulative MPTU trace (4 MB UL2)",
		"retired µops", xs, names, series)
	text += fmt.Sprintf("\nSteady state after bucket %d (~%d retired µops): use ~%d µops of warm-up.\n",
		maxSteady, uint64(maxSteady)*cfg.MPTUBucketOps, warmFor(o.ops()))
	return &Report{ID: "fig1", Title: "Figure 1", Text: text}, nil
}

func runTable2(o Options) (*Report, error) {
	specs := workloads.All()
	cfgs := []sim.Config{baseConfig(o), with4MB(baseConfig(o))}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Table 2: instructions, µops, and L2 MPTU per benchmark",
		Headers: []string{"Suite", "Benchmark", "Instructions", "µops", "MPTU (1 MB)", "MPTU (4 MB)"},
		Note: "Traces are scaled to ~" + fmt.Sprint(o.ops()) +
			" µops (the paper runs 30M-instruction LITs); MPTU is demand L2 misses per 1000 µops over the measured region.",
	}
	for i, s := range specs {
		ck := workloads.Checkpoint(s, o.ops())
		r1 := results[i][0]
		r4 := results[i][1]
		t.AddRow(s.Suite, s.Name, ck.Instrs, ck.Trace.Len(),
			r1.Counters.MPTUFor(r1.MeasuredUops),
			r4.Counters.MPTUFor(r4.MeasuredUops))
	}
	var sb strings.Builder
	sb.WriteString(t.Render())
	return &Report{ID: "table2", Title: "Table 2", Text: sb.String()}, nil
}
