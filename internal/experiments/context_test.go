package experiments

import (
	"context"
	"errors"
	"testing"

	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestRunMatrixPreCancelled: a context that is already cancelled never
// simulates anything and surfaces the cancellation as a partial-result
// error.
func TestRunMatrixPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Options{Ops: 20_000, Ctx: ctx, Parallelism: 2}
	specs := workloads.SuiteRepresentatives()[:2]
	before := SimsRun()
	_, err := runMatrix(o, specs, []sim.Config{baseConfig(o)})
	if err == nil {
		t.Fatal("cancelled context produced no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if got := SimsRun() - before; got != 0 {
		t.Fatalf("cancelled sweep still ran %d simulations", got)
	}
}

// TestRunMatrixCancelMidSweep cancels after the first completed cell and
// requires the sweep to stop early: the error reports partial coverage and
// at least one cell of the result grid stays nil.
func TestRunMatrixCancelMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	specs := workloads.SuiteRepresentatives()
	o := Options{
		Ops:         20_000,
		Ctx:         ctx,
		Parallelism: 1, // serialize so "after the first cell" is exact
		Progress: func(done, total int) {
			if done == 1 {
				cancel()
			}
		},
	}
	cfgs := []sim.Config{baseConfig(o), with4MB(baseConfig(o))}
	results, err := runMatrix(o, specs, cfgs)
	if err == nil {
		t.Fatal("mid-sweep cancellation produced no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	completed, missing := 0, 0
	for _, row := range results {
		for _, r := range row {
			if r != nil {
				completed++
			} else {
				missing++
			}
		}
	}
	total := len(specs) * len(cfgs)
	if completed == 0 || completed >= total {
		t.Fatalf("want a partial grid, got %d of %d cells completed", completed, total)
	}
	if missing == 0 {
		t.Fatal("no cell was skipped after cancellation")
	}
}

// TestRunnerPropagatesCancellation pins the user-visible contract: an
// experiment Run with a dead context returns the partial-result error
// rather than a report.
func TestRunnerPropagatesCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := Get("fig1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(Options{Ops: 20_000, Reps: true, Ctx: ctx})
	if err == nil {
		t.Fatalf("cancelled fig1 returned a report: %+v", rep)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}
