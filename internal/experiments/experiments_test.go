package experiments

import (
	"strings"
	"testing"
)

// quickOpt keeps experiment tests fast: tiny traces, suite representatives.
func quickOpt() Options {
	return Options{Ops: 120_000, Reps: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig1", "table2", "fig4", "fig7", "fig8", "fig9", "fig10", "tlb", "limit", "table3", "fig11"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if _, err := Get("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1Static(t *testing.T) {
	rep := mustRun(t, "table1")
	for _, want := range []string{"fetch 3, issue 3, retire 3", "reorder 128", "16K entry gshare",
		"1024 KB", "460 processor cycles", "64 entry, 4-way"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("table1 missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestTable3Static(t *testing.T) {
	rep := mustRun(t, "table3")
	for _, want := range []string{"markov_1/8", "markov_1/2", "markov_big", "896 KB", "7-way", "512 KB"} {
		if !strings.Contains(rep.Text, want) {
			t.Errorf("table3 missing %q:\n%s", want, rep.Text)
		}
	}
}

func mustRun(t *testing.T, id string) *Report {
	t.Helper()
	r, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Text == "" {
		t.Fatalf("experiment %s produced no text", id)
	}
	return rep
}

func TestFig1Renders(t *testing.T) {
	rep := mustRun(t, "fig1")
	if !strings.Contains(rep.Text, "Steady state") {
		t.Fatalf("fig1 missing steady-state note:\n%s", rep.Text)
	}
}

func TestTable2Renders(t *testing.T) {
	rep := mustRun(t, "table2")
	for _, name := range []string{"b2b", "verilog-gate", "tpcc-4", "specjbb-vsnet"} {
		if !strings.Contains(rep.Text, name) {
			t.Fatalf("table2 missing %s:\n%s", name, rep.Text)
		}
	}
}

func TestLimitRenders(t *testing.T) {
	rep := mustRun(t, "limit")
	if !strings.Contains(rep.Text, "AVERAGE") {
		t.Fatalf("limit missing average:\n%s", rep.Text)
	}
}

func TestFig4Renders(t *testing.T) {
	rep := mustRun(t, "fig4")
	for _, want := range []string{"no reinforcement", "with reinforcement", "rescan slack 2"} {
		if !strings.Contains(rep.Text, want) {
			t.Fatalf("fig4 missing %q:\n%s", want, rep.Text)
		}
	}
}

func TestTLBRenders(t *testing.T) {
	rep := mustRun(t, "tlb")
	for _, want := range []string{"64", "1024", "speedup"} {
		if !strings.Contains(rep.Text, want) {
			t.Fatalf("tlb missing %q:\n%s", want, rep.Text)
		}
	}
}
