package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/heap"
	"repro/internal/mem"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func init() {
	register("fig4", "Figure 4: re-establishing a terminated prefetch chain", runFig4)
}

// fig4Chain builds the figure's idealised scenario: one long dependent
// pointer chain with enough work per node that the prefetch wave can run a
// full depth-threshold ahead of the demand stream.
func fig4Chain(nodes, work int) *trace.Checkpoint {
	space := mem.NewAddressSpace()
	alloc := heap.NewAllocator(space, 0x1000_0000, 0x1100_0000)
	rng := rand.New(rand.NewSource(4))
	l := heap.BuildList(alloc, rng, heap.ListSpec{
		Nodes: nodes, NodeSize: 64, NextOff: 0, Fill: heap.DefaultFill,
	})
	pay := make([]uint32, len(l.Nodes))
	for i, n := range l.Nodes {
		pay[i] = alloc.Alloc(64, 64)
		space.Img.Write32(pay[i], rng.Uint32()|1)
		space.Img.Write32(n+8, pay[i])
	}
	b := trace.NewBuilder()
	for i, n := range l.Nodes {
		b.Load(0x104, 2, 1, n+8)
		b.Load(0x108, 3, 2, pay[i])
		for w := 0; w < work; w++ {
			b.Int(0x120+uint32(w%8)*4, 3, 3, trace.NoReg)
		}
		b.Branch(0x160, 3, space.Img.Read32(pay[i])&3 != 0)
		b.Load(0x100, 1, 1, n)
		b.Branch(0x180, 1, i+1 < len(l.Nodes))
	}
	return &trace.Checkpoint{Name: "fig4-chain", Space: space, Trace: b.Trace()}
}

func runFig4(o Options) (*Report, error) {
	nodes := 20_000
	ck := fig4Chain(nodes, 24)
	base := sim.Default()
	base.WarmupOps = 10_000

	mk := func(reinforce bool, slack int) sim.Config {
		cc := core.DefaultConfig
		cc.DepthThreshold = 3
		cc.NextLines = 0
		cc.Reinforce = reinforce
		if reinforce {
			cc.RescanSlack = slack
		}
		return base.WithContent(cc)
	}
	rows := []struct {
		name string
		cfg  sim.Config
	}{
		{"(a) no reinforcement", mk(false, 1)},
		{"(b) with reinforcement", mk(true, 1)},
		{"(c) reinforcement, rescan slack 2", mk(true, 2)},
	}

	t := &report.Table{
		Title: "Figure 4: demand misses along one pointer chain, depth threshold 3",
		Headers: []string{"scheme", "chain misses", "nodes/miss", "rescans",
			"full hits", "speedup vs (a)"},
		Note: "Paper: without reinforcement the chain dies at the threshold and costs a miss every " +
			"4 requests; reinforcement sustains it after the initial miss; slack 2 halves the rescans.",
	}
	var first *sim.Result
	for _, r := range rows {
		res, err := sim.RunContext(o.ctx(), ck, r.cfg)
		if err != nil {
			return nil, err
		}
		if first == nil {
			first = res
		}
		c := res.Counters
		perMiss := "-"
		if c.MissNoPF > 0 {
			perMiss = fmt.Sprintf("%.1f", float64(nodes)/float64(c.MissNoPF))
		}
		t.AddRow(r.name, c.MissNoPF, perMiss, c.Rescans,
			c.FullHits[cache.SrcContent], res.SpeedupOver(first))
	}
	return &Report{ID: "fig4", Title: "Figure 4", Text: t.Render()}, nil
}
