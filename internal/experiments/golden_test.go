package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// update regenerates the golden files instead of comparing against them:
//
//	go test ./internal/experiments -run TestGoldenOutputs -update
//
// Regenerate only when an experiment's output is *supposed* to change (a
// model or rendering change); a perf-only PR must leave every golden file
// byte-identical.
var update = flag.Bool("update", false, "rewrite testdata/golden/<id>.txt files")

// goldenOpt pins the exact reduced-budget options the golden files were
// generated with. Changing anything here invalidates every golden file.
func goldenOpt() Options {
	return Options{Ops: 60_000, Reps: true}
}

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".txt")
}

// TestGoldenOutputs compares every registered experiment's rendered text
// against its checked-in golden file, exactly. This is the regression net
// that lets hot-path optimisation proceed without silently changing the
// paper's Table 2 / Figure 10 numbers: any byte of drift in any experiment
// fails here.
func TestGoldenOutputs(t *testing.T) {
	for _, id := range IDs() {
		t.Run(id, func(t *testing.T) {
			r, err := Get(id)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := r.Run(goldenOpt())
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil || rep.Text == "" {
				t.Fatalf("experiment %s produced no text", id)
			}
			path := goldenPath(id)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(rep.Text), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file for %s (regenerate with -update): %v", id, err)
			}
			if rep.Text != string(want) {
				t.Errorf("experiment %s output drifted from %s:\n%s", id, path, firstDiff(string(want), rep.Text))
			}
		})
	}
}

// TestGoldenFilesHaveNoStrays fails when testdata/golden contains a file for
// an experiment that is no longer registered (renames leave stale goldens
// behind otherwise).
func TestGoldenFilesHaveNoStrays(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{}
	for _, id := range IDs() {
		known[id] = true
	}
	for _, e := range entries {
		id := strings.TrimSuffix(e.Name(), ".txt")
		if !known[id] {
			t.Errorf("stray golden file %s: no experiment %q is registered", e.Name(), id)
		}
	}
}

// firstDiff renders the first line where got departs from want, with one
// line of context, so a golden failure is readable without an external diff.
func firstDiff(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n- %s\n+ %s", i+1, wl[i], gl[i])
		}
	}
	if len(wl) != len(gl) {
		return fmt.Sprintf("line counts differ: want %d lines, got %d", len(wl), len(gl))
	}
	return "outputs differ (unlocatable diff)"
}
