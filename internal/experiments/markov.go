package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register("table3", "Table 3: Markov prefetcher system configurations", runTable3)
	register("fig11", "Figure 11: Markov vs content prefetcher speedup comparison", runFig11)
}

// Markov resource splits of Table 3: the original 1 MiB UL2 budget is
// divided between the STAB and the cache.
var markovSplits = []struct {
	name    string
	stab    int // bytes (0 = unbounded, markov_big)
	l2Bytes int
	l2Ways  int
}{
	{"markov_1/8", 128 * 1024, 896 * 1024, 7},
	{"markov_1/2", 512 * 1024, 512 * 1024, 8},
	{"markov_big", 0, 1024 * 1024, 8},
}

func markovConfig(o Options, split int) sim.Config {
	s := markovSplits[split]
	return baseConfig(o).WithMarkov(s.stab, cache.Config{
		SizeBytes: s.l2Bytes, Ways: s.l2Ways, LineSize: sim.LineSize,
	})
}

func runTable3(o Options) (*Report, error) {
	t := &report.Table{
		Title:   "Table 3: Markov prefetcher system configurations",
		Headers: []string{"Configuration", "STAB size", "STAB entries", "UL2 size", "UL2 assoc"},
		Note:    "Entry budget assumes 24 bytes/entry (tag + 4 successors + LRU state). markov_big allows unbounded STAB growth.",
	}
	for _, s := range markovSplits {
		stab := "unbounded"
		entries := "unbounded"
		if s.stab > 0 {
			stab = fmt.Sprintf("%d KB", s.stab/1024)
			entries = fmt.Sprint(s.stab / 24)
		}
		t.AddRow(s.name, stab, entries, fmt.Sprintf("%d KB", s.l2Bytes/1024),
			fmt.Sprintf("%d-way", s.l2Ways))
	}
	return &Report{ID: "table3", Title: "Table 3", Text: t.Render()}, nil
}

func runFig11(o Options) (*Report, error) {
	specs := workloads.All()
	cfgs := []sim.Config{
		baseConfig(o), // column 0: stride baseline, 1 MB UL2
		markovConfig(o, 0),
		markovConfig(o, 1),
		markovConfig(o, 2),
		baseConfig(o).WithContent(core.DefaultConfig),
	}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	names := []string{"markov_1/8", "markov_1/2", "markov_big", "content"}
	t := &report.Table{
		Title:   "Figure 11: average speedup, Markov vs content prefetcher (vs 1 MB stride baseline)",
		Headers: []string{"Configuration", "speedup"},
		Note: "Paper: the resource-split Markov configurations lose outright; markov_big caps at 1.045; " +
			"the content prefetcher reaches ~3x higher speedup with almost no state.",
	}
	sps := make([]float64, len(names))
	for i := range names {
		sps[i] = meanSpeedup(results, i+1, 0)
		t.AddRow(names[i], sps[i])
	}
	text := t.Render()
	if sps[2] > 0 {
		text += fmt.Sprintf("\nContent/markov_big speedup-gain ratio: %.2fx.\n",
			(sps[3]-1)/max1e9(sps[2]-1))
	}
	return &Report{ID: "fig11", Title: "Figure 11", Text: text}, nil
}

func max1e9(v float64) float64 {
	if v <= 0 {
		return 1e-9
	}
	return v
}
