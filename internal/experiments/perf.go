package experiments

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func init() {
	register("fig9", "Figure 9: speedup vs prefetch depth and next-line count", runFig9)
	register("fig10", "Figure 10: UL2 load-request distribution and per-benchmark speedup", runFig10)
	register("tlb", "Section 4.2.2: contribution of TLB prefetching (DTLB size sweep)", runTLB)
	register("limit", "Section 3.5: bad-prefetch injection limit study", runLimit)
}

// widthPoint is one x-axis position of Figure 9.
type widthPoint struct{ prev, next int }

var fig9Widths = []widthPoint{
	{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 0}, {1, 1},
}

// fig9Curves: depth x reinforcement, in the paper's legend order.
type fig9Curve struct {
	depth int
	reinf bool
}

var fig9Curves = []fig9Curve{
	{9, false}, {5, false}, {3, false},
	{9, true}, {5, true}, {3, true},
}

func curveName(c fig9Curve) string {
	if c.reinf {
		return fmt.Sprintf("depth.%d-reinf", c.depth)
	}
	return fmt.Sprintf("depth.%d-nr", c.depth)
}

func runFig9(o Options) (*Report, error) {
	specs := o.sweepSpecs()
	cfgs := []sim.Config{baseConfig(o)} // column 0 = stride baseline
	for _, cv := range fig9Curves {
		for _, w := range fig9Widths {
			cc := core.DefaultConfig
			cc.DepthThreshold = cv.depth
			cc.Reinforce = cv.reinf
			cc.PrevLines = w.prev
			cc.NextLines = w.next
			cfgs = append(cfgs, baseConfig(o).WithContent(cc))
		}
	}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	xs := make([]string, len(fig9Widths))
	for i, w := range fig9Widths {
		xs[i] = fmt.Sprintf("p%d.n%d", w.prev, w.next)
	}
	names := make([]string, len(fig9Curves))
	series := make([][]float64, len(fig9Curves))
	best, bestSp := "", 0.0
	for ci, cv := range fig9Curves {
		names[ci] = curveName(cv)
		series[ci] = make([]float64, len(fig9Widths))
		for wi := range fig9Widths {
			col := 1 + ci*len(fig9Widths) + wi
			sp := meanSpeedup(results, col, 0)
			series[ci][wi] = sp
			if sp > bestSp {
				bestSp = sp
				best = fmt.Sprintf("%s %s", names[ci], xs[wi])
			}
		}
	}
	text := report.Series("Figure 9: speedup vs prefetch depth and prev/next line count "+
		"(relative to stride baseline)", "p.n", xs, names, series)
	text += fmt.Sprintf("\nBest configuration: %s at %.3f speedup "+
		"(paper: reinforcement, depth 3, p0.n3 at 1.126).\n", best, bestSp)
	return &Report{ID: "fig9", Title: "Figure 9", Text: text}, nil
}

func runFig10(o Options) (*Report, error) {
	specs := workloads.All()
	cfgs := []sim.Config{
		baseConfig(o),
		baseConfig(o).WithContent(core.DefaultConfig),
	}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title: "Figure 10: distribution of UL2 load requests that would miss without prefetching",
		Headers: []string{"Benchmark", "str-full", "str-part", "cpf-full", "cpf-part",
			"ul2-miss", "speedup"},
		Note: "Percentages over demand loads that would have missed; speedup vs the stride baseline.",
	}
	var avg [5]float64
	var avgSp float64
	for i, s := range specs {
		c := results[i][1].Counters
		d := float64(c.WouldMiss())
		if d == 0 {
			d = 1
		}
		sf := float64(c.FullHits[cache.SrcStride]) / d
		sp := float64(c.PartialHits[cache.SrcStride]) / d
		cf := float64(c.FullHits[cache.SrcContent]) / d
		cp := float64(c.PartialHits[cache.SrcContent]) / d
		miss := float64(c.MissNoPF) / d
		speedup := results[i][1].SpeedupOver(results[i][0])
		t.AddRow(s.Name, report.Pct(sf), report.Pct(sp), report.Pct(cf), report.Pct(cp),
			report.Pct(miss), speedup)
		for k, v := range [5]float64{sf, sp, cf, cp, miss} {
			avg[k] += v
		}
		avgSp += speedup
	}
	n := float64(len(specs))
	t.AddRow("AVERAGE", report.Pct(avg[0]/n), report.Pct(avg[1]/n), report.Pct(avg[2]/n),
		report.Pct(avg[3]/n), report.Pct(avg[4]/n), avgSp/n)

	// Headline claims of Section 4.2.3.
	var cdpFull, cdpUseful, nonStride float64
	for i := range specs {
		c := results[i][1].Counters
		d := float64(c.WouldMiss())
		if d == 0 {
			continue
		}
		ns := d - float64(c.FullHits[cache.SrcStride]+c.PartialHits[cache.SrcStride])
		nonStride += ns
		cdpFull += float64(c.FullHits[cache.SrcContent])
		cdpUseful += float64(c.FullHits[cache.SrcContent] + c.PartialHits[cache.SrcContent])
	}
	text := t.Render()
	if nonStride > 0 {
		text += fmt.Sprintf("\nOf non-stride would-be misses: content fully eliminates %s and at least "+
			"partially masks %s (paper: 43%% and 60%%). Of masking content prefetches, %s fully mask "+
			"(paper: 72%%).\n",
			report.Pct(cdpFull/nonStride), report.Pct(cdpUseful/nonStride),
			report.Pct(cdpFull/cdpUseful))
	}
	return &Report{ID: "fig10", Title: "Figure 10", Text: text}, nil
}

func runTLB(o Options) (*Report, error) {
	entries := []int{64, 128, 256, 512, 1024}
	specs := o.sweepSpecs()
	var cfgs []sim.Config
	for _, e := range entries {
		base := baseConfig(o)
		base.TLB.Entries = e
		cdp := base.WithContent(core.DefaultConfig)
		cfgs = append(cfgs, base, cdp)
	}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Section 4.2.2: content-prefetcher speedup vs DTLB size",
		Headers: []string{"DTLB entries", "speedup (cdp vs stride, same TLB)"},
		Note:    "Paper: 12.6% at 64 entries falling only to 12.3% at 1024 — TLB prefetching is a minor contributor.",
	}
	var first, last float64
	for i, e := range entries {
		sp := meanSpeedup(results, 2*i+1, 2*i)
		if i == 0 {
			first = sp
		}
		last = sp
		t.AddRow(e, sp)
	}
	text := t.Render()
	text += fmt.Sprintf("\nSpeedup change across the sweep: %.3f -> %.3f.\n", first, last)
	return &Report{ID: "tlb", Title: "TLB sweep", Text: text}, nil
}

func runLimit(o Options) (*Report, error) {
	specs := o.sweepSpecs()
	inj := baseConfig(o)
	inj.InjectBadPrefetches = true
	inj.Name = "baseline+pollution"
	results, err := runMatrix(o, specs, []sim.Config{baseConfig(o), inj})
	if err != nil {
		return nil, err
	}

	t := &report.Table{
		Title:   "Section 3.5 limit study: bad prefetches injected on idle bus cycles",
		Headers: []string{"Benchmark", "slowdown", "injected prefetches"},
		Note:    "Paper: a low-accuracy prefetcher filling directly into the L2 costs ~3% on average.",
	}
	var sum float64
	for i, s := range specs {
		slow := results[i][0].SpeedupOver(results[i][1]) // >1 = injection hurt
		sum += slow
		t.AddRow(s.Name, slow, results[i][1].Counters.InjectedPrefetches)
	}
	t.AddRow("AVERAGE", sum/float64(len(specs)), "")
	return &Report{ID: "limit", Title: "Limit study", Text: t.Render()}, nil
}
