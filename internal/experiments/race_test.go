package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// TestRunMatrixParallelismInvariant runs one small matrix serially and with
// four workers and requires identical results cell by cell: the worker pool
// must not leak state between simulations, share checkpoints unsafely, or
// race on the result grid. CI runs this package under -race, which turns
// any such sharing into a hard failure even when the outputs happen to
// agree.
func TestRunMatrixParallelismInvariant(t *testing.T) {
	specs := workloads.SuiteRepresentatives()
	if len(specs) > 3 {
		specs = specs[:3]
	}
	o := Options{Ops: 30_000}
	base := baseConfig(o)
	cfgs := []sim.Config{base, base.WithContent(core.DefaultConfig)}

	serial, err := runMatrix(Options{Ops: o.Ops, Parallelism: 1}, specs, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runMatrix(Options{Ops: o.Ops, Parallelism: 4}, specs, cfgs)
	if err != nil {
		t.Fatal(err)
	}

	for si := range serial {
		for ci := range serial[si] {
			a, b := serial[si][ci], parallel[si][ci]
			if a == nil || b == nil {
				t.Fatalf("cell [%d][%d]: missing result (serial %v, parallel %v)", si, ci, a != nil, b != nil)
			}
			if a.MeasuredCycles != b.MeasuredCycles || a.MeasuredUops != b.MeasuredUops {
				t.Errorf("cell [%d][%d] (%s/%s): serial %d cycles / %d µops, parallel %d / %d",
					si, ci, specs[si].Name, cfgs[ci].Name,
					a.MeasuredCycles, a.MeasuredUops, b.MeasuredCycles, b.MeasuredUops)
			}
			if !reflect.DeepEqual(a.Counters, b.Counters) {
				t.Errorf("cell [%d][%d] (%s/%s): counter blocks differ between serial and parallel runs",
					si, ci, specs[si].Name, cfgs[ci].Name)
			}
			if !reflect.DeepEqual(a.MPTU.Values(), b.MPTU.Values()) {
				t.Errorf("cell [%d][%d] (%s/%s): MPTU series differ between serial and parallel runs",
					si, ci, specs[si].Name, cfgs[ci].Name)
			}
		}
	}
}

// TestSimsRunCounterAdvances pins the telemetry hook: a matrix of N cells
// advances the process-wide counter by exactly N.
func TestSimsRunCounterAdvances(t *testing.T) {
	specs := workloads.SuiteRepresentatives()[:1]
	o := Options{Ops: 20_000, Parallelism: 2}
	cfgs := []sim.Config{baseConfig(o), with4MB(baseConfig(o))}
	before := SimsRun()
	if _, err := runMatrix(o, specs, cfgs); err != nil {
		t.Fatal(err)
	}
	if got := SimsRun() - before; got != uint64(len(specs)*len(cfgs)) {
		t.Fatalf("SimsRun advanced by %d, want %d", got, len(specs)*len(cfgs))
	}
}
