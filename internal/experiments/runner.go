// Package experiments regenerates every table and figure of the paper's
// evaluation (the per-experiment index lives in DESIGN.md). Each experiment
// runs a matrix of (benchmark, machine-configuration) simulations in
// parallel and renders the paper's rows or series as text.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// SimsRun reports how many simulations this process has completed,
// including runs an experiment makes outside runMatrix. cmd/bench divides
// the delta across an experiment by its wall time for the sims/sec
// telemetry.
func SimsRun() uint64 { return sim.Runs() }

// Options scales an experiment run.
type Options struct {
	// Ctx cancels a run between simulations (nil = context.Background()).
	// Cancellation is cooperative at matrix-cell granularity: a simulation
	// that has started always finishes, so partial results stay
	// byte-identical to what an uncancelled run would have produced.
	Ctx context.Context
	// Ops is the per-benchmark µop budget (0 = workloads.DefaultOps).
	Ops int
	// Reps restricts multi-config sweeps to one benchmark per suite
	// (Figure 1's readability subset); full per-benchmark experiments
	// (Table 2, Figures 10/11) always use all fifteen.
	Reps bool
	// Parallelism bounds concurrent simulations (0 = GOMAXPROCS).
	Parallelism int
	// Progress, when non-nil, is called after each completed matrix cell
	// with the running completion count and the matrix total. Calls are
	// serialized but may arrive from any worker goroutine.
	Progress func(done, total int)
}

// rootCtx is the experiments package's single ambient-context fallback: an
// Options with no Ctx belongs to a process-lifecycle caller (cmd/repro,
// cmd/bench) that runs the experiment to completion or dies with it, so the
// detached context is the intended semantics, not an accident. Every other
// path must thread Options.Ctx. Keeping the fallback in one declared root
// means `go run ./cmd/simlint` proves no new ambient context sneaks into
// the service layer.
//
// simlint:rootctx
func rootCtx() context.Context {
	return context.Background()
}

func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return rootCtx()
}

func (o Options) ops() int {
	if o.Ops > 0 {
		return o.Ops
	}
	return workloads.DefaultOps
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) sweepSpecs() []workloads.Spec {
	if o.Reps {
		return workloads.SuiteRepresentatives()
	}
	return workloads.All()
}

// warmFor scales the warm-up boundary to the trace budget (the paper uses
// ~1/6 of the trace; see Section 2.2).
func warmFor(ops int) uint64 { return uint64(ops / 8) }

// baseConfig is the Table 1 stride-only baseline scaled to the options.
func baseConfig(o Options) sim.Config {
	cfg := sim.Default()
	cfg.WarmupOps = warmFor(o.ops())
	cfg.MPTUBucketOps = uint64(o.ops() / 48)
	return cfg
}

// with4MB returns cfg with the 4 MiB UL2 of Figure 1 / Table 2.
func with4MB(cfg sim.Config) sim.Config {
	cfg.L2.SizeBytes = 4 * 1024 * 1024
	cfg.Name += "-4MB"
	return cfg
}

// Report is one experiment's rendered outcome.
type Report struct {
	ID    string
	Title string
	Text  string
}

// cell identifies one simulation in a matrix run.
type cell struct {
	spec workloads.Spec
	cfg  sim.Config
	si   int
	ci   int
}

// runMatrix simulates every (spec, config) pair and returns results indexed
// [spec][config]. Checkpoints are generated once per spec and shared (the
// simulator never mutates them). Cancelling o.Ctx stops the sweep between
// cells: completed cells keep their results, unstarted cells stay nil, and
// the returned error reports the partial coverage.
func runMatrix(o Options, specs []workloads.Spec, cfgs []sim.Config) ([][]*sim.Result, error) {
	ctx := o.ctx()
	total := len(specs) * len(cfgs)
	// Pre-generate checkpoints sequentially (generation itself is
	// allocation-heavy; doing it once also warms the cache).
	cks := make([]*trace.Checkpoint, len(specs))
	for i, s := range specs {
		if err := ctx.Err(); err != nil {
			return nil, partialErr(0, total, err)
		}
		cks[i] = workloads.Checkpoint(s, o.ops())
	}
	out := make([][]*sim.Result, len(specs))
	for i := range out {
		out[i] = make([]*sim.Result, len(cfgs))
	}
	var cells []cell
	for si, s := range specs {
		for ci, c := range cfgs {
			cells = append(cells, cell{spec: s, cfg: c, si: si, ci: ci})
		}
	}
	var (
		done   atomic.Uint64
		progMu sync.Mutex
	)
	work := make(chan cell)
	var wg sync.WaitGroup
	for w := 0; w < o.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range work {
				// The cooperative cancellation check between matrix
				// cells: once ctx is cancelled, remaining cells are
				// drained without simulating.
				res, err := sim.RunContext(ctx, cks[c.si], c.cfg)
				if err != nil {
					continue
				}
				out[c.si][c.ci] = res
				n := int(done.Add(1))
				if o.Progress != nil {
					progMu.Lock()
					o.Progress(n, total)
					progMu.Unlock()
				}
			}
		}()
	}
	for _, c := range cells {
		work <- c
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return out, partialErr(int(done.Load()), total, err)
	}
	return out, nil
}

// partialErr wraps a context error with the sweep coverage at the moment it
// took effect, so callers can report how much of a matrix survives.
func partialErr(done, total int, err error) error {
	return fmt.Errorf("experiments: sweep cancelled after %d of %d simulations: %w", done, total, err)
}

// meanSpeedup averages per-benchmark speedups of column ci relative to
// column base.
func meanSpeedup(results [][]*sim.Result, ci, base int) float64 {
	var sum float64
	for _, row := range results {
		sum += row[ci].SpeedupOver(row[base])
	}
	return sum / float64(len(results))
}

// Runner is one registered experiment. Run returns a non-nil error only
// when the options' context was cancelled; the report then covers whatever
// completed before the cut.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

var registry []Runner

func register(id, title string, fn func(Options) (*Report, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: fn})
}

// IDs lists registered experiment ids in registration order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.ID
	}
	return out
}

// Get finds an experiment by id.
func Get(id string) (Runner, error) {
	for _, r := range registry {
		if r.ID == id {
			return r, nil
		}
	}
	sorted := append([]string(nil), IDs()...)
	sort.Strings(sorted)
	return Runner{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, sorted)
}

// RunAll executes every experiment and returns the reports in order. On
// cancellation it returns the reports completed so far together with the
// partial-result error of the experiment that was cut short.
func RunAll(o Options) ([]*Report, error) {
	out := make([]*Report, 0, len(registry))
	for _, r := range registry {
		rep, err := r.Run(o)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", r.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}
