package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register("fig7", "Figure 7: compare/filter-bit tuning (adjusted coverage & accuracy)", runFig7)
	register("fig8", "Figure 8: align-bit and scan-step tuning", runFig8)
}

// tuningContent returns the predictor-isolation policy used for the tuning
// sweeps: chaining at the default depth but no width and no reinforcement,
// so issued prefetches reflect the matching heuristic alone.
func tuningContent(m core.MatchConfig) core.Config {
	return core.Config{
		Match:          m,
		DepthThreshold: 3,
		NextLines:      0,
		PrevLines:      0,
		Reinforce:      false,
		RescanSlack:    1,
		LineSize:       sim.LineSize,
	}
}

// adjusted averages the stride-adjusted coverage and accuracy across a
// result column.
func adjusted(results [][]*sim.Result, ci int) (cov, acc float64) {
	for _, row := range results {
		cov += row[ci].Counters.AdjustedCoverage()
		acc += row[ci].Counters.AdjustedAccuracy()
	}
	n := float64(len(results))
	return cov / n, acc / n
}

func runFig7(o Options) (*Report, error) {
	// The paper's horizontal axis: compare.filter combinations.
	combos := [][2]int{
		{8, 0}, {8, 2}, {8, 4}, {8, 6}, {8, 8},
		{9, 0}, {9, 1}, {9, 3}, {9, 5}, {9, 7},
		{10, 0}, {10, 2}, {10, 4}, {10, 6},
		{11, 0}, {11, 1}, {11, 3}, {11, 5},
		{12, 0}, {12, 2}, {12, 4},
	}
	specs := o.sweepSpecs()
	cfgs := make([]sim.Config, len(combos))
	xs := make([]string, len(combos))
	for i, cf := range combos {
		m := core.MatchConfig{CompareBits: cf[0], FilterBits: cf[1], AlignBits: 1, ScanStep: 2}
		cfgs[i] = baseConfig(o).WithContent(tuningContent(m))
		xs[i] = fmt.Sprintf("%02d.%d", cf[0], cf[1])
	}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	covS := make([]float64, len(combos))
	accS := make([]float64, len(combos))
	bestI, bestScore := 0, -1.0
	for i := range combos {
		covS[i], accS[i] = adjusted(results, i)
		if score := covS[i] * accS[i]; score > bestScore {
			bestScore, bestI = score, i
		}
	}
	text := report.Series(
		"Figure 7: adjusted prefetch coverage and accuracy vs compare.filter bits",
		"cmp.flt", xs, []string{"adj-coverage", "adj-accuracy"}, [][]float64{covS, accS})
	text += fmt.Sprintf("\nBest coverage/accuracy trade-off: %s (paper selects 08.4).\n", xs[bestI])
	return &Report{ID: "fig7", Title: "Figure 7", Text: text}, nil
}

func runFig8(o Options) (*Report, error) {
	// Align bits x scan step at fixed 8 compare / 4 filter bits.
	aligns := []int{0, 1, 2, 4}
	steps := []int{1, 2, 4}
	specs := o.sweepSpecs()
	var cfgs []sim.Config
	var xs []string
	for _, st := range steps {
		for _, al := range aligns {
			m := core.MatchConfig{CompareBits: 8, FilterBits: 4, AlignBits: al, ScanStep: st}
			cfgs = append(cfgs, baseConfig(o).WithContent(tuningContent(m)))
			xs = append(xs, fmt.Sprintf("8.4.%d.%d", al, st))
		}
	}
	results, err := runMatrix(o, specs, cfgs)
	if err != nil {
		return nil, err
	}

	covS := make([]float64, len(cfgs))
	accS := make([]float64, len(cfgs))
	bestI, bestScore := 0, -1.0
	for i := range cfgs {
		covS[i], accS[i] = adjusted(results, i)
		if score := covS[i] * accS[i]; score > bestScore {
			bestScore, bestI = score, i
		}
	}
	text := report.Series(
		"Figure 8: adjusted coverage and accuracy vs align bits and scan step (compare 8, filter 4)",
		"cfg", xs, []string{"adj-coverage", "adj-accuracy"}, [][]float64{covS, accS})
	text += fmt.Sprintf("\nBest coverage/accuracy trade-off: %s (paper selects 8.4.1.2).\n", xs[bestI])
	return &Report{ID: "fig8", Title: "Figure 8", Text: text}, nil
}

// avgCounters is a test hook summing a counter across a column.
func sumColumn(results [][]*sim.Result, ci int, f func(*stats.Counters) uint64) uint64 {
	var n uint64
	for _, row := range results {
		n += f(row[ci].Counters)
	}
	return n
}
