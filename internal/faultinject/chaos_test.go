// Chaos suite: the jobq + simcache stack under a randomized (but seeded,
// hence reproducible) fault plan. The external test package breaks the
// import cycle — jobq and simcache import faultinject, so these tests
// cannot live inside it.
//
// Invariants, checked after every storm:
//
//   - no lost jobs: every submission reaches a terminal state
//   - no double completions: terminal counters sum to exactly the number
//     of submissions and each subscriber sees exactly one terminal update
//   - occupancy returns to zero: no leaked running slots or queue depth
//   - cache coherence: once faults clear, every key serves its canonical
//     value and the byte accounting matches the resident entries
package faultinject_test

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/jobq"
	"repro/internal/simcache"
)

const (
	chaosJobs = 120
	chaosKeys = 20
	valueLen  = 8 // every canonical value is "value-NN"
)

func chaosKey(i int) simcache.Key {
	var k simcache.Key
	k[0] = byte(i)
	return k
}

func chaosValue(i int) []byte {
	return []byte(fmt.Sprintf("value-%02d", i))
}

// TestChaosJobqSimcache runs the storm under several seeds so CI explores
// different interleavings of the same fault plan deterministically.
func TestChaosJobqSimcache(t *testing.T) {
	for _, seed := range []int64{1, 7, 1979} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runChaos(t, seed) })
	}
}

func runChaos(t *testing.T, seed int64) {
	plan := faultinject.MustParse(seed,
		"jobq.worker.crash:p=0.08,"+
			"jobq.job.panic:p=0.12,"+
			"jobq.worker.stall:p=0.2:delay=2ms,"+
			"simcache.compute.error:p=0.2,"+
			"simcache.evict.storm:p=0.05")
	prev := faultinject.Enable(plan)
	defer faultinject.Enable(prev)

	q := jobq.New(jobq.Config{Workers: 4, Capacity: chaosJobs})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = q.Shutdown(ctx)
	}()
	c := simcache.New(1 << 16)

	type tracked struct {
		job      *jobq.Job
		terminal atomic.Int32 // terminal updates observed by the subscriber
	}
	jobs := make([]*tracked, 0, chaosJobs)
	var subs sync.WaitGroup
	canceled := 0
	for i := 0; i < chaosJobs; i++ {
		keyIdx := i % chaosKeys
		id := fmt.Sprintf("chaos-%03d", i)
		j, err := q.Submit(id, i%5-2, func(ctx context.Context, _ *jobq.Job) (any, error) {
			data, _, err := c.GetOrCompute(chaosKey(keyIdx), func() ([]byte, error) {
				time.Sleep(100 * time.Microsecond) // widen the race window
				return chaosValue(keyIdx), nil
			})
			if err != nil {
				return nil, err
			}
			return data, nil
		})
		if err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		tr := &tracked{job: j}
		jobs = append(jobs, tr)
		updates, cancelSub := j.Subscribe()
		subs.Add(1)
		go func() {
			defer subs.Done()
			defer cancelSub()
			for u := range updates {
				if u.State.Terminal() {
					tr.terminal.Add(1)
				}
			}
		}()
		// Cancel a slice of the population to keep that path in the storm.
		if i%11 == 3 {
			if q.Cancel(id) {
				canceled++
			}
		}
	}

	for _, tr := range jobs {
		select {
		case <-tr.job.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s lost: still %s after the storm", tr.job.ID(), tr.job.State())
		}
	}
	subs.Wait()

	// No lost jobs, no double completions.
	completed, failed := 0, 0
	for _, tr := range jobs {
		st := tr.job.State()
		if !st.Terminal() {
			t.Fatalf("job %s non-terminal state %s", tr.job.ID(), st)
		}
		v, err := tr.job.Result()
		switch st {
		case jobq.StateDone:
			completed++
			if err != nil {
				t.Fatalf("done job %s carries error %v", tr.job.ID(), err)
			}
			if string(v.([]byte)) != string(chaosValue(jobIndex(t, tr.job.ID())%chaosKeys)) {
				t.Fatalf("job %s completed with wrong payload %q", tr.job.ID(), v)
			}
		case jobq.StateFailed, jobq.StateCanceled:
			failed++
			if err == nil {
				t.Fatalf("failed job %s carries no error", tr.job.ID())
			}
		}
		if n := tr.terminal.Load(); n != 1 {
			t.Fatalf("job %s delivered %d terminal updates, want exactly 1", tr.job.ID(), n)
		}
	}
	st := q.Stats()
	if st.Running != 0 || st.Depth != 0 {
		t.Fatalf("occupancy leaked: %+v", st)
	}
	if got := st.Completed + st.Failed + st.Canceled; got != chaosJobs {
		t.Fatalf("terminal counters sum to %d (completed %d, failed %d, canceled %d), want %d — a job was lost or double-counted",
			got, st.Completed, st.Failed, st.Canceled, chaosJobs)
	}
	if int(st.Completed) != completed || int(st.Failed+st.Canceled) != failed {
		t.Fatalf("queue counters %+v disagree with per-job states (%d done, %d failed/canceled)", st, completed, failed)
	}

	// Cache coherence once the weather clears: every key computes (or
	// serves) its canonical value, and the byte accounting is exact.
	faultinject.Disable()
	for i := 0; i < chaosKeys; i++ {
		data, _, err := c.GetOrCompute(chaosKey(i), func() ([]byte, error) {
			return chaosValue(i), nil
		})
		if err != nil {
			t.Fatalf("post-storm compute for key %d: %v", i, err)
		}
		if string(data) != string(chaosValue(i)) {
			t.Fatalf("key %d serves %q, want %q", i, data, chaosValue(i))
		}
	}
	cs := c.Stats()
	if cs.Entries != chaosKeys || cs.Bytes != int64(chaosKeys*valueLen) {
		t.Fatalf("cache accounting drifted after the storm: %d entries / %d bytes, want %d / %d",
			cs.Entries, cs.Bytes, chaosKeys, chaosKeys*valueLen)
	}

	t.Logf("seed %d: %d completed, %d failed/canceled (%d cancel requests), faults fired: %v",
		seed, completed, failed, canceled, plan.Fired())
}

// jobIndex recovers the submission index from a chaos job ID.
func jobIndex(t *testing.T, id string) int {
	t.Helper()
	var i int
	if _, err := fmt.Sscanf(id, "chaos-%d", &i); err != nil {
		t.Fatalf("unparseable job id %q", id)
	}
	return i
}
