// Package faultinject is the deterministic fault-injection framework the
// resilience layer is tested against. Production code declares named fault
// points at the places failures can happen (a worker about to run a job, a
// cache compute, a response writer); a seeded, schedule-driven Plan decides
// at each hit whether the fault fires. With no plan enabled every helper is
// a single atomic load and a nil check, so the simulator's golden outputs
// are byte-identical with the framework compiled in.
//
// Schedules are strings so they can travel through flags and environment
// variables (cdpd's -faults / CDPD_FAULTS):
//
//	point[:key=value]*  ( "," separated rules )
//
// with keys
//
//	p=0.25      fire with probability 0.25 per hit (default 1)
//	after=10    skip the first 10 hits
//	times=3     fire at most 3 times (default unlimited)
//	delay=5ms   sleep duration for latency points (default 1ms)
//
// Example: "jobq.worker.panic:p=0.1:times=2,simcache.compute.error:after=5".
//
// Determinism: each rule draws from its own splitmix64 stream seeded by
// (plan seed, point name), so a single-threaded caller sees the same fire
// schedule for the same seed. Under concurrency the per-point hit order is
// whatever the scheduler produces — chaos tests therefore assert
// invariants (no lost jobs, coherent cache), not exact traces.
package faultinject

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point describes one declared fault site. The catalog below is the
// authoritative list; Parse rejects schedules naming unknown points so a
// typo fails loudly instead of silently injecting nothing.
type Point struct {
	Name string
	// Effect documents what firing does at this site.
	Effect string
}

// catalog lists every fault point the codebase declares, in rough
// request-flow order. Tests and DESIGN.md §9 render this table.
var catalog = []Point{
	{"jobq.worker.crash", "panics the worker goroutine between popping a job and running it (worker-crash drill; the pool must fail the job, keep occupancy exact, and keep serving)"},
	{"jobq.worker.stall", "sleeps the worker before it runs a popped job (queue stall / slow-worker drill)"},
	{"jobq.job.panic", "panics inside the job function itself (exercises runSafely's recovery and stack capture)"},
	{"simcache.compute.error", "fails a cache compute with an injected error (the error must not be cached; waiters must retry)"},
	{"simcache.evict.storm", "evicts every resident entry before inserting a freshly computed one (eviction-storm drill)"},
	{"api.respond.latency", "sleeps before writing a response body (slow-server drill for client timeout/retry)"},
	{"api.respond.partialwrite", "writes a truncated response body and aborts the connection (partial-write drill; clients must retry)"},
	{"api.stream.drop", "terminates an NDJSON progress stream mid-flight (mid-stream disconnect drill)"},
	{"sim.checkpoint.abort", "fails a checkpointed simulation at its next op-count boundary (budget-exhaustion / crash-mid-run drill; resume must complete it)"},
	{"ckpt.write.error", "fails persisting a checkpoint snapshot to disk (resume must fall back to the previous snapshot)"},
	{"cluster.register.error", "fails a worker's registration with the coordinator (the heartbeat loop must keep retrying until admitted)"},
	{"cluster.heartbeat.drop", "drops a worker heartbeat before it reaches the coordinator (lease-lapse drill; enough drops expire the lease and trigger stealing)"},
	{"cluster.steal.stall", "sleeps the coordinator between dropping a dead worker and re-routing its jobs (slow-steal drill; clients keep waiting, nothing is lost)"},
	{"cluster.peerfetch.error", "fails a peer cache fetch (the tier must fall through to recomputing, never error the request)"},
	{"cluster.journal.write-error", "fails appending a record to the coordinator's write-ahead journal (recovery loses that record but live requests must not fail)"},
	{"cluster.hedge.fire", "forces a hedged placement to fire immediately instead of waiting out the EWMA delay (hedge-path drill; first completion must still win exactly once)"},
	{"disk.cache.torn-write", "truncates a disk-tier spill mid-payload, simulating a torn write (the CRC trailer must quarantine the entry on the next read)"},
}

// Points returns the declared fault-point catalog, sorted by name.
func Points() []Point {
	out := make([]Point, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func known(name string) bool {
	for _, p := range catalog {
		if p.Name == name {
			return true
		}
	}
	return false
}

// rule is one armed schedule entry.
type rule struct {
	point string
	prob  float64
	after uint64
	times uint64
	delay time.Duration

	mu    sync.Mutex
	hits  uint64
	fired uint64
	rng   uint64 // splitmix64 state
}

// splitmix64 advances the rule's private stream and returns a uniform
// float64 in [0,1).
func (r *rule) next() float64 {
	r.rng += 0x9E3779B97F4A7C15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}

// shouldFire applies the (after, times, p) gates for one hit.
func (r *rule) shouldFire() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hits++
	if r.hits <= r.after {
		return false
	}
	if r.times > 0 && r.fired >= r.times {
		return false
	}
	if r.prob < 1 && r.next() >= r.prob {
		return false
	}
	r.fired++
	return true
}

// Plan is a parsed, seeded fault schedule. A Plan is inert until Enable
// installs it.
type Plan struct {
	seed  int64
	rules map[string]*rule
	fired atomic.Uint64
}

// seedFor mixes the plan seed with the point name so distinct points get
// independent deterministic streams.
func seedFor(seed int64, point string) uint64 {
	h := uint64(seed) ^ 0xD6E8FEB86659FD93
	for i := 0; i < len(point); i++ {
		h ^= uint64(point[i])
		h *= 0x100000001B3
	}
	return h
}

// Parse builds a Plan from a schedule string (see the package comment for
// the grammar). An empty spec yields a valid plan with no armed points.
func Parse(seed int64, spec string) (*Plan, error) {
	p := &Plan{seed: seed, rules: map[string]*rule{}}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		name := fields[0]
		if !known(name) {
			return nil, fmt.Errorf("faultinject: unknown fault point %q (see faultinject.Points)", name)
		}
		if _, dup := p.rules[name]; dup {
			return nil, fmt.Errorf("faultinject: duplicate rule for %q", name)
		}
		r := &rule{point: name, prob: 1, delay: time.Millisecond, rng: seedFor(seed, name)}
		for _, opt := range fields[1:] {
			k, v, ok := strings.Cut(opt, "=")
			if !ok {
				return nil, fmt.Errorf("faultinject: malformed option %q in rule %q", opt, part)
			}
			var err error
			switch k {
			case "p":
				r.prob, err = strconv.ParseFloat(v, 64)
				if err == nil && (r.prob < 0 || r.prob > 1 || math.IsNaN(r.prob)) {
					err = fmt.Errorf("probability %v outside [0,1]", r.prob)
				}
			case "after":
				r.after, err = strconv.ParseUint(v, 10, 64)
			case "times":
				r.times, err = strconv.ParseUint(v, 10, 64)
			case "delay":
				r.delay, err = time.ParseDuration(v)
				if err == nil && r.delay < 0 {
					err = fmt.Errorf("negative delay %v", r.delay)
				}
			default:
				err = fmt.Errorf("unknown key %q", k)
			}
			if err != nil {
				return nil, fmt.Errorf("faultinject: rule %q: %v", part, err)
			}
		}
		p.rules[name] = r
	}
	return p, nil
}

// MustParse is Parse for tests and static schedules; it panics on error.
func MustParse(seed int64, spec string) *Plan {
	p, err := Parse(seed, spec)
	if err != nil {
		panic(err)
	}
	return p
}

// Fired reports how many faults this plan has injected in total.
func (p *Plan) Fired() uint64 { return p.fired.Load() }

// active is the installed plan; nil means every fault helper is a no-op.
var active atomic.Pointer[Plan]

// Enable installs p as the process-wide fault plan (nil disables). It
// returns the previously installed plan so tests can restore it.
func Enable(p *Plan) *Plan { return active.Swap(p) }

// Disable removes any installed plan.
func Disable() { active.Store(nil) }

// Enabled reports whether a fault plan is installed.
func Enabled() bool { return active.Load() != nil }

// hit resolves one arrival at a fault point against the active plan.
func hit(point string) (*rule, bool) {
	p := active.Load()
	if p == nil {
		return nil, false
	}
	r, ok := p.rules[point]
	if !ok || !r.shouldFire() {
		return nil, false
	}
	p.fired.Add(1)
	return r, true
}

// Should reports whether the fault at point fires on this hit. Sites with
// bespoke effects (truncating a write, dropping a stream) use this form.
func Should(point string) bool {
	_, fire := hit(point)
	return fire
}

// InjectedError is the error type every error-mode fault returns, so tests
// and retry loops can recognise injected failures with errors.As.
type InjectedError struct{ Point string }

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s", e.Point)
}

// Error returns an injected error when the fault at point fires, else nil.
func Error(point string) error {
	if _, fire := hit(point); fire {
		return &InjectedError{Point: point}
	}
	return nil
}

// Sleep blocks for the rule's delay when the fault at point fires; it
// returns early if ctx is done first. It reports whether a delay was
// injected.
func Sleep(ctx context.Context, point string) bool {
	r, fire := hit(point)
	if !fire {
		return false
	}
	t := time.NewTimer(r.delay)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
	return true
}

// MaybePanic panics with an identifiable value when the fault at point
// fires. Recovery layers match on PanicValue to distinguish injected
// crashes from real ones in tests.
func MaybePanic(point string) {
	if _, fire := hit(point); fire {
		panic(PanicValue{Point: point})
	}
}

// PanicValue is what MaybePanic panics with.
type PanicValue struct{ Point string }

func (v PanicValue) String() string { return "faultinject: injected panic at " + v.Point }
