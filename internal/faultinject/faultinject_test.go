package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestParseRejectsUnknownPointAndBadOptions(t *testing.T) {
	cases := []string{
		"no.such.point",
		"jobq.worker.crash:p=1.5",
		"jobq.worker.crash:p=nope",
		"jobq.worker.crash:bogus=1",
		"jobq.worker.crash:delay=-5ms",
		"jobq.worker.crash:p",
		"jobq.worker.crash,jobq.worker.crash",
	}
	for _, spec := range cases {
		if _, err := Parse(1, spec); err == nil {
			t.Errorf("Parse(%q) accepted, want error", spec)
		}
	}
	if _, err := Parse(1, ""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
}

func TestDisabledHelpersAreNoOps(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled with no plan")
	}
	if err := Error("simcache.compute.error"); err != nil {
		t.Fatalf("Error fired with no plan: %v", err)
	}
	if Should("api.stream.drop") {
		t.Fatal("Should fired with no plan")
	}
	if Sleep(context.Background(), "jobq.worker.stall") {
		t.Fatal("Sleep fired with no plan")
	}
	MaybePanic("jobq.worker.crash") // must not panic
}

func TestAfterAndTimesGates(t *testing.T) {
	defer Enable(Enable(MustParse(7, "simcache.compute.error:after=2:times=3")))
	fired := 0
	for i := 0; i < 10; i++ {
		if err := Error("simcache.compute.error"); err != nil {
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Point != "simcache.compute.error" {
				t.Fatalf("wrong error %v", err)
			}
			if i < 2 {
				t.Fatalf("fired on hit %d, before after=2", i)
			}
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("fired %d times, want exactly 3", fired)
	}
}

func TestProbabilityScheduleIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		defer Enable(Enable(MustParse(seed, "api.stream.drop:p=0.5")))
		out := make([]bool, 64)
		for i := range out {
			out[i] = Should("api.stream.drop")
		}
		return out
	}
	a, b := run(42), run(42)
	c := run(43)
	same, diff := true, true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diff = false
		}
	}
	if !same {
		t.Fatal("same seed produced different schedules")
	}
	if diff {
		t.Fatal("different seeds produced identical 64-hit schedules")
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Fatalf("p=0.5 fired %d/%d hits — generator looks degenerate", n, len(a))
	}
}

func TestSleepHonorsContext(t *testing.T) {
	defer Enable(Enable(MustParse(1, "jobq.worker.stall:delay=10s")))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if !Sleep(ctx, "jobq.worker.stall") {
		t.Fatal("Sleep did not fire")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep ignored canceled context (%v)", elapsed)
	}
}

func TestMaybePanicValue(t *testing.T) {
	defer Enable(Enable(MustParse(1, "jobq.worker.crash")))
	defer func() {
		r := recover()
		v, ok := r.(PanicValue)
		if !ok || v.Point != "jobq.worker.crash" {
			t.Fatalf("recovered %v, want PanicValue", r)
		}
	}()
	MaybePanic("jobq.worker.crash")
	t.Fatal("MaybePanic did not panic")
}

func TestPointsCatalogCoversParsedNames(t *testing.T) {
	pts := Points()
	if len(pts) == 0 {
		t.Fatal("empty catalog")
	}
	for _, p := range pts {
		if p.Effect == "" {
			t.Errorf("point %s has no effect description", p.Name)
		}
		if _, err := Parse(1, p.Name); err != nil {
			t.Errorf("catalog point %s rejected by Parse: %v", p.Name, err)
		}
	}
}
