// Package heap builds linked data structures inside a simulated address
// space. The structures carry real little-endian pointers at real virtual
// addresses, so the content-directed prefetcher's recognition problem —
// telling addresses from data values and random bit patterns — is exercised
// against genuine memory contents, exactly as in the paper.
//
// Builders deliberately randomise node placement: consecutive logical nodes
// are scattered in memory so that neither the stride prefetcher nor simple
// next-line prefetching can follow a traversal, leaving the pointer loads
// for the content prefetcher to cover.
package heap

import (
	"fmt"
	"math/rand"

	"repro/internal/mem"
)

// Allocator is a bump allocator over a region of the simulated address
// space. It maps pages on demand and never frees; workload generators build
// their whole data set once and then trace traversals over it.
type Allocator struct {
	as    *mem.AddressSpace
	base  uint32
	cur   uint32
	limit uint32
}

// NewAllocator returns an allocator carving [base, limit) out of as.
func NewAllocator(as *mem.AddressSpace, base, limit uint32) *Allocator {
	if limit <= base {
		panic("heap: empty region")
	}
	return &Allocator{as: as, base: base, cur: base, limit: limit}
}

// Space returns the address space this allocator maps into.
func (a *Allocator) Space() *mem.AddressSpace { return a.as }

// Used reports the number of bytes allocated so far.
func (a *Allocator) Used() uint32 { return a.cur - a.base }

// Alloc returns the address of a fresh size-byte block aligned to align
// (which must be a power of two). The covered pages are mapped.
func (a *Allocator) Alloc(size, align uint32) uint32 {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("heap: bad alignment %d", align))
	}
	addr := (a.cur + align - 1) &^ (align - 1)
	if addr+size > a.limit || addr+size < addr {
		panic(fmt.Sprintf("heap: region exhausted: need %d bytes at %#x, limit %#x", size, addr, a.limit))
	}
	a.cur = addr + size
	a.as.EnsureMapped(addr, size)
	return addr
}

// Fill describes how non-pointer bytes of a node are populated. The mix
// matters: small integers fall in the all-zeros upper region (filtered by
// the filter bits), sign-extended negatives fall in the all-ones region,
// and random words are the false-positive fodder for the matching
// heuristic.
type Fill struct {
	SmallInts float64 // fraction of words drawn from [0, 4096)
	Negatives float64 // fraction of words drawn from [-4096, 0)
	Random    float64 // fraction of fully random 32-bit words
	// Remainder is zeros.
}

// DefaultFill is a plausible mix for heap records of commercial workloads.
var DefaultFill = Fill{SmallInts: 0.45, Negatives: 0.08, Random: 0.17}

// word draws one filler word.
func (f Fill) word(rng *rand.Rand) uint32 {
	r := rng.Float64()
	switch {
	case r < f.SmallInts:
		return uint32(rng.Intn(4096))
	case r < f.SmallInts+f.Negatives:
		return uint32(-int32(1 + rng.Intn(4096)))
	case r < f.SmallInts+f.Negatives+f.Random:
		return rng.Uint32()
	default:
		return 0
	}
}

// fillNode writes filler into every word of the node except the offsets in
// keep.
func fillNode(img *mem.Image, rng *rand.Rand, addr, size uint32, f Fill, keep map[uint32]bool) {
	for off := uint32(0); off+mem.WordSize <= size; off += mem.WordSize {
		if keep[off] {
			continue
		}
		img.Write32(addr+off, f.word(rng))
	}
}

// scatter allocates n nodes of nodeSize bytes in randomised address order
// and returns their addresses indexed by logical position. align applies to
// each node.
func scatter(a *Allocator, rng *rand.Rand, n int, nodeSize, align uint32) []uint32 {
	addrs := make([]uint32, n)
	for i := range addrs {
		addrs[i] = a.Alloc(nodeSize, align)
	}
	rng.Shuffle(n, func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	return addrs
}

// List is a singly linked list materialised in simulated memory.
type List struct {
	Head     uint32
	Nodes    []uint32 // traversal order
	NodeSize uint32
	NextOff  uint32
}

// ListSpec configures BuildList.
type ListSpec struct {
	Nodes    int
	NodeSize uint32 // bytes; may exceed one cache line
	NextOff  uint32 // byte offset of the next pointer
	Align    uint32 // node alignment (0 means 4)
	Fill     Fill
	Seq      bool // lay nodes out sequentially instead of scattering
}

// BuildList materialises a singly linked list. The final node's next
// pointer is nil (0).
func BuildList(a *Allocator, rng *rand.Rand, spec ListSpec) *List {
	if spec.Nodes <= 0 {
		panic("heap: list needs at least one node")
	}
	if spec.NextOff+mem.WordSize > spec.NodeSize {
		panic("heap: next pointer outside node")
	}
	align := spec.Align
	if align == 0 {
		align = 4
	}
	var addrs []uint32
	if spec.Seq {
		addrs = make([]uint32, spec.Nodes)
		for i := range addrs {
			addrs[i] = a.Alloc(spec.NodeSize, align)
		}
	} else {
		addrs = scatter(a, rng, spec.Nodes, spec.NodeSize, align)
	}
	keep := map[uint32]bool{spec.NextOff: true}
	img := a.as.Img
	for i, addr := range addrs {
		fillNode(img, rng, addr, spec.NodeSize, spec.Fill, keep)
		next := uint32(0)
		if i+1 < len(addrs) {
			next = addrs[i+1]
		}
		img.Write32(addr+spec.NextOff, next)
	}
	return &List{Head: addrs[0], Nodes: addrs, NodeSize: spec.NodeSize, NextOff: spec.NextOff}
}

// Tree is a binary search tree materialised in simulated memory. Keys are
// the logical indices 0..Nodes-1 stored at KeyOff.
type Tree struct {
	Root     uint32
	Nodes    []uint32
	NodeSize uint32
	KeyOff   uint32
	LeftOff  uint32
	RightOff uint32
	Count    int
}

// TreeSpec configures BuildTree.
type TreeSpec struct {
	Nodes    int
	NodeSize uint32
	KeyOff   uint32
	LeftOff  uint32
	RightOff uint32
	Fill     Fill
}

// BuildTree materialises a binary search tree over keys 0..Nodes-1,
// inserted in random order (expected depth O(log n)).
func BuildTree(a *Allocator, rng *rand.Rand, spec TreeSpec) *Tree {
	if spec.Nodes <= 0 {
		panic("heap: tree needs at least one node")
	}
	max := spec.KeyOff
	if spec.LeftOff > max {
		max = spec.LeftOff
	}
	if spec.RightOff > max {
		max = spec.RightOff
	}
	if max+mem.WordSize > spec.NodeSize {
		panic("heap: tree field outside node")
	}
	addrs := scatter(a, rng, spec.Nodes, spec.NodeSize, 4)
	keep := map[uint32]bool{spec.KeyOff: true, spec.LeftOff: true, spec.RightOff: true}
	img := a.as.Img
	keys := rng.Perm(spec.Nodes)
	byKey := make([]uint32, spec.Nodes) // key -> node address
	for i, addr := range addrs {
		fillNode(img, rng, addr, spec.NodeSize, spec.Fill, keep)
		img.Write32(addr+spec.KeyOff, uint32(keys[i]))
		img.Write32(addr+spec.LeftOff, 0)
		img.Write32(addr+spec.RightOff, 0)
		byKey[keys[i]] = addr
	}
	root := addrs[0]
	for _, addr := range addrs[1:] {
		key := img.Read32(addr + spec.KeyOff)
		cur := root
		for {
			ck := img.Read32(cur + spec.KeyOff)
			var off uint32
			if key < ck {
				off = spec.LeftOff
			} else {
				off = spec.RightOff
			}
			child := img.Read32(cur + off)
			if child == 0 {
				img.Write32(cur+off, addr)
				break
			}
			cur = child
		}
	}
	return &Tree{
		Root: root, Nodes: byKey, NodeSize: spec.NodeSize,
		KeyOff: spec.KeyOff, LeftOff: spec.LeftOff, RightOff: spec.RightOff,
		Count: spec.Nodes,
	}
}

// Hash is a chained hash table materialised in simulated memory: an array
// of bucket head pointers, each chaining scattered entry nodes.
type Hash struct {
	BucketBase uint32 // base of the head-pointer array
	Buckets    int
	NodeSize   uint32
	NextOff    uint32
	KeyOff     uint32
	ChainLen   []int // entries per bucket
}

// HashSpec configures BuildHash.
type HashSpec struct {
	Buckets  int
	Entries  int
	NodeSize uint32
	NextOff  uint32
	KeyOff   uint32
	Fill     Fill
}

// BuildHash materialises a chained hash table with Entries nodes spread
// uniformly over Buckets chains.
func BuildHash(a *Allocator, rng *rand.Rand, spec HashSpec) *Hash {
	if spec.Buckets <= 0 || spec.Entries <= 0 {
		panic("heap: hash needs buckets and entries")
	}
	base := a.Alloc(uint32(spec.Buckets)*mem.WordSize, 64)
	img := a.as.Img
	for i := 0; i < spec.Buckets; i++ {
		img.Write32(base+uint32(i)*mem.WordSize, 0)
	}
	addrs := scatter(a, rng, spec.Entries, spec.NodeSize, 4)
	keep := map[uint32]bool{spec.NextOff: true, spec.KeyOff: true}
	chain := make([]int, spec.Buckets)
	for i, addr := range addrs {
		fillNode(img, rng, addr, spec.NodeSize, spec.Fill, keep)
		b := i % spec.Buckets
		slot := base + uint32(b)*mem.WordSize
		img.Write32(addr+spec.NextOff, img.Read32(slot)) // push front
		img.Write32(addr+spec.KeyOff, uint32(i))
		img.Write32(slot, addr)
		chain[b]++
	}
	return &Hash{
		BucketBase: base, Buckets: spec.Buckets, NodeSize: spec.NodeSize,
		NextOff: spec.NextOff, KeyOff: spec.KeyOff, ChainLen: chain,
	}
}

// Array is a dense array for stride-friendly access patterns.
type Array struct {
	Base     uint32
	Elems    int
	ElemSize uint32
}

// BuildArray materialises a dense array of Elems elements of ElemSize
// bytes, filled with non-pointer data.
func BuildArray(a *Allocator, rng *rand.Rand, elems int, elemSize uint32, f Fill) *Array {
	base := a.Alloc(uint32(elems)*elemSize, 64)
	img := a.as.Img
	for off := uint32(0); off+mem.WordSize <= uint32(elems)*elemSize; off += mem.WordSize {
		img.Write32(base+off, f.word(rng))
	}
	return &Array{Base: base, Elems: elems, ElemSize: elemSize}
}

// Elem returns the address of element i.
func (ar *Array) Elem(i int) uint32 { return ar.Base + uint32(i)*ar.ElemSize }
