package heap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func newAlloc() *Allocator {
	return NewAllocator(mem.NewAddressSpace(), 0x1000_0000, 0x4000_0000)
}

func TestAllocAlignmentAndMapping(t *testing.T) {
	a := newAlloc()
	p := a.Alloc(24, 8)
	if p%8 != 0 {
		t.Fatalf("addr %#x not 8-aligned", p)
	}
	q := a.Alloc(100, 64)
	if q%64 != 0 {
		t.Fatalf("addr %#x not 64-aligned", q)
	}
	if q < p+24 {
		t.Fatalf("allocations overlap: %#x then %#x", p, q)
	}
	if _, ok := a.Space().Translate(q + 99); !ok {
		t.Fatal("allocated bytes must be mapped")
	}
}

func TestAllocDisjointQuick(t *testing.T) {
	a := newAlloc()
	type span struct{ base, size uint32 }
	var spans []span
	f := func(sz16 uint16) bool {
		size := uint32(sz16%512) + 1
		base := a.Alloc(size, 4)
		for _, s := range spans {
			if base < s.base+s.size && s.base < base+size {
				return false
			}
		}
		spans = append(spans, span{base, size})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildListChain(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(1))
	l := BuildList(a, rng, ListSpec{Nodes: 500, NodeSize: 48, NextOff: 8, Fill: DefaultFill})
	img := a.Space().Img
	cur := l.Head
	for i := 0; i < 500; i++ {
		if cur != l.Nodes[i] {
			t.Fatalf("node %d: chain %#x != recorded %#x", i, cur, l.Nodes[i])
		}
		if cur%4 != 0 {
			t.Fatalf("node %d address %#x not 4-aligned", i, cur)
		}
		cur = img.Read32(cur + l.NextOff)
	}
	if cur != 0 {
		t.Fatalf("list not nil-terminated: tail next = %#x", cur)
	}
}

func TestBuildListScattered(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(2))
	l := BuildList(a, rng, ListSpec{Nodes: 1000, NodeSize: 64, NextOff: 0, Fill: DefaultFill})
	// Count how many logical successors are the physically adjacent node;
	// scattering should make that rare.
	adjacent := 0
	for i := 0; i+1 < len(l.Nodes); i++ {
		if l.Nodes[i+1] == l.Nodes[i]+64 {
			adjacent++
		}
	}
	if adjacent > 20 {
		t.Fatalf("layout too sequential: %d/999 adjacent successors", adjacent)
	}
}

func TestBuildListSequential(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(3))
	l := BuildList(a, rng, ListSpec{Nodes: 100, NodeSize: 32, NextOff: 4, Seq: true})
	for i := 0; i+1 < len(l.Nodes); i++ {
		if l.Nodes[i+1] != l.Nodes[i]+32 {
			t.Fatalf("sequential layout broken at node %d", i)
		}
	}
}

func TestBuildTreeSearchable(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(4))
	tr := BuildTree(a, rng, TreeSpec{Nodes: 2048, NodeSize: 32, KeyOff: 0, LeftOff: 8, RightOff: 12, Fill: DefaultFill})
	img := a.Space().Img
	// Every key must be findable by BST descent.
	for _, key := range []uint32{0, 1, 777, 1024, 2047} {
		cur := tr.Root
		for cur != 0 {
			k := img.Read32(cur + tr.KeyOff)
			if k == key {
				break
			}
			if key < k {
				cur = img.Read32(cur + tr.LeftOff)
			} else {
				cur = img.Read32(cur + tr.RightOff)
			}
		}
		if cur == 0 {
			t.Fatalf("key %d not reachable", key)
		}
		if cur != tr.Nodes[key] {
			t.Fatalf("key %d found at %#x, want %#x", key, cur, tr.Nodes[key])
		}
	}
}

func TestBuildTreeDepthReasonable(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(5))
	n := 4096
	tr := BuildTree(a, rng, TreeSpec{Nodes: n, NodeSize: 24, KeyOff: 0, LeftOff: 4, RightOff: 8})
	img := a.Space().Img
	var maxDepth int
	var walk func(node uint32, d int)
	count := 0
	walk = func(node uint32, d int) {
		if node == 0 {
			return
		}
		count++
		if d > maxDepth {
			maxDepth = d
		}
		walk(img.Read32(node+tr.LeftOff), d+1)
		walk(img.Read32(node+tr.RightOff), d+1)
	}
	walk(tr.Root, 1)
	if count != n {
		t.Fatalf("tree has %d reachable nodes, want %d", count, n)
	}
	if maxDepth > 60 { // random insertion: expected ~2.99 log2(n) ≈ 36
		t.Fatalf("tree degenerate: depth %d", maxDepth)
	}
}

func TestBuildHashChains(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(6))
	h := BuildHash(a, rng, HashSpec{Buckets: 64, Entries: 640, NodeSize: 40, NextOff: 4, KeyOff: 0, Fill: DefaultFill})
	img := a.Space().Img
	total := 0
	for b := 0; b < h.Buckets; b++ {
		cur := img.Read32(h.BucketBase + uint32(b)*mem.WordSize)
		n := 0
		for cur != 0 {
			n++
			if n > 1000 {
				t.Fatalf("bucket %d: cycle suspected", b)
			}
			cur = img.Read32(cur + h.NextOff)
		}
		if n != h.ChainLen[b] {
			t.Fatalf("bucket %d chain length %d, recorded %d", b, n, h.ChainLen[b])
		}
		total += n
	}
	if total != 640 {
		t.Fatalf("total entries %d, want 640", total)
	}
}

func TestBuildArray(t *testing.T) {
	a := newAlloc()
	rng := rand.New(rand.NewSource(7))
	ar := BuildArray(a, rng, 256, 16, Fill{SmallInts: 1})
	if ar.Elem(0) != ar.Base || ar.Elem(10) != ar.Base+160 {
		t.Fatal("Elem addressing wrong")
	}
	img := a.Space().Img
	for i := 0; i < 256*16/4; i++ {
		v := img.Read32(ar.Base + uint32(i*4))
		if v >= 4096 {
			t.Fatalf("SmallInts-only fill produced %#x", v)
		}
	}
}

func TestFillMix(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := Fill{SmallInts: 0.5, Negatives: 0.2, Random: 0.1}
	var small, neg, zero, other int
	for i := 0; i < 10000; i++ {
		w := f.word(rng)
		switch {
		case w == 0:
			zero++
		case w < 4096:
			small++
		case w >= 0xFFFF_F000:
			neg++
		default:
			other++
		}
	}
	if small < 4000 || small > 6000 {
		t.Fatalf("small ints %d/10000, want ~5000", small)
	}
	if neg < 1200 || neg > 2800 {
		t.Fatalf("negatives %d/10000, want ~2000", neg)
	}
	if zero < 1200 {
		t.Fatalf("zeros %d/10000, want ~2000", zero)
	}
	if other == 0 {
		t.Fatal("no random words produced")
	}
}
