package heap

import (
	"math/rand"
	"testing"

	"repro/internal/mem"
)

// TestBuildListTraversalPropertyQuick checks, over random list specs, that
// chasing next pointers through the simulated memory visits exactly the
// builder's reported nodes in order, that every node lies inside the
// allocator's region with the requested alignment, and that the chain
// terminates with a nil pointer.
func TestBuildListTraversalPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const base, limit = 0x1000_0000, 0x1100_0000
	for trial := 0; trial < 50; trial++ {
		as := mem.NewAddressSpace()
		a := NewAllocator(as, base, limit)
		nodeWords := 2 + rng.Intn(30)
		spec := ListSpec{
			Nodes:    1 + rng.Intn(64),
			NodeSize: uint32(nodeWords) * mem.WordSize,
			NextOff:  uint32(rng.Intn(nodeWords)) * mem.WordSize,
			Align:    uint32(4 << rng.Intn(3)),
			Fill:     DefaultFill,
			Seq:      rng.Intn(2) == 0,
		}
		l := BuildList(a, rng, spec)
		if len(l.Nodes) != spec.Nodes {
			t.Fatalf("trial %d: builder reports %d nodes, spec wanted %d", trial, len(l.Nodes), spec.Nodes)
		}
		addr := l.Head
		for i := 0; i < spec.Nodes; i++ {
			if addr == 0 {
				t.Fatalf("trial %d (%+v): chain ended after %d of %d nodes", trial, spec, i, spec.Nodes)
			}
			if addr != l.Nodes[i] {
				t.Fatalf("trial %d: traversal visits %#x at position %d, builder recorded %#x", trial, addr, i, l.Nodes[i])
			}
			if addr < base || addr+spec.NodeSize > limit {
				t.Fatalf("trial %d: node %#x outside region", trial, addr)
			}
			if addr%spec.Align != 0 {
				t.Fatalf("trial %d: node %#x not %d-aligned", trial, addr, spec.Align)
			}
			addr = as.Img.Read32(addr + spec.NextOff)
		}
		if addr != 0 {
			t.Fatalf("trial %d: final node's next pointer is %#x, want nil", trial, addr)
		}
	}
}

// TestBuildTreeBSTPropertyQuick checks, over random tree sizes, that an
// in-order traversal through the simulated memory yields the keys 0..n-1 in
// sorted order — i.e. the materialised pointers form a valid BST over every
// node the builder placed.
func TestBuildTreeBSTPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		as := mem.NewAddressSpace()
		a := NewAllocator(as, 0x2000_0000, 0x2100_0000)
		spec := TreeSpec{
			Nodes:    1 + rng.Intn(200),
			NodeSize: 32,
			KeyOff:   0,
			LeftOff:  8,
			RightOff: 16,
			Fill:     DefaultFill,
		}
		tr := BuildTree(a, rng, spec)
		img := as.Img
		var keys []uint32
		var walk func(addr uint32)
		walk = func(addr uint32) {
			if addr == 0 {
				return
			}
			walk(img.Read32(addr + spec.LeftOff))
			keys = append(keys, img.Read32(addr+spec.KeyOff))
			walk(img.Read32(addr + spec.RightOff))
		}
		walk(tr.Root)
		if len(keys) != spec.Nodes {
			t.Fatalf("trial %d: in-order walk reached %d nodes, want %d", trial, len(keys), spec.Nodes)
		}
		for i, k := range keys {
			if k != uint32(i) {
				t.Fatalf("trial %d: in-order position %d holds key %d", trial, i, k)
			}
		}
	}
}

// TestBuildHashReachabilityPropertyQuick checks, over random table shapes,
// that chasing every bucket chain reaches each of the Entries exactly once
// and that the per-bucket chain lengths the builder reports match the
// materialised chains.
func TestBuildHashReachabilityPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		as := mem.NewAddressSpace()
		a := NewAllocator(as, 0x3000_0000, 0x3100_0000)
		spec := HashSpec{
			Buckets:  1 + rng.Intn(32),
			Entries:  1 + rng.Intn(300),
			NodeSize: 24,
			NextOff:  0,
			KeyOff:   4,
			Fill:     DefaultFill,
		}
		h := BuildHash(a, rng, spec)
		img := as.Img
		seen := make(map[uint32]bool)
		for b := 0; b < h.Buckets; b++ {
			n := 0
			addr := img.Read32(h.BucketBase + uint32(b)*mem.WordSize)
			for addr != 0 {
				if seen[addr] {
					t.Fatalf("trial %d: entry %#x reachable twice", trial, addr)
				}
				seen[addr] = true
				n++
				addr = img.Read32(addr + spec.NextOff)
			}
			if n != h.ChainLen[b] {
				t.Fatalf("trial %d: bucket %d chain length %d, builder reported %d", trial, b, n, h.ChainLen[b])
			}
		}
		if len(seen) != spec.Entries {
			t.Fatalf("trial %d: reached %d entries, want %d", trial, len(seen), spec.Entries)
		}
	}
}
