package jobq

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestExternalLifecycle: an external job is born running, completes with
// the remote result, and moves the lifetime counters like a local job.
func TestExternalLifecycle(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())

	j, err := q.SubmitExternal("remote-1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := j.State(); got != StateRunning {
		t.Fatalf("external job born %s, want running", got)
	}
	select {
	case <-j.Done():
		t.Fatal("external job done before completion")
	default:
	}

	if !q.CompleteExternal("remote-1", "payload", nil) {
		t.Fatal("CompleteExternal rejected a live external job")
	}
	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("Done not closed after CompleteExternal")
	}
	v, err := j.Result()
	if err != nil || v != "payload" {
		t.Fatalf("result = %v, %v", v, err)
	}
	if s := q.Stats(); s.Completed != 1 {
		t.Fatalf("completed = %d, want 1", s.Completed)
	}
}

// TestExternalOccupiesNoSlot: external jobs bypass the bounded queue — a
// full queue still accepts them, and they never consume a worker.
func TestExternalOccupiesNoSlot(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 1})
	defer q.Shutdown(context.Background())

	// Many more externals than capacity, all admitted.
	for i := 0; i < 10; i++ {
		if _, err := q.SubmitExternal(fmt.Sprintf("ext-%d", i), 0); err != nil {
			t.Fatalf("external %d rejected: %v", i, err)
		}
	}
	if s := q.Stats(); s.Depth != 0 {
		t.Fatalf("externals appear in queue depth: %d", s.Depth)
	}
	// The worker pool still runs local jobs while externals are pending.
	j, err := q.Submit("local", 0, func(ctx context.Context, j *Job) (any, error) {
		return "ran", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("local job starved by pending externals")
	}
	for i := 0; i < 10; i++ {
		q.CompleteExternal(fmt.Sprintf("ext-%d", i), nil, nil)
	}
}

// TestExternalFailureAndCancelErr: remote errors map to failed; a
// completion carrying context.Canceled maps to canceled.
func TestExternalFailureAndCancelErr(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())

	jf, _ := q.SubmitExternal("fails", 0)
	q.CompleteExternal("fails", nil, errors.New("worker exploded"))
	if got := jf.State(); got != StateFailed {
		t.Fatalf("failed external in state %s", got)
	}
	jc, _ := q.SubmitExternal("ctx-canceled", 0)
	q.CompleteExternal("ctx-canceled", nil, context.Canceled)
	if got := jc.State(); got != StateCanceled {
		t.Fatalf("context-canceled external in state %s", got)
	}
	if _, err := jc.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled external result err = %v", err)
	}
	if s := q.Stats(); s.Failed != 1 || s.Canceled != 1 {
		t.Fatalf("counters = failed %d canceled %d, want 1/1", s.Failed, s.Canceled)
	}
}

// TestExternalCancel: Cancel finishes an external immediately — there is
// no worker goroutine to observe a context — and a late remote completion
// is the benign no-op.
func TestExternalCancel(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())

	j, _ := q.SubmitExternal("steal-me", 0)
	if !q.Cancel("steal-me") {
		t.Fatal("Cancel rejected a running external")
	}
	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("canceled external never finished")
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("canceled external in state %s", got)
	}
	if q.CompleteExternal("steal-me", "late", nil) {
		t.Fatal("late completion accepted after cancel")
	}
	if v, _ := j.Result(); v != nil {
		t.Fatalf("late completion overwrote result: %v", v)
	}
}

// TestExternalRejections: unknown and non-external IDs are refused, as are
// submissions after shutdown and duplicate live IDs.
func TestExternalRejections(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})

	if q.CompleteExternal("nobody", nil, nil) {
		t.Fatal("completed an unknown job")
	}
	block := make(chan struct{})
	q.Submit("local", 0, func(ctx context.Context, j *Job) (any, error) {
		<-block
		return nil, nil
	})
	if q.CompleteExternal("local", nil, nil) {
		t.Fatal("CompleteExternal accepted a pool-run job")
	}
	close(block)

	if _, err := q.SubmitExternal("dup", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitExternal("dup", 0); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate external err = %v", err)
	}

	q.Shutdown(context.Background())
	if _, err := q.SubmitExternal("late", 0); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown external err = %v", err)
	}
}

// TestShutdownFlushesExternals: a forced shutdown (expired drain context)
// cancels pending externals instead of leaving their waiters hanging.
func TestShutdownFlushesExternals(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})
	j, _ := q.SubmitExternal("orphan", 0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: force the flush path
	q.Shutdown(ctx)

	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("external survived a forced shutdown")
	}
	if got := j.State(); got != StateCanceled {
		t.Fatalf("flushed external in state %s", got)
	}
}
