// Package jobq is cdpd's bounded job queue: a fixed worker pool draining a
// priority heap, with backpressure when the queue is full, per-job
// context-based cancellation and timeout, progress subscriptions for
// streaming clients, and a graceful shutdown that drains in-flight work
// within a deadline or cancels what remains.
package jobq

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/faultinject"
)

// State is a job's lifecycle position. Terminal states are StateDone,
// StateFailed, and StateCanceled.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is an end state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

var (
	// ErrQueueFull is backpressure: the caller should retry later (the
	// API layer maps it to 429 + Retry-After).
	ErrQueueFull = errors.New("jobq: queue full")
	// ErrShuttingDown rejects submissions after Shutdown began.
	ErrShuttingDown = errors.New("jobq: shutting down")
	// ErrCanceled is the result error of a job canceled before or while
	// running.
	ErrCanceled = errors.New("jobq: job canceled")
	// ErrDuplicateID rejects a submission reusing a live job ID.
	ErrDuplicateID = errors.New("jobq: duplicate job id")
)

// PanicError is the failure a panicking job (or a crashed worker) leaves
// behind: the recovered value plus the goroutine stack captured at the
// recovery site, so the panic is debuggable from the job's error detail
// instead of only from daemon stderr.
type PanicError struct {
	JobID string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("jobq: job %s panicked: %v\n%s", e.JobID, e.Value, e.Stack)
}

// Func is the work a job performs. ctx is canceled when the job is
// canceled, times out, or the queue force-drains; cooperative functions
// return promptly once it is. The job handle lets the function publish
// progress.
type Func func(ctx context.Context, j *Job) (any, error)

// Update is one progress observation, shaped for NDJSON streaming.
type Update struct {
	JobID string `json:"job_id"`
	State State  `json:"state"`
	Stage string `json:"stage,omitempty"`
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Error string `json:"error,omitempty"`
}

// Job is one unit of queued work.
type Job struct {
	id       string
	priority int
	seq      uint64
	index    int           // heap position; -1 once popped or removed
	timeout  time.Duration // per-job override of Config.JobTimeout (0 = inherit)
	fn       Func
	// external marks a job whose work runs outside this queue's worker
	// pool (the cluster coordinator forwarding to a remote worker). It is
	// never heaped, consumes no slot, and only CompleteExternal or Cancel
	// can finish it.
	external bool

	mu       sync.Mutex
	state    State                // simlint:guardedby mu
	stage    string               // simlint:guardedby mu
	done     int                  // simlint:guardedby mu
	total    int                  // simlint:guardedby mu
	value    any                  // simlint:guardedby mu
	err      error                // simlint:guardedby mu
	canceled bool                 // simlint:guardedby mu
	cancel   context.CancelFunc   // simlint:guardedby mu
	subs     map[chan Update]bool // simlint:guardedby mu
	doneCh   chan struct{}
	created  time.Time
	started  time.Time // simlint:guardedby mu
	finished time.Time // simlint:guardedby mu
}

// ID returns the job's queue-unique identifier.
func (j *Job) ID() string { return j.id }

// Priority returns the submission priority (higher runs first).
func (j *Job) Priority() int { return j.priority }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.doneCh }

// Result returns the job's value and error; meaningful only after Done is
// closed.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.value, j.err
}

// SetProgress publishes a progress observation to all subscribers. It is
// safe to call from the job function at any rate; slow subscribers drop
// intermediate updates rather than blocking the worker.
func (j *Job) SetProgress(stage string, done, total int) {
	j.mu.Lock()
	j.stage, j.done, j.total = stage, done, total
	j.broadcastLocked()
	j.mu.Unlock()
}

// Snapshot returns the job's current Update.
func (j *Job) Snapshot() Update {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *Job) snapshotLocked() Update {
	u := Update{JobID: j.id, State: j.state, Stage: j.stage, Done: j.done, Total: j.total}
	if j.err != nil {
		u.Error = j.err.Error()
	}
	return u
}

// Subscribe returns a channel of progress updates, primed with the current
// snapshot and closed once the job is terminal (the terminal update is
// always delivered). The returned cancel function releases the
// subscription; it is safe to call more than once.
func (j *Job) Subscribe() (<-chan Update, func()) {
	ch := make(chan Update, 16)
	j.mu.Lock()
	ch <- j.snapshotLocked()
	if j.state.Terminal() {
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	j.subs[ch] = true
	j.mu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			j.mu.Lock()
			if j.subs[ch] {
				delete(j.subs, ch)
				close(ch)
			}
			j.mu.Unlock()
		})
	}
}

// broadcastLocked fans the current snapshot out to subscribers, dropping
// the update for any subscriber whose buffer is full. Caller holds j.mu.
func (j *Job) broadcastLocked() {
	u := j.snapshotLocked()
	for ch := range j.subs {
		select {
		case ch <- u:
		default:
		}
	}
}

// finishLocked moves the job to a terminal state, delivers the final
// update to every subscriber (blocking-free: the final state is also
// readable via Snapshot after doneCh closes), and closes doneCh. Caller
// holds j.mu.
func (j *Job) finishLocked(st State, value any, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.value = value
	j.err = err
	j.finished = time.Now()
	u := j.snapshotLocked()
	for ch := range j.subs {
		// Make room for the terminal update if the buffer is full of
		// stale progress; subscribers always observe the end state.
		select {
		case ch <- u:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- u:
			default:
			}
		}
		delete(j.subs, ch)
		close(ch)
	}
	close(j.doneCh)
}

// jobHeap orders queued jobs by priority (higher first), then FIFO.
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].priority != h[b].priority {
		return h[a].priority > h[b].priority
	}
	return h[a].seq < h[b].seq
}
func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].index = a
	h[b].index = b
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}

// Config sizes a queue.
type Config struct {
	// Workers is the fixed pool size (0 = GOMAXPROCS).
	Workers int
	// Capacity bounds the number of queued (not yet running) jobs;
	// submissions beyond it fail with ErrQueueFull. 0 defaults to 64.
	Capacity int
	// JobTimeout bounds each job's execution (0 = no per-job timeout).
	JobTimeout time.Duration
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return 64
}

// Stats is a point-in-time queue snapshot for /metrics.
type Stats struct {
	Workers   int
	Capacity  int
	Depth     int // queued, waiting for a worker
	Running   int
	Accepting bool
	Completed uint64
	Failed    uint64
	Canceled  uint64
}

// Queue is the bounded priority job queue. Construct with New.
type Queue struct {
	cfg        Config
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	pq        jobHeap         // simlint:guardedby mu
	jobs      map[string]*Job // simlint:guardedby mu
	closed    bool            // simlint:guardedby mu
	running   int             // simlint:guardedby mu
	seqNext   uint64          // simlint:guardedby mu
	completed uint64          // simlint:guardedby mu
	failed    uint64          // simlint:guardedby mu
	canceled  uint64          // simlint:guardedby mu
	wg        sync.WaitGroup
}

// New builds a queue and starts its worker pool. The queue's base context
// is the lifecycle root for every job it will ever run — jobs outlive any
// single request, and Shutdown (not a caller's deadline) is what cancels
// them.
//
// simlint:rootctx
func New(cfg Config) *Queue {
	ctx, cancel := context.WithCancel(context.Background())
	q := &Queue{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
	}
	q.cond = sync.NewCond(&q.mu)
	for i := 0; i < cfg.workers(); i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues work under the given id (empty = auto-assigned) and
// priority. It fails fast with ErrQueueFull when the queue is at capacity
// and ErrShuttingDown once Shutdown has begun.
func (q *Queue) Submit(id string, priority int, fn Func) (*Job, error) {
	return q.SubmitTimeout(id, priority, 0, fn)
}

// SubmitTimeout is Submit with a per-job execution timeout overriding the
// queue-wide Config.JobTimeout (0 = inherit). The API layer uses it for
// adaptive deadlines sized from observed simulation throughput.
func (q *Queue) SubmitTimeout(id string, priority int, timeout time.Duration, fn Func) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrShuttingDown
	}
	if len(q.pq) >= q.cfg.capacity() {
		return nil, ErrQueueFull
	}
	q.seqNext++
	if id == "" {
		id = fmt.Sprintf("job-%d", q.seqNext)
	}
	if prev, ok := q.jobs[id]; ok && !prev.State().Terminal() {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	j := &Job{
		id:       id,
		priority: priority,
		seq:      q.seqNext,
		timeout:  timeout,
		fn:       fn,
		state:    StateQueued,
		subs:     map[chan Update]bool{},
		doneCh:   make(chan struct{}),
		created:  time.Now(),
	}
	q.jobs[id] = j
	heap.Push(&q.pq, j)
	q.cond.Signal()
	return j, nil
}

// SubmitExternal registers a job whose work happens outside the worker
// pool — the cluster coordinator's remote forwards. The job is born
// StateRunning (there is no queued phase: the remote side starts
// immediately), occupies no queue slot, and stays alive until
// CompleteExternal or Cancel. Everything else about it — Get, Subscribe,
// progress, terminal counters — behaves like a local job, so the API
// layer's job views and streams need no special casing.
func (q *Queue) SubmitExternal(id string, priority int) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrShuttingDown
	}
	q.seqNext++
	if id == "" {
		id = fmt.Sprintf("job-%d", q.seqNext)
	}
	if prev, ok := q.jobs[id]; ok && !prev.State().Terminal() {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateID, id)
	}
	now := time.Now()
	j := &Job{
		id:       id,
		priority: priority,
		seq:      q.seqNext,
		index:    -1,
		external: true,
		state:    StateRunning,
		subs:     map[chan Update]bool{},
		doneCh:   make(chan struct{}),
		created:  now,
		started:  now, // born running: the remote side is already working
	}
	q.jobs[id] = j
	return j, nil
}

// CompleteExternal finishes an external job with the remote side's result,
// moving the lifetime counters exactly as a locally run job would. It
// reports false for unknown, non-external, or already-terminal jobs (a
// late completion racing a Cancel is the common benign case).
func (q *Queue) CompleteExternal(id string, value any, err error) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok || !j.external {
		q.mu.Unlock()
		return false
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		q.mu.Unlock()
		return false
	}
	switch {
	case err == nil:
		j.finishLocked(StateDone, value, nil)
		q.completed++
	case j.canceled || errors.Is(err, context.Canceled):
		j.finishLocked(StateCanceled, nil, fmt.Errorf("%w: %v", ErrCanceled, err))
		q.canceled++
	default:
		j.finishLocked(StateFailed, nil, err)
		q.failed++
	}
	j.mu.Unlock()
	q.mu.Unlock()
	return true
}

// ExternalInflight counts external jobs that have not reached a terminal
// state — the coordinator's open placements. The cluster metrics block and
// the chaos orchestrator's no-lost-jobs invariant read it.
func (q *Queue) ExternalInflight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, j := range q.jobs {
		if j.external && !j.State().Terminal() {
			n++
		}
	}
	return n
}

// Get finds a job by id (queued, running, or finished).
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. A queued job terminates
// immediately; a running job has its context canceled and terminates when
// its function returns. Cancel reports whether it had any effect.
func (q *Queue) Cancel(id string) bool {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return false
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		if j.index >= 0 {
			heap.Remove(&q.pq, j.index)
		}
		j.canceled = true
		j.finishLocked(StateCanceled, nil, ErrCanceled)
		j.mu.Unlock()
		q.canceled++
		q.mu.Unlock()
		return true
	case StateRunning:
		j.canceled = true
		if j.external {
			// No worker will ever observe a canceled context for an
			// external job; it terminates here. The coordinator's forward
			// goroutine watches Done and abandons the remote attempt.
			j.finishLocked(StateCanceled, nil, ErrCanceled)
			j.mu.Unlock()
			q.canceled++
			q.mu.Unlock()
			return true
		}
		cancel := j.cancel
		j.mu.Unlock()
		q.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return true
	default:
		j.mu.Unlock()
		q.mu.Unlock()
		return false
	}
}

// Stats snapshots queue occupancy and lifetime counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Workers:   q.cfg.workers(),
		Capacity:  q.cfg.capacity(),
		Depth:     len(q.pq),
		Running:   q.running,
		Accepting: !q.closed,
		Completed: q.completed,
		Failed:    q.failed,
		Canceled:  q.canceled,
	}
}

// Shutdown stops accepting submissions and waits for queued and running
// jobs to finish. If ctx expires first, every remaining job's context is
// canceled and Shutdown waits for the workers to observe that, returning
// ctx's error. Either way the pool is fully stopped on return.
func (q *Queue) Shutdown(ctx context.Context) error {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		// Deadline passed: cancel running jobs via the shared base
		// context and flush the backlog as canceled. External jobs have
		// no worker to unwind them, so they are flushed here too —
		// otherwise a client blocked on one would hang past shutdown.
		q.baseCancel()
		q.mu.Lock()
		for len(q.pq) > 0 {
			j := heap.Pop(&q.pq).(*Job)
			j.mu.Lock()
			j.canceled = true
			j.finishLocked(StateCanceled, nil, ErrCanceled)
			j.mu.Unlock()
			q.canceled++
		}
		for _, j := range q.jobs {
			if !j.external {
				continue
			}
			j.mu.Lock()
			if !j.state.Terminal() {
				j.canceled = true
				j.finishLocked(StateCanceled, nil, ErrCanceled)
				q.canceled++
			}
			j.mu.Unlock()
		}
		q.cond.Broadcast()
		q.mu.Unlock()
		<-drained
		return ctx.Err()
	}
}

// worker pops and runs jobs until the queue is closed and empty.
func (q *Queue) worker() {
	defer q.wg.Done()
	for {
		q.mu.Lock()
		for len(q.pq) == 0 && !q.closed {
			q.cond.Wait()
		}
		if len(q.pq) == 0 {
			q.mu.Unlock()
			return
		}
		j := heap.Pop(&q.pq).(*Job)
		q.running++
		q.mu.Unlock()

		q.runGuarded(j)
	}
}

// runGuarded runs one popped job and guarantees — even if the worker
// goroutine itself crashes outside the job function — that the job reaches
// a terminal state, the failure counter moves, and the occupancy count is
// decremented exactly once. A crash is swallowed after recovery so the
// worker keeps draining the queue instead of silently shrinking the pool.
func (q *Queue) runGuarded(j *Job) {
	defer func() {
		r := recover()
		if r != nil {
			j.mu.Lock()
			already := j.state.Terminal() // finishLocked is a no-op then, and run() already counted it
			j.finishLocked(StateFailed, nil, &PanicError{JobID: j.id, Value: r, Stack: debug.Stack()})
			j.mu.Unlock()
			q.mu.Lock()
			if !already {
				q.failed++
			}
			q.running--
			q.mu.Unlock()
			return
		}
		q.mu.Lock()
		q.running--
		q.mu.Unlock()
	}()
	// Fault points: a worker that crashes after popping a job, and a
	// worker that stalls before starting it (queue-stall drill).
	faultinject.MaybePanic("jobq.worker.crash")
	faultinject.Sleep(q.baseCtx, "jobq.worker.stall")
	q.run(j)
}

// run executes one popped job through its terminal state.
func (q *Queue) run(j *Job) {
	j.mu.Lock()
	if j.state.Terminal() {
		// Canceled between pop and here.
		j.mu.Unlock()
		return
	}
	timeout := q.cfg.JobTimeout
	if j.timeout > 0 {
		timeout = j.timeout
	}
	ctx, cancel := context.WithCancel(q.baseCtx)
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(q.baseCtx, timeout)
	}
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	j.broadcastLocked()
	j.mu.Unlock()

	value, err := runSafely(ctx, j)
	cancel()

	j.mu.Lock()
	canceled := j.canceled
	switch {
	case err == nil:
		j.finishLocked(StateDone, value, nil)
	case canceled || errors.Is(err, context.Canceled):
		j.finishLocked(StateCanceled, nil, fmt.Errorf("%w: %v", ErrCanceled, err))
	default:
		j.finishLocked(StateFailed, nil, err)
	}
	st := j.state
	j.mu.Unlock()

	q.mu.Lock()
	switch st {
	case StateDone:
		q.completed++
	case StateCanceled:
		q.canceled++
	default:
		q.failed++
	}
	q.mu.Unlock()
}

// runSafely converts a panicking job function into a failed job instead of
// taking the daemon down with it, attaching the stack captured at recovery
// so the panic site survives into the job's error detail.
func runSafely(ctx context.Context, j *Job) (value any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{JobID: j.id, Value: r, Stack: debug.Stack()}
		}
	}()
	faultinject.MaybePanic("jobq.job.panic")
	return j.fn(ctx, j)
}
