package jobq

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// blockingJob returns a job function that signals when it starts and
// blocks until released or its context dies.
func blockingJob(started chan<- string, release <-chan struct{}) Func {
	return func(ctx context.Context, j *Job) (any, error) {
		if started != nil {
			started <- j.ID()
		}
		select {
		case <-release:
			return "done", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID(), j.State())
	}
}

func TestSubmitRunsAndReturnsValue(t *testing.T) {
	q := New(Config{Workers: 2, Capacity: 4})
	defer q.Shutdown(context.Background())
	j, err := q.Submit("", 0, func(ctx context.Context, j *Job) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	v, err := j.Result()
	if err != nil || v != 42 {
		t.Fatalf("result = %v, %v", v, err)
	}
	if st := q.Stats(); st.Completed != 1 {
		t.Fatalf("stats %+v, want 1 completed", st)
	}
}

// TestBackpressure fills a 1-worker, 2-slot queue and requires the next
// submission to fail fast with ErrQueueFull, then succeed again once a
// slot frees up.
func TestBackpressure(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(Config{Workers: 1, Capacity: 2})
	defer func() {
		close(release)
		q.Shutdown(context.Background())
	}()

	running, err := q.Submit("running", 0, blockingJob(started, release))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds "running"; queue is empty again

	if _, err := q.Submit("q1", 0, blockingJob(nil, release)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("q2", 0, blockingJob(nil, release)); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("q3", 0, blockingJob(nil, release)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := q.Stats(); st.Depth != 2 || st.Running != 1 {
		t.Fatalf("stats %+v, want depth 2 running 1", st)
	}

	// Free a slot by canceling a queued job; submission works again.
	if !q.Cancel("q2") {
		t.Fatal("cancel of queued q2 had no effect")
	}
	if _, err := q.Submit("q4", 0, blockingJob(nil, release)); err != nil {
		t.Fatalf("submit after freeing a slot: %v", err)
	}
	_ = running
}

// TestPriorityOrder: with one worker, higher-priority jobs run before
// earlier-submitted lower-priority ones; ties run FIFO.
func TestPriorityOrder(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	q := New(Config{Workers: 1, Capacity: 8})
	defer q.Shutdown(context.Background())

	gate := make(chan struct{})
	if _, err := q.Submit("gate", 0, blockingJob(started, gate)); err != nil {
		t.Fatal(err)
	}
	<-started // worker is pinned; everything below queues up

	for _, s := range []struct {
		id  string
		pri int
	}{{"low-1", 0}, {"low-2", 0}, {"high", 5}, {"mid", 3}} {
		if _, err := q.Submit(s.id, s.pri, blockingJob(started, release)); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	close(release)
	want := []string{"high", "mid", "low-1", "low-2"}
	for _, w := range want {
		select {
		case got := <-started:
			if got != w {
				t.Fatalf("start order: got %s, want %s", got, w)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for %s to start", w)
		}
	}
}

// TestCancelRunningJob: cancellation reaches a running job through its
// context and the job terminates as canceled.
func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())
	j, err := q.Submit("victim", 0, blockingJob(started, nil))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !q.Cancel("victim") {
		t.Fatal("cancel had no effect")
	}
	waitTerminal(t, j)
	if st := j.State(); st != StateCanceled {
		t.Fatalf("state = %s, want canceled", st)
	}
	if _, err := j.Result(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("result err = %v, want ErrCanceled", err)
	}
}

// TestJobTimeout: a job exceeding the per-job timeout fails with the
// deadline error rather than hanging a worker forever.
func TestJobTimeout(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2, JobTimeout: 30 * time.Millisecond})
	defer q.Shutdown(context.Background())
	j, err := q.Submit("slow", 0, blockingJob(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	if _, err := j.Result(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("result err = %v, want DeadlineExceeded", err)
	}
}

// TestPanicBecomesFailure: a panicking job fails cleanly; the worker and
// queue survive.
func TestPanicBecomesFailure(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())
	j, err := q.Submit("boom", 0, func(ctx context.Context, j *Job) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %s, want failed", st)
	}
	// The pool still works.
	j2, err := q.Submit("after", 0, func(ctx context.Context, j *Job) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j2)
	if v, _ := j2.Result(); v != "ok" {
		t.Fatal("queue wedged after a panic")
	}
}

// TestSubscribeSeesTerminalUpdate: a subscriber always observes the final
// state even if it never drained intermediate progress.
func TestSubscribeSeesTerminalUpdate(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	q := New(Config{Workers: 1, Capacity: 2})
	defer q.Shutdown(context.Background())
	j, err := q.Submit("obs", 0, func(ctx context.Context, j *Job) (any, error) {
		started <- j.ID()
		for i := 0; i < 100; i++ {
			j.SetProgress("simulating", i, 100)
		}
		<-release
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := j.Subscribe()
	defer cancel()
	<-started
	close(release)
	waitTerminal(t, j)
	var last Update
	for u := range ch {
		last = u
	}
	if last.State != StateDone {
		t.Fatalf("last streamed state = %s, want done", last.State)
	}
}

// TestShutdownDrains: a shutdown with a generous deadline lets queued and
// running jobs finish and returns nil.
func TestShutdownDrains(t *testing.T) {
	q := New(Config{Workers: 2, Capacity: 8})
	var ran sync.WaitGroup
	jobs := make([]*Job, 6)
	for i := range jobs {
		ran.Add(1)
		j, err := q.Submit("", 0, func(ctx context.Context, j *Job) (any, error) {
			defer ran.Done()
			time.Sleep(10 * time.Millisecond)
			return "ok", nil
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Shutdown(ctx); err != nil {
		t.Fatalf("drain shutdown returned %v", err)
	}
	ran.Wait()
	for _, j := range jobs {
		if st := j.State(); st != StateDone {
			t.Fatalf("job %s state %s after drain, want done", j.ID(), st)
		}
	}
	if _, err := q.Submit("late", 0, blockingJob(nil, nil)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("post-shutdown submit err = %v, want ErrShuttingDown", err)
	}
}

// TestShutdownForceCancels: when the drain deadline passes, running jobs
// are canceled through their context, the backlog is flushed as canceled,
// and Shutdown still returns (with the deadline error).
func TestShutdownForceCancels(t *testing.T) {
	started := make(chan string, 1)
	q := New(Config{Workers: 1, Capacity: 4})
	running, err := q.Submit("stuck", 0, blockingJob(started, nil))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := q.Submit("backlog", 0, blockingJob(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown err = %v, want DeadlineExceeded", err)
	}
	waitTerminal(t, running)
	waitTerminal(t, queued)
	if st := running.State(); st != StateCanceled {
		t.Fatalf("running job state %s, want canceled", st)
	}
	if st := queued.State(); st != StateCanceled {
		t.Fatalf("queued job state %s, want canceled", st)
	}
}

// TestExternalInflight: the open-placement gauge counts external jobs that
// have not reached a terminal state — local jobs and completed externals
// never appear in it.
func TestExternalInflight(t *testing.T) {
	q := New(Config{Workers: 1, Capacity: 4})
	defer q.Shutdown(t.Context())

	if got := q.ExternalInflight(); got != 0 {
		t.Fatalf("fresh queue: external inflight = %d, want 0", got)
	}
	if _, err := q.SubmitExternal("ext-a", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := q.SubmitExternal("ext-b", 0); err != nil {
		t.Fatal(err)
	}
	// A local job must not count.
	j, err := q.Submit("", 0, func(ctx context.Context, j *Job) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if got := q.ExternalInflight(); got != 2 {
		t.Fatalf("external inflight = %d with two open placements, want 2", got)
	}
	if !q.CompleteExternal("ext-a", "done", nil) {
		t.Fatal("CompleteExternal(ext-a) = false")
	}
	if got := q.ExternalInflight(); got != 1 {
		t.Fatalf("external inflight = %d after one completion, want 1", got)
	}
	q.CompleteExternal("ext-b", nil, context.Canceled)
	if got := q.ExternalInflight(); got != 0 {
		t.Fatalf("external inflight = %d after both done, want 0", got)
	}
}
