package jobq

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// TestPanicAttachesStack is the satellite regression: a panicking job must
// fail with the panic value AND the goroutine stack at the panic site.
func TestPanicAttachesStack(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())

	j, err := q.Submit("boom", 0, func(context.Context, *Job) (any, error) {
		explodeForStackTest()
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	_, jerr := j.Result()
	var pe *PanicError
	if !errors.As(jerr, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", jerr, jerr)
	}
	if pe.JobID != "boom" || pe.Value != "kaboom" {
		t.Fatalf("wrong panic detail: %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "explodeForStackTest") {
		t.Fatalf("stack does not name the panic site:\n%s", pe.Stack)
	}
	if !strings.Contains(jerr.Error(), "explodeForStackTest") {
		t.Fatal("Error() drops the stack")
	}
	if j.State() != StateFailed {
		t.Fatalf("state %s, want failed", j.State())
	}
}

func explodeForStackTest() { panic("kaboom") }

// TestWorkerCrashRecovery drives the jobq.worker.crash fault point: the
// worker panics after popping the job but before running it. The job must
// fail (not vanish), occupancy must return to zero (exactly-once
// decrement), and the pool must keep serving subsequent jobs.
func TestWorkerCrashRecovery(t *testing.T) {
	prev := faultinject.Enable(faultinject.MustParse(3, "jobq.worker.crash:times=1"))
	defer faultinject.Enable(prev)

	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())

	victim, err := q.Submit("victim", 0, func(context.Context, *Job) (any, error) {
		return "never runs", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-victim.Done()
	_, verr := victim.Result()
	var pe *PanicError
	if !errors.As(verr, &pe) {
		t.Fatalf("crashed worker left %T (%v), want *PanicError", verr, verr)
	}
	if _, ok := pe.Value.(faultinject.PanicValue); !ok {
		t.Fatalf("panic value %v is not the injected crash", pe.Value)
	}

	// The pool must still be alive and consistent.
	survivor, err := q.Submit("survivor", 0, func(context.Context, *Job) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-survivor.Done()
	if v, err := survivor.Result(); err != nil || v != 42 {
		t.Fatalf("survivor got (%v, %v)", v, err)
	}
	st := q.Stats()
	if st.Running != 0 {
		t.Fatalf("occupancy leaked: %d running after both jobs finished", st.Running)
	}
	if st.Failed != 1 || st.Completed != 1 {
		t.Fatalf("counters: %+v, want 1 failed / 1 completed", st)
	}
}

// TestWorkerPanicReleasesMutexOnce pins the queue's lock discipline on the
// panic path: runGuarded's recovery must leave q.mu released (not held — a
// later Stats or Submit would deadlock) and must decrement the occupancy
// count exactly once (a double decrement would drive Running negative,
// since the crashed pop incremented it exactly once). The crash lands amid
// a backlog so surviving workers immediately re-contend for the same
// mutex.
func TestWorkerPanicReleasesMutexOnce(t *testing.T) {
	prev := faultinject.Enable(faultinject.MustParse(9, "jobq.worker.crash:times=1"))
	defer faultinject.Enable(prev)

	q := New(Config{Workers: 2, Capacity: 16})
	defer q.Shutdown(context.Background())

	const n = 6
	jobs := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, err := q.Submit("", 0, func(context.Context, *Job) (any, error) { return "ok", nil })
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	crashed := 0
	for _, j := range jobs {
		<-j.Done()
		if _, err := j.Result(); err != nil {
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("job failed with %T (%v), want *PanicError", err, err)
			}
			crashed++
		}
	}
	if crashed != 1 {
		t.Fatalf("%d jobs crashed, want exactly 1 (times=1 plan)", crashed)
	}

	// The mutex must be acquirable again: probe Stats off the test
	// goroutine so a leaked lock surfaces as a test failure, not a hang.
	statsCh := make(chan Stats, 1)
	go func() { statsCh <- q.Stats() }()
	var st Stats
	select {
	case st = <-statsCh:
	case <-time.After(2 * time.Second):
		t.Fatal("Stats blocked: queue mutex still held after worker panic")
	}
	if st.Running != 0 {
		t.Fatalf("Running = %d after all jobs finished, want 0 (exactly-once decrement)", st.Running)
	}
	if st.Depth != 0 {
		t.Fatalf("Depth = %d, want 0", st.Depth)
	}
	if st.Failed != 1 || st.Completed != uint64(n-1) {
		t.Fatalf("counters %+v, want 1 failed / %d completed", st, n-1)
	}

	// And the pool still serves.
	j, err := q.Submit("after-crash", 0, func(context.Context, *Job) (any, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v, err := j.Result(); err != nil || v != 1 {
		t.Fatalf("post-crash job got (%v, %v), want (1, nil)", v, err)
	}
}

// TestSubmitTimeoutOverridesQueueDefault checks the per-job deadline: a
// job with its own short timeout dies while the queue-wide default (none)
// would have let it run forever.
func TestSubmitTimeoutOverridesQueueDefault(t *testing.T) {
	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())

	j, err := q.SubmitTimeout("deadline", 0, 20*time.Millisecond, func(ctx context.Context, _ *Job) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("per-job timeout never fired")
	}
	if _, jerr := j.Result(); !errors.Is(jerr, context.DeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", jerr)
	}
}

// TestWorkerStallFaultDelaysButCompletes exercises jobq.worker.stall: the
// job is delayed, not lost.
func TestWorkerStallFaultDelaysButCompletes(t *testing.T) {
	prev := faultinject.Enable(faultinject.MustParse(4, "jobq.worker.stall:times=1:delay=30ms"))
	defer faultinject.Enable(prev)

	q := New(Config{Workers: 1})
	defer q.Shutdown(context.Background())

	start := time.Now()
	j, err := q.Submit("stalled", 0, func(context.Context, *Job) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if v, jerr := j.Result(); jerr != nil || v != "ok" {
		t.Fatalf("stalled job got (%v, %v)", v, jerr)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("stall fault did not delay the job")
	}
}
