package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file is the library behind cmd/allocheck: it matches the compiler's
// escape-analysis diagnostics (`go build -gcflags=-m`) against the
// functions the hotalloc analyzer marked `simlint:hotpath`, and ratchets
// the result against a checked-in baseline. The hot paths are allowed their
// known slow-path allocations (a page-walk continuation that only exists on
// a TLB miss), but any NEW escape — a refactor that quietly promotes a
// per-µop value to the heap — fails before a benchmark ever runs, which is
// how the 16,497 allocs/run invariant of BENCH_1/BENCH_2 is enforced in CI
// without running a benchmark.

// Escape is one compiler escape decision attributed to a hotpath function.
type Escape struct {
	Func    string `json:"func"`    // e.g. "(*MemSystem).Load"
	Message string `json:"message"` // e.g. "func literal escapes to heap"
	Count   int    `json:"count"`
}

// AllocBaseline is the checked-in set of accepted hotpath escapes.
type AllocBaseline struct {
	Version int      `json:"version"`
	Escapes []Escape `json:"escapes"`
}

// escapeMarkers are the -m diagnostics that denote a heap allocation.
// "does not escape", "leaking param", and inlining chatter are ignored.
var escapeMarkers = []string{"escapes to heap", "moved to heap"}

// ParseEscapes extracts the hotpath-attributed escape decisions from
// `go build -gcflags=-m` output. dir anchors the compiler's relative file
// paths; funcs are the hotalloc-collected ranges (absolute File paths).
func ParseEscapes(dir string, output []byte, funcs []HotFunc) []Escape {
	counts := map[Escape]int{}
	for _, line := range strings.Split(string(output), "\n") {
		file, lineNo, msg, ok := parseDiagLine(line)
		if !ok || !isEscapeMsg(msg) {
			continue
		}
		abs := file
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(dir, file)
		}
		for _, f := range funcs {
			if f.File == abs && f.StartLine <= lineNo && lineNo <= f.EndLine {
				counts[Escape{Func: f.Name, Message: msg, Count: 1}]++
				break
			}
		}
	}
	out := make([]Escape, 0, len(counts))
	for k, n := range counts {
		k.Count = n
		out = append(out, k)
	}
	sortEscapes(out)
	return out
}

// parseDiagLine splits a `file.go:line:col: message` compiler diagnostic.
func parseDiagLine(line string) (file string, lineNo int, msg string, ok bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "#") {
		return "", 0, "", false
	}
	parts := strings.SplitN(line, ":", 4)
	if len(parts) != 4 || !strings.HasSuffix(parts[0], ".go") {
		return "", 0, "", false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return "", 0, "", false
	}
	if _, err := strconv.Atoi(parts[2]); err != nil {
		return "", 0, "", false
	}
	return parts[0], n, strings.TrimSpace(parts[3]), true
}

func isEscapeMsg(msg string) bool {
	for _, m := range escapeMarkers {
		if strings.Contains(msg, m) {
			return true
		}
	}
	return false
}

func sortEscapes(es []Escape) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].Func != es[j].Func {
			return es[i].Func < es[j].Func
		}
		return es[i].Message < es[j].Message
	})
}

// DiffEscapes ratchets got against the baseline. Gained escapes are
// regressions; lost ones mean the baseline overstates the debt and must be
// regenerated (so the ratchet can only ever tighten).
func DiffEscapes(baseline, got []Escape) (gained, lost []Escape) {
	type key struct{ fn, msg string }
	want := map[key]int{}
	for _, e := range baseline {
		want[key{e.Func, e.Message}] += e.Count
	}
	have := map[key]int{}
	for _, e := range got {
		have[key{e.Func, e.Message}] += e.Count
	}
	for k, n := range have {
		if d := n - want[k]; d > 0 {
			gained = append(gained, Escape{Func: k.fn, Message: k.msg, Count: d})
		}
	}
	for k, n := range want {
		if d := n - have[k]; d > 0 {
			lost = append(lost, Escape{Func: k.fn, Message: k.msg, Count: d})
		}
	}
	sortEscapes(gained)
	sortEscapes(lost)
	return gained, lost
}

// ReadAllocBaseline loads the checked-in escape baseline.
func ReadAllocBaseline(path string) (*AllocBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b AllocBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("alloc baseline %s: %v", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("alloc baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	return &b, nil
}

// WriteAllocBaseline persists the current escapes as the new baseline.
func WriteAllocBaseline(path string, escapes []Escape) error {
	es := append([]Escape(nil), escapes...)
	sortEscapes(es)
	data, err := json.MarshalIndent(&AllocBaseline{Version: baselineVersion, Escapes: es}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
