package lint

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

func TestParseEscapes(t *testing.T) {
	dir := "/repo"
	funcs := []HotFunc{
		{Name: "(*MemSystem).Load", File: "/repo/internal/sim/memsys.go", StartLine: 200, EndLine: 240},
		{Name: "(*Tracer).Emit", File: "/repo/internal/simtrace/simtrace.go", StartLine: 150, EndLine: 160},
	}
	output := `# repro/internal/sim
internal/sim/memsys.go:226:28: func literal escapes to heap
internal/sim/memsys.go:226:28: walk does not escape
internal/sim/memsys.go:500:3: make([]byte, n) escapes to heap
internal/sim/other.go:226:1: escapes to heap
# repro/internal/simtrace
internal/simtrace/simtrace.go:155:2: moved to heap: e
internal/simtrace/simtrace.go:149:6: can inline (*Tracer).Emit
not a diagnostic line
`
	got := ParseEscapes(dir, []byte(output), funcs)
	want := []Escape{
		{Func: "(*MemSystem).Load", Message: "func literal escapes to heap", Count: 1},
		{Func: "(*Tracer).Emit", Message: "moved to heap: e", Count: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseEscapes:\n got %+v\nwant %+v", got, want)
	}
}

func TestParseEscapesCountsDuplicates(t *testing.T) {
	funcs := []HotFunc{{Name: "F", File: "/r/f.go", StartLine: 1, EndLine: 50}}
	output := "f.go:10:1: x escapes to heap\nf.go:20:1: x escapes to heap\n"
	got := ParseEscapes("/r", []byte(output), funcs)
	if len(got) != 1 || got[0].Count != 2 {
		t.Fatalf("got %+v, want one escape with count 2", got)
	}
}

func TestDiffEscapes(t *testing.T) {
	baseline := []Escape{
		{Func: "F", Message: "func literal escapes to heap", Count: 1},
		{Func: "G", Message: "moved to heap: e", Count: 1},
	}
	got := []Escape{
		{Func: "F", Message: "func literal escapes to heap", Count: 2}, // one more than accepted
		// G's escape is gone
		{Func: "H", Message: "x escapes to heap", Count: 1}, // brand new
	}
	gained, lost := DiffEscapes(baseline, got)
	wantGained := []Escape{
		{Func: "F", Message: "func literal escapes to heap", Count: 1},
		{Func: "H", Message: "x escapes to heap", Count: 1},
	}
	wantLost := []Escape{{Func: "G", Message: "moved to heap: e", Count: 1}}
	if !reflect.DeepEqual(gained, wantGained) {
		t.Errorf("gained:\n got %+v\nwant %+v", gained, wantGained)
	}
	if !reflect.DeepEqual(lost, wantLost) {
		t.Errorf("lost:\n got %+v\nwant %+v", lost, wantLost)
	}
	if g, l := DiffEscapes(baseline, baseline); g != nil || l != nil {
		t.Errorf("self-diff moved the ratchet: gained %v, lost %v", g, l)
	}
}

func TestAllocBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "allocheck.baseline.json")
	escapes := []Escape{
		{Func: "(*MemSystem).Store", Message: "func literal escapes to heap", Count: 1},
		{Func: "(*MemSystem).Load", Message: "func literal escapes to heap", Count: 1},
	}
	if err := WriteAllocBaseline(path, escapes); err != nil {
		t.Fatal(err)
	}
	b, err := ReadAllocBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Escapes) != 2 || b.Escapes[0].Func != "(*MemSystem).Load" {
		t.Fatalf("round-trip gave %+v, want 2 escapes sorted by func", b.Escapes)
	}
	if err := writeFile(path, `{"version": 42, "escapes": []}`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAllocBaseline(path); err == nil {
		t.Fatal("ReadAllocBaseline accepted an unsupported version")
	}
}
