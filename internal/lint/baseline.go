package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// Baseline is the checked-in suppression file the driver diffs a run
// against. Each entry waives a known, accepted finding; entries are keyed
// by (analyzer, file, message) rather than line numbers so unrelated edits
// to a file do not invalidate them. Count bounds how many identical
// findings one entry absorbs, so a waived pattern cannot silently multiply.
//
// The diff is two-sided: findings not covered by the baseline are reported
// as usual, and baseline entries no longer matched by any finding are
// reported as stale — a fixed finding must leave the baseline, keeping the
// file an honest inventory of accepted debt.
type Baseline struct {
	Version int             `json:"version"`
	Entries []BaselineEntry `json:"entries"`
}

// BaselineEntry is one accepted finding.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"` // relative to the repo root the driver runs in
	Message  string `json:"message"`
	Count    int    `json:"count"` // identical findings absorbed (>=1)
}

const baselineVersion = 1

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	if b.Version != baselineVersion {
		return nil, fmt.Errorf("baseline %s: unsupported version %d (want %d)", path, b.Version, baselineVersion)
	}
	for i, e := range b.Entries {
		if e.Analyzer == "" || e.File == "" || e.Message == "" || e.Count < 1 {
			return nil, fmt.Errorf("baseline %s: entry %d is malformed (need analyzer, file, message, count>=1)", path, i)
		}
	}
	return &b, nil
}

// WriteBaseline renders the current findings as a baseline file, relative
// to dir.
func WriteBaseline(path, dir string, diags []Diagnostic) error {
	counts := map[BaselineEntry]int{}
	for _, d := range diags {
		k := BaselineEntry{Analyzer: d.Analyzer, File: relTo(dir, d.Pos.Filename), Message: d.Message, Count: 1}
		counts[k]++
	}
	b := Baseline{Version: baselineVersion}
	for k, n := range counts {
		k.Count = n
		b.Entries = append(b.Entries, k)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ApplyBaseline filters diags through the baseline: matched findings are
// absorbed (up to each entry's count), unmatched findings pass through, and
// stale entries come back as fresh diagnostics attributed to the baseline
// file itself so the suppression inventory cannot rot.
func ApplyBaseline(b *Baseline, path, dir string, diags []Diagnostic) []Diagnostic {
	type key struct{ analyzer, file, message string }
	remaining := map[key]int{}
	for _, e := range b.Entries {
		remaining[key{e.Analyzer, e.File, e.Message}] += e.Count
	}
	var out []Diagnostic
	for _, d := range diags {
		k := key{d.Analyzer, relTo(dir, d.Pos.Filename), d.Message}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	// Deterministic stale ordering: walk the file's own entry order.
	for _, e := range b.Entries {
		k := key{e.Analyzer, e.File, e.Message}
		if remaining[k] <= 0 {
			continue
		}
		n := remaining[k]
		remaining[k] = 0
		out = append(out, Diagnostic{
			Analyzer: "baseline",
			Pos:      baselinePos(path),
			Message: fmt.Sprintf("stale baseline entry (%d unmatched): %s no longer reports %q in %s; "+
				"remove the entry or regenerate with -write-baseline", n, e.Analyzer, e.Message, e.File),
		})
	}
	return out
}

func baselinePos(path string) (p token.Position) {
	p.Filename = path
	return p
}

// relTo renders filename relative to dir when possible, for stable baseline
// keys and JSON output.
func relTo(dir, filename string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return filename
	}
	rel, err := filepath.Rel(abs, filename)
	if err != nil || rel == "" {
		return filename
	}
	return rel
}
