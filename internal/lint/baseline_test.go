package lint

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func mkDiag(analyzer, file string, line int, msg string) Diagnostic {
	return Diagnostic{
		Analyzer: analyzer,
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "simlint.baseline.json")
	diags := []Diagnostic{
		mkDiag("ctxprop", filepath.Join(dir, "a.go"), 10, "ambient context"),
		mkDiag("ctxprop", filepath.Join(dir, "a.go"), 40, "ambient context"),
		mkDiag("lockcheck", filepath.Join(dir, "b.go"), 7, "unguarded access"),
	}
	if err := WriteBaseline(path, dir, diags); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 2 {
		t.Fatalf("entries = %d, want 2 (identical findings fold into one counted entry)", len(b.Entries))
	}
	if b.Entries[0].File != "a.go" || b.Entries[0].Count != 2 {
		t.Fatalf("first entry %+v, want a.go with count 2", b.Entries[0])
	}
	if out := ApplyBaseline(b, path, dir, diags); len(out) != 0 {
		t.Fatalf("self-diff left %d diagnostics, want 0: %v", len(out), out)
	}
}

func TestBaselineCountBounds(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	one := []Diagnostic{mkDiag("ctxprop", filepath.Join(dir, "a.go"), 10, "ambient context")}
	if err := WriteBaseline(path, dir, one); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The same finding now appears twice: one is absorbed, one escapes.
	two := append(one, mkDiag("ctxprop", filepath.Join(dir, "a.go"), 99, "ambient context"))
	out := ApplyBaseline(b, path, dir, two)
	if len(out) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (count bounds absorption)", len(out))
	}
	if out[0].Pos.Line != 99 && out[0].Pos.Line != 10 {
		t.Fatalf("surviving diagnostic at line %d, want one of the finding lines", out[0].Pos.Line)
	}
}

func TestBaselineStaleEntriesReported(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "base.json")
	old := []Diagnostic{
		mkDiag("ctxprop", filepath.Join(dir, "a.go"), 10, "ambient context"),
		mkDiag("lockcheck", filepath.Join(dir, "b.go"), 7, "unguarded access"),
	}
	if err := WriteBaseline(path, dir, old); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	// The lockcheck finding got fixed; its entry must come back as stale.
	out := ApplyBaseline(b, path, dir, old[:1])
	if len(out) != 1 {
		t.Fatalf("got %d diagnostics, want 1 stale entry: %v", len(out), out)
	}
	if out[0].Analyzer != "baseline" || !strings.Contains(out[0].Message, "stale baseline entry") {
		t.Fatalf("diagnostic %+v, want a stale-baseline report", out[0])
	}
	if !strings.Contains(out[0].Message, "unguarded access") {
		t.Fatalf("stale report %q does not name the fixed finding", out[0].Message)
	}
}

func TestBaselineRejectsMalformed(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"bad-version": `{"version": 99, "entries": []}`,
		"no-count":    `{"version": 1, "entries": [{"analyzer": "ctxprop", "file": "a.go", "message": "m", "count": 0}]}`,
		"no-file":     `{"version": 1, "entries": [{"analyzer": "ctxprop", "message": "m", "count": 1}]}`,
		"not-json":    `nope`,
	} {
		path := filepath.Join(dir, name+".json")
		if err := writeFile(path, body); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadBaseline(path); err == nil {
			t.Errorf("%s: ReadBaseline accepted a malformed baseline", name)
		}
	}
}
