package lint

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Cfgcheck requires every exported field of sim.Config to be covered by
// Config.Validate. A configuration knob that Validate never looks at is a
// knob whose nonsense values reach the simulator: queue sizes of zero,
// negative latencies, or a warm-up longer than the run silently corrupt
// the measured region. Fields for which every value is genuinely valid
// (cosmetic labels, boolean toggles) opt out with a `simlint:novalidate`
// comment on the field, which keeps the exemption list in the struct
// declaration where reviewers see it.
var Cfgcheck = &analysis.Analyzer{
	Name: "cfgcheck",
	Doc:  "require every exported sim.Config field to be covered by Config.Validate",
	Run:  runCfgcheck,
}

const novalidateMarker = "simlint:novalidate"

func runCfgcheck(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() != "sim" {
		return nil, nil
	}
	spec := findTypeSpec(pass, "Config")
	if spec == nil {
		return nil, nil
	}
	structType, ok := spec.Type.(*ast.StructType)
	if !ok {
		return nil, nil
	}
	validate := findMethodDecl(pass, "Config", "Validate")
	if validate == nil {
		report(pass, spec.Name.Pos(), spec.Name.End(),
			"sim.Config has no Validate method; configuration errors reach the simulator unchecked")
		return nil, nil
	}

	covered := coveredFields(validate)
	for _, field := range structType.Fields.List {
		if fieldExempt(field) {
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() || covered[name.Name] {
				continue
			}
			report(pass, name.Pos(), name.End(),
				"sim.Config.%s is not covered by Config.Validate; check it or mark the field `%s`",
				name.Name, novalidateMarker)
		}
	}
	return nil, nil
}

// coveredFields collects the receiver fields Validate reads: any selector
// through the receiver covers its first-level field (c.L1.LineSize covers
// L1, c.Core.Validate() covers Core).
func coveredFields(validate *ast.FuncDecl) map[string]bool {
	recvName := receiverName(validate)
	covered := map[string]bool{}
	ast.Inspect(validate.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && isIdent(sel.X, recvName) {
			covered[sel.Sel.Name] = true
		}
		return true
	})
	return covered
}

// fieldExempt reports whether the field declaration carries the
// novalidate marker in its doc or trailing comment.
func fieldExempt(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, novalidateMarker) {
				return true
			}
		}
	}
	return false
}

// findTypeSpec locates the named type declaration in the pass's files.
func findTypeSpec(pass *analysis.Pass, name string) *ast.TypeSpec {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, s := range gd.Specs {
				if ts, ok := s.(*ast.TypeSpec); ok && ts.Name.Name == name {
					return ts
				}
			}
		}
	}
	return nil
}
