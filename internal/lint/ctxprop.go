package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// ctxServicePkgs names the service-layer packages (by package name) held to
// the context-propagation contract: work that can block must be cancellable
// from the request that started it, so deadlines and drains propagate from
// cdpd's handlers all the way into a running simulation.
var ctxServicePkgs = map[string]bool{
	"jobq":        true, // worker pool: per-job cancellation and timeouts
	"simcache":    true, // singleflight waiters
	"api":         true, // HTTP handlers and the job functions they build
	"client":      true, // retry loop, backoff sleeps
	"experiments": true, // matrix sweeps cancelled between cells
	"cluster":     true, // heartbeat loop, forwards, lease sweeper
}

// Ctxprop enforces context hygiene in the service packages:
//
//   - context.Background() and context.TODO() are forbidden: an ambient
//     context silently detaches the work under it from every deadline and
//     drain above it. The only legitimate uses are process lifecycle roots,
//     which must be declared by a `simlint:rootctx` directive on the
//     enclosing function so each root is named, documented, and greppable.
//   - time.Sleep is forbidden: a bare sleep cannot be interrupted by
//     cancellation; block on a timer channel together with ctx.Done()
//     instead (see client.Config.Sleep's default for the pattern).
//   - A context.Context parameter must come first in the parameter list,
//     the convention every caller in this codebase relies on.
//
// Package main (flag parsing, signal roots) and test files are outside the
// contract.
var Ctxprop = &analysis.Analyzer{
	Name: "ctxprop",
	Doc: "forbid ambient contexts (context.Background/TODO) and " +
		"uncancellable sleeps in the service packages; require ctx-first signatures",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runCtxprop,
}

const rootctxMarker = "simlint:rootctx"

func runCtxprop(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() == "main" || !ctxServicePkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	roots := rootctxFuncs(pass)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.FuncDecl)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkCtxFirst(pass, n)
		case *ast.CallExpr:
			checkCtxCall(pass, n, stack, roots)
		}
		return true
	})
	return nil, nil
}

// rootctxFuncs collects the function declarations carrying a
// `simlint:rootctx` directive in their doc comment.
func rootctxFuncs(pass *analysis.Pass) map[*ast.FuncDecl]bool {
	out := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && hasDirective(fd.Doc, rootctxMarker) {
				out[fd] = true
			}
		}
	}
	return out
}

// checkCtxCall reports forbidden ambient-context constructors and bare
// sleeps.
func checkCtxCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, roots map[*ast.FuncDecl]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch obj.Pkg().Path() {
	case "context":
		if obj.Name() != "Background" && obj.Name() != "TODO" {
			return
		}
		if inRootctx(stack, roots) {
			return
		}
		report(pass, call.Pos(), call.End(),
			"context.%s() detaches this work from every caller deadline and drain; thread a context.Context parameter, "+
				"or declare a documented lifecycle root with a `simlint:rootctx` directive on the enclosing function",
			obj.Name())
	case "time":
		if obj.Name() != "Sleep" {
			return
		}
		report(pass, call.Pos(), call.End(),
			"time.Sleep cannot be cancelled; select on a time.Timer together with ctx.Done() instead")
	}
}

// inRootctx reports whether the innermost enclosing function declaration is
// a declared rootctx root. Function literals inside a root share its
// exemption: the root's doc governs the whole declaration.
func inRootctx(stack []ast.Node, roots map[*ast.FuncDecl]bool) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return roots[fd]
		}
	}
	return false
}

// checkCtxFirst requires a context.Context parameter, when present, to be
// the first parameter.
func checkCtxFirst(pass *analysis.Pass, decl *ast.FuncDecl) {
	if decl.Type.Params == nil {
		return
	}
	idx := 0
	for _, field := range decl.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass, field.Type) && idx > 0 {
			report(pass, field.Pos(), field.Type.End(),
				"context.Context must be the first parameter of %s", decl.Name.Name)
			return
		}
		idx += n
	}
}

func isContextType(pass *analysis.Pass, expr ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(expr)
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
