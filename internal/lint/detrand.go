package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// detCriticalPkgs names the determinism-critical packages by package name:
// two identical simulations must produce bit-identical stats, so these
// packages may not consult any ambient source of nondeterminism.
var detCriticalPkgs = map[string]bool{
	"sim":      true, // event-driven memory system
	"cpu":      true, // out-of-order core model
	"bus":      true, // arbiters and front-side bus
	"core":     true, // content-directed prefetcher
	"prefetch": true, // the prefetcher zoo's engines
	"markov":   true, // Markov comparator STAB
	"registry": true, // engine construction must be spec-deterministic
}

// wallClockFuncs are time-package functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors are math/rand functions that build explicitly-seeded
// local generators; those are deterministic and allowed. Everything else
// at package level draws from (or reseeds) the shared global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// Detrand forbids the three ambient nondeterminism sources Go makes easy
// to reach for — the wall clock, the global math/rand source, and map
// iteration order — inside the determinism-critical simulator packages.
var Detrand = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid time.Now, the global math/rand source, and ordering-sensitive " +
		"map iteration in determinism-critical simulator packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDetrand,
}

func runDetrand(pass *analysis.Pass) (interface{}, error) {
	if !detCriticalPkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{
		(*ast.SelectorExpr)(nil),
		(*ast.RangeStmt)(nil),
	}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			checkForbiddenRef(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		}
	})
	return nil, nil
}

// checkForbiddenRef flags any use (not just call) of a wall-clock reader
// or a global math/rand function: passing time.Now as a value is exactly
// as nondeterministic as calling it.
func checkForbiddenRef(pass *analysis.Pass, sel *ast.SelectorExpr) {
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a local *rand.Rand) are fine
	}
	switch obj.Pkg().Path() {
	case "time":
		if wallClockFuncs[obj.Name()] {
			report(pass, sel.Pos(), sel.End(),
				"time.%s reads the wall clock; determinism-critical package %q must derive all time from simulated cycles",
				obj.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[obj.Name()] {
			report(pass, sel.Pos(), sel.End(),
				"rand.%s uses the global math/rand source; use an explicitly-seeded local rand.New(rand.NewSource(seed)) instead",
				obj.Name())
		}
	}
}

// checkMapRange flags `for k := range m` / `for k, v := range m` over map
// types: Go randomises iteration order per run, so any per-iteration effect
// (scheduling, counter updates, slice appends) diverges between runs. A
// bodyless count (`for range m`) is order-insensitive and allowed.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Key == nil && rng.Value == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	report(pass, rng.Pos(), rng.X.End(),
		"map iteration order is nondeterministic; iterate a sorted key slice (or insertion-order FIFO) instead")
}
