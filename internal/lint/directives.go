package lint

import (
	"go/ast"
	"strings"
)

// directiveRest matches a comment that IS a simlint directive — the marker
// is the first token after the comment opener — and returns the text
// following it. Prose that merely mentions a marker does not match, so doc
// comments can talk about the directives without triggering them — unless
// the mention wraps onto its own line, so keep marker names mid-line in
// prose.
func directiveRest(comment, marker string) (rest string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimLeft(text, " \t")
	if !strings.HasPrefix(text, marker) {
		return "", false
	}
	rest = text[len(marker):]
	rest = strings.TrimSuffix(rest, "*/")
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // e.g. simlint:hotpathological
	}
	return rest, true
}

// hasDirective reports whether any comment in the group is the given
// directive.
func hasDirective(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if _, ok := directiveRest(c.Text, marker); ok {
			return true
		}
	}
	return false
}
