// Package lint implements simlint, the simulator-specific static-analysis
// suite backing the repository's determinism, stats-hygiene, and
// service-layer correctness contracts.
//
// The paper's results are only reproducible if two runs of the same trace
// produce bit-identical statistics, so the determinism-critical packages
// (internal/sim, internal/cpu, internal/bus, internal/core) are held to a
// mechanical standard that ordinary review cannot sustain as the codebase
// grows. The first five analyzers, written against
// golang.org/x/tools/go/analysis, enforce it:
//
//   - detrand forbids wall-clock reads (time.Now and friends), the global
//     math/rand source, and ordering-sensitive map iteration inside the
//     determinism-critical packages.
//   - eventmono flags scheduler.schedule call sites whose cycle argument is
//     not recognisably derived from the tracked simulation time, closing
//     the event-heap monotonicity contract statically.
//   - statsreg cross-checks stats.Counters: every field must be reset at
//     the warm-up boundary (package stats) and emitted by the report
//     package, so counters cannot silently drift out of the report.
//   - cfgcheck requires every exported sim.Config field to be covered by
//     Config.Validate (fields for which any value is valid carry an
//     explicit `simlint:novalidate` marker).
//   - tracegate requires every simtrace emission to be guarded by
//     Enabled(), preserving the zero-cost-when-disabled contract.
//
// Four more analyzers gate the service layer (cdpd and the packages under
// it), where the failure modes are concurrency and cancellation rather
// than determinism:
//
//   - lockcheck enforces `simlint:guardedby <mutex>` field annotations: an
//     annotated field may only be accessed after the named sibling mutex is
//     acquired in the same function, with the ...Locked naming convention
//     and `simlint:holds <mutex>` directives declaring caller-holds
//     functions (see lockcheck.go for the conservative approximation).
//   - ctxprop forbids ambient contexts (context.Background/TODO) and bare
//     time.Sleep in the service packages and requires ctx-first signatures;
//     process lifecycle roots are declared with `simlint:rootctx`.
//   - faultpoint validates fault-injection call sites against the live
//     internal/faultinject catalog and grammar, and on whole-repo runs
//     flags cataloged points no production code can fire.
//   - hotalloc rejects syntactic allocation sites inside functions marked
//     `simlint:hotpath`; cmd/allocheck layers the compiler's real escape
//     analysis on the same marker (see allocheck.go).
//
// A diagnostic can be suppressed at a single site with a trailing or
// immediately preceding comment of the form
//
//	//simlint:allow <analyzer>... [-- rationale]
//
// which keeps exceptions visible and greppable. Accepted pre-existing debt
// can instead live in a checked-in baseline file (simlint.baseline.json,
// see baseline.go): `-baseline` absorbs findings listed there and reports
// stale entries, and `-write-baseline` regenerates the file. `-json` emits
// findings machine-readably for CI artifacts.
//
// The container this repository grows in has no module proxy access, so
// the go/analysis framework is vendored from the Go toolchain distribution
// under third_party/ and the standard drivers (multichecker, unitchecker's
// `go vet -vettool` mode) that depend on golang.org/x/tools/go/packages are
// replaced by a small driver in this package that loads packages with
// `go list -export -deps -json` and gc export data. The analyzers
// themselves are ordinary analysis.Analyzer values and would run unchanged
// under the upstream drivers.
package lint
