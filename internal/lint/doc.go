// Package lint implements simlint, the simulator-specific static-analysis
// suite backing the repository's determinism and stats-hygiene contracts.
//
// The paper's results are only reproducible if two runs of the same trace
// produce bit-identical statistics, so the determinism-critical packages
// (internal/sim, internal/cpu, internal/bus, internal/core) are held to a
// mechanical standard that ordinary review cannot sustain as the codebase
// grows. Four analyzers, written against golang.org/x/tools/go/analysis,
// enforce it:
//
//   - detrand forbids wall-clock reads (time.Now and friends), the global
//     math/rand source, and ordering-sensitive map iteration inside the
//     determinism-critical packages.
//   - eventmono flags scheduler.schedule call sites whose cycle argument is
//     not recognisably derived from the tracked simulation time, closing
//     the event-heap monotonicity contract statically.
//   - statsreg cross-checks stats.Counters: every field must be reset at
//     the warm-up boundary (package stats) and emitted by the report
//     package, so counters cannot silently drift out of the report.
//   - cfgcheck requires every exported sim.Config field to be covered by
//     Config.Validate (fields for which any value is valid carry an
//     explicit `simlint:novalidate` marker).
//
// A diagnostic can be suppressed at a single site with a trailing or
// immediately preceding comment of the form
//
//	//simlint:allow <analyzer>
//
// which keeps exceptions visible and greppable.
//
// The container this repository grows in has no module proxy access, so
// the go/analysis framework is vendored from the Go toolchain distribution
// under third_party/ and the standard drivers (multichecker, unitchecker's
// `go vet -vettool` mode) that depend on golang.org/x/tools/go/packages are
// replaced by a small driver in this package that loads packages with
// `go list -export -deps -json` and gc export data. The analyzers
// themselves are ordinary analysis.Analyzer values and would run unchanged
// under the upstream drivers.
package lint
