package lint

import (
	"encoding/json"
	"fmt"
	"go/token"
	"go/types"
	"io"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the simlint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{Detrand, Eventmono, Statsreg, Cfgcheck, Tracegate, Lockcheck, Ctxprop, Faultpoint, Hotalloc}

// Diagnostic is one analyzer finding with resolved position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run loads the packages matched by patterns under dir and applies every
// analyzer in the suite, returning the findings sorted by position. When
// the pattern set covers the whole repository ("./...") and the faultpoint
// analyzer is in the suite, catalog entries no loaded package references
// are reported as orphans — a partial run cannot see every call site, so
// the cross-package check only arms on full coverage.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	usage := &FaultpointUsage{Used: map[string]bool{}, Catalog: map[string]token.Pos{}}
	var catalogFset *token.FileSet
	for _, pkg := range pkgs {
		ds, results, err := RunPackageResults(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
		if u, ok := results[Faultpoint].(*FaultpointUsage); ok && u != nil {
			for p := range u.Used {
				usage.Used[p] = true
			}
			for p, pos := range u.Catalog {
				usage.Catalog[p] = pos
				catalogFset = pkg.Fset
			}
		}
	}
	if wholeRepo(patterns) && catalogFset != nil {
		diags = append(diags, orphanDiagnostics(catalogFset, usage)...)
	}
	sortDiagnostics(diags)
	return diags, nil
}

func wholeRepo(patterns []string) bool {
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			return true
		}
	}
	return false
}

// orphanDiagnostics flags catalog entries with no call site in the run.
func orphanDiagnostics(fset *token.FileSet, usage *FaultpointUsage) []Diagnostic {
	var out []Diagnostic
	for name, pos := range usage.Catalog {
		if usage.Used[name] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "faultpoint",
			Pos:      fset.Position(pos),
			Message: fmt.Sprintf("orphaned catalog entry: fault point %q is declared but no non-test code can fire it; "+
				"remove the entry or wire the point in", name),
		})
	}
	return out
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunPackage applies the analyzers (and their requirements, in dependency
// order) to one loaded package.
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunPackageResults(pkg, analyzers)
	return diags, err
}

// RunPackageResults is RunPackage, additionally returning each analyzer's
// result value so suite-level checks (faultpoint orphans) and layered tools
// (cmd/allocheck over hotalloc's ranges) can consume them.
func RunPackageResults(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, map[*analysis.Analyzer]interface{}, error) {
	var diags []Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	ran := map[*analysis.Analyzer]bool{}

	var exec func(a *analysis.Analyzer) error
	exec = func(a *analysis.Analyzer) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		pass := newPass(a, pkg, results, &diags)
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := exec(a); err != nil {
			return nil, nil, err
		}
	}
	return diags, results, nil
}

// newPass assembles the analysis.Pass for one (analyzer, package) pair.
// simlint's analyzers use no facts, so the fact hooks are inert stubs.
func newPass(a *analysis.Analyzer, pkg *Package, results map[*analysis.Analyzer]interface{}, out *[]Diagnostic) *analysis.Pass {
	resultOf := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.TypesInfo,
		TypesSizes: sizes(),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			*out = append(*out, Diagnostic{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		},
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	if pkg.Module != nil {
		pass.Module = &analysis.Module{Path: pkg.Module.Path, GoVersion: pkg.Module.GoVersion}
	}
	return pass
}

// MainOptions configures a driver invocation (the cmd/simlint flags).
type MainOptions struct {
	JSON          bool   // emit findings as a JSON array instead of text lines
	Baseline      string // path to a baseline file to diff against ("" = none)
	WriteBaseline string // regenerate this baseline file from the run and exit 0
}

// jsonDiagnostic is the machine-readable finding shape (-json). File is
// repo-relative so CI artifacts are stable across checkouts.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Main is the cmd/simlint entry point: run the suite over the patterns
// (default "./..."), apply the baseline if configured, and print findings.
// Exit status 0 means clean, 1 means findings, 2 means the load or an
// analyzer failed.
func Main(w io.Writer, dir string, args []string, opts MainOptions) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Run(dir, patterns, Analyzers)
	if err != nil {
		fmt.Fprintf(w, "simlint: %v\n", err)
		return 2
	}
	if opts.WriteBaseline != "" {
		if err := WriteBaseline(opts.WriteBaseline, dir, diags); err != nil {
			fmt.Fprintf(w, "simlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(w, "simlint: wrote %d baseline entries to %s\n", len(diags), opts.WriteBaseline)
		return 0
	}
	if opts.Baseline != "" {
		b, err := ReadBaseline(opts.Baseline)
		if err != nil {
			fmt.Fprintf(w, "simlint: %v\n", err)
			return 2
		}
		diags = ApplyBaseline(b, opts.Baseline, dir, diags)
	}
	if opts.JSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Analyzer: d.Analyzer,
				File:     relTo(dir, d.Pos.Filename),
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(w, "simlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(w, d)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
