package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"io"
	"sort"

	"golang.org/x/tools/go/analysis"
)

// Analyzers is the simlint suite, in reporting order.
var Analyzers = []*analysis.Analyzer{Detrand, Eventmono, Statsreg, Cfgcheck, Tracegate}

// Diagnostic is one analyzer finding with resolved position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run loads the packages matched by patterns under dir and applies every
// analyzer in the suite, returning the findings sorted by position.
func Run(dir string, patterns []string, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackage(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// RunPackage applies the analyzers (and their requirements, in dependency
// order) to one loaded package.
func RunPackage(pkg *Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	ran := map[*analysis.Analyzer]bool{}

	var exec func(a *analysis.Analyzer) error
	exec = func(a *analysis.Analyzer) error {
		if ran[a] {
			return nil
		}
		ran[a] = true
		for _, req := range a.Requires {
			if err := exec(req); err != nil {
				return err
			}
		}
		pass := newPass(a, pkg, results, &diags)
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		results[a] = res
		return nil
	}
	for _, a := range analyzers {
		if err := exec(a); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

// newPass assembles the analysis.Pass for one (analyzer, package) pair.
// simlint's analyzers use no facts, so the fact hooks are inert stubs.
func newPass(a *analysis.Analyzer, pkg *Package, results map[*analysis.Analyzer]interface{}, out *[]Diagnostic) *analysis.Pass {
	resultOf := map[*analysis.Analyzer]interface{}{}
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.TypesInfo,
		TypesSizes: sizes(),
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			*out = append(*out, Diagnostic{
				Analyzer: a.Name,
				Pos:      pkg.Fset.Position(d.Pos),
				Message:  d.Message,
			})
		},
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	if pkg.Module != nil {
		pass.Module = &analysis.Module{Path: pkg.Module.Path, GoVersion: pkg.Module.GoVersion}
	}
	return pass
}

// Main is the cmd/simlint entry point: run the suite over the patterns
// (default "./...") and print findings. Exit status 0 means clean, 1 means
// findings, 2 means the load or an analyzer failed.
func Main(w io.Writer, dir string, args []string) int {
	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := Run(dir, patterns, Analyzers)
	if err != nil {
		fmt.Fprintf(w, "simlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
