package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Eventmono flags scheduler.schedule call sites whose cycle argument is not
// recognisably derived from the tracked simulation time. The event heap's
// monotonicity contract — no event may be scheduled before the cycle
// currently executing — used to live in a comment; this analyzer enforces
// the call-site half of it statically (the scheduler itself clamps, and
// panics under -tags simdebug).
//
// The check is a conservative syntactic heuristic: the argument must be
// built from known time carriers (`at`, `now`, `cycle`, `slot`, ... or any
// identifier ending in "at"/"cycle"), calls to clamping helpers such as
// reserveL2/FreeAt, and additions. Subtractions, bare literals, and unknown
// identifiers are flagged; a justified exception carries
// `//simlint:allow eventmono`.
var Eventmono = &analysis.Analyzer{
	Name: "eventmono",
	Doc: "flag scheduler.schedule call sites that can pass a cycle in the past " +
		"relative to the tracked simulation time",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runEventmono,
}

// timeCarriers are identifier names conventionally bound to the current or
// a future simulated cycle.
var timeCarriers = map[string]bool{
	"at": true, "now": true, "t": true, "cycle": true, "slot": true,
	"start": true, "arrive": true, "when": true, "ready": true, "rs": true,
}

// clampFuncs return cycles already clamped to be >= the tracked time.
var clampFuncs = map[string]bool{
	"reserveL2": true, "FreeAt": true, "next": true,
}

func runEventmono(pass *analysis.Pass) (interface{}, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if !isSchedulerSchedule(pass, call) || len(call.Args) < 1 {
			return
		}
		arg := call.Args[0]
		if monotoneTimeExpr(arg) {
			return
		}
		report(pass, arg.Pos(), arg.End(),
			"cycle argument %q is not recognisably derived from the tracked simulation time; "+
				"schedule relative to now/at (or a clamping helper) so the event heap stays monotone",
			types.ExprString(arg))
	})
	return nil, nil
}

// isSchedulerSchedule reports whether call invokes the schedule method of a
// type named scheduler.
func isSchedulerSchedule(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "schedule" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	return ok && named.Obj().Name() == "scheduler"
}

// monotoneTimeExpr conservatively decides whether e is derived from the
// tracked simulation time.
func monotoneTimeExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return monotoneTimeExpr(e.X)
	case *ast.Ident:
		return carriesTime(e.Name)
	case *ast.SelectorExpr:
		return carriesTime(e.Sel.Name)
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "max" || fun.Name == "min" {
				// max(now, x) is monotone if any operand is; min only if
				// every operand is.
				return foldArgs(e.Args, fun.Name == "min")
			}
			return carriesTime(fun.Name) || clampFuncs[fun.Name]
		case *ast.SelectorExpr:
			return carriesTime(fun.Sel.Name) || clampFuncs[fun.Sel.Name]
		}
		return false
	case *ast.BinaryExpr:
		if e.Op.String() != "+" {
			return false
		}
		return monotoneTimeExpr(e.X) || monotoneTimeExpr(e.Y)
	default:
		return false
	}
}

// foldArgs combines monotoneTimeExpr over call arguments: conjunction for
// min (every candidate must be safe), disjunction for max.
func foldArgs(args []ast.Expr, all bool) bool {
	for _, a := range args {
		ok := monotoneTimeExpr(a)
		if all && !ok {
			return false
		}
		if !all && ok {
			return true
		}
	}
	return all && len(args) > 0
}

// carriesTime reports whether an identifier name conventionally denotes a
// simulated cycle.
func carriesTime(name string) bool {
	if timeCarriers[name] {
		return true
	}
	l := strings.ToLower(name)
	return strings.HasSuffix(l, "at") || strings.HasSuffix(l, "cycle")
}
