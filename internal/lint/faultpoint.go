package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/faultinject"
)

// FaultpointUsage is the faultpoint analyzer's per-package result: which
// cataloged points the package's call sites reference, and — only for the
// package that declares the catalog — where each catalog entry is declared.
// The driver aggregates usage across a whole-repo run to flag orphaned
// catalog entries (declared points no production code can ever fire).
type FaultpointUsage struct {
	Used    map[string]bool
	Catalog map[string]token.Pos
}

// faultPointArg maps the faultinject helpers to the index of their point
// argument.
var faultPointArg = map[string]int{
	"Should":     0,
	"Error":      0,
	"MaybePanic": 0,
	"Sleep":      1,
}

// faultSpecArg maps the schedule-parsing entry points to the index of their
// spec argument.
var faultSpecArg = map[string]int{
	"Parse":     1,
	"MustParse": 1,
}

// Faultpoint validates fault-injection call sites against the real
// catalog and grammar of internal/faultinject:
//
//   - The point argument of Should/Error/MaybePanic/Sleep must be a
//     constant string naming a cataloged point. The catalog and the check
//     share one source of truth — the analyzer consults
//     faultinject.Points() directly — so adding a point to the catalog is
//     all it takes to bless its call sites.
//   - Constant schedule strings handed to Parse/MustParse must parse under
//     the `point[:p=P][:after=N][:times=M][:delay=D]` grammar; a typo'd
//     spec in a test or a default flag value fails at lint time instead of
//     at daemon startup.
//   - On whole-repo runs the driver cross-references the catalog against
//     every call site and flags orphaned entries, keeping the DESIGN.md §9
//     fault table honest.
var Faultpoint = &analysis.Analyzer{
	Name: "faultpoint",
	Doc: "require fault-injection call sites to name cataloged points and " +
		"constant fault specs to parse; flag orphaned catalog entries",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*FaultpointUsage)(nil)),
	Run:        runFaultpoint,
}

// knownFaultPoints is the authoritative point set, read once from the live
// catalog.
var knownFaultPoints = func() map[string]bool {
	out := map[string]bool{}
	for _, p := range faultinject.Points() {
		out[p.Name] = true
	}
	return out
}()

func runFaultpoint(pass *analysis.Pass) (interface{}, error) {
	usage := &FaultpointUsage{Used: map[string]bool{}, Catalog: map[string]token.Pos{}}
	if pass.Pkg.Name() == "faultinject" {
		collectFaultCatalog(pass, usage)
		return usage, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		checkFaultCall(pass, n.(*ast.CallExpr), usage)
	})
	return usage, nil
}

// checkFaultCall validates one call into the faultinject package.
func checkFaultCall(pass *analysis.Pass, call *ast.CallExpr, usage *FaultpointUsage) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Name() != "faultinject" {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	if idx, ok := faultPointArg[obj.Name()]; ok {
		point, lit, ok := constStringArg(pass, call, idx)
		if !ok {
			report(pass, call.Pos(), call.End(),
				"the fault point passed to faultinject.%s must be a constant string so simlint can check it against the catalog", obj.Name())
			return
		}
		usage.Used[point] = true
		if !knownFaultPoints[point] {
			report(pass, lit.Pos(), lit.End(),
				"unknown fault point %q: not in the faultinject catalog%s", point, nearestFaultPoint(point))
		}
		return
	}
	if idx, ok := faultSpecArg[obj.Name()]; ok {
		spec, lit, ok := constStringArg(pass, call, idx)
		if !ok {
			return // runtime specs (flags, env) are validated by Parse itself
		}
		if _, err := faultinject.Parse(0, spec); err != nil {
			report(pass, lit.Pos(), lit.End(), "fault spec does not parse: %v", err)
			return
		}
		for _, part := range strings.Split(spec, ",") {
			if name := strings.TrimSpace(strings.SplitN(part, ":", 2)[0]); name != "" {
				usage.Used[name] = true
			}
		}
	}
}

// constStringArg resolves call's idx-th argument to a constant string.
func constStringArg(pass *analysis.Pass, call *ast.CallExpr, idx int) (string, ast.Expr, bool) {
	if idx >= len(call.Args) {
		return "", nil, false
	}
	arg := call.Args[idx]
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", nil, false
	}
	return constant.StringVal(tv.Value), arg, true
}

// nearestFaultPoint suggests a cataloged point sharing the typo'd name's
// prefix component (e.g. "jobq.worker.chrash" → the jobq.worker.* points).
func nearestFaultPoint(name string) string {
	prefix, _, ok := strings.Cut(name, ".")
	if !ok {
		return ""
	}
	var near []string
	for _, p := range faultinject.Points() {
		if strings.HasPrefix(p.Name, prefix+".") {
			near = append(near, p.Name)
		}
	}
	if len(near) == 0 {
		return ""
	}
	sort.Strings(near)
	return "; nearby: " + strings.Join(near, ", ")
}

// collectFaultCatalog records the declaration position of each entry of the
// `catalog` composite literal in the faultinject package, so orphan
// diagnostics can anchor to the stale entry itself.
func collectFaultCatalog(pass *analysis.Pass, usage *FaultpointUsage) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "catalog" || len(vs.Values) != 1 {
				return true
			}
			cl, ok := vs.Values[0].(*ast.CompositeLit)
			if !ok {
				return true
			}
			for _, elt := range cl.Elts {
				entry, ok := elt.(*ast.CompositeLit)
				if !ok || len(entry.Elts) == 0 {
					continue
				}
				if lit, ok := entry.Elts[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if name, err := strconv.Unquote(lit.Value); err == nil {
						usage.Catalog[name] = lit.Pos()
					}
				}
			}
			return false
		})
	}
}
