package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// HotFunc locates one `simlint:hotpath` function for tools layered on the
// analyzer (cmd/allocheck matches compiler escape diagnostics against these
// ranges).
type HotFunc struct {
	Name      string // receiver-qualified, e.g. "(*MemSystem).Load"
	File      string // absolute path as resolved by the file set
	StartLine int
	EndLine   int
}

// HotallocResult is the hotalloc analyzer's per-package result.
type HotallocResult struct {
	Funcs []HotFunc
}

// Hotalloc polices functions marked `simlint:hotpath` — the per-µop fast
// paths whose allocation behaviour the 16,497 allocs/run invariant (PR 2,
// BENCH_1/BENCH_2) depends on. Two layers share the marker:
//
//   - This analyzer rejects syntactically obvious allocation sites inside a
//     hotpath body at lint time: make/new calls, map and slice literals,
//     &composite literals, function literals (a closure allocates its
//     environment), and go/defer statements. Plain value composite
//     literals (simtrace.Event{...} passed by value) are fine and not
//     flagged. A deliberate slow-path allocation — the page-walk
//     continuation that only exists on a TLB miss — carries a
//     `//simlint:allow hotalloc` marker so the exception stays visible.
//   - cmd/allocheck compiles the package with -gcflags=-m and diffs the
//     compiler's actual escape decisions inside these functions against a
//     checked-in baseline, catching the allocations no syntactic check can
//     see (escaping parameters, interface conversions, string growth).
var Hotalloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "reject obvious allocation sites (make/new, map/slice/&composite " +
		"literals, closures, go/defer) inside functions marked simlint:hotpath",
	Requires:   []*analysis.Analyzer{inspect.Analyzer},
	ResultType: reflect.TypeOf((*HotallocResult)(nil)),
	Run:        runHotalloc,
}

const hotpathMarker = "simlint:hotpath"

func runHotalloc(pass *analysis.Pass) (interface{}, error) {
	res := &HotallocResult{}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !isHotpath(decl) {
			return
		}
		start := pass.Fset.Position(decl.Pos())
		end := pass.Fset.Position(decl.Body.End())
		res.Funcs = append(res.Funcs, HotFunc{
			Name:      funcDisplayName(decl),
			File:      start.Filename,
			StartLine: start.Line,
			EndLine:   end.Line,
		})
		checkHotBody(pass, decl)
	})
	return res, nil
}

func isHotpath(decl *ast.FuncDecl) bool {
	return hasDirective(decl.Doc, hotpathMarker)
}

// funcDisplayName renders a declaration as it appears in compiler
// diagnostics: method names receiver-qualified, e.g. "(*MemSystem).Load".
func funcDisplayName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	recv := decl.Recv.List[0].Type
	var b strings.Builder
	switch t := recv.(type) {
	case *ast.StarExpr:
		b.WriteString("(*")
		b.WriteString(typeName(t.X))
		b.WriteString(")")
	default:
		b.WriteString(typeName(recv))
	}
	b.WriteString(".")
	b.WriteString(decl.Name.Name)
	return b.String()
}

func typeName(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return typeName(t.X)
	case *ast.IndexListExpr:
		return typeName(t.X)
	default:
		return "?"
	}
}

// checkHotBody reports the syntactic allocation sites inside one hotpath
// function.
func checkHotBody(pass *analysis.Pass, decl *ast.FuncDecl) {
	name := funcDisplayName(decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(pass, n.Pos(), n.Type.End(),
				"closure inside hotpath function %s allocates its environment on every execution; "+
					"hoist it to a prebuilt field or restructure the fast path around it", name)
			return false // the literal body is the slow path, not the hot one
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "new") && isBuiltin(pass, id) {
				report(pass, n.Pos(), n.End(),
					"%s inside hotpath function %s allocates per call; preallocate in the constructor or reuse a scratch buffer",
					id.Name, name)
			}
		case *ast.UnaryExpr:
			if cl, ok := allocatingCompositeLit(pass, n); ok {
				report(pass, cl.Pos(), cl.End(),
					"&composite literal inside hotpath function %s escapes per call; pool it or store by value", name)
				return false
			}
		case *ast.CompositeLit:
			if isRefLiteral(pass, n) {
				report(pass, n.Pos(), n.End(),
					"map/slice literal inside hotpath function %s allocates per call; preallocate in the constructor", name)
			}
		case *ast.GoStmt:
			report(pass, n.Pos(), n.Call.End(),
				"go statement inside hotpath function %s spawns a goroutine per call", name)
		case *ast.DeferStmt:
			report(pass, n.Pos(), n.Call.End(),
				"defer inside hotpath function %s costs a deferred-call record per call; unwind inline", name)
		}
		return true
	})
}

func isBuiltin(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// allocatingCompositeLit matches &T{...}.
func allocatingCompositeLit(pass *analysis.Pass, u *ast.UnaryExpr) (*ast.CompositeLit, bool) {
	if u.Op.String() != "&" {
		return nil, false
	}
	cl, ok := u.X.(*ast.CompositeLit)
	return cl, ok
}

// isRefLiteral reports whether a composite literal builds a map or slice
// (reference types whose backing store is heap-allocated). Value struct and
// array literals stay on the stack and are allowed.
func isRefLiteral(pass *analysis.Pass, cl *ast.CompositeLit) bool {
	t := pass.TypesInfo.TypeOf(cl)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}
