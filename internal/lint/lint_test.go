package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs over fixture packages with deliberately-broken code
// (true positives) and clean control packages (no diagnostics).

func TestDetrand(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Detrand, "detrand", "detrand_other")
}

func TestEventmono(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Eventmono, "eventmono")
}

func TestStatsreg(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Statsreg,
		"statsreg_stats", "statsreg_ok", "statsreg_report", "statsreg_noimport")
}

func TestCfgcheck(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Cfgcheck, "cfgcheck", "cfgcheck_noval")
}

func TestTracegate(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Tracegate, "tracegate", "simtrace")
}

func TestLockcheck(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Lockcheck, "lockcheck")
}

func TestCtxprop(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Ctxprop, "ctxprop_jobq", "ctxprop_other")
}

func TestFaultpoint(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Faultpoint, "faultpoint", "faultinject")
}

func TestHotalloc(t *testing.T) {
	linttest.Run(t, linttest.TestData(), lint.Hotalloc, "hotalloc")
}
