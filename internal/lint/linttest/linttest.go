// Package linttest is a self-contained analogue of
// golang.org/x/tools/go/analysis/analysistest for the simlint suite.
//
// Fixture packages live under testdata/src/<importpath>/ and embed their
// expected diagnostics as comments of the form
//
//	expr // want "regexp" "another regexp"
//
// (double- or back-quoted). Run type-checks the fixture — resolving
// fixture-local imports from testdata/src and everything else from gc
// export data produced on demand by `go list -export` — applies one
// analyzer through the same driver cmd/simlint uses, and diffs the
// reported diagnostics against the expectations line by line.
//
// The upstream analysistest cannot be used because it depends on
// go/packages, which is not vendorable from the toolchain distribution
// (see internal/lint's package documentation).
package linttest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"repro/internal/lint"
)

// TestData returns the absolute path of the calling package's testdata
// directory.
func TestData() string {
	p, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return p
}

// Run applies the analyzer to each fixture package (an import path under
// testdata/src) and checks its diagnostics against the `// want` comments
// embedded in the fixture sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := newLoader(t, filepath.Join(testdata, "src"))
	for _, path := range pkgs {
		t.Run(path, func(t *testing.T) {
			t.Helper()
			pkg := ld.load(t, path)
			diags, err := lint.RunPackage(pkg, []*analysis.Analyzer{a})
			if err != nil {
				t.Fatalf("running %s on %s: %v", a.Name, path, err)
			}
			checkDiagnostics(t, pkg, diags)
		})
	}
}

// ---------------------------------------------------------------------------
// Fixture loading

// loader resolves fixture imports from the src root and all other imports
// from gc export data fetched lazily via `go list -export`.
type loader struct {
	t       *testing.T
	srcRoot string
	fset    *token.FileSet
	cache   map[string]*lint.Package
	exports map[string]string
	gc      types.Importer
}

func newLoader(t *testing.T, srcRoot string) *loader {
	ld := &loader{
		t:       t,
		srcRoot: srcRoot,
		fset:    token.NewFileSet(),
		cache:   map[string]*lint.Package{},
		exports: map[string]string{},
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)
	return ld
}

// Import implements types.Importer over fixture-local and toolchain
// packages.
func (ld *loader) Import(path string) (*types.Package, error) {
	if ld.isFixture(path) {
		pkg, err := ld.loadFixture(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return ld.gc.Import(path)
}

func (ld *loader) isFixture(path string) bool {
	info, err := os.Stat(filepath.Join(ld.srcRoot, path))
	return err == nil && info.IsDir()
}

// load resolves a fixture package for analysis, failing the test on error.
func (ld *loader) load(t *testing.T, path string) *lint.Package {
	t.Helper()
	pkg, err := ld.loadFixture(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return pkg
}

func (ld *loader) loadFixture(path string) (*lint.Package, error) {
	if pkg, ok := ld.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(ld.srcRoot, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %s: %v", path, err)
	}
	pkg := &lint.Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       ld.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	ld.cache[path] = pkg
	return pkg, nil
}

// lookupExport feeds the gc importer, shelling out to
// `go list -export -deps` the first time an import path (and thereby its
// dependency closure) is needed.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	if file, ok := ld.exports[path]; ok {
		return os.Open(file)
	}
	cmd := exec.Command("go", "list", "-e", "-export", "-deps", "-json=ImportPath,Export", path)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export %s: %v\n%s", path, err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if lp.Export != "" {
			ld.exports[lp.ImportPath] = lp.Export
		}
	}
	file, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

// ---------------------------------------------------------------------------
// Expectation checking

// want is one expected-diagnostic regexp anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRE extracts the quoted patterns of a `// want "re" ...` comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func checkDiagnostics(t *testing.T, pkg *lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unmatched want covering the diagnostic.
func claim(wants []*want, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans the fixture's comments for expectations.
func collectWants(t *testing.T, pkg *lint.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text, -1) {
					pat := q[1 : len(q)-1]
					if q[0] == '"' {
						pat = strings.NewReplacer(`\"`, `"`, `\\`, `\`).Replace(pat)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}
