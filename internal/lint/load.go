package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
)

// Package is one loaded, parsed and type-checked package, ready to be run
// through the analyzers. It carries exactly the state analysis.Pass needs.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	Module     *Module
}

// Module mirrors the `go list` module block for the loaded package.
type Module struct {
	Path      string
	GoVersion string
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct {
		Path      string
		GoVersion string
	}
	Error *struct {
		Err string
	}
}

// Load resolves patterns (e.g. "./...") with the go command and returns the
// matched packages parsed and type-checked. Dependencies — including the
// standard library — are consumed as gc export data produced by
// `go list -export`, so loading needs no network and no GOPATH layout;
// this replaces golang.org/x/tools/go/packages, which cannot be vendored
// from the toolchain distribution.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exportFiles := map[string]string{}
	var targets []*listedPackage
	for i := range listed {
		lp := &listed[i]
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exportFiles[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	// One importer instance across all targets: dependency packages load
	// once and type identities agree between passes.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exportFiles[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList runs `go list -e -export -deps -json` over the patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var out []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// typecheck parses and type-checks one listed package.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	if len(lp.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by simlint", lp.ImportPath)
	}
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	if lp.Module != nil {
		pkg.Module = &Module{Path: lp.Module.Path, GoVersion: lp.Module.GoVersion}
	}
	return pkg, nil
}

// sizes returns the standard gc sizes for the host platform.
func sizes() types.Sizes {
	s := types.SizesFor("gc", runtime.GOARCH)
	if s == nil {
		s = types.SizesFor("gc", "amd64")
	}
	return s
}
