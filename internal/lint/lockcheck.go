package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Lockcheck enforces the `simlint:guardedby <mutex>` field annotation: a
// struct field carrying the annotation may only be read or written in a
// function that demonstrably acquires the named sibling mutex first.
//
// The check is intra-procedural and lexical, which keeps it conservative
// and predictable:
//
//   - An access `x.f` (f annotated `simlint:guardedby mu`) is legal when a
//     call `x.mu.Lock()` or `x.mu.RLock()` on the same base expression
//     appears earlier in the same function body (function literals are
//     separate bodies: a closure must take the lock itself, because it may
//     run long after its enclosing function released it).
//   - Functions whose name ends in "Locked", and functions carrying a
//     `simlint:holds <mutex>` directive, are trusted to be called with the
//     lock held — the repository's existing caller-holds convention.
//   - Composite literals (`&Job{state: ...}`) are construction, not access;
//     a value that has not been published yet needs no lock.
//
// The analyzer does not track unlocks: "Lock appears before the access"
// approximates "held at the access". That misses a Lock/Unlock/access
// sequence but never reports one falsely, and the annotation's purpose is
// catching fields reached with no locking discipline at all. Guards must be
// sibling fields of type sync.Mutex or sync.RWMutex; a field guarded by
// another struct's mutex (jobq's heap-index field, owned by the queue's
// lock) is outside the annotation grammar and stays unannotated.
var Lockcheck = &analysis.Analyzer{
	Name: "lockcheck",
	Doc: "require fields annotated `simlint:guardedby mu` to be accessed " +
		"only after the named sibling mutex is acquired in the same function",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runLockcheck,
}

const guardedByMarker = "simlint:guardedby"
const holdsMarker = "simlint:holds"

// guardedField records one annotated field and the sibling mutex guarding
// it.
type guardedField struct {
	structName string
	guard      string
}

func runLockcheck(pass *analysis.Pass) (interface{}, error) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.FuncDecl)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil {
			return
		}
		checkLockBody(pass, guarded, decl.Body, funcExemptions(decl))
	})
	return nil, nil
}

// funcExemptions returns the guard names a function declaration is trusted
// to hold on entry: every guard when the name follows the ...Locked
// convention, or the guards named by `simlint:holds` directives in its doc
// comment.
func funcExemptions(decl *ast.FuncDecl) map[string]bool {
	held := map[string]bool{}
	if strings.HasSuffix(decl.Name.Name, "Locked") {
		held["*"] = true
		return held
	}
	if decl.Doc != nil {
		for _, c := range decl.Doc.List {
			for _, name := range directiveArgs(c.Text, holdsMarker) {
				held[name] = true
			}
		}
	}
	return held
}

// directiveArgs extracts the whitespace-separated arguments of a `marker`
// directive comment, or nil when the comment is not that directive.
// The distinction between nil (no directive) and an empty, non-nil slice
// (directive with no arguments) is meaningful to callers.
func directiveArgs(comment, marker string) []string {
	rest, ok := directiveRest(comment, marker)
	if !ok {
		return nil
	}
	args := strings.Fields(rest)
	if args == nil {
		args = []string{}
	}
	return args
}

// collectGuardedFields finds every `simlint:guardedby` annotation in the
// package, validates the named guard, and maps the field object to its
// guard name.
func collectGuardedFields(pass *analysis.Pass) map[*types.Var]guardedField {
	out := map[*types.Var]guardedField{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			collectStructGuards(pass, ts.Name.Name, st, out)
			return true
		})
	}
	return out
}

func collectStructGuards(pass *analysis.Pass, structName string, st *ast.StructType, out map[*types.Var]guardedField) {
	for _, field := range st.Fields.List {
		guard, ok := fieldGuardDirective(pass, field)
		if !ok {
			continue
		}
		if !validGuard(pass, st, guard) {
			report(pass, field.Pos(), field.End(),
				"simlint:guardedby names %q, which is not a sibling sync.Mutex or sync.RWMutex field of %s",
				guard, structName)
			continue
		}
		for _, name := range field.Names {
			if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
				out[v] = guardedField{structName: structName, guard: guard}
			}
		}
	}
}

// fieldGuardDirective extracts the guard name of a field's
// `simlint:guardedby` annotation from its doc or trailing line comment.
func fieldGuardDirective(pass *analysis.Pass, field *ast.Field) (guard string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			args := directiveArgs(c.Text, guardedByMarker)
			if args == nil {
				continue
			}
			if len(args) == 0 {
				report(pass, field.Pos(), field.End(), "simlint:guardedby needs a mutex field name")
				return "", false
			}
			return args[0], true
		}
	}
	return "", false
}

// validGuard reports whether the struct declares a field named guard whose
// type is sync.Mutex or sync.RWMutex.
func validGuard(pass *analysis.Pass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			v, ok := pass.TypesInfo.Defs[name].(*types.Var)
			return ok && isSyncMutex(v.Type())
		}
	}
	return false
}

func isSyncMutex(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// lockEvent is one mutex acquisition observed in a function body.
type lockEvent struct {
	base  string // printed base expression, e.g. "q" in q.mu.Lock()
	guard string // mutex field name
	pos   token.Pos
}

// checkLockBody walks one function body (descending into nested literals
// with their own, empty lock scope) and reports guarded-field accesses with
// no preceding acquisition of the guard on the same base.
func checkLockBody(pass *analysis.Pass, guarded map[*types.Var]guardedField, body *ast.BlockStmt, held map[string]bool) {
	var locks []lockEvent
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A closure runs on its own schedule; it inherits nothing.
			checkLockBody(pass, guarded, n.Body, map[string]bool{})
			return false
		case *ast.CallExpr:
			if base, guard, ok := mutexAcquire(pass, n); ok {
				locks = append(locks, lockEvent{base: base, guard: guard, pos: n.Pos()})
			}
		case *ast.SelectorExpr:
			checkGuardedAccess(pass, guarded, n, locks, held)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// mutexAcquire matches `base.guard.Lock()` / `base.guard.RLock()` and
// returns the printed base expression and guard field name.
func mutexAcquire(pass *analysis.Pass, call *ast.CallExpr) (base, guard string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
		return "", "", false
	}
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	v, ok := fieldVar(pass, recv)
	if !ok || !isSyncMutex(v.Type()) {
		return "", "", false
	}
	return types.ExprString(recv.X), recv.Sel.Name, true
}

// fieldVar resolves a selector to the struct field object it selects, if
// any.
func fieldVar(pass *analysis.Pass, sel *ast.SelectorExpr) (*types.Var, bool) {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		v, ok := s.Obj().(*types.Var)
		return v, ok
	}
	// Package-qualified or unselected identifiers are not field accesses.
	return nil, false
}

// checkGuardedAccess reports sel when it accesses an annotated field
// without the guard demonstrably held.
func checkGuardedAccess(pass *analysis.Pass, guarded map[*types.Var]guardedField, sel *ast.SelectorExpr, locks []lockEvent, held map[string]bool) {
	v, ok := fieldVar(pass, sel)
	if !ok {
		return
	}
	gf, ok := guarded[v]
	if !ok {
		return
	}
	if held["*"] || held[gf.guard] {
		return
	}
	base := types.ExprString(sel.X)
	for _, l := range locks {
		if l.guard == gf.guard && l.base == base && l.pos < sel.Pos() {
			return
		}
	}
	report(pass, sel.Pos(), sel.End(),
		"%s.%s is guarded by %s.%s (simlint:guardedby) but no %s.%s.Lock() precedes this access in the function; "+
			"acquire the mutex, use the ...Locked naming convention, or mark the function `simlint:holds %s`",
		base, sel.Sel.Name, gf.structName, gf.guard, base, gf.guard, gf.guard)
}
