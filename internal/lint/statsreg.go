package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Statsreg keeps stats.Counters, the warm-up reset, and the report emitter
// in lockstep. A counter that is incremented during simulation but never
// reset at the warm-up boundary silently includes warm-up noise; one that
// is never emitted silently drifts out of the report. Both failure modes
// have produced irreproducible prefetching numbers in published work, so
// they are checked mechanically:
//
//   - in the package named "stats": every field of the Counters struct must
//     be covered by the Reset method, either through a whole-struct
//     assignment (`*c = Counters{...}`) or field by field;
//   - in the package named "report": every exported Counters field must be
//     referenced somewhere in the package, i.e. the report layer must emit
//     it (and the package must import stats at all).
var Statsreg = &analysis.Analyzer{
	Name: "statsreg",
	Doc: "cross-check that every stats.Counters field is reset at the warm-up " +
		"boundary and emitted by the report package",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runStatsreg,
}

func runStatsreg(pass *analysis.Pass) (interface{}, error) {
	switch pass.Pkg.Name() {
	case "stats":
		checkResetCoverage(pass)
	case "report":
		checkEmissionCoverage(pass)
	}
	return nil, nil
}

// countersStruct returns the Counters struct type declared in pkg, or nil.
func countersStruct(pkg *types.Package) *types.Struct {
	obj := pkg.Scope().Lookup("Counters")
	if obj == nil {
		return nil
	}
	st, _ := obj.Type().Underlying().(*types.Struct)
	return st
}

// checkResetCoverage verifies the Reset method of stats.Counters touches
// every field.
func checkResetCoverage(pass *analysis.Pass) {
	st := countersStruct(pass.Pkg)
	if st == nil {
		return // not the simulator's stats package
	}
	reset := findMethodDecl(pass, "Counters", "Reset")
	if reset == nil {
		report(pass, pass.Files[0].Name.Pos(), pass.Files[0].Name.End(),
			"stats.Counters has no Reset method; warm-up boundary counters cannot be cleared")
		return
	}
	recvName := receiverName(reset)
	covered := map[string]bool{}
	wholesale := false
	ast.Inspect(reset.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				// `*c = Counters{...}` (or any whole-struct assignment to
				// the receiver) covers every field at once.
				if star, ok := lhs.(*ast.StarExpr); ok && isIdent(star.X, recvName) {
					wholesale = true
				}
				markFieldWrite(lhs, recvName, covered)
			}
		case *ast.IncDecStmt:
			markFieldWrite(n.X, recvName, covered)
		}
		return true
	})
	if wholesale {
		return
	}
	for _, name := range fieldNames(st, false) {
		if !covered[name] {
			report(pass, reset.Name.Pos(), reset.Name.End(),
				"Counters.%s is not reset at the warm-up boundary; measured numbers would include warm-up noise", name)
		}
	}
}

// checkEmissionCoverage verifies the report package references every
// exported Counters field of the stats package it imports.
func checkEmissionCoverage(pass *analysis.Pass) {
	var statsPkg *types.Package
	var st *types.Struct
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() != "stats" {
			continue
		}
		if s := countersStruct(imp); s != nil {
			statsPkg, st = imp, s
			break
		}
	}
	if statsPkg == nil {
		report(pass, pass.Files[0].Name.Pos(), pass.Files[0].Name.End(),
			"package report does not import the stats package: Counters has no emitter and its fields cannot reach the report")
		return
	}

	// Index the Counters field objects, then mark every one referenced by
	// a field selection anywhere in the package.
	fieldObjs := map[*types.Var]bool{}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			fieldObjs[f] = false
		}
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		s, ok := pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return
		}
		if v, ok := s.Obj().(*types.Var); ok {
			if _, tracked := fieldObjs[v]; tracked {
				fieldObjs[v] = true
			}
		}
	})

	var missing []string
	for f, seen := range fieldObjs {
		if !seen {
			missing = append(missing, f.Name())
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		report(pass, pass.Files[0].Name.Pos(), pass.Files[0].Name.End(),
			"stats.Counters.%s is never emitted by package report; the counter silently drifts out of the report", name)
	}
}

// findMethodDecl locates the declaration of method name on (pointer to)
// type recvType in the pass's files.
func findMethodDecl(pass *analysis.Pass, recvType, name string) *ast.FuncDecl {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			t := fd.Recv.List[0].Type
			if star, ok := t.(*ast.StarExpr); ok {
				t = star.X
			}
			if isIdent(t, recvType) {
				return fd
			}
		}
	}
	return nil
}

// receiverName returns the bound receiver identifier of a method decl
// ("" for an anonymous receiver).
func receiverName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0].Name
	}
	return ""
}

// markFieldWrite records recv.Field as covered when expr writes through the
// receiver.
func markFieldWrite(expr ast.Expr, recvName string, covered map[string]bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if isIdent(sel.X, recvName) {
		covered[sel.Sel.Name] = true
	}
}

// fieldNames lists Counters field names, optionally exported fields only.
func fieldNames(st *types.Struct, exportedOnly bool) []string {
	var out []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if exportedOnly && !f.Exported() {
			continue
		}
		out = append(out, f.Name())
	}
	return out
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}
