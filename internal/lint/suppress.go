package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// suppressed reports whether the diagnostic an analyzer wants to raise at
// pos is waived by a `//simlint:allow <name>` comment on the same line or
// the line immediately above. Exceptions stay visible and greppable.
func suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	f := fileFor(pass, pos)
	if f == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	marker := "simlint:allow " + name
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, marker) {
				continue
			}
			cl := pass.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// fileFor returns the syntax file of the pass containing pos.
func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// report raises a diagnostic unless a simlint:allow marker waives it.
func report(pass *analysis.Pass, pos token.Pos, end token.Pos, format string, args ...interface{}) {
	if suppressed(pass, pos, pass.Analyzer.Name) {
		return
	}
	pass.Report(analysis.Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...)})
}
