package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// suppressed reports whether the diagnostic an analyzer wants to raise at
// pos is waived by a `//simlint:allow <name>...` comment on the same line
// or the line immediately above. One directive may waive several analyzers
// (`//simlint:allow lockcheck hotalloc`); everything after a `--` separator
// is free-form rationale. Exceptions stay visible and greppable.
func suppressed(pass *analysis.Pass, pos token.Pos, name string) bool {
	f := fileFor(pass, pos)
	if f == nil {
		return false
	}
	line := pass.Fset.Position(pos).Line
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !allowNames(c.Text)[name] {
				continue
			}
			cl := pass.Fset.Position(c.Pos()).Line
			if cl == line || cl == line-1 {
				return true
			}
		}
	}
	return false
}

// allowNames parses the analyzer names of a simlint:allow directive in a
// comment, stopping at a `--` rationale separator. A comment without the
// directive yields an empty set.
func allowNames(comment string) map[string]bool {
	const marker = "simlint:allow"
	idx := strings.Index(comment, marker)
	if idx < 0 {
		return nil
	}
	rest := comment[idx+len(marker):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // e.g. simlint:allowance
	}
	names := map[string]bool{}
	for _, f := range strings.Fields(rest) {
		if f == "--" {
			break
		}
		names[strings.TrimSuffix(f, ",")] = true
	}
	return names
}

// fileFor returns the syntax file of the pass containing pos.
func fileFor(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// report raises a diagnostic unless a simlint:allow marker waives it.
func report(pass *analysis.Pass, pos token.Pos, end token.Pos, format string, args ...interface{}) {
	if suppressed(pass, pos, pass.Analyzer.Name) {
		return
	}
	pass.Report(analysis.Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...)})
}
