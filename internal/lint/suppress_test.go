package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func TestAllowNames(t *testing.T) {
	cases := []struct {
		comment string
		name    string
		want    bool
	}{
		{"//simlint:allow detrand", "detrand", true},
		{"// simlint:allow detrand", "detrand", true},
		{"//simlint:allow lockcheck hotalloc", "hotalloc", true},
		{"//simlint:allow lockcheck hotalloc", "lockcheck", true},
		{"//simlint:allow lockcheck hotalloc", "ctxprop", false},
		{"//simlint:allow lockcheck, hotalloc", "lockcheck", true}, // trailing comma tolerated
		{"//simlint:allow detrand -- time.Now is display-only here", "detrand", true},
		{"//simlint:allow detrand -- mentions hotalloc in the rationale", "hotalloc", false},
		{"//simlint:allowance detrand", "detrand", false}, // not the directive
		{"//simlint:allow", "detrand", false},             // no names
		{"// plain comment", "detrand", false},
	}
	for _, c := range cases {
		if got := allowNames(c.comment)[c.name]; got != c.want {
			t.Errorf("allowNames(%q)[%q] = %v, want %v", c.comment, c.name, got, c.want)
		}
	}
}

func TestDirectiveRest(t *testing.T) {
	cases := []struct {
		comment, marker string
		rest            string
		ok              bool
	}{
		{"// simlint:hotpath", "simlint:hotpath", "", true},
		{"//simlint:hotpath", "simlint:hotpath", "", true},
		{"// simlint:guardedby mu", "simlint:guardedby", " mu", true},
		{"// simlint:hotpathological", "simlint:hotpath", "", false},
		{"// collects every simlint:hotpath function", "simlint:hotpath", "", false}, // prose mention
		{"/* simlint:rootctx */", "simlint:rootctx", " ", true},
	}
	for _, c := range cases {
		rest, ok := directiveRest(c.comment, c.marker)
		if ok != c.ok || (ok && rest != c.rest) {
			t.Errorf("directiveRest(%q, %q) = (%q, %v), want (%q, %v)", c.comment, c.marker, rest, ok, c.rest, c.ok)
		}
	}
}

// suppressPass builds a minimal pass over one in-memory file, enough for
// suppressed()'s Fset/Files needs.
func suppressPass(t *testing.T, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Pass{Analyzer: Detrand, Fset: fset, Files: []*ast.File{f}}
}

func TestSuppressedLinePlacement(t *testing.T) {
	src := `package p

//simlint:allow detrand
func a() {} // suppressed: directive on the line above

func gap() {}

//simlint:allow detrand

func b() {} // NOT suppressed: blank line between directive and site

func c() {} //simlint:allow detrand

func d() {} // NOT suppressed: directive is two lines up
`
	pass := suppressPass(t, src)
	at := func(line int) bool {
		file := pass.Fset.File(pass.Files[0].Pos())
		return suppressed(pass, file.LineStart(line), "detrand")
	}
	if !at(4) {
		t.Error("line 4: directive on line above must suppress")
	}
	if at(10) {
		t.Error("line 10: directive two lines above (blank between) must not suppress")
	}
	if !at(12) {
		t.Error("line 12: same-line directive must suppress")
	}
	if at(14) {
		t.Error("line 14: unrelated line must not be suppressed")
	}
	if at(4) && suppressed(pass, pass.Files[0].Pos(), "hotalloc") {
		t.Error("directive for detrand must not suppress hotalloc")
	}
}
