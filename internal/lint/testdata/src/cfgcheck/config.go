// Fixture: a sim.Config with one field Validate forgot.
package sim

import "errors"

type Config struct {
	// Label is cosmetic. simlint:novalidate
	Label string

	Depth int
	Width int // want `sim\.Config\.Width is not covered by Config\.Validate`

	cache int
}

func (c Config) Validate() error {
	if c.Depth <= 0 {
		return errors.New("bad depth")
	}
	return nil
}

func (c Config) use() int { return c.Width + c.cache }
