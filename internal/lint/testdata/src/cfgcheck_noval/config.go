// Fixture: a sim.Config with no Validate method at all.
package sim

type Config struct { // want `sim\.Config has no Validate method`
	Depth int
}
