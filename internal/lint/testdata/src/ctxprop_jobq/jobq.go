// Package jobq (fixture) exercises the ctxprop contract in a service
// package: ambient contexts, bare sleeps, and ctx-first signatures.
package jobq

import (
	"context"
	"time"
)

func Ambient() {
	_ = context.Background() // want `context.Background\(\) detaches this work`
	_ = context.TODO()       // want `context.TODO\(\) detaches this work`
}

// New owns the queue's lifecycle; its base context outlives any request.
//
// simlint:rootctx
func New() context.Context {
	ctx, cancel := context.WithCancel(context.Background()) // declared root: ok
	go func() {
		_ = context.Background() // literal inside a root shares the exemption
	}()
	_ = cancel
	return ctx
}

func Backoff() {
	time.Sleep(time.Second) // want `time.Sleep cannot be cancelled`
}

func CancellableBackoff(ctx context.Context) {
	t := time.NewTimer(time.Second)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

func Submit(ctx context.Context, id string) {} // ctx first: ok

func Misordered(id string, ctx context.Context) {} // want `context.Context must be the first parameter of Misordered`

func Waived() {
	//simlint:allow ctxprop -- metrics flush detached by design
	_ = context.Background()
}
