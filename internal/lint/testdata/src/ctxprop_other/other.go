// Package other is not a service package, so ctxprop leaves its ambient
// contexts and sleeps alone.
package other

import (
	"context"
	"time"
)

func Anything() {
	_ = context.Background()
	_ = context.TODO()
	time.Sleep(time.Millisecond)
}

func AlsoFine(id string, ctx context.Context) { _ = ctx }
