// Fixture: a determinism-critical package (name "sim") exercising every
// detrand rule.
package sim

import (
	"math/rand"
	"time"
)

func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func jitter() int {
	return rand.Intn(8) // want `rand\.Intn uses the global math/rand source`
}

func reseed(seed int64) {
	rand.Seed(seed) // want `rand\.Seed uses the global math/rand source`
}

// local generators with explicit seeds are deterministic and allowed.
func local(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(8)
}

// waived exercises the simlint:allow escape hatch.
func waived() int {
	return rand.Int() //simlint:allow detrand
}

func sum(m map[uint32]int) (s int) {
	for _, v := range m { // want `map iteration order is nondeterministic`
		s += v
	}
	return s
}

// counting iterations without binding key or value is order-insensitive.
func count(m map[uint32]int) (n int) {
	for range m {
		n++
	}
	return n
}

// slices iterate in index order; no diagnostic.
func total(xs []int) (s int) {
	for _, v := range xs {
		s += v
	}
	return s
}
