// Fixture: the same constructs outside a determinism-critical package are
// not diagnosed.
package clockutil

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() int { return rand.Intn(8) }

func Keys(m map[string]int) (out []string) {
	for k := range m {
		out = append(out, k)
	}
	return out
}
