// Fixture: scheduler.schedule call sites with monotone and non-monotone
// cycle arguments.
package sim

type event struct {
	at int64
	fn func(int64)
}

type scheduler struct {
	h   []event
	now int64
}

func (s *scheduler) schedule(at int64, fn func(int64)) {
	s.h = append(s.h, event{at, fn})
}

func (s *scheduler) reserveL2(at int64) int64 { return at }

// monotone arguments: derived from tracked time.
func (s *scheduler) good(at int64, lat int64) {
	s.schedule(at, nil)
	s.schedule(at+3, nil)
	s.schedule(s.now+lat, nil)
	s.schedule((at + 1), nil)
	s.schedule(max(s.now, at), nil)
	s.schedule(s.reserveL2(at)+2, nil)
}

// non-monotone arguments: flagged.
func (s *scheduler) bad(at int64, x int64) {
	s.schedule(at-1, nil)          // want `not recognisably derived from the tracked simulation time`
	s.schedule(0, nil)             // want `not recognisably derived from the tracked simulation time`
	s.schedule(x, nil)             // want `not recognisably derived from the tracked simulation time`
	s.schedule(min(s.now, x), nil) // want `not recognisably derived from the tracked simulation time`
	s.schedule(at*2, nil)          // want `not recognisably derived from the tracked simulation time`
}

// waived exercises the simlint:allow escape hatch.
func (s *scheduler) waived(x int64) {
	s.schedule(x, nil) //simlint:allow eventmono
}

// other schedule methods are out of scope.
type planner struct{}

func (planner) schedule(at int64, fn func(int64)) {}

func use(p planner, x int64) { p.schedule(x, nil) }
