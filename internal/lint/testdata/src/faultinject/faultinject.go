// Package faultinject is a fixture stub mirroring the signatures of
// repro/internal/faultinject. The faultpoint analyzer matches call sites by
// callee package name, while the known-point catalog and the spec grammar
// come from the real package, so these stubs carry no behaviour.
package faultinject

import "context"

type Plan struct{}

func Should(point string) bool                     { return false }
func Error(point string) error                     { return nil }
func Sleep(ctx context.Context, p string) bool     { return false }
func MaybePanic(point string)                      {}
func Parse(seed int64, spec string) (*Plan, error) { return nil, nil }
func MustParse(seed int64, spec string) *Plan      { return nil }
