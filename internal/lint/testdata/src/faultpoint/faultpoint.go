// Package faultpoint exercises fault-point and fault-spec validation
// against the real internal/faultinject catalog and grammar.
package faultpoint

import (
	"context"

	"faultinject"
)

func Points(ctx context.Context) {
	_ = faultinject.Should("jobq.worker.crash")     // cataloged: ok
	_ = faultinject.Error("simcache.compute.error") // cataloged: ok
	faultinject.MaybePanic("jobq.job.panic")        // cataloged: ok
	_ = faultinject.Sleep(ctx, "jobq.worker.stall") // point is arg 1: ok

	_ = faultinject.Should("jobq.worker.chrash") // want `unknown fault point "jobq.worker.chrash".*nearby: jobq.job.panic, jobq.worker.crash, jobq.worker.stall`
	_ = faultinject.Error("totally.made.up")     // want `unknown fault point "totally.made.up"`
}

func NonConstant(name string) {
	_ = faultinject.Should(name) // want `must be a constant string`
}

func Specs() {
	_ = faultinject.MustParse(7, "jobq.worker.crash:times=1")                   // parses: ok
	_, _ = faultinject.Parse(7, "api.respond.latency:p=0.5:after=3:delay=10ms") // parses: ok
	_ = faultinject.MustParse(7, "jobq.worker.crash:p=bogus")                   // want `fault spec does not parse`
	_ = faultinject.MustParse(7, "jobq.worker.crash:frequency=2")               // want `fault spec does not parse.*unknown key`
}

func RuntimeSpec(spec string) {
	_, _ = faultinject.Parse(0, spec) // runtime specs validated by Parse itself: ok
}

func Waived() {
	//simlint:allow faultpoint -- fixture for the catalog-miss error path
	_ = faultinject.Should("not.a.point")
}
