// Package hotalloc exercises the simlint:hotpath allocation policy:
// syntactic allocation sites inside marked functions are rejected; value
// composite literals and unmarked functions are not.
package hotalloc

type Event struct {
	Cycle int64
	Addr  uint32
}

type Ring struct {
	buf []Event
	n   uint64
}

// Emit is the per-µop fast path.
//
// simlint:hotpath
func (r *Ring) Emit(e Event) {
	e2 := Event{Cycle: e.Cycle, Addr: e.Addr} // value literal: ok
	r.buf[r.n%uint64(len(r.buf))] = e2
	r.n++
}

// Bad gathers every rejected allocation shape.
//
// simlint:hotpath
func (r *Ring) Bad(e Event) {
	f := func() {} // want `closure inside hotpath function \(\*Ring\).Bad`
	f()
	s := make([]Event, 4) // want `make inside hotpath function \(\*Ring\).Bad`
	_ = s
	p := new(Event) // want `new inside hotpath function \(\*Ring\).Bad`
	_ = p
	q := &Event{Cycle: 1} // want `&composite literal inside hotpath function \(\*Ring\).Bad`
	_ = q
	m := map[uint32]int{} // want `map/slice literal inside hotpath function \(\*Ring\).Bad`
	_ = m
	sl := []int{1, 2} // want `map/slice literal inside hotpath function \(\*Ring\).Bad`
	_ = sl
	go f()    // want `go statement inside hotpath function \(\*Ring\).Bad`
	defer f() // want `defer inside hotpath function \(\*Ring\).Bad`
}

// Slow is unmarked: it may allocate freely.
func (r *Ring) Slow() []Event {
	out := make([]Event, 0, len(r.buf))
	return append(out, r.buf...)
}

// Waived documents a deliberate slow-path closure.
//
// simlint:hotpath
func (r *Ring) Waived(miss bool) {
	if miss {
		//simlint:allow hotalloc -- continuation only built on the miss path
		cont := func() { r.n++ }
		cont()
	}
}
