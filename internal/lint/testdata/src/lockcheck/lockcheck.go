// Package lockcheck exercises the simlint:guardedby / simlint:holds
// annotations: fields accessed with and without the guard held, the
// ...Locked caller-holds convention, closures that must re-acquire, and
// malformed annotations.
package lockcheck

import "sync"

type Queue struct {
	mu      sync.Mutex
	depth   int  // simlint:guardedby mu
	closed  bool // simlint:guardedby mu
	unkempt int  // no annotation: never reported
}

type Registry struct {
	rw   sync.RWMutex
	byID map[string]int // simlint:guardedby rw
	// simlint:guardedby count
	count int // want `simlint:guardedby names "count", which is not a sibling sync.Mutex or sync.RWMutex field of Registry`
}

type NoArg struct {
	mu sync.Mutex
	// simlint:guardedby
	n int // want `simlint:guardedby needs a mutex field name`
}

func (q *Queue) Push() {
	q.mu.Lock()
	q.depth++ // locked above: ok
	q.mu.Unlock()
}

func (q *Queue) Peek() int {
	return q.depth // want `q.depth is guarded by Queue.mu`
}

func (q *Queue) Close() {
	q.closed = true // want `q.closed is guarded by Queue.mu`
}

// popLocked follows the caller-holds naming convention.
func (q *Queue) popLocked() int {
	q.depth--
	return q.depth
}

// drain is documented as running under the caller's lock.
//
// simlint:holds mu
func (q *Queue) drain() {
	for q.depth > 0 {
		q.depth--
	}
}

func (r *Registry) Lookup(id string) int {
	r.rw.RLock()
	defer r.rw.RUnlock()
	return r.byID[id] // RLock counts as acquisition: ok
}

func (q *Queue) Async() {
	q.mu.Lock()
	defer q.mu.Unlock()
	go func() {
		q.depth++ // want `q.depth is guarded by Queue.mu`
	}()
}

func (q *Queue) AsyncRelock() {
	go func() {
		q.mu.Lock()
		q.depth++ // closure takes the lock itself: ok
		q.mu.Unlock()
	}()
}

func NewQueue() *Queue {
	// Composite literals are construction, not access.
	return &Queue{depth: 0, closed: false}
}

func (q *Queue) Waived() int {
	//simlint:allow lockcheck -- read is advisory; torn values acceptable
	return q.depth
}

func TwoBases(a, b *Queue) {
	a.mu.Lock()
	a.depth++
	b.depth++ // want `b.depth is guarded by Queue.mu`
	a.mu.Unlock()
}
