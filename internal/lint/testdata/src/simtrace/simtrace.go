// Fixture: a minimal stand-in for repro/internal/simtrace. The package
// name is what tracegate keys on, and the analyzer must skip this package
// itself — the tracer's own internals call Emit on known-enabled
// receivers.
package simtrace

// Event mirrors the real event payload shape.
type Event struct {
	Cycle int64
	Kind  uint8
}

// Tracer mirrors the real ring tracer: nil means disabled.
type Tracer struct {
	events []Event
}

// Enabled is the fast-path gate.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records an event; inside the package unguarded calls are fine.
func (t *Tracer) Emit(e Event) {
	t.events = append(t.events, e)
}

// flush exercises an in-package unguarded Emit call that tracegate must
// not flag.
func (t *Tracer) flush() {
	t.Emit(Event{Kind: 0xff})
}
