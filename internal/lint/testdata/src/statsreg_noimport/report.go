// Fixture: a report package with no stats import at all — the emitter
// plumbing is missing entirely.
package report // want `does not import the stats package`

// Render has nothing to render counters with.
func Render() string { return "" }
