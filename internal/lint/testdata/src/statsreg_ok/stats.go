// Fixture: a whole-struct assignment covers every field at once.
package stats

type Counters struct {
	RetiredUops uint64
	L2Misses    uint64
	Dropped     uint64
}

// Reset preserves trace progress and zeroes everything else.
func (c *Counters) Reset() {
	retired := c.RetiredUops
	*c = Counters{RetiredUops: retired}
}
