// Fixture: a report package that emits only part of the counter block.
package report // want `stats\.Counters\.Dropped is never emitted` `stats\.Counters\.L2Misses is never emitted`

import (
	"fmt"

	stats "statsreg_stats"
)

// Emit renders the counters — but only RetiredUops reaches the output.
func Emit(c *stats.Counters) string {
	return fmt.Sprintf("retired %d", c.RetiredUops)
}
