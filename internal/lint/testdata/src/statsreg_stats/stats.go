// Fixture: a stats package whose field-by-field Reset forgets a counter.
package stats

type Counters struct {
	RetiredUops uint64
	L2Misses    uint64
	Dropped     uint64
}

// Reset zeroes the measurement counters — but forgets Dropped.
func (c *Counters) Reset() { // want `Counters\.Dropped is not reset at the warm-up boundary`
	c.RetiredUops = 0
	c.L2Misses = 0
}
