// Fixture: a simulator component emitting trace events, exercising every
// tracegate rule — guarded calls pass, unguarded ones (including an Emit
// in the else branch of the guard) are flagged.
package tracegate

import (
	simtrace "simtrace"
)

type component struct {
	tr    *simtrace.Tracer
	cycle int64
}

// guarded is the canonical call-site pattern.
func (c *component) guarded() {
	if c.tr.Enabled() {
		c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 1})
	}
}

// guardedCompound: the guard may be combined with other conditions.
func (c *component) guardedCompound(hot bool) {
	if hot && c.tr.Enabled() {
		c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 2})
	}
}

// guardedOuter: one Enabled() block may cover a whole loop of emissions.
func (c *component) guardedOuter(n int) {
	if c.tr.Enabled() {
		for i := 0; i < n; i++ {
			if i%2 == 0 {
				c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 3})
			}
		}
	}
}

// unguarded is the bug the analyzer exists to catch.
func (c *component) unguarded() {
	c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 4}) // want `simtrace\.Emit must be guarded`
}

// wrongGuard: an if statement that does not consult Enabled() is no guard.
func (c *component) wrongGuard(hot bool) {
	if hot {
		c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 5}) // want `simtrace\.Emit must be guarded`
	}
}

// elseBranch: the else branch of the guard runs exactly when tracing is
// off — flagged.
func (c *component) elseBranch() {
	if c.tr.Enabled() {
		c.cycle++
	} else {
		c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 6}) // want `simtrace\.Emit must be guarded`
	}
}

// otherEmit: Emit methods on unrelated types are none of our business.
type logger struct{}

func (logger) Emit(s string) {}

func (c *component) otherEmit() {
	var l logger
	l.Emit("fine")
}

// waived exercises the simlint:allow escape hatch.
func (c *component) waived() {
	c.tr.Emit(simtrace.Event{Cycle: c.cycle, Kind: 7}) //simlint:allow tracegate
}
