package lint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// Tracegate enforces the simtrace call-site contract: every
// (*simtrace.Tracer).Emit call must sit inside an if statement whose
// condition consults Enabled(). The guard is what makes tracing free when
// disabled — an unguarded Emit would dereference a nil tracer on the
// simulator's hot path the moment tracing is off.
var Tracegate = &analysis.Analyzer{
	Name: "tracegate",
	Doc: "require every simtrace.Emit call to be guarded by an " +
		"Enabled() fast-path check so disabled tracing stays zero-cost",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runTracegate,
}

func runTracegate(pass *analysis.Pass) (interface{}, error) {
	// The tracer's own package (and its tests) legitimately calls Emit
	// on known-enabled receivers.
	if pass.Pkg.Name() == "simtrace" {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		if !isTracerMethod(pass, call, "Emit") {
			return true
		}
		if guardedByEnabled(pass, stack) {
			return true
		}
		report(pass, call.Pos(), call.End(),
			"simtrace.Emit must be guarded by `if tr.Enabled() { ... }`; the unguarded call runs (and nil-derefs) when tracing is off")
		return true
	})
	return nil, nil
}

// isTracerMethod reports whether call invokes the named method on a
// *Tracer from a package named simtrace.
func isTracerMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil || obj.Pkg().Name() != "simtrace" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

// guardedByEnabled reports whether any enclosing if statement's condition
// contains an Enabled() call on a simtrace tracer. The guard may sit any
// number of levels out (a scan loop inside one big `if tr.Enabled()` block
// is fine) and may be combined with other conditions (&&).
func guardedByEnabled(pass *analysis.Pass, stack []ast.Node) bool {
	for i, n := range stack {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		// Only the then-branch is guarded; an Emit in the else branch of
		// an Enabled() check runs exactly when tracing is off.
		if i+1 >= len(stack) || stack[i+1] != ifStmt.Body {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && isTracerMethod(pass, call, "Enabled") {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
