// Package markov implements the 1-history Markov prefetcher of Joseph &
// Grunwald (ISCA 1997) as configured in Section 5 of the paper: a State
// Transition Table (STAB) with a fan-out of four successors per miss
// address, LRU-managed both across entries and within each entry's
// successor list. It is the stateful, training-bound comparator against
// which the stateless content prefetcher is evaluated (Table 3, Figure 11).
//
// The STAB observes the L2 demand-miss stream at cache-line granularity.
// On a miss to line M it (a) records M as a successor of the previous miss
// and (b) predicts the recorded successors of M as prefetches. Per the
// paper, the stride prefetcher is given precedence: if the stride engine
// issued for the triggering reference, the Markov prefetcher is blocked
// from issuing, reducing redundant prefetches.
package markov

import (
	"bytes"
	"container/list"
	"encoding/gob"
	"fmt"

	"repro/internal/prefetch"
)

// Fanout is the number of successor slots per STAB entry (the paper's
// configuration).
const Fanout = 4

// EntryBytes is the modelled hardware cost of one STAB entry, used to
// convert the paper's byte budgets into entry counts: a 4-byte tag, four
// 4-byte successors, and ~4 bytes of valid/LRU state.
const EntryBytes = 24

// EntriesForBudget converts a STAB byte budget (e.g. 512 KiB) to entries.
func EntriesForBudget(bytes int) int { return bytes / EntryBytes }

// Config sizes the STAB.
type Config struct {
	// MaxEntries bounds the table; 0 means unbounded (the paper's
	// markov_big upper-limit configuration).
	MaxEntries int
}

// Validate checks the table bound; New panics on what this rejects.
func (c Config) Validate() error {
	if c.MaxEntries < 0 {
		return fmt.Errorf("markov: negative entry bound %d", c.MaxEntries)
	}
	return nil
}

type entry struct {
	line uint32
	succ []uint32 // MRU-first, at most Fanout
	elem *list.Element
}

// Markov is the STAB prefetcher.
type Markov struct {
	cfg      Config
	table    map[uint32]*entry
	lru      *list.List // front = MRU entries
	lastMiss uint32
	haveLast bool
	enabled  bool

	observed   uint64
	predicted  uint64
	transition uint64
}

// New builds a Markov prefetcher.
func New(cfg Config) *Markov {
	if cfg.MaxEntries < 0 {
		panic(fmt.Sprintf("markov: negative entry bound %d", cfg.MaxEntries))
	}
	return &Markov{cfg: cfg, table: make(map[uint32]*entry), lru: list.New(), enabled: true}
}

var _ prefetch.Prefetcher = (*Markov)(nil)

// Name is the engine's registry name.
func (m *Markov) Name() string { return "markov" }

// Stream: the STAB observes the L2 demand-miss stream (Section 5).
func (m *Markov) Stream() prefetch.Stream { return prefetch.StreamL2 }

// Translate: the STAB is modelled post-translation; predictions consult
// the page map directly.
func (m *Markov) Translate() prefetch.TranslateVia { return prefetch.TranslateDirect }

// SetEnabled toggles issue; transition recording continues while disabled.
func (m *Markov) SetEnabled(enabled bool) { m.enabled = enabled }

// Counters reports the engine's lifetime counters.
func (m *Markov) Counters() prefetch.Counters {
	return prefetch.Counters{Observed: m.observed, Issued: m.predicted}
}

// Reset reverts to the just-constructed state.
func (m *Markov) Reset() {
	m.table = make(map[uint32]*entry)
	m.lru = list.New()
	m.lastMiss, m.haveLast = 0, false
	m.observed, m.predicted, m.transition = 0, 0, 0
}

// Config returns the table bound.
func (m *Markov) Config() Config { return m.cfg }

// Entries reports the current table population.
func (m *Markov) Entries() int { return len(m.table) }

func (m *Markov) touch(e *entry) {
	m.lru.MoveToFront(e.elem)
}

func (m *Markov) get(line uint32, create bool) *entry {
	if e, ok := m.table[line]; ok {
		m.touch(e)
		return e
	}
	if !create {
		return nil
	}
	if m.cfg.MaxEntries > 0 && len(m.table) >= m.cfg.MaxEntries {
		victim := m.lru.Back()
		ve := victim.Value.(*entry)
		m.lru.Remove(victim)
		delete(m.table, ve.line)
	}
	e := &entry{line: line}
	e.elem = m.lru.PushFront(e)
	m.table[line] = e
	return e
}

// ObserveMiss trains on one L2 demand miss (line address) and returns the
// predicted successor lines to prefetch. strideIssued blocks prediction
// when the stride prefetcher already issued for this reference, mirroring
// the sequential stride-then-Markov access of Section 5.
func (m *Markov) ObserveMiss(line uint32, strideIssued bool) []uint32 {
	return m.Observe(prefetch.Event{VA: line, PriorIssued: strideIssued}, nil)
}

// Observe trains on one L2 miss event and appends the predicted successor
// lines to dst. ev.PriorIssued carries the paper's stride-takes-precedence
// rule: a reference the stride engine already covered records its
// transition but predicts nothing.
func (m *Markov) Observe(ev prefetch.Event, dst []uint32) []uint32 {
	line := ev.VA
	m.observed++
	// Record the transition lastMiss -> line.
	if m.haveLast && m.lastMiss != line {
		e := m.get(m.lastMiss, true)
		inserted := false
		for i, s := range e.succ {
			if s == line { // move to MRU position within the entry
				copy(e.succ[1:i+1], e.succ[:i])
				e.succ[0] = line
				inserted = true
				break
			}
		}
		if !inserted {
			if len(e.succ) < Fanout {
				e.succ = append(e.succ, 0)
			}
			copy(e.succ[1:], e.succ[:len(e.succ)-1])
			e.succ[0] = line
		}
		m.transition++
	}
	m.lastMiss = line
	m.haveLast = true

	if ev.PriorIssued || !m.enabled {
		return dst
	}
	e := m.get(line, false)
	if e == nil || len(e.succ) == 0 {
		return dst
	}
	dst = append(dst, e.succ...)
	m.predicted += uint64(len(e.succ))
	return dst
}

// Stats returns misses observed, transitions recorded and prefetch lines
// predicted.
func (m *Markov) Stats() (observed, transitions, predicted uint64) {
	return m.observed, m.transition, m.predicted
}

func (m *Markov) String() string {
	bound := "unbounded"
	if m.cfg.MaxEntries > 0 {
		bound = fmt.Sprintf("%d entries", m.cfg.MaxEntries)
	}
	return fmt.Sprintf("markov{STAB %s, fanout %d}", bound, Fanout)
}

// EntryState is one STAB entry in a State, MRU-first in the State's Entries
// slice so the cross-entry LRU order restores exactly.
type EntryState struct {
	Line uint32
	Succ []uint32
}

// State is a checkpointable deep copy of the STAB.
type State struct {
	Entries     []EntryState // MRU-first
	LastMiss    uint32
	HaveLast    bool
	Observed    uint64
	Transitions uint64
	Predicted   uint64
}

// State snapshots the STAB, preserving both the cross-entry LRU order and
// each entry's MRU-first successor order.
func (m *Markov) State() State {
	st := State{
		LastMiss: m.lastMiss, HaveLast: m.haveLast,
		Observed: m.observed, Transitions: m.transition, Predicted: m.predicted,
	}
	for el := m.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		st.Entries = append(st.Entries, EntryState{Line: e.line, Succ: append([]uint32(nil), e.succ...)})
	}
	return st
}

// Restore overwrites the STAB with a previously captured State.
func (m *Markov) Restore(st State) error {
	if m.cfg.MaxEntries > 0 && len(st.Entries) > m.cfg.MaxEntries {
		return fmt.Errorf("markov: state has %d entries, table bound is %d", len(st.Entries), m.cfg.MaxEntries)
	}
	m.table = make(map[uint32]*entry, len(st.Entries))
	m.lru = list.New()
	for _, es := range st.Entries {
		if len(es.Succ) > Fanout {
			return fmt.Errorf("markov: entry %#x has %d successors, fanout is %d", es.Line, len(es.Succ), Fanout)
		}
		if _, dup := m.table[es.Line]; dup {
			return fmt.Errorf("markov: duplicate entry %#x in state", es.Line)
		}
		e := &entry{line: es.Line, succ: append([]uint32(nil), es.Succ...)}
		e.elem = m.lru.PushBack(e) // Entries is MRU-first; appending keeps the order
		m.table[es.Line] = e
	}
	m.lastMiss, m.haveLast = st.LastMiss, st.HaveLast
	m.observed, m.transition, m.predicted = st.Observed, st.Transitions, st.Predicted
	return nil
}

// MarshalState serialises the STAB for checkpointing (gob of State).
func (m *Markov) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m.State()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores a MarshalState payload into a same-bound engine.
func (m *Markov) UnmarshalState(data []byte) error {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	return m.Restore(st)
}
