package markov

import (
	"testing"
	"testing/quick"
)

func TestLearnsTransition(t *testing.T) {
	m := New(Config{})
	if got := m.ObserveMiss(10, false); got != nil {
		t.Fatalf("untrained prediction %v", got)
	}
	m.ObserveMiss(20, false) // records 10 -> 20
	// Second visit to 10 predicts 20.
	got := m.ObserveMiss(10, false)
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("prediction = %v, want [20]", got)
	}
}

func TestFanoutLRUWithinEntry(t *testing.T) {
	m := New(Config{})
	// Build transitions 1 -> 2, 1 -> 3, 1 -> 4, 1 -> 5, 1 -> 6.
	for _, succ := range []uint32{2, 3, 4, 5, 6} {
		m.ObserveMiss(1, false)
		m.ObserveMiss(succ, false)
	}
	got := m.ObserveMiss(1, false)
	if len(got) != Fanout {
		t.Fatalf("fanout = %d, want %d", len(got), Fanout)
	}
	// MRU-first: 6, 5, 4, 3 (2 evicted).
	want := []uint32{6, 5, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("successors = %v, want %v", got, want)
		}
	}
}

func TestRepeatTransitionMovesToMRU(t *testing.T) {
	m := New(Config{})
	for _, succ := range []uint32{2, 3, 4} {
		m.ObserveMiss(1, false)
		m.ObserveMiss(succ, false)
	}
	// Re-observe 1 -> 2: 2 must move to MRU, not duplicate.
	m.ObserveMiss(1, false)
	m.ObserveMiss(2, false)
	got := m.ObserveMiss(1, false)
	want := []uint32{2, 4, 3}
	if len(got) != 3 {
		t.Fatalf("successors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("successors = %v, want %v", got, want)
		}
	}
}

func TestStridePrecedenceBlocks(t *testing.T) {
	m := New(Config{})
	m.ObserveMiss(1, false)
	m.ObserveMiss(2, false)
	if got := m.ObserveMiss(1, true); got != nil {
		t.Fatalf("stride-blocked reference predicted %v", got)
	}
	// Training still happened for the blocked miss (2 -> 1 recorded).
	_, transitions, _ := m.Stats()
	if transitions != 2 {
		t.Fatalf("transitions = %d, want 2", transitions)
	}
}

func TestEntryBoundLRUEviction(t *testing.T) {
	m := New(Config{MaxEntries: 2})
	// Create entries for lines 1 and 2.
	m.ObserveMiss(1, false)
	m.ObserveMiss(2, false) // entry 1 created
	m.ObserveMiss(3, false) // entry 2 created
	if m.Entries() != 2 {
		t.Fatalf("entries = %d", m.Entries())
	}
	m.ObserveMiss(4, false) // entry 3 created, entry 1 evicted (LRU)
	if m.Entries() != 2 {
		t.Fatalf("entries = %d after eviction", m.Entries())
	}
	// Entry 1 must be gone: visiting 1 predicts nothing.
	if got := m.ObserveMiss(1, false); got != nil {
		t.Fatalf("evicted entry predicted %v", got)
	}
}

func TestSelfTransitionIgnored(t *testing.T) {
	m := New(Config{})
	m.ObserveMiss(5, false)
	m.ObserveMiss(5, false) // repeated miss to the same line
	if got := m.ObserveMiss(5, false); got != nil {
		t.Fatalf("self transition recorded: %v", got)
	}
}

func TestEntriesForBudget(t *testing.T) {
	// Table 3: 512 KB STAB.
	if n := EntriesForBudget(512 * 1024); n != 21845 {
		t.Fatalf("512KB = %d entries", n)
	}
	if n := EntriesForBudget(128 * 1024); n != 5461 {
		t.Fatalf("128KB = %d entries", n)
	}
}

// Property: the table never exceeds its bound, and predictions only ever
// name previously observed miss lines.
func TestBoundedAndSoundQuick(t *testing.T) {
	f := func(seq []uint8) bool {
		m := New(Config{MaxEntries: 8})
		seen := map[uint32]bool{}
		for _, s := range seq {
			line := uint32(s % 32)
			preds := m.ObserveMiss(line, false)
			for _, p := range preds {
				if !seen[p] {
					return false
				}
			}
			seen[line] = true
			if m.Entries() > 8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
