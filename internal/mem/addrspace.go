package mem

import "fmt"

// Virtual/physical layout of the simulated process. The page-table region is
// identity-mapped (VA == PA), mirroring a kernel direct map, so the hardware
// page-walker can fetch directory and table entries through the cache
// hierarchy by physical address.
const (
	// PTRegionBase is the first byte of the identity-mapped page-table
	// region. The 4 KiB page directory lives at its start.
	PTRegionBase uint32 = 0x0040_0000
	// PTRegionLimit bounds the page-table region (4 MiB is enough for a
	// full 32-bit space: 1024 table pages + 1 directory page).
	PTRegionLimit uint32 = 0x0080_0000
	// FrameBase is the first physical frame handed out for data pages.
	// Keeping it away from common heap VAs makes VA != PA in general,
	// which matters for the physically indexed L2.
	FrameBase uint32 = 0x8000_0000

	// PresentBit marks a valid PDE or PTE.
	PresentBit uint32 = 1
)

// AddressSpace couples a memory Image with an IA-32-style two-level page
// table. Virtual pages are mapped on demand to sequentially allocated
// physical frames; the directory and page-table pages are materialised in
// the Image itself so the simulated hardware walker performs real memory
// reads.
type AddressSpace struct {
	Img *Image

	root     uint32            // physical address of the page directory
	nextPT   uint32            // next free page-table page in the PT region
	nextFrm  uint32            // next free data frame
	vToFrame map[uint32]uint32 // vpage -> frame number (generator fast path)
}

// NewAddressSpace returns an address space with an empty page table rooted
// at PTRegionBase.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{
		Img:      NewImage(),
		root:     PTRegionBase,
		nextPT:   PTRegionBase + PageSize,
		nextFrm:  FrameBase >> PageShift,
		vToFrame: make(map[uint32]uint32),
	}
}

// Root returns the physical address of the page directory.
func (as *AddressSpace) Root() uint32 { return as.root }

// MappedPages reports how many virtual pages are mapped.
func (as *AddressSpace) MappedPages() int { return len(as.vToFrame) }

// MapPage ensures the virtual page containing va is mapped, allocating a
// frame and any needed page-table page, and returns the frame number.
func (as *AddressSpace) MapPage(va uint32) uint32 {
	vpage := va >> PageShift
	if f, ok := as.vToFrame[vpage]; ok {
		return f
	}
	pdeAddr, _ := as.EntryAddrs(va)
	pde := as.Img.Read32(pdeAddr)
	if pde&PresentBit == 0 {
		if as.nextPT >= PTRegionLimit {
			panic("mem: page-table region exhausted")
		}
		pde = as.nextPT | PresentBit
		as.nextPT += PageSize
		as.Img.Write32(pdeAddr, pde)
	}
	frame := as.nextFrm
	as.nextFrm++
	_, pteAddr := as.EntryAddrs(va)
	as.Img.Write32(pteAddr, frame<<PageShift|PresentBit)
	as.vToFrame[vpage] = frame
	return frame
}

// EnsureMapped maps every page overlapped by [va, va+size).
func (as *AddressSpace) EnsureMapped(va uint32, size uint32) {
	if size == 0 {
		return
	}
	first := va >> PageShift
	last := (va + size - 1) >> PageShift
	for p := first; ; p++ {
		as.MapPage(p << PageShift)
		if p == last {
			break
		}
	}
}

// Translate maps a virtual address to its physical address using the
// software map (the generator/architect view, not the timed walker).
// ok is false if the page is unmapped.
func (as *AddressSpace) Translate(va uint32) (pa uint32, ok bool) {
	f, ok := as.vToFrame[va>>PageShift]
	if !ok {
		return 0, false
	}
	return f<<PageShift | va&PageMask, true
}

// EntryAddrs returns the physical addresses of the page-directory entry and
// page-table entry for va. The PTE address is only meaningful when the PDE
// is present; the timed walker must check the PresentBit itself.
func (as *AddressSpace) EntryAddrs(va uint32) (pdeAddr, pteAddr uint32) {
	dirIdx := va >> 22
	tblIdx := (va >> PageShift) & 0x3FF
	pdeAddr = as.root + 4*dirIdx
	pde := as.Img.Read32(pdeAddr)
	pteAddr = (pde &^ PageMask) + 4*tblIdx
	return pdeAddr, pteAddr
}

// WalkEntry is one memory reference a hardware page walk performs.
type WalkEntry struct {
	Addr  uint32 // physical address of the PDE or PTE word
	Value uint32 // the word the walker reads
}

// Walk returns the two memory references of a hardware walk for va and the
// resulting frame. ok is false if either level is not present.
func (as *AddressSpace) Walk(va uint32) (refs [2]WalkEntry, frame uint32, ok bool) {
	pdeAddr, _ := as.EntryAddrs(va)
	pde := as.Img.Read32(pdeAddr)
	refs[0] = WalkEntry{Addr: pdeAddr, Value: pde}
	if pde&PresentBit == 0 {
		return refs, 0, false
	}
	_, pteAddr := as.EntryAddrs(va)
	pte := as.Img.Read32(pteAddr)
	refs[1] = WalkEntry{Addr: pteAddr, Value: pte}
	if pte&PresentBit == 0 {
		return refs, 0, false
	}
	return refs, pte >> PageShift, true
}

// Mapping is one virtual-page-to-frame association.
type Mapping struct {
	VPage uint32
	Frame uint32
}

// Mappings returns all virtual-to-frame associations in unspecified order.
func (as *AddressSpace) Mappings() []Mapping {
	out := make([]Mapping, 0, len(as.vToFrame))
	for v, f := range as.vToFrame {
		out = append(out, Mapping{VPage: v, Frame: f})
	}
	return out
}

// RestoreMapping reinstates a mapping from a checkpoint. The page-table
// words themselves arrive with the restored raw pages; this only rebuilds
// the software map and keeps the allocators ahead of restored state so the
// space remains usable for further allocation.
func (as *AddressSpace) RestoreMapping(vpage, frame uint32) {
	as.vToFrame[vpage] = frame
	if frame >= as.nextFrm {
		as.nextFrm = frame + 1
	}
	pdeAddr := as.root + 4*(vpage>>10)
	if pde := as.Img.Read32(pdeAddr); pde&PresentBit != 0 {
		if end := (pde &^ PageMask) + PageSize; end > as.nextPT {
			as.nextPT = end
		}
	}
}

func (as *AddressSpace) String() string {
	return fmt.Sprintf("mem.AddressSpace{%d mapped pages, %s}", len(as.vToFrame), as.Img)
}
