// Package mem provides the simulated 32-bit memory substrate used by the
// whole reproduction: a sparse, page-granular memory image holding the
// little-endian contents of the simulated address space, plus an IA-32-style
// two-level page table mapping virtual pages to physical frames.
//
// The content-directed prefetcher reads *actual memory contents* (cache-line
// bytes) to recognise pointers, so workloads materialise real linked data
// structures in an Image before tracing their traversal.
package mem

import (
	"encoding/binary"
	"fmt"
)

// Architectural constants for the simulated IA-32-like machine.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB pages, as in Table 1
	PageMask  = PageSize - 1
	WordSize  = 4 // address-sized words are 32 bits
)

// Image is a sparse byte-addressable memory, keyed by page. The zero value
// is an empty memory; reads of unbacked pages return zeros without
// allocating, so a sparsely touched 4 GiB space stays cheap.
type Image struct {
	pages map[uint32]*[PageSize]byte
}

// NewImage returns an empty memory image.
func NewImage() *Image {
	return &Image{pages: make(map[uint32]*[PageSize]byte)}
}

// page returns the backing page for addr, allocating it if create is set.
func (m *Image) page(addr uint32, create bool) *[PageSize]byte {
	pn := addr >> PageShift
	p := m.pages[pn]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// PageCount reports how many distinct pages are backed.
func (m *Image) PageCount() int { return len(m.pages) }

// PageNumbers returns the backed page numbers in unspecified order.
func (m *Image) PageNumbers() []uint32 {
	out := make([]uint32, 0, len(m.pages))
	for pn := range m.pages {
		out = append(out, pn)
	}
	return out
}

// Read8 returns the byte at addr.
func (m *Image) Read8(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&PageMask]
}

// Write8 stores one byte at addr.
func (m *Image) Write8(addr uint32, v byte) {
	m.page(addr, true)[addr&PageMask] = v
}

// Read32 returns the little-endian 32-bit word at addr. The word may
// straddle a page boundary.
func (m *Image) Read32(addr uint32) uint32 {
	if addr&PageMask <= PageSize-WordSize {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		off := addr & PageMask
		return binary.LittleEndian.Uint32(p[off : off+4])
	}
	var b [4]byte
	for i := range b {
		b[i] = m.Read8(addr + uint32(i))
	}
	return binary.LittleEndian.Uint32(b[:])
}

// Write32 stores a little-endian 32-bit word at addr. The word may straddle
// a page boundary.
func (m *Image) Write32(addr uint32, v uint32) {
	if addr&PageMask <= PageSize-WordSize {
		p := m.page(addr, true)
		off := addr & PageMask
		binary.LittleEndian.PutUint32(p[off:off+4], v)
		return
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	for i := range b {
		m.Write8(addr+uint32(i), b[i])
	}
}

// ReadBytes fills dst with the bytes starting at addr.
func (m *Image) ReadBytes(addr uint32, dst []byte) {
	for len(dst) > 0 {
		off := addr & PageMask
		n := PageSize - int(off)
		if n > len(dst) {
			n = len(dst)
		}
		p := m.page(addr, false)
		if p == nil {
			for i := 0; i < n; i++ {
				dst[i] = 0
			}
		} else {
			copy(dst[:n], p[off:int(off)+n])
		}
		dst = dst[n:]
		addr += uint32(n)
	}
}

// WriteBytes stores src starting at addr.
func (m *Image) WriteBytes(addr uint32, src []byte) {
	for len(src) > 0 {
		off := addr & PageMask
		n := PageSize - int(off)
		if n > len(src) {
			n = len(src)
		}
		p := m.page(addr, true)
		copy(p[off:int(off)+n], src[:n])
		src = src[n:]
		addr += uint32(n)
	}
}

// ReadLine copies the size-byte cache line containing addr into a fresh
// slice. addr is truncated down to the line boundary.
func (m *Image) ReadLine(addr uint32, size int) []byte {
	out := make([]byte, size)
	m.ReadLineInto(addr, out)
	return out
}

// ReadLineInto fills dst with the len(dst)-byte cache line containing addr,
// truncating addr down to the line boundary. It is the allocation-free form
// of ReadLine for callers that reuse a scratch buffer.
func (m *Image) ReadLineInto(addr uint32, dst []byte) {
	base := addr &^ uint32(len(dst)-1)
	m.ReadBytes(base, dst)
}

func (m *Image) String() string {
	return fmt.Sprintf("mem.Image{%d pages, %d KiB backed}", len(m.pages), len(m.pages)*PageSize/1024)
}
