package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestImageZeroOnUnbacked(t *testing.T) {
	m := NewImage()
	if got := m.Read32(0x1234_5678); got != 0 {
		t.Fatalf("unbacked Read32 = %#x, want 0", got)
	}
	if got := m.Read8(0xFFFF_FFFF); got != 0 {
		t.Fatalf("unbacked Read8 = %#x, want 0", got)
	}
	if m.PageCount() != 0 {
		t.Fatalf("reads must not allocate pages, got %d", m.PageCount())
	}
}

func TestImageWord(t *testing.T) {
	m := NewImage()
	m.Write32(0x1000, 0xDEAD_BEEF)
	if got := m.Read32(0x1000); got != 0xDEAD_BEEF {
		t.Fatalf("Read32 = %#x", got)
	}
	// Little-endian byte order.
	if got := m.Read8(0x1000); got != 0xEF {
		t.Fatalf("low byte = %#x, want 0xEF", got)
	}
	if got := m.Read8(0x1003); got != 0xDE {
		t.Fatalf("high byte = %#x, want 0xDE", got)
	}
}

func TestImageWordStraddlesPage(t *testing.T) {
	m := NewImage()
	addr := uint32(PageSize - 2)
	m.Write32(addr, 0x0102_0304)
	if got := m.Read32(addr); got != 0x0102_0304 {
		t.Fatalf("straddling Read32 = %#x", got)
	}
	if m.PageCount() != 2 {
		t.Fatalf("straddling write should back 2 pages, got %d", m.PageCount())
	}
}

func TestImageBytesRoundTrip(t *testing.T) {
	m := NewImage()
	src := make([]byte, 3*PageSize+17)
	for i := range src {
		src[i] = byte(i * 7)
	}
	base := uint32(5*PageSize - 100) // straddles several pages
	m.WriteBytes(base, src)
	dst := make([]byte, len(src))
	m.ReadBytes(base, dst)
	if !bytes.Equal(src, dst) {
		t.Fatal("ReadBytes != WriteBytes round trip")
	}
}

func TestImageReadLine(t *testing.T) {
	m := NewImage()
	m.Write32(0x2040, 0xAABB_CCDD)
	line := m.ReadLine(0x2060, 64) // same 64B line as 0x2040
	if len(line) != 64 {
		t.Fatalf("line len = %d", len(line))
	}
	got := uint32(line[0x00]) | uint32(line[0x01])<<8 | uint32(line[0x02])<<16 | uint32(line[0x03])<<24
	// 0x2040 is the line base for 0x2060 with 64-byte lines.
	if got != 0xAABB_CCDD {
		t.Fatalf("line word = %#x", got)
	}
}

func TestImageWordRoundTripQuick(t *testing.T) {
	m := NewImage()
	f := func(addr, v uint32) bool {
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestImageOverlappingWritesLastWins(t *testing.T) {
	m := NewImage()
	m.Write32(0x100, 0x1111_1111)
	m.Write8(0x101, 0xFF)
	if got := m.Read32(0x100); got != 0x1111_FF11 {
		t.Fatalf("Read32 after byte poke = %#x", got)
	}
}

func TestAddressSpaceMapTranslate(t *testing.T) {
	as := NewAddressSpace()
	va := uint32(0x1000_2345)
	if _, ok := as.Translate(va); ok {
		t.Fatal("unmapped page must not translate")
	}
	as.MapPage(va)
	pa, ok := as.Translate(va)
	if !ok {
		t.Fatal("mapped page must translate")
	}
	if pa&PageMask != va&PageMask {
		t.Fatalf("page offset not preserved: pa=%#x va=%#x", pa, va)
	}
	if pa>>PageShift == va>>PageShift {
		t.Fatalf("expected VA != PA frame for first mapping, got identical %#x", pa)
	}
}

func TestAddressSpaceWalkMatchesTranslate(t *testing.T) {
	as := NewAddressSpace()
	vas := []uint32{0x1000_0000, 0x1000_1000, 0xFF00_0010, 0x0000_3000, 0x7FFF_F000}
	for _, va := range vas {
		as.MapPage(va)
	}
	for _, va := range vas {
		want, _ := as.Translate(va)
		refs, frame, ok := as.Walk(va)
		if !ok {
			t.Fatalf("walk failed for %#x", va)
		}
		if got := frame<<PageShift | va&PageMask; got != want {
			t.Fatalf("walk(%#x) = %#x, translate = %#x", va, got, want)
		}
		// Both walk references must land inside the identity-mapped
		// page-table region.
		for _, r := range refs {
			if r.Addr < PTRegionBase || r.Addr >= PTRegionLimit {
				t.Fatalf("walk ref %#x outside PT region", r.Addr)
			}
		}
	}
}

func TestAddressSpaceWalkUnmapped(t *testing.T) {
	as := NewAddressSpace()
	as.MapPage(0x1000_0000) // populate one directory entry
	if _, _, ok := as.Walk(0x2000_0000); ok {
		t.Fatal("walk of unmapped directory entry must fail")
	}
	if _, _, ok := as.Walk(0x1040_0000); ok {
		// Same directory entry region (one PDE covers 4 MiB) but PTE absent.
		t.Fatal("walk of unmapped PTE must fail")
	}
}

func TestAddressSpaceMapIdempotent(t *testing.T) {
	as := NewAddressSpace()
	f1 := as.MapPage(0x5000_0000)
	f2 := as.MapPage(0x5000_0abc)
	if f1 != f2 {
		t.Fatalf("same page mapped to two frames: %d, %d", f1, f2)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d, want 1", as.MappedPages())
	}
}

func TestAddressSpaceEnsureMapped(t *testing.T) {
	as := NewAddressSpace()
	as.EnsureMapped(0x1000_0FF0, 0x20) // straddles a page boundary
	if as.MappedPages() != 2 {
		t.Fatalf("MappedPages = %d, want 2", as.MappedPages())
	}
	as.EnsureMapped(0x2000_0000, 3*PageSize)
	if as.MappedPages() != 5 {
		t.Fatalf("MappedPages = %d, want 5", as.MappedPages())
	}
}

func TestDistinctPagesDistinctFrames(t *testing.T) {
	as := NewAddressSpace()
	seen := map[uint32]uint32{}
	for i := uint32(0); i < 64; i++ {
		va := 0x1000_0000 + i*PageSize
		f := as.MapPage(va)
		if prev, dup := seen[f]; dup {
			t.Fatalf("frame %d reused by %#x and %#x", f, prev, va)
		}
		seen[f] = va
	}
}
