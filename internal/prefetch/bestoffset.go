// Best-offset prefetcher (Michaud, HPCA 2016), the strongest of the simple
// spatial engines surveyed for server-class workloads in arXiv 2009.00715:
// instead of assuming the next line (+1) is wanted, the engine *learns*
// which single line offset O best predicts the miss stream, then prefetches
// X+O on every miss to X. Learning is a scoring tournament: a small
// recent-requests (RR) table remembers recent miss lines; each miss tests
// one candidate offset round-robin — if X−O is in the RR table, a prefetch
// from X−O with offset O would have covered this miss, so O scores a
// point. At the end of a round (or when a score saturates) the best-scoring
// offset becomes the active one; a round with no convincing winner turns
// prefetch off until the next round, which keeps the engine quiet on
// streams it cannot help (the survey's "prefetch-hostile" server traces).
package prefetch

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// bestOffsetLineBytes is the cache-line granularity offsets are expressed
// in; it matches the simulator's 64-byte lines.
const bestOffsetLineBytes = 64

// bestOffsetCandidates is the fixed tournament list, in line units.
// Michaud draws candidates from numbers with prime factors ≤ 5; a few
// negative offsets cover descending scans.
var bestOffsetCandidates = []int32{1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, -1, -2, -3, -4}

// BestOffsetConfig sizes the learner.
type BestOffsetConfig struct {
	// RRSize is the number of recent-request entries (direct-mapped by
	// line address). Must be a power of two.
	RRSize int
	// RoundMisses is the scoring-round length: after this many misses the
	// best-scoring offset is (re)selected and scores reset.
	RoundMisses int
	// ScoreMax ends a round early when any offset reaches it.
	ScoreMax int
	// BadScore is the minimum winning score; a round whose best offset
	// scores below it disables prefetch for the next round.
	BadScore int
	// Degree is how many multiples of the learned offset each miss
	// prefetches.
	Degree int
}

// Validate checks the learner geometry; NewBestOffset panics on what this
// rejects.
func (c BestOffsetConfig) Validate() error {
	if c.RRSize <= 0 || c.RRSize&(c.RRSize-1) != 0 {
		return fmt.Errorf("prefetch: bestoffset RR size %d not a positive power of two", c.RRSize)
	}
	if c.RoundMisses <= 0 || c.ScoreMax <= 0 || c.BadScore <= 0 || c.Degree <= 0 {
		return fmt.Errorf("prefetch: bad bestoffset config %+v", c)
	}
	return nil
}

// DefaultBestOffsetConfig mirrors Michaud's evaluated point scaled to this
// simulator's short runs: 64 RR entries, 256-miss rounds, saturation at 31.
var DefaultBestOffsetConfig = BestOffsetConfig{
	RRSize: 64, RoundMisses: 256, ScoreMax: 31, BadScore: 2, Degree: 1,
}

// BestOffset is the best-offset spatial prefetcher.
type BestOffset struct {
	cfg     BestOffsetConfig
	rr      []uint32 // direct-mapped recent miss lines; 0 = empty
	scores  []int32  // parallel to bestOffsetCandidates
	enabled bool

	testIdx int   // next candidate to test (round-robin)
	misses  int   // misses into the current round
	current int32 // active offset in lines; 0 = prefetch off

	observed uint64
	issued   uint64
}

// NewBestOffset builds a best-offset learner. Panics on invalid geometry.
func NewBestOffset(cfg BestOffsetConfig) *BestOffset {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &BestOffset{
		cfg:     cfg,
		rr:      make([]uint32, cfg.RRSize),
		scores:  make([]int32, len(bestOffsetCandidates)),
		enabled: true,
	}
}

var _ Prefetcher = (*BestOffset)(nil)

// Config returns the learner geometry.
func (b *BestOffset) Config() BestOffsetConfig { return b.cfg }

// Name is the engine's registry name.
func (b *BestOffset) Name() string { return "bestoffset" }

// Stream: offsets are learned from the L2 demand-miss stream.
func (b *BestOffset) Stream() Stream { return StreamL2 }

// Translate: modelled post-translation; predictions consult the page map.
func (b *BestOffset) Translate() TranslateVia { return TranslateDirect }

// SetEnabled toggles issue; the scoring tournament continues while
// disabled.
func (b *BestOffset) SetEnabled(enabled bool) { b.enabled = enabled }

// Counters reports the engine's lifetime counters.
func (b *BestOffset) Counters() Counters {
	return Counters{Observed: b.observed, Issued: b.issued}
}

// Reset reverts to the just-constructed state.
func (b *BestOffset) Reset() {
	for i := range b.rr {
		b.rr[i] = 0
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx, b.misses, b.current = 0, 0, 0
	b.observed, b.issued = 0, 0
}

func (b *BestOffset) String() string {
	return fmt.Sprintf("bestoffset{%d offsets, rr %d, round %d}",
		len(bestOffsetCandidates), b.cfg.RRSize, b.cfg.RoundMisses)
}

// Current reports the active offset in line units (0 = prefetch off) —
// exposed for tests and telemetry.
func (b *BestOffset) Current() int32 { return b.current }

func (b *BestOffset) rrSlot(line uint32) int {
	return int((line / bestOffsetLineBytes) & uint32(b.cfg.RRSize-1))
}

// endRound crowns the round's winner (first maximum wins ties) or turns
// prefetch off when nothing scored convincingly, then resets the
// tournament.
func (b *BestOffset) endRound() {
	bestIdx, bestScore := 0, int32(-1)
	for i, s := range b.scores {
		if s > bestScore {
			bestIdx, bestScore = i, s
		}
	}
	if bestScore >= int32(b.cfg.BadScore) {
		b.current = bestOffsetCandidates[bestIdx]
	} else {
		b.current = 0
	}
	for i := range b.scores {
		b.scores[i] = 0
	}
	b.testIdx, b.misses = 0, 0
}

// Observe scores one candidate offset against the recent-request table,
// records the miss line, and — once an offset has won a round — appends
// the offset-projected prefetch lines to dst.
//
// simlint:hotpath
func (b *BestOffset) Observe(ev Event, dst []uint32) []uint32 {
	b.observed++
	line := ev.VA

	// Score one candidate per miss, round-robin: if line−O was recently
	// missed, offset O would have covered this miss.
	off := bestOffsetCandidates[b.testIdx]
	base := line - uint32(off*bestOffsetLineBytes)
	if b.rr[b.rrSlot(base)] == base {
		b.scores[b.testIdx]++
	}
	saturated := int(b.scores[b.testIdx]) >= b.cfg.ScoreMax
	b.testIdx++
	if b.testIdx == len(bestOffsetCandidates) {
		b.testIdx = 0
	}
	b.misses++
	if saturated || b.misses >= b.cfg.RoundMisses {
		b.endRound()
	}

	b.rr[b.rrSlot(line)] = line

	if b.current == 0 || !b.enabled {
		return dst
	}
	for k := 1; k <= b.cfg.Degree; k++ {
		dst = append(dst, line+uint32(b.current*int32(k)*bestOffsetLineBytes))
		b.issued++
	}
	return dst
}

// BestOffsetState is a checkpointable deep copy of the learner.
type BestOffsetState struct {
	RR       []uint32
	Scores   []int32
	TestIdx  int
	Misses   int
	Current  int32
	Observed uint64
	Issued   uint64
}

// State snapshots the learner.
func (b *BestOffset) State() BestOffsetState {
	return BestOffsetState{
		RR:      append([]uint32(nil), b.rr...),
		Scores:  append([]int32(nil), b.scores...),
		TestIdx: b.testIdx, Misses: b.misses, Current: b.current,
		Observed: b.observed, Issued: b.issued,
	}
}

// Restore overwrites the learner with a previously captured state. The
// learner must have the geometry the state was captured from.
func (b *BestOffset) Restore(st BestOffsetState) error {
	if len(st.RR) != len(b.rr) || len(st.Scores) != len(b.scores) {
		return fmt.Errorf("prefetch: bestoffset state rr/scores %d/%d, want %d/%d (geometry mismatch)",
			len(st.RR), len(st.Scores), len(b.rr), len(b.scores))
	}
	if st.TestIdx < 0 || st.TestIdx >= len(b.scores) {
		return fmt.Errorf("prefetch: bestoffset state test index %d out of range", st.TestIdx)
	}
	copy(b.rr, st.RR)
	copy(b.scores, st.Scores)
	b.testIdx, b.misses, b.current = st.TestIdx, st.Misses, st.Current
	b.observed, b.issued = st.Observed, st.Issued
	return nil
}

// MarshalState serialises the learner for checkpointing (gob of
// BestOffsetState).
func (b *BestOffset) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b.State()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores a MarshalState payload into a same-geometry
// engine.
func (b *BestOffset) UnmarshalState(data []byte) error {
	var st BestOffsetState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	return b.Restore(st)
}
