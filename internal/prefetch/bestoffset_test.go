package prefetch

import (
	"testing"
	"testing/quick"
)

func TestBestOffsetLearnsSequentialStream(t *testing.T) {
	cfg := BestOffsetConfig{RRSize: 64, RoundMisses: 64, ScoreMax: 31, BadScore: 2, Degree: 1}
	b := NewBestOffset(cfg)
	va := uint32(0x1000_0000)
	// Learning phase: no issues until a round completes. The RoundMisses-th
	// miss closes the round, selects the winner, and issues for itself.
	for i := 0; i < cfg.RoundMisses-1; i++ {
		if got := b.Observe(Event{VA: va}, nil); len(got) != 0 {
			t.Fatalf("miss %d issued %v before any round completed", i, got)
		}
		va += 64
	}
	// From the round-closing miss onward every miss prefetches the next line.
	for i := 0; i < 8; i++ {
		got := b.Observe(Event{VA: va}, nil)
		if len(got) != 1 || got[0] != va+64 {
			t.Fatalf("miss %d issued %v, want [%#x]", i, got, va+64)
		}
		va += 64
	}
	if b.Current() != 1 {
		t.Fatalf("sequential stream selected offset %d, want 1", b.Current())
	}
}

func TestBestOffsetEarlySaturation(t *testing.T) {
	cfg := BestOffsetConfig{RRSize: 64, RoundMisses: 10_000, ScoreMax: 2, BadScore: 1, Degree: 1}
	b := NewBestOffset(cfg)
	va := uint32(0x2000_0000)
	// ScoreMax 2 ends the round as soon as any offset scores twice, long
	// before RoundMisses.
	for i := 0; i < 3*len(bestOffsetCandidates); i++ {
		b.Observe(Event{VA: va}, nil)
		va += 64
		if b.Current() == 1 {
			return
		}
	}
	t.Fatalf("saturation never selected an offset (current %d)", b.Current())
}

func TestBestOffsetHostileStreamStaysOff(t *testing.T) {
	cfg := BestOffsetConfig{RRSize: 64, RoundMisses: 32, ScoreMax: 31, BadScore: 2, Degree: 1}
	b := NewBestOffset(cfg)
	// Jumps of 1000 lines: no candidate offset (|O| ≤ 16) ever matches,
	// so every round ends winnerless and the engine stays silent.
	va := uint32(0x3000_0000)
	for i := 0; i < 10*cfg.RoundMisses; i++ {
		if got := b.Observe(Event{VA: va}, nil); len(got) != 0 {
			t.Fatalf("hostile stream issued %v at miss %d", got, i)
		}
		va += 1000 * 64
	}
	if c := b.Counters(); c.Issued != 0 {
		t.Fatalf("hostile stream counted %d issues", c.Issued)
	}
}

func TestBestOffsetNegativeOffset(t *testing.T) {
	cfg := BestOffsetConfig{RRSize: 64, RoundMisses: 64, ScoreMax: 31, BadScore: 2, Degree: 1}
	b := NewBestOffset(cfg)
	va := uint32(0x4000_0000)
	for i := 0; i < 2*cfg.RoundMisses; i++ {
		b.Observe(Event{VA: va}, nil)
		va -= 64
	}
	if b.Current() != -1 {
		t.Fatalf("descending stream selected offset %d, want -1", b.Current())
	}
}

// Property: any learned offset projects predictions exactly current*k
// lines ahead, and per-miss issue counts never exceed Degree.
func TestBestOffsetProjectionQuick(t *testing.T) {
	f := func(vas []uint32) bool {
		cfg := BestOffsetConfig{RRSize: 32, RoundMisses: 16, ScoreMax: 8, BadScore: 1, Degree: 2}
		b := NewBestOffset(cfg)
		var issued uint64
		for _, va := range vas {
			before := b.Current()
			got := b.Observe(Event{VA: va}, nil)
			if len(got) > cfg.Degree {
				return false
			}
			for k, g := range got {
				if g != va+uint32(before*int32(k+1)*64) {
					return false
				}
			}
			issued += uint64(len(got))
		}
		c := b.Counters()
		return c.Observed == uint64(len(vas)) && c.Issued == issued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
