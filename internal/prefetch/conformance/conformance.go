// Package conformance is the behavioural contract of the prefetcher zoo:
// a table-driven harness every engine in internal/prefetch/registry must
// pass. The checks encode the properties the simulator's byte-identical-
// counters guarantee rests on — determinism, reset-to-fresh equivalence,
// monotone counters, silence while disabled, and state round-trips — so a
// new engine gets its correctness scaffolding for free the moment it
// registers. The harness is a library (like internal/lint/linttest), not a
// test file, so engine packages and the registry can both drive it.
package conformance

import (
	"encoding/binary"
	"testing"

	"repro/internal/prefetch"
)

// rng is splitmix64 — a tiny deterministic generator so streams never
// depend on math/rand's global state or Go-version shuffles.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// lineBytes matches the simulator's line size.
const lineBytes = 64

// Events builds a deterministic synthetic miss stream shaped for one
// engine's declared stream kind. The stream interleaves three phases in
// 64-event blocks so every zoo entrant has something to chew on:
//
//   - strided: one PC walking memory at a constant 3-line stride (trains
//     stride RPTs, delta predictors, and offset learners);
//   - looped: a repeating 16-address tour (trains address-keyed Markov
//     successor tables);
//   - noise: pseudo-random lines (exercises replacement and confirms
//     engines stay deterministic under pressure).
//
// For fill-stream engines each event carries a synthetic 64-byte line
// whose even-valued words live in the trigger's address region, so a
// content scanner with the paper's default 8.4.1.2 heuristic finds
// candidates. Every 7th event sets PriorIssued, exercising precedence
// blocking.
func Events(kind prefetch.Stream, seed uint64, n int) []prefetch.Event {
	r := rng{s: seed}
	evs := make([]prefetch.Event, n)
	loopAddrs := make([]uint32, 16)
	for j := range loopAddrs {
		loopAddrs[j] = 0x2000_0000 + uint32(j)*41*lineBytes
	}
	for i := 0; i < n; i++ {
		var pc, va uint32
		switch (i / 64) % 3 {
		case 0: // strided
			pc = 0x0000_4400
			va = 0x1000_0000 + uint32(i)*3*lineBytes
		case 1: // looped
			pc = 0x0000_4800
			va = loopAddrs[i%len(loopAddrs)]
		default: // noise
			pc = 0x0000_4C00 + uint32(r.next()%8)*4
			va = 0x3000_0000 + uint32(r.next())&0x00FF_FFC0
		}
		ev := prefetch.Event{PC: pc, VA: va, PriorIssued: i%7 == 0}
		switch kind {
		case prefetch.StreamL2:
			ev.VA &^= lineBytes - 1
		case prefetch.StreamFill:
			ev.TrigVA = va
			ev.VA = va &^ (lineBytes - 1)
			ev.Depth = i % 3
			ev.Data = fillLine(&r, va)
		}
		evs[i] = ev
	}
	return evs
}

// fillLine fabricates one cache line containing pointer-shaped words: even
// addresses sharing the trigger's top byte, interleaved with odd junk the
// align heuristic must reject.
func fillLine(r *rng, trigVA uint32) []byte {
	line := make([]byte, lineBytes)
	region := trigVA & 0xFF00_0000
	for w := 0; w < lineBytes/4; w++ {
		var word uint32
		if w%2 == 0 {
			word = region | (uint32(r.next()) & 0x00FF_FFFE)
		} else {
			word = uint32(r.next()) | 1
		}
		binary.LittleEndian.PutUint32(line[w*4:], word)
	}
	return line
}

// replay feeds evs through e, returning the flat issue sequence and the
// per-event issue counts (together they pin both the addresses and their
// grouping).
func replay(e prefetch.Prefetcher, evs []prefetch.Event) (issues []uint32, perEvent []int) {
	var buf []uint32
	perEvent = make([]int, 0, len(evs))
	for _, ev := range evs {
		buf = e.Observe(ev, buf[:0])
		issues = append(issues, buf...)
		perEvent = append(perEvent, len(buf))
	}
	return issues, perEvent
}

func sameTrace(t *testing.T, what string, aIssues, bIssues []uint32, aPer, bPer []int) {
	t.Helper()
	if len(aIssues) != len(bIssues) {
		t.Fatalf("%s: issue counts diverge: %d vs %d", what, len(aIssues), len(bIssues))
	}
	for i := range aIssues {
		if aIssues[i] != bIssues[i] {
			t.Fatalf("%s: issue %d diverges: %#x vs %#x", what, i, aIssues[i], bIssues[i])
		}
	}
	for i := range aPer {
		if aPer[i] != bPer[i] {
			t.Fatalf("%s: event %d issued %d vs %d", what, i, aPer[i], bPer[i])
		}
	}
}

// streamLen is sized to cover several best-offset scoring rounds and
// multiple loop tours per phase.
const streamLen = 4096

// Suite runs the full conformance contract against engines produced by
// factory. factory must return a fresh, identically-configured engine on
// every call; the suite never mutates one engine from two subtests.
func Suite(t *testing.T, factory func() prefetch.Prefetcher) {
	probe := factory()
	if probe.Name() == "" || probe.String() == "" {
		t.Fatalf("engine must have a non-empty Name and String")
	}
	evs := Events(probe.Stream(), 0x5DEECE66D, streamLen)

	t.Run("determinism", func(t *testing.T) {
		a, b := factory(), factory()
		ai, ap := replay(a, evs)
		bi, bp := replay(b, evs)
		sameTrace(t, "twin engines", ai, bi, ap, bp)
		if a.Counters() != b.Counters() {
			t.Fatalf("twin engines diverge on counters: %+v vs %+v", a.Counters(), b.Counters())
		}
		if len(ai) == 0 {
			t.Fatalf("engine issued nothing across %d events — the conformance stream must exercise every entrant", streamLen)
		}
	})

	t.Run("reset", func(t *testing.T) {
		fresh := factory()
		fi, fp := replay(fresh, evs)

		e := factory()
		replay(e, evs)
		e.Reset()
		if c := e.Counters(); c != (prefetch.Counters{}) {
			t.Fatalf("counters survive Reset: %+v", c)
		}
		ri, rp := replay(e, evs)
		sameTrace(t, "post-Reset replay vs fresh engine", fi, ri, fp, rp)
		if fresh.Counters() != e.Counters() {
			t.Fatalf("post-Reset counters diverge from fresh: %+v vs %+v", fresh.Counters(), e.Counters())
		}
	})

	t.Run("disabled", func(t *testing.T) {
		e := factory()
		e.SetEnabled(false)
		issues, _ := replay(e, evs)
		if len(issues) != 0 {
			t.Fatalf("disabled engine issued %d prefetches", len(issues))
		}
		c := e.Counters()
		if c.Issued != 0 {
			t.Fatalf("disabled engine counted %d issues", c.Issued)
		}
		if c.Observed != uint64(len(evs)) {
			t.Fatalf("disabled engine observed %d of %d events (training must continue)", c.Observed, len(evs))
		}
	})

	t.Run("counters-monotone", func(t *testing.T) {
		e := factory()
		var prev prefetch.Counters
		var buf []uint32
		for i, ev := range evs {
			buf = e.Observe(ev, buf[:0])
			c := e.Counters()
			if c.Observed < prev.Observed || c.Issued < prev.Issued {
				t.Fatalf("counters regressed at event %d: %+v after %+v", i, c, prev)
			}
			if c.Observed != prev.Observed+1 {
				t.Fatalf("event %d advanced Observed by %d, want exactly 1", i, c.Observed-prev.Observed)
			}
			if c.Issued != prev.Issued+uint64(len(buf)) {
				t.Fatalf("event %d issued %d but advanced Issued by %d", i, len(buf), c.Issued-prev.Issued)
			}
			prev = c
		}
	})

	t.Run("state-roundtrip", func(t *testing.T) {
		half := len(evs) / 2
		orig := factory()
		replay(orig, evs[:half])
		blob, err := orig.MarshalState()
		if err != nil {
			t.Fatalf("MarshalState: %v", err)
		}
		restored := factory()
		if err := restored.UnmarshalState(blob); err != nil {
			t.Fatalf("UnmarshalState: %v", err)
		}
		if orig.Counters() != restored.Counters() {
			t.Fatalf("restored counters diverge: %+v vs %+v", orig.Counters(), restored.Counters())
		}
		oi, op := replay(orig, evs[half:])
		ri, rp := replay(restored, evs[half:])
		sameTrace(t, "restored engine second half", oi, ri, op, rp)
		if orig.Counters() != restored.Counters() {
			t.Fatalf("post-restore counters diverge: %+v vs %+v", orig.Counters(), restored.Counters())
		}
	})
}
