// The Prefetcher interface is the "prefetcher zoo" contract (ROADMAP item
// 3): every engine — the stride baseline, the Joseph & Grunwald Markov
// STAB, the content-directed prefetcher, and the newer entrants in this
// package — observes miss (or fill) events and appends the virtual
// addresses it wants prefetched. The memory system drives engines only
// through this interface; internal/prefetch/registry names them, and
// internal/prefetch/conformance holds the behavioural contract every
// registered engine must pass.
package prefetch

// Stream identifies which event stream an engine trains on. The memory
// system delivers events from exactly the declared stream, preserving each
// engine's original observation point (stride: L1 misses; Markov and the
// delta/offset entrants: L2 demand misses; content: data-carrying fills).
type Stream uint8

const (
	// StreamL1 is the per-reference L1 miss stream; events carry the load
	// PC and the full effective virtual address.
	StreamL1 Stream = iota
	// StreamL2 is the L2 demand-miss stream at cache-line granularity;
	// events carry the missing line's virtual base address.
	StreamL2
	// StreamFill is the data-carrying fill stream; events additionally
	// carry the filled line's bytes for content inspection.
	StreamFill
)

func (s Stream) String() string {
	switch s {
	case StreamL1:
		return "l1-miss"
	case StreamL2:
		return "l2-miss"
	case StreamFill:
		return "fill"
	default:
		return "unknown"
	}
}

// TranslateVia identifies how an engine's predicted virtual addresses
// become physical before entering the memory system.
type TranslateVia uint8

const (
	// TranslateTLB routes predictions through the DTLB; a prediction
	// whose page is not resident is dropped (no speculative walk). This
	// is the stride engine's behaviour in the paper's baseline machine.
	TranslateTLB TranslateVia = iota
	// TranslateDirect consults the software page map directly, modelling
	// a physically-indexed table (the Markov STAB) or an engine operating
	// post-translation; unmapped predictions are dropped.
	TranslateDirect
)

// Event is one observation delivered to an engine. Which fields are
// populated depends on the engine's declared Stream:
//
//   - StreamL1: PC and VA (full effective address).
//   - StreamL2: VA (line base) and PriorIssued.
//   - StreamFill: VA (filled line base), TrigVA, Depth, and Data.
type Event struct {
	// PC is the program counter of the triggering reference.
	PC uint32
	// VA is the miss address: the full effective address on the L1
	// stream, the line base on the L2 and fill streams.
	VA uint32
	// TrigVA is the effective address of the request that caused a fill
	// (fill stream only).
	TrigVA uint32
	// Depth is the request depth the fill arrived with (fill stream
	// only; 0 for demand fills).
	Depth int
	// PriorIssued reports whether a higher-precedence engine already
	// issued a prefetch for this reference — the paper's stride-blocks-
	// Markov rule, generalised to the engine chain order.
	PriorIssued bool
	// Data is the filled line's bytes (fill stream only). Engines must
	// not retain it past the Observe call.
	Data []byte
}

// Counters is the uniform lifetime-counter block every engine exports.
// Both fields are monotone; the conformance suite enforces it.
type Counters struct {
	// Observed is the number of events the engine has been shown (one
	// per Observe call).
	Observed uint64
	// Issued is the number of prefetch addresses the engine has
	// predicted while enabled.
	Issued uint64
}

// Prefetcher is the engine-neutral contract. Implementations must be
// deterministic: the same construction parameters and event sequence must
// produce the identical issue sequence (the simulator's byte-identical-
// counters guarantee rests on it).
type Prefetcher interface {
	// Name is the engine's registry name ("stride", "markov", ...).
	Name() string
	// Stream declares which event stream the engine observes.
	Stream() Stream
	// Translate declares how predictions are translated before issue.
	Translate() TranslateVia
	// Observe trains on one event and appends the virtual addresses to
	// prefetch to dst, returning the extended slice. A disabled engine
	// still trains but appends nothing. Implementations must not retain
	// dst or ev.Data.
	Observe(ev Event, dst []uint32) []uint32
	// SetEnabled toggles issue (training continues while disabled). The
	// toggle is a harness affordance — it is not part of the machine
	// state and is not checkpointed.
	SetEnabled(enabled bool)
	// Reset reverts the engine to its just-constructed state: tables
	// cleared, counters zeroed. A post-Reset replay must match a fresh
	// engine's exactly.
	Reset()
	// Counters reports the engine's lifetime counters.
	Counters() Counters
	// MarshalState serialises the engine's mutable state for
	// checkpointing; UnmarshalState restores it into an engine built
	// with the same configuration. Restored engines must replay
	// identically to the original.
	MarshalState() ([]byte, error)
	UnmarshalState(data []byte) error
	// String renders the engine and its geometry for config names.
	String() string
}
