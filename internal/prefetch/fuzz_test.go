package prefetch

import (
	"encoding/binary"
	"fmt"
	"testing"
)

// fuzzEngines builds one fresh instance of every interface-native engine in
// this package, with small geometries so fuzz inputs hit replacement and
// round boundaries quickly.
func fuzzEngines() []Prefetcher {
	return []Prefetcher{
		NewStride(StrideConfig{TableEntries: 8, Degree: 2, Distance: 1}),
		NewPangloss(PanglossConfig{Rows: 16, Slots: 2, Degree: 3, MinConfidence: 2, MaxConfidence: 7}),
		NewBestOffset(BestOffsetConfig{RRSize: 16, RoundMisses: 8, ScoreMax: 4, BadScore: 1, Degree: 2}),
	}
}

// fuzzDegree mirrors fuzzEngines: each engine's per-event issue ceiling.
var fuzzDegree = []int{2, 3, 2}

// FuzzObserveMiss drives every engine over an arbitrary miss stream decoded
// from the fuzz input (each 5 bytes: one PC-selector byte + a 4-byte VA)
// and checks the invariants the simulator and the conformance suite rely
// on, for inputs far outside the structured conformance stream:
//
//   - twin determinism: two identically-configured engines fed the same
//     stream produce identical issues and counters;
//   - bounded issue: no engine returns more than its degree per event;
//   - counter accounting: Observed advances exactly once per event and
//     Issued by exactly the returned length;
//   - state round-trip: an engine restored from MarshalState at an
//     arbitrary split point replays the tail identically.
func FuzzObserveMiss(f *testing.F) {
	// Constant stride, a tight loop, zero deltas, and a wild pointer chase.
	f.Add([]byte("\x00\x00\x00\x00\x10\x00\x40\x00\x00\x10\x00\x80\x00\x00\x10\x00\xc0\x00\x00\x10"))
	f.Add([]byte("\x01\x00\x10\x00\x20\x01\x40\x12\x00\x20\x01\x00\x10\x00\x20\x01\x40\x12\x00\x20"))
	f.Add([]byte("\x00\xef\xbe\xad\xde\x00\xef\xbe\xad\xde\x00\xef\xbe\xad\xde"))
	f.Add([]byte("\x07\x39\x05\x00\x80\x03\x00\xff\xff\xff\x01\x40\x00\x00\x00"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 5
		n := len(data) / rec
		if n == 0 {
			return
		}
		if n > 512 {
			n = 512 // bound fuzz cost; 512 events cover many rounds/loops
		}
		evs := make([]Event, n)
		for i := range evs {
			evs[i] = Event{
				PC:          0x4000 + uint32(data[i*rec]%8)*4,
				VA:          binary.LittleEndian.Uint32(data[i*rec+1 : i*rec+5]),
				PriorIssued: data[i*rec]&0x80 != 0,
			}
		}
		split := n / 2

		twins := fuzzEngines()
		for ei, e := range fuzzEngines() {
			twin := twins[ei]
			degree := fuzzDegree[ei]
			var prev Counters
			var buf, twinBuf []uint32
			for i, ev := range evs {
				buf = e.Observe(ev, buf[:0])
				twinBuf = twin.Observe(ev, twinBuf[:0])
				if len(buf) != len(twinBuf) {
					t.Fatalf("%s: twins diverge at event %d: %d vs %d issues", e.Name(), i, len(buf), len(twinBuf))
				}
				for k := range buf {
					if buf[k] != twinBuf[k] {
						t.Fatalf("%s: twins diverge at event %d issue %d: %#x vs %#x", e.Name(), i, k, buf[k], twinBuf[k])
					}
				}
				if len(buf) > degree {
					t.Fatalf("%s: event %d issued %d, degree bound %d", e.Name(), i, len(buf), degree)
				}
				c := e.Counters()
				if c.Observed != prev.Observed+1 {
					t.Fatalf("%s: event %d advanced Observed by %d", e.Name(), i, c.Observed-prev.Observed)
				}
				if c.Issued != prev.Issued+uint64(len(buf)) {
					t.Fatalf("%s: event %d issued %d but Issued advanced %d", e.Name(), i, len(buf), c.Issued-prev.Issued)
				}
				prev = c
				// At the split point, clone via the state blob and check the
				// clone replays the rest of the stream identically.
				if i == split {
					blob, err := e.MarshalState()
					if err != nil {
						t.Fatalf("%s: MarshalState: %v", e.Name(), err)
					}
					clone, cloneErr := cloneOf(e)
					if cloneErr != nil {
						t.Fatalf("%s: %v", e.Name(), cloneErr)
					}
					if err := clone.UnmarshalState(blob); err != nil {
						t.Fatalf("%s: UnmarshalState: %v", e.Name(), err)
					}
					var cb []uint32
					for j := i + 1; j < n; j++ {
						cb = clone.Observe(evs[j], cb[:0])
					}
					defer func(name string, clone Prefetcher) {
						if e.Counters() != clone.Counters() {
							t.Fatalf("%s: restored clone counters %+v, original %+v", name, clone.Counters(), e.Counters())
						}
					}(e.Name(), clone)
				}
			}
		}
	})
}

// cloneOf builds a fresh engine with the same configuration, for state
// round-trips.
func cloneOf(e Prefetcher) (Prefetcher, error) {
	switch v := e.(type) {
	case *Stride:
		return NewStride(v.Config()), nil
	case *Pangloss:
		return NewPangloss(v.Config()), nil
	case *BestOffset:
		return NewBestOffset(v.Config()), nil
	}
	return nil, fmt.Errorf("no clone constructor for %T", e)
}
