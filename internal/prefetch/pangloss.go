// Pangloss-style delta predictor (Leventhal & Pham-style entry in the 2019
// DPC3 championship, arXiv 1906.00877): instead of a Markov chain over
// absolute miss addresses (the Joseph & Grunwald STAB, whose table grows
// with the footprint), Pangloss compresses the chain into *delta*
// transitions — "after a miss delta of d1, the next delta is usually d2" —
// which needs only a small fixed table regardless of working-set size. On
// each L2 miss the engine records the (previous delta → current delta)
// transition with a saturating confidence counter, then walks the highest-
// confidence transitions forward from the current address to issue a short
// chain of prefetches. A constant-stride stream self-loops (d → d) and
// degenerates into a stride prefetcher; irregular-but-repeating patterns
// (pointer chases with stable layouts) are captured as delta cycles.
package prefetch

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math/bits"
)

// PanglossConfig sizes the delta-transition table.
type PanglossConfig struct {
	// Rows is the number of transition rows, indexed by a hash of the
	// previous delta. Must be a power of two.
	Rows int
	// Slots is the number of successor-delta slots per row.
	Slots int
	// Degree bounds the prediction chain walked from each miss.
	Degree int
	// MinConfidence is the slot confidence required before a transition
	// is trusted for prediction.
	MinConfidence uint8
	// MaxConfidence saturates the per-slot confidence counters.
	MaxConfidence uint8
}

// Validate checks the table geometry; NewPangloss panics on what this
// rejects.
func (c PanglossConfig) Validate() error {
	if c.Rows <= 0 || c.Rows&(c.Rows-1) != 0 {
		return fmt.Errorf("prefetch: pangloss rows %d not a positive power of two", c.Rows)
	}
	if c.Slots <= 0 || c.Degree <= 0 {
		return fmt.Errorf("prefetch: bad pangloss config %+v", c)
	}
	if c.MinConfidence == 0 || c.MaxConfidence < c.MinConfidence {
		return fmt.Errorf("prefetch: bad pangloss confidence window [%d,%d]", c.MinConfidence, c.MaxConfidence)
	}
	return nil
}

// DefaultPanglossConfig is a deliberately small table — 256 rows × 4 slots
// is 4 KiB-class hardware, the compression the paper claims over an
// address-keyed Markov table.
var DefaultPanglossConfig = PanglossConfig{
	Rows: 256, Slots: 4, Degree: 4, MinConfidence: 2, MaxConfidence: 15,
}

type panglossSlot struct {
	delta int32
	conf  uint8
	valid bool
}

// Pangloss is the compressed Markov-chain delta prefetcher.
type Pangloss struct {
	cfg      PanglossConfig
	table    []panglossSlot // Rows × Slots, row-major
	rowShift uint           // 32 - log2(Rows), derived from cfg
	enabled  bool

	lastVA    uint32
	lastDelta int32
	haveLast  bool
	haveDelta bool

	observed uint64
	issued   uint64
}

// NewPangloss builds a delta predictor. Panics on invalid geometry.
func NewPangloss(cfg PanglossConfig) *Pangloss {
	if err := cfg.Validate(); err != nil {
		panic(err.Error())
	}
	return &Pangloss{
		cfg:      cfg,
		table:    make([]panglossSlot, cfg.Rows*cfg.Slots),
		rowShift: uint(33 - bits.Len(uint(cfg.Rows))),
		enabled:  true,
	}
}

var _ Prefetcher = (*Pangloss)(nil)

// Config returns the table geometry.
func (p *Pangloss) Config() PanglossConfig { return p.cfg }

// Name is the engine's registry name.
func (p *Pangloss) Name() string { return "pangloss" }

// Stream: deltas are learned from the L2 demand-miss stream, like the STAB
// it compresses.
func (p *Pangloss) Stream() Stream { return StreamL2 }

// Translate: modelled post-translation; predictions consult the page map.
func (p *Pangloss) Translate() TranslateVia { return TranslateDirect }

// SetEnabled toggles issue; transition training continues while disabled.
func (p *Pangloss) SetEnabled(enabled bool) { p.enabled = enabled }

// Counters reports the engine's lifetime counters.
func (p *Pangloss) Counters() Counters {
	return Counters{Observed: p.observed, Issued: p.issued}
}

// Reset reverts to the just-constructed state.
func (p *Pangloss) Reset() {
	for i := range p.table {
		p.table[i] = panglossSlot{}
	}
	p.lastVA, p.lastDelta = 0, 0
	p.haveLast, p.haveDelta = false, false
	p.observed, p.issued = 0, 0
}

func (p *Pangloss) String() string {
	return fmt.Sprintf("pangloss{%dx%d deltas, degree %d}", p.cfg.Rows, p.cfg.Slots, p.cfg.Degree)
}

// rowOf hashes a delta to its transition row. Fibonacci multiplicative
// hash keeping the HIGH bits: cache-line deltas are all multiples of 64,
// so masking the product's low bits would collapse them into a handful of
// rows (row 0 for every line delta when Rows ≤ 64).
func (p *Pangloss) rowOf(delta int32) int {
	return int((uint32(delta) * 0x9E3779B1) >> p.rowShift)
}

// bestFrom returns the highest-confidence successor delta recorded for
// prev, or (0, false) when no slot clears MinConfidence. First slot wins
// ties, keeping prediction deterministic.
func (p *Pangloss) bestFrom(prev int32) (int32, bool) {
	row := p.rowOf(prev) * p.cfg.Slots
	bestConf := uint8(0)
	bestDelta := int32(0)
	for i := 0; i < p.cfg.Slots; i++ {
		s := &p.table[row+i]
		if s.valid && s.conf > bestConf {
			bestConf = s.conf
			bestDelta = s.delta
		}
	}
	if bestConf < p.cfg.MinConfidence {
		return 0, false
	}
	return bestDelta, true
}

// ObserveMiss trains on one L2 demand miss (line address) and returns the
// predicted lines — the registry-free spelling of Observe, mirroring the
// other engines.
func (p *Pangloss) ObserveMiss(line uint32) []uint32 {
	return p.Observe(Event{VA: line}, nil)
}

// Observe records the (previous delta → current delta) transition and
// walks the confident-transition chain forward from the miss address,
// appending up to Degree predicted line addresses to dst.
//
// simlint:hotpath
func (p *Pangloss) Observe(ev Event, dst []uint32) []uint32 {
	p.observed++
	va := ev.VA
	if !p.haveLast {
		p.lastVA, p.haveLast = va, true
		return dst
	}
	d := int32(va - p.lastVA)
	p.lastVA = va
	if d == 0 {
		return dst
	}

	// Train: strengthen the lastDelta → d slot, or claim the weakest slot
	// in the row (first minimum wins; deterministic replacement).
	if p.haveDelta {
		row := p.rowOf(p.lastDelta) * p.cfg.Slots
		hit := false
		for i := 0; i < p.cfg.Slots; i++ {
			s := &p.table[row+i]
			if s.valid && s.delta == d {
				if s.conf < p.cfg.MaxConfidence {
					s.conf++
				}
				hit = true
				break
			}
		}
		if !hit {
			victim := row
			for i := 1; i < p.cfg.Slots; i++ {
				s := &p.table[row+i]
				if !s.valid {
					victim = row + i
					break
				}
				if s.conf < p.table[victim].conf {
					victim = row + i
				}
			}
			p.table[victim].delta = d
			p.table[victim].conf = 1
			p.table[victim].valid = true
		}
	}
	p.lastDelta, p.haveDelta = d, true

	if !p.enabled {
		return dst
	}
	// Predict: follow the most-confident transitions forward. A constant
	// stride self-loops here and issues Degree consecutive lines.
	addr := va
	cur := d
	for k := 0; k < p.cfg.Degree; k++ {
		next, ok := p.bestFrom(cur)
		if !ok {
			break
		}
		addr += uint32(next)
		dst = append(dst, addr)
		p.issued++
		cur = next
	}
	return dst
}

// PanglossSlotState is one transition slot in a PanglossState, row-major.
type PanglossSlotState struct {
	Delta int32
	Conf  uint8
	Valid bool
}

// PanglossState is a checkpointable deep copy of the delta predictor.
type PanglossState struct {
	LastVA    uint32
	LastDelta int32
	HaveLast  bool
	HaveDelta bool
	Observed  uint64
	Issued    uint64
	Slots     []PanglossSlotState // Rows × Slots, row-major
}

// State snapshots the transition table.
func (p *Pangloss) State() PanglossState {
	st := PanglossState{
		LastVA: p.lastVA, LastDelta: p.lastDelta,
		HaveLast: p.haveLast, HaveDelta: p.haveDelta,
		Observed: p.observed, Issued: p.issued,
		Slots: make([]PanglossSlotState, len(p.table)),
	}
	for i, s := range p.table {
		st.Slots[i] = PanglossSlotState{Delta: s.delta, Conf: s.conf, Valid: s.valid}
	}
	return st
}

// Restore overwrites the table with a previously captured state. The table
// must have the geometry the state was captured from.
func (p *Pangloss) Restore(st PanglossState) error {
	if len(st.Slots) != len(p.table) {
		return fmt.Errorf("prefetch: pangloss state has %d slots, table has %d (geometry mismatch)",
			len(st.Slots), len(p.table))
	}
	for i, s := range st.Slots {
		p.table[i] = panglossSlot{delta: s.Delta, conf: s.Conf, valid: s.Valid}
	}
	p.lastVA, p.lastDelta = st.LastVA, st.LastDelta
	p.haveLast, p.haveDelta = st.HaveLast, st.HaveDelta
	p.observed, p.issued = st.Observed, st.Issued
	return nil
}

// MarshalState serialises the table for checkpointing (gob of
// PanglossState).
func (p *Pangloss) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p.State()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores a MarshalState payload into a same-geometry
// engine.
func (p *Pangloss) UnmarshalState(data []byte) error {
	var st PanglossState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	return p.Restore(st)
}
