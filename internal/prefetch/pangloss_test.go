package prefetch

import (
	"testing"
	"testing/quick"
)

func TestPanglossConstantStridePredicts(t *testing.T) {
	p := NewPangloss(DefaultPanglossConfig)
	const d = 4 * 64 // four lines
	// miss 0: primes lastVA; miss 1: primes lastDelta; miss 2 trains
	// d→d to confidence 1; miss 3 reaches MinConfidence (2).
	for i := 0; i < 3; i++ {
		if got := p.ObserveMiss(uint32(i) * d); len(got) != 0 {
			t.Fatalf("miss %d predicted %v before confidence built", i, got)
		}
	}
	got := p.ObserveMiss(3 * d)
	if len(got) != DefaultPanglossConfig.Degree {
		t.Fatalf("confident stride predicted %v, want %d chained lines", got, DefaultPanglossConfig.Degree)
	}
	for k, g := range got {
		want := uint32(3*d + (k+1)*d)
		if g != want {
			t.Fatalf("chain[%d] = %#x, want %#x", k, g, want)
		}
	}
}

func TestPanglossAlternatingDeltas(t *testing.T) {
	p := NewPangloss(PanglossConfig{Rows: 64, Slots: 4, Degree: 2, MinConfidence: 2, MaxConfidence: 15})
	const a, b = 3 * 64, 11 * 64
	va := uint32(0x1000)
	var last []uint32
	// +a, +b, +a, +b, ... trains a→b and b→a.
	for i := 0; i < 12; i++ {
		if i%2 == 0 {
			va += a
		} else {
			va += b
		}
		last = p.ObserveMiss(va)
	}
	// After 12 misses the last delta was +b; the chain predicts +a then +b.
	if len(last) != 2 || last[0] != va+a || last[1] != va+a+b {
		t.Fatalf("alternating chain = %#x, want [%#x %#x]", last, va+a, va+a+b)
	}
}

func TestPanglossZeroDeltaSilent(t *testing.T) {
	p := NewPangloss(DefaultPanglossConfig)
	for i := 0; i < 8; i++ {
		if got := p.ObserveMiss(0x4000); len(got) != 0 {
			t.Fatalf("repeated identical miss predicted %v", got)
		}
	}
}

func TestPanglossRestoreGeometryMismatch(t *testing.T) {
	small := NewPangloss(PanglossConfig{Rows: 64, Slots: 2, Degree: 1, MinConfidence: 1, MaxConfidence: 3})
	blob, err := small.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	big := NewPangloss(DefaultPanglossConfig)
	if err := big.UnmarshalState(blob); err == nil {
		t.Fatal("restore across geometries must fail")
	}
}

// Property: on a constant-stride stream, every prediction continues the
// arithmetic progression — the delta chain must degenerate into a stride
// prefetcher (mirrors TestPredictionsFollowStrideQuick).
func TestPanglossFollowsStrideQuick(t *testing.T) {
	f := func(start uint32, strideSeed uint8) bool {
		stride := (uint32(strideSeed%200) + 1) * 2 // non-zero, even
		p := NewPangloss(DefaultPanglossConfig)
		a := start
		for i := 0; i < 8; i++ {
			got := p.ObserveMiss(a)
			for k, g := range got {
				if g != a+stride*uint32(k+1) {
					return false
				}
			}
			if i >= 3 && len(got) != DefaultPanglossConfig.Degree {
				return false // confident stream must chain-predict from the 4th miss
			}
			a += stride
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the issue count per miss never exceeds Degree, and counters
// account exactly for what was returned.
func TestPanglossBoundedIssueQuick(t *testing.T) {
	f := func(vas []uint32) bool {
		p := NewPangloss(DefaultPanglossConfig)
		var issued uint64
		for _, va := range vas {
			got := p.ObserveMiss(va)
			if len(got) > DefaultPanglossConfig.Degree {
				return false
			}
			issued += uint64(len(got))
		}
		c := p.Counters()
		return c.Observed == uint64(len(vas)) && c.Issued == issued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
