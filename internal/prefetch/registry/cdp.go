// cdpEngine adapts the content-directed prefetcher to the Prefetcher
// interface for registry listing, the conformance suite, and the arena.
//
// This is deliberately an adapter, not a rewrite: inside the simulator the
// CDP keeps its direct core.Prefetcher wiring (stored per-line depths,
// reinforcement rescans, chain lineage tracing) because the interface's
// observe-miss/issue-lines vocabulary cannot express depth promotion or
// rescan-on-hit without widening it for every other engine. The adapter
// exposes the stateless half — scan a filled line, chase its pointers —
// which is exactly what a fill-stream Observe event carries. DESIGN.md §12
// records the trade-off.
package registry

import (
	"bytes"
	"encoding/gob"

	"repro/internal/core"
	"repro/internal/prefetch"
)

type cdpEngine struct {
	cfg     core.Config
	p       *core.Prefetcher
	enabled bool

	observed uint64
	issued   uint64
}

func newCDPEngine(cfg core.Config) *cdpEngine {
	return &cdpEngine{cfg: cfg, p: core.New(cfg), enabled: true}
}

var _ prefetch.Prefetcher = (*cdpEngine)(nil)

func (c *cdpEngine) Name() string { return "cdp" }

// Stream: the CDP is the one engine that trains on data-carrying fills —
// the paper's whole point is that the prediction state *is* the data.
func (c *cdpEngine) Stream() prefetch.Stream { return prefetch.StreamFill }

// Translate: content candidates are virtual addresses and go through the
// DTLB like demand references (Section 3.2).
func (c *cdpEngine) Translate() prefetch.TranslateVia { return prefetch.TranslateTLB }

func (c *cdpEngine) SetEnabled(enabled bool) { c.enabled = enabled }

func (c *cdpEngine) Counters() prefetch.Counters {
	return prefetch.Counters{Observed: c.observed, Issued: c.issued}
}

// Reset rebuilds the scanner. The CDP is stateless by design, but the
// rebuild also zeroes its lifetime statistics.
func (c *cdpEngine) Reset() {
	c.p = core.New(c.cfg)
	c.observed, c.issued = 0, 0
}

func (c *cdpEngine) String() string { return c.p.String() }

// Observe scans one filled line (ev.Data) and appends the candidate lines.
// Events without data — plain misses — train nothing: stateless means
// there is no table to update.
func (c *cdpEngine) Observe(ev prefetch.Event, dst []uint32) []uint32 {
	c.observed++
	if len(ev.Data) == 0 {
		return dst
	}
	cands := c.p.OnFill(ev.TrigVA, ev.Depth, ev.VA, ev.Data)
	if !c.enabled {
		return dst
	}
	for i := range cands {
		dst = append(dst, cands[i].VA)
		c.issued++
	}
	return dst
}

// cdpEngineState wraps the scanner's statistics with the adapter's own
// counters so a restore replays identically.
type cdpEngineState struct {
	Core     core.State
	Observed uint64
	Issued   uint64
}

func (c *cdpEngine) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	st := cdpEngineState{Core: c.p.State(), Observed: c.observed, Issued: c.issued}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func (c *cdpEngine) UnmarshalState(data []byte) error {
	var st cdpEngineState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	if err := c.p.Restore(st.Core); err != nil {
		return err
	}
	c.observed, c.issued = st.Observed, st.Issued
	return nil
}
