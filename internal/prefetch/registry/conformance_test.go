package registry_test

import (
	"strings"
	"testing"

	"repro/internal/prefetch"
	"repro/internal/prefetch/conformance"
	"repro/internal/prefetch/registry"
)

// TestRegistryConformance runs the full conformance contract over every
// registered engine: registering in the zoo *is* opting into the contract.
func TestRegistryConformance(t *testing.T) {
	names := registry.Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d engines, want at least 5: %v", len(names), names)
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			conformance.Suite(t, func() prefetch.Prefetcher {
				return registry.MustBuild(name)
			})
		})
	}
}

// TestRegistryNamesMatchEngines pins Name() to the registry key so specs,
// leaderboards, and checkpoint guards all agree on spelling.
func TestRegistryNamesMatchEngines(t *testing.T) {
	for _, name := range registry.Names() {
		if got := registry.MustBuild(name).Name(); got != name {
			t.Errorf("engine registered as %q reports Name() %q", name, got)
		}
	}
}

func TestBuildSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string // substring; empty = must succeed
	}{
		{spec: "stride"},
		{spec: "stride:degree=4,distance=10"},
		{spec: "markov:entries=1024"},
		{spec: "pangloss:rows=128,slots=2,degree=2"},
		{spec: "bestoffset:rr=32,round=64"},
		{spec: "cdp:depth=2,reinforce=false"},
		{spec: "quake3", wantErr: `unknown engine "quake3" (valid: bestoffset, cdp, markov, pangloss, stride)`},
		{spec: "", wantErr: "empty engine spec"},
		{spec: "stride:bogus=1", wantErr: `engine "stride" has no parameter "bogus"`},
		{spec: "stride:degree=x", wantErr: "not an integer"},
		{spec: "stride:degree=1,degree=2", wantErr: "duplicate parameter"},
		{spec: "stride:degree", wantErr: "malformed parameter"},
		{spec: "stride:degree=0", wantErr: "bad stride config"},
		{spec: "pangloss:rows=100", wantErr: "power of two"},
	}
	for _, tc := range cases {
		eng, err := registry.Build(tc.spec)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("Build(%q): %v", tc.spec, err)
			}
			continue
		}
		if eng != nil || err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("Build(%q) = %v, %v; want error containing %q", tc.spec, eng, err, tc.wantErr)
		}
	}
}

// TestSpecParametersApply proves parameters actually reach the engine
// configs rather than being parsed and dropped.
func TestSpecParametersApply(t *testing.T) {
	eng := registry.MustBuild("stride:entries=16,degree=3,distance=5")
	s, ok := eng.(*prefetch.Stride)
	if !ok {
		t.Fatalf("stride spec built a %T", eng)
	}
	cfg := s.Config()
	if cfg.TableEntries != 16 || cfg.Degree != 3 || cfg.Distance != 5 {
		t.Errorf("spec parameters not applied: %+v", cfg)
	}
}
