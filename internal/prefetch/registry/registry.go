// Package registry names the prefetcher zoo. Every engine the simulator
// can attach — the stride baseline, the Markov STAB, the content-directed
// prefetcher, and the newer delta/offset entrants — registers here under a
// stable name, buildable from a textual spec:
//
//	name[:key=value[,key=value...]]
//
// e.g. "pangloss", "stride:degree=4,distance=20", "markov:entries=8192".
// The spec is the unit of configuration everywhere engines are selected:
// sim.Config.Engine, cdpsim's -engine flag, and the cdpd arena sweep. It is
// deliberately a flat string so the simcache content key hashes it without
// new encoder cases, and so an engine plus its parameters is one
// copy-pasteable token.
package registry

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/markov"
	"repro/internal/prefetch"
)

// Param is one key=value pair from an engine spec, in spec order.
type Param struct {
	Key, Value string
}

// Params is an engine spec's parameter list. A slice (not a map) keeps
// error messages and application order deterministic.
type Params []Param

// intOr returns the named parameter as an int, or def when absent.
func (ps Params) intOr(key string, def int) (int, error) {
	for _, p := range ps {
		if p.Key == key {
			v, err := strconv.Atoi(p.Value)
			if err != nil {
				return 0, fmt.Errorf("prefetch registry: parameter %s=%q is not an integer", key, p.Value)
			}
			return v, nil
		}
	}
	return def, nil
}

// boolOr returns the named parameter as a bool, or def when absent.
func (ps Params) boolOr(key string, def bool) (bool, error) {
	for _, p := range ps {
		if p.Key == key {
			v, err := strconv.ParseBool(p.Value)
			if err != nil {
				return false, fmt.Errorf("prefetch registry: parameter %s=%q is not a bool", key, p.Value)
			}
			return v, nil
		}
	}
	return def, nil
}

// Entry is one registered engine.
type Entry struct {
	// Name is the spec name ("stride", "pangloss", ...).
	Name string
	// Doc is a one-line description for listings (/v1/engines, cdpsim).
	Doc string
	// Keys are the parameter names the builder accepts; anything else in
	// a spec is rejected before the builder runs.
	Keys []string
	// Build constructs the engine from parsed parameters.
	Build func(ps Params) (prefetch.Prefetcher, error)
}

// entries is the zoo, kept sorted by name so Names() needs no sort and
// every listing is deterministic.
var entries = []Entry{
	{
		Name: "bestoffset",
		Doc:  "best-offset spatial prefetcher (Michaud HPCA'16): learns the one line offset that best predicts the L2 miss stream",
		Keys: []string{"rr", "round", "scoremax", "badscore", "degree"},
		Build: func(ps Params) (prefetch.Prefetcher, error) {
			cfg := prefetch.DefaultBestOffsetConfig
			var err error
			if cfg.RRSize, err = ps.intOr("rr", cfg.RRSize); err != nil {
				return nil, err
			}
			if cfg.RoundMisses, err = ps.intOr("round", cfg.RoundMisses); err != nil {
				return nil, err
			}
			if cfg.ScoreMax, err = ps.intOr("scoremax", cfg.ScoreMax); err != nil {
				return nil, err
			}
			if cfg.BadScore, err = ps.intOr("badscore", cfg.BadScore); err != nil {
				return nil, err
			}
			if cfg.Degree, err = ps.intOr("degree", cfg.Degree); err != nil {
				return nil, err
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return prefetch.NewBestOffset(cfg), nil
		},
	},
	{
		Name: "cdp",
		Doc:  "stateless content-directed prefetcher (the paper): scans filled lines for pointer-shaped words and chases them",
		Keys: []string{"depth", "next", "prev", "reinforce"},
		Build: func(ps Params) (prefetch.Prefetcher, error) {
			cfg := core.DefaultConfig
			var err error
			if cfg.DepthThreshold, err = ps.intOr("depth", cfg.DepthThreshold); err != nil {
				return nil, err
			}
			if cfg.NextLines, err = ps.intOr("next", cfg.NextLines); err != nil {
				return nil, err
			}
			if cfg.PrevLines, err = ps.intOr("prev", cfg.PrevLines); err != nil {
				return nil, err
			}
			if cfg.Reinforce, err = ps.boolOr("reinforce", cfg.Reinforce); err != nil {
				return nil, err
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return newCDPEngine(cfg), nil
		},
	},
	{
		Name: "markov",
		Doc:  "Joseph & Grunwald Markov STAB (ISCA'97): address-keyed successor table over the L2 miss stream, fanout 4",
		Keys: []string{"entries"},
		Build: func(ps Params) (prefetch.Prefetcher, error) {
			cfg := markov.Config{MaxEntries: markov.EntriesForBudget(512 * 1024)}
			var err error
			if cfg.MaxEntries, err = ps.intOr("entries", cfg.MaxEntries); err != nil {
				return nil, err
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return markov.New(cfg), nil
		},
	},
	{
		Name: "pangloss",
		Doc:  "Pangloss-style compressed Markov delta predictor (arXiv 1906.00877): delta-transition table walked as a prediction chain",
		Keys: []string{"rows", "slots", "degree", "minconf", "maxconf"},
		Build: func(ps Params) (prefetch.Prefetcher, error) {
			cfg := prefetch.DefaultPanglossConfig
			var err error
			if cfg.Rows, err = ps.intOr("rows", cfg.Rows); err != nil {
				return nil, err
			}
			if cfg.Slots, err = ps.intOr("slots", cfg.Slots); err != nil {
				return nil, err
			}
			if cfg.Degree, err = ps.intOr("degree", cfg.Degree); err != nil {
				return nil, err
			}
			minConf, err := ps.intOr("minconf", int(cfg.MinConfidence))
			if err != nil {
				return nil, err
			}
			maxConf, err := ps.intOr("maxconf", int(cfg.MaxConfidence))
			if err != nil {
				return nil, err
			}
			if minConf < 0 || minConf > 255 || maxConf < 0 || maxConf > 255 {
				return nil, fmt.Errorf("prefetch registry: pangloss confidence outside [0,255]")
			}
			cfg.MinConfidence, cfg.MaxConfidence = uint8(minConf), uint8(maxConf)
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return prefetch.NewPangloss(cfg), nil
		},
	},
	{
		Name: "stride",
		Doc:  "reference-prediction-table stride prefetcher (the paper's baseline machine): 2-delta confirmed strides on the L1 miss stream",
		Keys: []string{"entries", "degree", "distance"},
		Build: func(ps Params) (prefetch.Prefetcher, error) {
			cfg := prefetch.DefaultStrideConfig
			var err error
			if cfg.TableEntries, err = ps.intOr("entries", cfg.TableEntries); err != nil {
				return nil, err
			}
			if cfg.Degree, err = ps.intOr("degree", cfg.Degree); err != nil {
				return nil, err
			}
			if cfg.Distance, err = ps.intOr("distance", cfg.Distance); err != nil {
				return nil, err
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return prefetch.NewStride(cfg), nil
		},
	},
}

// Names returns the registered engine names, sorted.
func Names() []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = e.Name
	}
	return out
}

// Lookup finds an entry by name.
func Lookup(name string) (Entry, bool) {
	for _, e := range entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ParseSpec splits "name[:k=v,...]" into the engine name and its
// parameters, rejecting malformed or duplicate pairs.
func ParseSpec(spec string) (string, Params, error) {
	name, rest, hasParams := strings.Cut(spec, ":")
	if name == "" {
		return "", nil, fmt.Errorf("prefetch registry: empty engine spec")
	}
	if !hasParams {
		return name, nil, nil
	}
	var ps Params
	for _, pair := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(pair, "=")
		if !ok || k == "" || v == "" {
			return "", nil, fmt.Errorf("prefetch registry: malformed parameter %q in spec %q (want key=value)", pair, spec)
		}
		for _, prev := range ps {
			if prev.Key == k {
				return "", nil, fmt.Errorf("prefetch registry: duplicate parameter %q in spec %q", k, spec)
			}
		}
		ps = append(ps, Param{Key: k, Value: v})
	}
	return name, ps, nil
}

// Build constructs an engine from a spec. Unknown engine names report the
// valid ones (callers surface this verbatim: sim.Config.Validate, cdpsim's
// exit-2 path, the arena's 400s).
func Build(spec string) (prefetch.Prefetcher, error) {
	name, ps, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	e, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("prefetch registry: unknown engine %q (valid: %s)",
			name, strings.Join(Names(), ", "))
	}
	for _, p := range ps {
		known := false
		for _, k := range e.Keys {
			if k == p.Key {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("prefetch registry: engine %q has no parameter %q (valid: %s)",
				name, p.Key, strings.Join(e.Keys, ", "))
		}
	}
	return e.Build(ps)
}

// Validate reports whether a spec names a registered engine with
// well-formed parameters.
func Validate(spec string) error {
	_, err := Build(spec)
	return err
}

// MustBuild is Build for specs that already passed Validate.
func MustBuild(spec string) prefetch.Prefetcher {
	eng, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return eng
}
