// Package prefetch defines the hardware stride prefetcher that is part of
// the paper's *baseline* machine. Every speedup the paper (and this
// reproduction) reports is measured relative to a model that already has a
// stride prefetcher, so that the content prefetcher's contribution is not
// inflated by references a conventional prefetcher would have covered.
//
// The implementation is a classic reference-prediction table: entries are
// indexed and tagged by load PC, track the last effective address and
// stride, and move through INIT → TRANSIENT → STEADY states; only a
// confirmed (twice-seen) stride generates prefetches. The table monitors
// the L1 miss stream, as in Figure 6 of the paper.
package prefetch

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// StrideConfig sizes the reference-prediction table.
type StrideConfig struct {
	// TableEntries is the number of direct-mapped RPT entries.
	TableEntries int
	// Degree is how many consecutive strides each steady miss prefetches.
	Degree int
	// Distance offsets the prefetch window: a steady miss at address A
	// prefetches A + stride*(Distance+1) ... A + stride*(Distance+Degree),
	// giving the engine enough lead to hide part of the memory latency
	// on fast-moving streams.
	Distance int
}

// Validate checks the table geometry; NewStride panics on what this
// rejects.
func (c StrideConfig) Validate() error {
	if c.TableEntries <= 0 || c.Degree <= 0 || c.Distance < 0 {
		return fmt.Errorf("prefetch: bad stride config %+v", c)
	}
	return nil
}

// DefaultStrideConfig is a plausible contemporary stride engine: 256
// entries, two prefetches per steady miss, running 40 strides ahead —
// enough lead to fully hide the 460-cycle memory latency on streams that
// do a couple dozen cycles of work per element.
var DefaultStrideConfig = StrideConfig{TableEntries: 256, Degree: 2, Distance: 40}

const (
	stInit uint8 = iota
	stTransient
	stSteady
)

type strideEntry struct {
	pc       uint32
	lastAddr uint32
	stride   int32
	state    uint8
	valid    bool
}

// Stride is the reference-prediction-table stride prefetcher.
type Stride struct {
	cfg     StrideConfig
	table   []strideEntry
	enabled bool

	observed  uint64
	predicted uint64
}

// NewStride builds a stride prefetcher. Panics on non-positive geometry.
func NewStride(cfg StrideConfig) *Stride {
	if cfg.TableEntries <= 0 || cfg.Degree <= 0 || cfg.Distance < 0 {
		panic(fmt.Sprintf("prefetch: bad stride config %+v", cfg))
	}
	return &Stride{cfg: cfg, table: make([]strideEntry, cfg.TableEntries), enabled: true}
}

var _ Prefetcher = (*Stride)(nil)

// Config returns the table geometry.
func (s *Stride) Config() StrideConfig { return s.cfg }

// Name is the engine's registry name.
func (s *Stride) Name() string { return "stride" }

// Stream: the RPT monitors the L1 miss stream (Figure 6 of the paper).
func (s *Stride) Stream() Stream { return StreamL1 }

// Translate: stride predictions consult the DTLB and drop on a TLB miss.
func (s *Stride) Translate() TranslateVia { return TranslateTLB }

// SetEnabled toggles issue; training continues while disabled.
func (s *Stride) SetEnabled(enabled bool) { s.enabled = enabled }

// Counters reports the engine's lifetime counters.
func (s *Stride) Counters() Counters {
	return Counters{Observed: s.observed, Issued: s.predicted}
}

// Reset reverts to the just-constructed state.
func (s *Stride) Reset() {
	for i := range s.table {
		s.table[i] = strideEntry{}
	}
	s.observed, s.predicted = 0, 0
}

// ObserveMiss trains on one L1 miss and returns the virtual addresses to
// prefetch (empty unless the entry is steady with a non-zero stride).
func (s *Stride) ObserveMiss(pc, va uint32) []uint32 {
	return s.Observe(Event{PC: pc, VA: va}, nil)
}

// Observe trains on one L1 miss event and appends the predicted virtual
// addresses to dst.
//
// simlint:hotpath
func (s *Stride) Observe(ev Event, dst []uint32) []uint32 {
	s.observed++
	pc, va := ev.PC, ev.VA
	e := &s.table[pc%uint32(len(s.table))]
	if !e.valid || e.pc != pc {
		e.pc, e.lastAddr, e.stride, e.state, e.valid = pc, va, 0, stInit, true
		return dst
	}
	stride := int32(va - e.lastAddr)
	switch {
	case stride == e.stride && stride != 0:
		// The same delta twice in a row confirms the stream (2-delta).
		e.state = stSteady
	case e.state == stSteady:
		// One irregular reference demotes without forgetting the stream.
		e.state = stTransient
		e.stride = stride
	default:
		e.state = stInit
		e.stride = stride
	}
	e.lastAddr = va

	if e.state != stSteady || e.stride == 0 || !s.enabled {
		return dst
	}
	for k := 1; k <= s.cfg.Degree; k++ {
		dst = append(dst, va+uint32(e.stride*int32(s.cfg.Distance+k)))
	}
	s.predicted += uint64(s.cfg.Degree)
	return dst
}

// WouldPredict reports whether a steady entry for pc would cover va as its
// next access — used by the tuning experiments to compute stride-adjusted
// coverage and accuracy without perturbing the table.
func (s *Stride) WouldPredict(pc, va uint32) bool {
	e := &s.table[pc%uint32(len(s.table))]
	if !e.valid || e.pc != pc || e.state != stSteady || e.stride == 0 {
		return false
	}
	for k := 1; k <= s.cfg.Distance+s.cfg.Degree; k++ {
		if e.lastAddr+uint32(e.stride*int32(k)) == va {
			return true
		}
	}
	return false
}

// Stats returns misses observed and prefetch addresses generated.
func (s *Stride) Stats() (observed, predicted uint64) { return s.observed, s.predicted }

func (s *Stride) String() string {
	return fmt.Sprintf("stride{%d entries, degree %d}", s.cfg.TableEntries, s.cfg.Degree)
}

// EntryState is one valid reference-prediction-table entry in a State.
type EntryState struct {
	Index    uint32 // direct-mapped table slot
	PC       uint32
	LastAddr uint32
	Stride   int32
	Phase    uint8 // INIT/TRANSIENT/STEADY
}

// State is a checkpointable deep copy of the stride engine's mutable
// contents.
type State struct {
	Observed  uint64
	Predicted uint64
	Entries   []EntryState
}

// State snapshots the reference prediction table.
func (s *Stride) State() State {
	st := State{Observed: s.observed, Predicted: s.predicted}
	for i := range s.table {
		if s.table[i].valid {
			e := &s.table[i]
			st.Entries = append(st.Entries, EntryState{
				Index: uint32(i), PC: e.pc, LastAddr: e.lastAddr, Stride: e.stride, Phase: e.state,
			})
		}
	}
	return st
}

// Restore overwrites the table with a previously captured State. The table
// must have the geometry the state was captured from.
func (s *Stride) Restore(st State) error {
	for i := range s.table {
		s.table[i] = strideEntry{}
	}
	for _, es := range st.Entries {
		if int(es.Index) >= len(s.table) {
			return fmt.Errorf("prefetch: state index %d outside %d entries (geometry mismatch)", es.Index, len(s.table))
		}
		if es.Phase > stSteady {
			return fmt.Errorf("prefetch: bad entry phase %d", es.Phase)
		}
		s.table[es.Index] = strideEntry{
			pc: es.PC, lastAddr: es.LastAddr, stride: es.Stride, state: es.Phase, valid: true,
		}
	}
	s.observed = st.Observed
	s.predicted = st.Predicted
	return nil
}

// MarshalState serialises the table for checkpointing (gob of State).
func (s *Stride) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s.State()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalState restores a MarshalState payload into a same-geometry
// engine.
func (s *Stride) UnmarshalState(data []byte) error {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return err
	}
	return s.Restore(st)
}
