package prefetch

import (
	"testing"
	"testing/quick"
)

func TestSteadyStreamPredicts(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 64, Degree: 2})
	pc := uint32(0x400)
	if got := s.ObserveMiss(pc, 1000); got != nil {
		t.Fatalf("first miss predicted %v", got)
	}
	if got := s.ObserveMiss(pc, 1064); got != nil {
		t.Fatalf("second miss predicted %v", got)
	}
	got := s.ObserveMiss(pc, 1128) // stride 64 confirmed twice
	if len(got) != 2 || got[0] != 1192 || got[1] != 1256 {
		t.Fatalf("steady prediction = %v, want [1192 1256]", got)
	}
}

func TestNegativeStride(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 64, Degree: 1})
	pc := uint32(0x404)
	s.ObserveMiss(pc, 5000)
	s.ObserveMiss(pc, 4900)
	got := s.ObserveMiss(pc, 4800)
	if len(got) != 1 || got[0] != 4700 {
		t.Fatalf("negative stride prediction = %v", got)
	}
}

func TestIrregularStreamSilent(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 64, Degree: 2})
	pc := uint32(0x408)
	addrs := []uint32{100, 9200, 310, 77000, 1250}
	for _, a := range addrs {
		if got := s.ObserveMiss(pc, a); got != nil {
			t.Fatalf("irregular stream predicted %v at %d", got, a)
		}
	}
}

func TestZeroStrideSilent(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 64, Degree: 2})
	pc := uint32(0x40C)
	for i := 0; i < 5; i++ {
		if got := s.ObserveMiss(pc, 2000); got != nil {
			t.Fatalf("zero stride predicted %v", got)
		}
	}
}

func TestSteadyDemotesOnBreak(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 64, Degree: 1})
	pc := uint32(0x410)
	s.ObserveMiss(pc, 0)
	s.ObserveMiss(pc, 64)
	if s.ObserveMiss(pc, 128) == nil {
		t.Fatal("stream did not reach steady")
	}
	// Break the pattern: no prediction, demoted to transient.
	if got := s.ObserveMiss(pc, 10_000); got != nil {
		t.Fatalf("broken stream predicted %v", got)
	}
	// New stride must be confirmed before predicting again.
	if got := s.ObserveMiss(pc, 10_064); got != nil {
		t.Fatalf("unconfirmed new stride predicted %v", got)
	}
	if got := s.ObserveMiss(pc, 10_128); got == nil {
		t.Fatal("re-confirmed stride silent")
	}
}

func TestPCConflictReallocates(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 4, Degree: 1})
	pcA, pcB := uint32(0), uint32(4) // same slot in a 4-entry table
	s.ObserveMiss(pcA, 0)
	s.ObserveMiss(pcA, 64)
	s.ObserveMiss(pcB, 999) // evicts A's entry
	s.ObserveMiss(pcA, 128)
	if got := s.ObserveMiss(pcA, 192); got != nil {
		t.Fatalf("evicted entry retained state: %v", got)
	}
}

func TestWouldPredict(t *testing.T) {
	s := NewStride(StrideConfig{TableEntries: 64, Degree: 2})
	pc := uint32(0x414)
	s.ObserveMiss(pc, 0)
	s.ObserveMiss(pc, 128)
	s.ObserveMiss(pc, 256)
	if !s.WouldPredict(pc, 384) || !s.WouldPredict(pc, 512) {
		t.Fatal("WouldPredict missed in-degree addresses")
	}
	if s.WouldPredict(pc, 640) {
		t.Fatal("WouldPredict beyond degree")
	}
	if s.WouldPredict(pc+4, 384) {
		t.Fatal("WouldPredict for unknown pc")
	}
}

func TestStats(t *testing.T) {
	s := NewStride(DefaultStrideConfig)
	s.ObserveMiss(8, 0)
	s.ObserveMiss(8, 8)
	s.ObserveMiss(8, 16)
	obs, pred := s.Stats()
	if obs != 3 || pred != 2 {
		t.Fatalf("stats = %d/%d", obs, pred)
	}
}

// Property: predictions, when made, always continue the observed
// arithmetic progression.
func TestPredictionsFollowStrideQuick(t *testing.T) {
	f := func(pc, start uint32, strideSeed uint8) bool {
		stride := uint32(strideSeed%100) + 1
		s := NewStride(StrideConfig{TableEntries: 128, Degree: 2})
		a := start
		for i := 0; i < 6; i++ {
			got := s.ObserveMiss(pc, a)
			for k, g := range got {
				if g != a+stride*uint32(k+1) {
					return false
				}
			}
			if i >= 2 && len(got) == 0 {
				return false // steady stream must predict from 3rd access
			}
			a += stride
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
