// Package promtest validates Prometheus text-exposition payloads in
// tests. The api package's /metrics test and the cluster tests both
// scrape handlers that append series blocks from several sources, so the
// parser lives here once: any series a cdpd process exposes — plain,
// labelled, or histogram — must survive the same line-by-line check.
package promtest

import (
	"strconv"
	"strings"
	"testing"
)

// Family is what the exposition parser reconstructs per series name.
type Family struct {
	Help    bool
	Type    string
	Samples []string // full sample lines, labels included
}

// Value parses the sample at index i as a float (fatal on malformed
// input, which Parse already rejected).
func (f *Family) Value(t testing.TB, i int) float64 {
	t.Helper()
	line := f.Samples[i]
	v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
	if err != nil {
		t.Fatalf("sample %q value: %v", line, err)
	}
	return v
}

// ParseExposition validates the Prometheus text format line by line and
// groups samples under their family: HELP and TYPE must precede the first
// sample, sample names must belong to a declared family (histograms own
// their _bucket/_sum/_count suffixes), and every value must parse as a
// float.
func ParseExposition(t testing.TB, body string) map[string]*Family {
	t.Helper()
	fams := map[string]*Family{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, help, ok := strings.Cut(rest, " ")
			if !ok || help == "" {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			if fams[name] == nil {
				fams[name] = &Family{}
			}
			fams[name].Help = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				t.Fatalf("line %d: TYPE without a type: %q", ln+1, line)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: invalid TYPE %q", ln+1, line)
			}
			if fams[name] == nil {
				t.Fatalf("line %d: TYPE %s before its HELP", ln+1, name)
			}
			if len(fams[name].Samples) > 0 {
				t.Fatalf("line %d: TYPE %s after its samples", ln+1, name)
			}
			fams[name].Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suffix); ok && fams[b] != nil && fams[b].Type == "histogram" {
				base = b
				break
			}
		}
		fam := fams[base]
		if fam == nil || !fam.Help || fam.Type == "" {
			t.Fatalf("line %d: sample %q not preceded by HELP and TYPE", ln+1, name)
		}
		val := line[strings.LastIndex(line, " ")+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: value %q does not parse: %v", ln+1, val, err)
		}
		fam.Samples = append(fam.Samples, line)
	}
	return fams
}
