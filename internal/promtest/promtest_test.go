package promtest

import (
	"runtime"
	"strings"
	"testing"
)

// fatalTB records Fatalf instead of failing the real test, so the parser's
// rejection paths are testable. Goexit mirrors testing.T's Fatalf contract
// (the parse must not continue past a fatal line).
type fatalTB struct {
	testing.TB
	failed  bool
	message string
}

func (f *fatalTB) Helper() {}
func (f *fatalTB) Fatalf(format string, args ...any) {
	f.failed = true
	f.message = format
	runtime.Goexit()
}

// parseExpectingFatal runs ParseExposition against a payload that must be
// rejected and returns the recorded failure.
func parseExpectingFatal(t *testing.T, body string) *fatalTB {
	t.Helper()
	rec := &fatalTB{TB: t}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ParseExposition(rec, body)
	}()
	<-done
	if !rec.failed {
		t.Fatalf("parser accepted invalid payload:\n%s", body)
	}
	return rec
}

func TestParseExpositionPlainAndLabelled(t *testing.T) {
	fams := ParseExposition(t, `# HELP cdpd_queue_depth Jobs queued.
# TYPE cdpd_queue_depth gauge
cdpd_queue_depth 3
# HELP cdpd_build_info Build identity; value is always 1.
# TYPE cdpd_build_info gauge
cdpd_build_info{go_version="go1.24.0",schema="2"} 1
`)
	if fams["cdpd_queue_depth"].Value(t, 0) != 3 {
		t.Fatalf("plain gauge: %+v", fams["cdpd_queue_depth"])
	}
	info := fams["cdpd_build_info"]
	if info == nil || info.Type != "gauge" || len(info.Samples) != 1 {
		t.Fatalf("info gauge family: %+v", info)
	}
	if !strings.Contains(info.Samples[0], `go_version="go1.24.0"`) ||
		!strings.Contains(info.Samples[0], `schema="2"`) {
		t.Fatalf("info gauge labels: %q", info.Samples[0])
	}
	if info.Value(t, 0) != 1 {
		t.Fatalf("info gauge value: %v", info.Value(t, 0))
	}
}

func TestParseExpositionHistogramSuffixes(t *testing.T) {
	fams := ParseExposition(t, `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="+Inf"} 3
lat_seconds_sum 0.42
lat_seconds_count 3
`)
	fam := fams["lat_seconds"]
	if fam == nil || fam.Type != "histogram" || len(fam.Samples) != 4 {
		t.Fatalf("histogram family: %+v", fam)
	}
}

func TestParseExpositionRejections(t *testing.T) {
	cases := []struct{ name, body string }{
		{"sample without declarations", "orphan 1\n"},
		{"TYPE before HELP", "# TYPE x gauge\nx 1\n"},
		{"bad type", "# HELP x h\n# TYPE x summary\nx 1\n"},
		{"unparsable value", "# HELP x h\n# TYPE x gauge\nx banana\n"},
		{"HELP without text", "# HELP x\nx 1\n"},
		{"unknown comment", "# NOTE x h\n"},
		{"TYPE after samples", "# HELP x h\n# TYPE x gauge\nx 1\n# TYPE x gauge\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			parseExpectingFatal(t, tc.body)
		})
	}
}
