package report

import (
	"fmt"
	"sort"
)

// ArenaCell is one (engine, benchmark) result in an arena sweep.
type ArenaCell struct {
	Engine    string `json:"engine"`
	Benchmark string `json:"benchmark"`
	// Band classifies the benchmark by its stride-baseline miss rate
	// (MPTU band), the paper's axis for where prefetching can matter.
	Band string `json:"band"`

	IPC  float64 `json:"ipc"`
	MPTU float64 `json:"mptu"`
	// Speedup is measured-cycles of the stride baseline over this cell's
	// measured cycles on the same benchmark (1.0 = baseline parity).
	Speedup float64 `json:"speedup"`

	Issued   uint64  `json:"issued"`
	Accuracy float64 `json:"accuracy"`
}

// MPTUBand buckets a stride-baseline misses-per-thousand-µops figure the
// way the paper groups benchmarks: workloads that barely miss, the broad
// middle, and the memory-bound tail where prefetching pays or dies.
func MPTUBand(mptu float64) string {
	switch {
	case mptu < 1:
		return "low"
	case mptu < 8:
		return "mid"
	default:
		return "high"
	}
}

// ArenaLeaderboard renders the sweep as one ranked table (best speedup
// first; ties break by engine then benchmark name so the rendering is
// deterministic) followed by a per-engine mean-speedup summary.
func ArenaLeaderboard(cells []ArenaCell) string {
	ranked := make([]ArenaCell, len(cells))
	copy(ranked, cells)
	sort.SliceStable(ranked, func(i, j int) bool {
		if ranked[i].Speedup != ranked[j].Speedup {
			return ranked[i].Speedup > ranked[j].Speedup
		}
		if ranked[i].Engine != ranked[j].Engine {
			return ranked[i].Engine < ranked[j].Engine
		}
		return ranked[i].Benchmark < ranked[j].Benchmark
	})

	t := &Table{
		Title:   "Prefetcher arena",
		Headers: []string{"rank", "engine", "benchmark", "band", "IPC", "MPTU", "speedup"},
	}
	for i, c := range ranked {
		t.AddRow(i+1, c.Engine, c.Benchmark, c.Band, c.IPC, c.MPTU, fmt.Sprintf("%.4f", c.Speedup))
	}
	out := t.Render()

	means := map[string]*struct {
		sum float64
		n   int
	}{}
	var engines []string
	for _, c := range cells {
		m, ok := means[c.Engine]
		if !ok {
			m = &struct {
				sum float64
				n   int
			}{}
			means[c.Engine] = m
			engines = append(engines, c.Engine)
		}
		m.sum += c.Speedup
		m.n++
	}
	sort.Slice(engines, func(i, j int) bool {
		return means[engines[i]].sum/float64(means[engines[i]].n) >
			means[engines[j]].sum/float64(means[engines[j]].n)
	})
	s := &Table{Title: "Mean speedup by engine", Headers: []string{"engine", "benchmarks", "mean speedup"}}
	for _, e := range engines {
		m := means[e]
		s.AddRow(e, m.n, fmt.Sprintf("%.4f", m.sum/float64(m.n)))
	}
	return out + "\n" + s.Render()
}
