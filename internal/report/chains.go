package report

import (
	"fmt"

	"repro/internal/simtrace"
)

// ChainTable renders reconstructed content-prefetch chains (see
// simtrace.Chains) as a per-chain summary with a classification roll-up in
// the note line. Chains arrive sorted by ID; the table keeps that order so
// output is deterministic.
func ChainTable(chains []simtrace.ChainSummary) *Table {
	t := &Table{
		Title: "Content-prefetch chains",
		Headers: []string{"chain", "class", "max depth", "issued", "fills",
			"full hits", "partial", "evicted unused", "first cycle", "last cycle"},
	}
	var useful, late, polluting, pending int
	for _, c := range chains {
		switch c.Class {
		case simtrace.ChainUseful:
			useful++
		case simtrace.ChainLate:
			late++
		case simtrace.ChainPolluting:
			polluting++
		default:
			pending++
		}
		t.AddRow(c.ID, c.Class.String(), c.MaxDepth, c.Issued, c.Fills,
			c.FullHits, c.PartialHits, c.EvictedUnused, c.FirstCycle, c.LastCycle)
	}
	t.Note = fmt.Sprintf("%d chains: %d useful, %d late, %d polluting, %d pending",
		len(chains), useful, late, polluting, pending)
	return t
}
