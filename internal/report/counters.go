package report

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/stats"
)

// sourceNames labels the per-source counter columns, indexed by
// cache.Source.
var sourceNames = [stats.NumSources]string{"demand", "stride", "content", "markov"}

// CountersTable renders every scalar field of stats.Counters as a
// two-column table. It is the registration point the statsreg analyzer
// checks: a field added to Counters without a row here (or in
// PerSourceTable/MaskHistogram) fails `go run ./cmd/simlint ./...`, so
// counters cannot silently drift out of the report.
func CountersTable(c *stats.Counters) *Table {
	t := &Table{Title: "Counters", Headers: []string{"counter", "value"}}
	add := func(name string, v any) { t.AddRow(name, v) }

	add("retired µops", c.RetiredUops)
	add("retired stores", c.RetiredStores)
	add("cycles", c.Cycles)
	add("warm-up boundary cycle", c.WarmCycles)
	add("measured cycles", c.MeasuredCycles())

	add("demand loads", c.DemandLoads)
	add("L1 hits", c.L1Hits)
	add("L1 misses", c.L1Misses)
	add("L2 hits", c.L2Hits)
	add("L2 misses", c.L2Misses)
	add("L2 miss, no prefetch in flight", c.MissNoPF)

	add("prefetch dropped: line present", c.PrefDroppedPresent)
	add("prefetch dropped: in flight", c.PrefDroppedInflight)
	add("prefetch dropped: queue full", c.PrefDroppedQueue)
	add("prefetch squashed by demand", c.PrefSquashed)
	add("prefetch dropped: unmapped page", c.PrefDroppedUnmapped)

	add("TLB hits", c.TLBHits)
	add("TLB misses", c.TLBMisses)
	add("page walks (demand)", c.Walks)
	add("page walks (speculative)", c.CDPWalks)
	add("content prefetches needing a walk", c.CDPNeedWalk)

	add("rescans", c.Rescans)
	add("depth promotions", c.PromotedDepths)
	add("content prefetches overlapping stride", c.CDPOverlapIssued)
	add("useful overlapping prefetches", c.CDPOverlapUseful)
	add("injected bad prefetches", c.InjectedPrefetches)

	add("content chains started", c.CDPChains)
	for d, n := range c.CDPIssuedAtDepth {
		if n == 0 {
			continue
		}
		label := fmt.Sprintf("content issued at depth %d", d)
		if d == stats.MaxChainDepth-1 {
			label = fmt.Sprintf("content issued at depth >= %d", d)
		}
		add(label, n)
	}
	return t
}

// PerSourceTable renders the per-source counter arrays of Counters, one
// column per prefetch source.
func PerSourceTable(c *stats.Counters) *Table {
	t := &Table{
		Title:   "Per-source prefetch counters",
		Headers: append([]string{"counter"}, sourceNames[:]...),
	}
	row := func(name string, a [stats.NumSources]uint64) {
		cells := []any{name}
		for _, v := range a {
			cells = append(cells, v)
		}
		t.AddRow(cells...)
	}
	row("issued", c.PrefIssued)
	row("useful", c.PrefUseful)
	row("full hits", c.FullHits)
	row("partial hits", c.PartialHits)
	row("evicted unused", c.PrefEvictedUnused)

	acc := []any{"accuracy"}
	cov := []any{"coverage"}
	for s := 0; s < stats.NumSources; s++ {
		acc = append(acc, Pct(c.Accuracy(cache.Source(s))))
		cov = append(cov, Pct(c.Coverage(cache.Source(s))))
	}
	t.AddRow(acc...)
	t.AddRow(cov...)
	return t
}

// MaskHistogram renders the timeliness histogram (Section 4.2.3): how much
// of each useful content prefetch's memory latency was hidden.
func MaskHistogram(c *stats.Counters) string {
	var total uint64
	for _, n := range c.MaskBuckets {
		total += n
	}
	var b strings.Builder
	b.WriteString("Masked-latency histogram\n========================\n")
	if total == 0 {
		b.WriteString("(no useful content prefetches)\n")
		return b.String()
	}
	for i, n := range c.MaskBuckets {
		label := fmt.Sprintf("%3d-%3d%%", i*10, (i+1)*10)
		if i == 10 {
			label = "   full "
		}
		fmt.Fprintf(&b, "%s %8d |%s\n", label, n, Bar(float64(n), float64(total), 40))
	}
	fmt.Fprintf(&b, "fully masked: %s\n", Pct(c.FullyMaskedShare()))
	return b.String()
}

// CountersReport renders the complete counter state — every field of
// stats.Counters — as one text block.
func CountersReport(c *stats.Counters) string {
	return CountersTable(c).Render() + "\n" +
		PerSourceTable(c).Render() + "\n" +
		MaskHistogram(c)
}
