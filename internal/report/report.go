// Package report renders experiment results as fixed-width text tables and
// simple ASCII series, the formats cmd/experiments prints and EXPERIMENTS.md
// embeds.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled, column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Note    string
}

// AddRow appends one row; values are stringified with %v, floats with
// 3-digit precision.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render produces the aligned text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		total := 0
		for _, w := range width {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(cols-1)))
		b.WriteString("\n")
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "\n%s\n", t.Note)
	}
	return b.String()
}

// Bar renders v in [0, max] as a proportional bar of up to width chars.
func Bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Series renders one or more named float series over shared x labels, with
// an inline bar per value — the textual equivalent of the paper's line
// charts.
func Series(title string, xLabel string, xs []string, names []string, series [][]float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	max := 0.0
	for _, s := range series {
		for _, v := range s {
			if v > max {
				max = v
			}
		}
	}
	t := &Table{Headers: append([]string{xLabel}, names...)}
	for i, x := range xs {
		cells := []any{x}
		for _, s := range series {
			if i < len(s) {
				cells = append(cells, s[i])
			} else {
				cells = append(cells, "")
			}
		}
		t.AddRow(cells...)
	}
	b.WriteString(t.Render())
	if len(series) == 1 {
		b.WriteString("\n")
		for i, x := range xs {
			fmt.Fprintf(&b, "%-10s |%s\n", x, Bar(series[0][i], max, 50))
		}
	}
	return b.String()
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.1f%%", f*100) }
