package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := &Table{
		Title:   "T",
		Headers: []string{"name", "value"},
		Note:    "a note",
	}
	tb.AddRow("short", 1.5)
	tb.AddRow("a-much-longer-name", 42)
	out := tb.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 2 rows, blank, note.
	if len(lines) != 8 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "1.500") {
		t.Fatalf("float not formatted:\n%s", out)
	}
	if !strings.Contains(out, "a note") {
		t.Fatal("note missing")
	}
	// The value column must start at the same offset in both rows.
	r1 := lines[4]
	r2 := lines[5]
	if strings.Index(r1, "1.500") < len("a-much-longer-name") {
		t.Fatalf("columns not aligned:\n%s\n%s", r1, r2)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow("x")
	tb.AddRow("y", "z", "extra")
	out := tb.Render()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestBar(t *testing.T) {
	if got := Bar(5, 10, 10); got != "#####" {
		t.Fatalf("Bar = %q", got)
	}
	if got := Bar(20, 10, 10); got != "##########" {
		t.Fatalf("Bar overflow = %q", got)
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Fatal("degenerate bars must be empty")
	}
}

func TestSeriesSingleIncludesBars(t *testing.T) {
	out := Series("S", "x", []string{"a", "b"}, []string{"v"}, [][]float64{{1, 2}})
	if !strings.Contains(out, "#") {
		t.Fatalf("single series missing bars:\n%s", out)
	}
	if !strings.Contains(out, "S\n=") {
		t.Fatalf("title missing:\n%s", out)
	}
}

func TestSeriesMulti(t *testing.T) {
	out := Series("M", "x", []string{"p0", "p1"},
		[]string{"s1", "s2"}, [][]float64{{1.1, 1.2}, {1.3, 1.4}})
	for _, want := range []string{"s1", "s2", "1.100", "1.400"} {
		if !strings.Contains(out, want) {
			t.Fatalf("series missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#") {
		t.Fatal("multi series should not draw bars")
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.1234); got != "12.3%" {
		t.Fatalf("Pct = %q", got)
	}
}
