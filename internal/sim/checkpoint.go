// Checkpoint/resume for the simulator. A simulation with
// Config.CheckpointEveryOps > 0 runs in segments: fetch pauses at absolute
// multiples of the interval, the machine drains completely (empty ROB,
// drained store buffer, quiesced memory system), and the whole deterministic
// state is captured as a Snapshot. Because the in-flight machinery — event
// heap, arbiters, bus transactions, page-walk continuations — is empty by
// construction at a boundary, the snapshot is a plain value with no
// closures, and resuming from it replays the remaining segments
// byte-identically to an uninterrupted checkpointed run.
package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faultinject"
	"repro/internal/markov"
	"repro/internal/prefetch"
	"repro/internal/simtrace"
	"repro/internal/stats"
	"repro/internal/tlb"
	"repro/internal/trace"
)

// Quiesced reports whether the memory system is fully drained: no pending
// events, no in-flight transactions, empty arbiters. cpu.RunSegmented polls
// it while draining a segment.
func (ms *MemSystem) Quiesced() bool {
	return ms.sched.next() < 0 && len(ms.inflight) == 0 &&
		ms.l2q.Len() == 0 && ms.busq.Len() == 0 && ms.nextPumpAt == 0
}

// MemState is the checkpointable state of a quiesced memory system. The
// stride-recent set is carried as its insertion-ordered FIFO alone; the
// membership map is rebuilt from it on restore (package sim must not
// iterate maps — simlint's determinism analyzer — and the FIFO already
// holds every member in a canonical order).
type MemState struct {
	Now        int64
	ReqID      uint64
	ChainSeq   uint64
	L2PortFree int64
	InjLCG     uint32
	LastInject int64
	StrideFIFO []uint32
	Bus        bus.State
	L1, L2     cache.State
	TLB        tlb.State
	Stride     *prefetch.State
	Content    *core.State
	Markov     *markov.State
	// AuxEngine pins the registry spec the Aux blob was captured from;
	// Aux is the cfg.Engine entrant's opaque MarshalState payload. The
	// interface owns the encoding, so new zoo entrants checkpoint without
	// touching this struct again.
	AuxEngine string
	Aux       []byte
}

// state snapshots a quiesced memory system; it fails if anything is in
// flight.
func (ms *MemSystem) state() (MemState, error) {
	if !ms.Quiesced() {
		return MemState{}, fmt.Errorf("sim: memory system not quiesced (next event %d, inflight %d, l2q %d, busq %d)",
			ms.sched.next(), len(ms.inflight), ms.l2q.Len(), ms.busq.Len())
	}
	st := MemState{
		Now: ms.now, ReqID: ms.reqID, ChainSeq: ms.chainSeq, L2PortFree: ms.l2PortFree,
		InjLCG: ms.injLCG, LastInject: ms.lastInject,
		StrideFIFO: append([]uint32(nil), ms.strideFIFO...),
		Bus:        ms.fsb.State(),
		L1:         ms.l1.State(),
		L2:         ms.l2.State(),
		TLB:        ms.dtlb.State(),
	}
	if ms.stride != nil {
		s := ms.stride.State()
		st.Stride = &s
	}
	if ms.cdp != nil {
		s := ms.cdp.State()
		st.Content = &s
	}
	if ms.mkv != nil {
		s := ms.mkv.State()
		st.Markov = &s
	}
	if ms.aux != nil {
		data, err := ms.aux.MarshalState()
		if err != nil {
			return MemState{}, err
		}
		st.AuxEngine = ms.cfg.Engine
		st.Aux = data
	}
	return st, nil
}

// restore loads a quiesce-point snapshot into a freshly built memory
// system. The snapshot's prefetcher set must match the configuration's.
func (ms *MemSystem) restore(st MemState) error {
	if (st.Stride != nil) != (ms.stride != nil) ||
		(st.Content != nil) != (ms.cdp != nil) ||
		(st.Markov != nil) != (ms.mkv != nil) ||
		(st.Aux != nil) != (ms.aux != nil) {
		return fmt.Errorf("sim: snapshot prefetcher set does not match the configuration")
	}
	if ms.aux != nil && st.AuxEngine != ms.cfg.Engine {
		return fmt.Errorf("sim: snapshot engine %q does not match configured engine %q", st.AuxEngine, ms.cfg.Engine)
	}
	if err := ms.l1.Restore(st.L1); err != nil {
		return err
	}
	if err := ms.l2.Restore(st.L2); err != nil {
		return err
	}
	if err := ms.dtlb.Restore(st.TLB); err != nil {
		return err
	}
	if ms.stride != nil {
		if err := ms.stride.Restore(*st.Stride); err != nil {
			return err
		}
	}
	if ms.cdp != nil {
		if err := ms.cdp.Restore(*st.Content); err != nil {
			return err
		}
	}
	if ms.mkv != nil {
		if err := ms.mkv.Restore(*st.Markov); err != nil {
			return err
		}
	}
	if ms.aux != nil {
		if err := ms.aux.UnmarshalState(st.Aux); err != nil {
			return err
		}
	}
	ms.fsb.Restore(st.Bus)
	ms.now, ms.reqID, ms.l2PortFree = st.Now, st.ReqID, st.L2PortFree
	ms.chainSeq = st.ChainSeq
	ms.injLCG, ms.lastInject = st.InjLCG, st.LastInject
	ms.sched.now = st.Now
	ms.strideFIFO = append(ms.strideFIFO[:0], st.StrideFIFO...)
	ms.strideRecent = make(map[uint32]bool, len(st.StrideFIFO))
	for _, pa := range st.StrideFIFO {
		ms.strideRecent[pa] = true
	}
	return nil
}

// Snapshot is the complete deterministic state of a checkpointed simulation
// at an op-count boundary. It is a plain gob-encodable value: everything
// with in-flight structure is empty at a boundary and therefore absent.
type Snapshot struct {
	// ConfigName guards against resuming a snapshot under a different
	// machine; Resume additionally re-validates the live Config.
	ConfigName string
	// OpsFetched is the absolute µop boundary the snapshot was taken at.
	OpsFetched int
	// Warmed records whether the warm-up reset has already happened, so a
	// resumed run re-arms the retire observer only when it must.
	Warmed    bool
	WarmCycle int64

	Core     cpu.CoreState
	Mem      MemState
	Counters stats.Counters
	MPTU     stats.SeriesState
}

// snapshotMagic versions the serialized stream; bump it when Snapshot's
// shape changes incompatibly.
const snapshotMagic = "cdpsnap1"

// WriteSnapshot serializes s to w behind a version header.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	if _, err := io.WriteString(w, snapshotMagic); err != nil {
		return err
	}
	return gob.NewEncoder(w).Encode(s)
}

// ReadSnapshot reads a snapshot written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("sim: reading snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("sim: not a %s snapshot stream (header %q)", snapshotMagic, magic)
	}
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("sim: decoding snapshot: %w", err)
	}
	return &s, nil
}

// EncodeSnapshot renders s to bytes (WriteSnapshot into a buffer).
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	var b bytes.Buffer
	if err := WriteSnapshot(&b, s); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// DecodeSnapshot parses bytes produced by EncodeSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	return ReadSnapshot(bytes.NewReader(data))
}

// machine bundles the components of one simulation so the uninterrupted
// and resumed paths share construction, warm-up arming, and result
// assembly.
type machine struct {
	cfg  Config
	st   *stats.Counters
	mptu *stats.MPTUSeries
	ms   *MemSystem
	c    *cpu.Core

	warmCycle int64
	warmed    bool
}

func newMachine(ck *trace.Checkpoint, cfg Config) *machine {
	m := &machine{cfg: cfg, st: &stats.Counters{}}
	m.mptu = stats.NewMPTUSeries(cfg.MPTUBucketOps)
	m.ms = NewMemSystem(&m.cfg, ck.Space, m.st, m.mptu)
	m.c = cpu.New(cfg.Core, m.st)
	return m
}

// armWarmup attaches the warm-up retire observer unless the boundary has
// already passed (a resume from a post-warm-up snapshot).
func (m *machine) armWarmup() {
	if m.cfg.WarmupOps == 0 || m.warmed {
		return
	}
	m.c.OnRetire = func(retired uint64, cycle int64) {
		if retired >= m.cfg.WarmupOps {
			m.warmCycle = cycle
			m.warmed = true
			m.st.Reset(cycle)
			m.c.OnRetire = nil
		}
	}
}

func (m *machine) snapshot(opsFetched int) (*Snapshot, error) {
	cs, err := m.c.State()
	if err != nil {
		return nil, err
	}
	mst, err := m.ms.state()
	if err != nil {
		return nil, err
	}
	return &Snapshot{
		ConfigName: m.cfg.Name,
		OpsFetched: opsFetched,
		Warmed:     m.warmed,
		WarmCycle:  m.warmCycle,
		Core:       cs,
		Mem:        mst,
		Counters:   *m.st,
		MPTU:       m.mptu.State(),
	}, nil
}

func (m *machine) restoreSnapshot(snap *Snapshot) error {
	if snap.ConfigName != m.cfg.Name {
		return fmt.Errorf("sim: snapshot is for config %q, machine is %q", snap.ConfigName, m.cfg.Name)
	}
	if m.cfg.CheckpointEveryOps <= 0 {
		return fmt.Errorf("sim: resuming requires CheckpointEveryOps > 0")
	}
	if snap.OpsFetched <= 0 || snap.OpsFetched%m.cfg.CheckpointEveryOps != 0 {
		return fmt.Errorf("sim: snapshot boundary %d is not a positive multiple of the %d-µop interval",
			snap.OpsFetched, m.cfg.CheckpointEveryOps)
	}
	if err := m.c.Restore(snap.Core); err != nil {
		return err
	}
	if err := m.ms.restore(snap.Mem); err != nil {
		return err
	}
	*m.st = snap.Counters
	if err := m.mptu.Restore(snap.MPTU); err != nil {
		return err
	}
	m.warmed, m.warmCycle = snap.Warmed, snap.WarmCycle
	return nil
}

// finish mirrors Run's result assembly.
func (m *machine) finish(coreRes cpu.Result) *Result {
	m.st.Cycles = coreRes.Cycles
	m.st.WarmCycles = m.warmCycle
	hits, misses := m.ms.TLBStats()
	m.st.TLBHits = hits
	m.st.TLBMisses = misses
	res := &Result{
		Config:         m.cfg,
		Core:           coreRes,
		Counters:       m.st,
		MPTU:           m.mptu,
		MeasuredCycles: coreRes.Cycles - m.warmCycle,
		MeasuredUops:   coreRes.Retired,
		TLBHits:        hits,
		TLBMisses:      misses,
	}
	if m.cfg.WarmupOps > 0 && coreRes.Retired > m.cfg.WarmupOps {
		res.MeasuredUops = coreRes.Retired - m.cfg.WarmupOps
	}
	runs.Add(1)
	return res
}

// run executes the remaining segments, handing each boundary snapshot to
// sink (nil = segmentation only). The sim.checkpoint.abort fault point
// fires here, before the snapshot is captured, modeling a budget-exhausted
// or killed run whose latest persisted snapshot is the previous boundary's.
func (m *machine) run(ck *trace.Checkpoint, sink func(*Snapshot) error) (*Result, error) {
	plan := cpu.SegmentPlan{
		Every:    m.cfg.CheckpointEveryOps,
		Quiesced: m.ms.Quiesced,
		OnBoundary: func(opsFetched int) error {
			if err := faultinject.Error("sim.checkpoint.abort"); err != nil {
				return fmt.Errorf("sim: aborted at %d-µop boundary: %w", opsFetched, err)
			}
			if sink == nil {
				return nil
			}
			snap, err := m.snapshot(opsFetched)
			if err != nil {
				return err
			}
			return sink(snap)
		},
	}
	coreRes, err := m.c.RunSegmented(ck.Trace, m.ms, m.cfg.MaxOps, plan)
	if err != nil {
		return nil, err
	}
	return m.finish(coreRes), nil
}

// RunCheckpointed simulates ck under cfg with checkpoint segmentation
// (cfg.CheckpointEveryOps must be > 0), calling sink with a Snapshot at
// every mid-run boundary. Results differ from Run's by the drain stalls the
// boundaries introduce — which is why the interval lives in Config and
// flows into the content hash — but are identical across uninterrupted and
// resumed executions of the same configuration.
func RunCheckpointed(ck *trace.Checkpoint, cfg Config, sink func(*Snapshot) error) (*Result, error) {
	return RunCheckpointedTraced(ck, cfg, nil, sink)
}

// RunCheckpointedTraced is RunCheckpointed with an event tracer attached
// (nil is exactly RunCheckpointed). As with RunTraced, the result is
// byte-identical with and without the tracer.
func RunCheckpointedTraced(ck *trace.Checkpoint, cfg Config, tr *simtrace.Tracer, sink func(*Snapshot) error) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CheckpointEveryOps <= 0 {
		return nil, fmt.Errorf("sim: RunCheckpointed needs CheckpointEveryOps > 0")
	}
	m := newMachine(ck, cfg)
	if tr != nil {
		m.ms.AttachTracer(tr)
		m.c.AttachTracer(tr)
	}
	m.armWarmup()
	return m.run(ck, sink)
}

// Resume continues a checkpointed simulation from snap, replaying the
// remaining segments. The returned result is byte-identical to what the
// uninterrupted RunCheckpointed would have produced.
func Resume(ck *trace.Checkpoint, cfg Config, snap *Snapshot, sink func(*Snapshot) error) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := newMachine(ck, cfg)
	if err := m.restoreSnapshot(snap); err != nil {
		return nil, err
	}
	m.armWarmup()
	return m.run(ck, sink)
}
