package sim

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/faultinject"
)

// ckptConfig is a full-featured machine (stride + content + warm-up) so
// snapshots cover every stateful component, with a checkpoint interval that
// produces several boundaries on the test traces — including at least one
// before the warm-up boundary, exercising observer re-arming on resume.
func ckptConfig() Config {
	cfg := testConfig().WithContent(core.DefaultConfig)
	cfg.WarmupOps = 12_000
	cfg.CheckpointEveryOps = 5_000
	return cfg
}

// sameResult asserts byte-level equality of everything a rendered result
// exposes.
func sameResult(t *testing.T, want, got *Result) {
	t.Helper()
	if want.Core != got.Core {
		t.Errorf("core result drifted:\nwant %+v\ngot  %+v", want.Core, got.Core)
	}
	if !reflect.DeepEqual(*want.Counters, *got.Counters) {
		t.Errorf("counters drifted:\nwant %+v\ngot  %+v", *want.Counters, *got.Counters)
	}
	if !reflect.DeepEqual(want.MPTU.Values(), got.MPTU.Values()) {
		t.Errorf("MPTU series drifted")
	}
	if want.MeasuredCycles != got.MeasuredCycles || want.MeasuredUops != got.MeasuredUops {
		t.Errorf("measured region drifted: want (%d cycles, %d µops), got (%d, %d)",
			want.MeasuredCycles, want.MeasuredUops, got.MeasuredCycles, got.MeasuredUops)
	}
	if want.TLBHits != got.TLBHits || want.TLBMisses != got.TLBMisses {
		t.Errorf("TLB counts drifted")
	}
}

func TestCheckpointedRunIsDeterministic(t *testing.T) {
	cfg := ckptConfig()
	a, err := RunCheckpointed(buildChase(t, 2000, 2, 2, true), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCheckpointed(buildChase(t, 2000, 2, 2, true), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, a, b)
}

// TestResumeByteIdentical is the tentpole property: resuming from *every*
// boundary snapshot — serialized through the gob codec, as the daemon
// stores it — reproduces the uninterrupted checkpointed run exactly.
func TestResumeByteIdentical(t *testing.T) {
	cfg := ckptConfig()
	var blobs [][]byte
	want, err := RunCheckpointed(buildChase(t, 2000, 2, 2, true), cfg, func(s *Snapshot) error {
		blob, err := EncodeSnapshot(s)
		if err != nil {
			return err
		}
		blobs = append(blobs, blob)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) < 3 {
		t.Fatalf("only %d boundaries hit; trace too short for the test to mean anything", len(blobs))
	}
	for i, blob := range blobs {
		snap, err := DecodeSnapshot(blob)
		if err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		got, err := Resume(buildChase(t, 2000, 2, 2, true), cfg, snap, nil)
		if err != nil {
			t.Fatalf("resume from boundary %d: %v", snap.OpsFetched, err)
		}
		sameResult(t, want, got)
	}
}

// TestCheckpointAbortFaultThenResume drives the sim.checkpoint.abort fault
// point: the run dies at its second boundary, and resuming from the last
// snapshot that made it out completes with the uninterrupted result.
func TestCheckpointAbortFaultThenResume(t *testing.T) {
	cfg := ckptConfig()
	want, err := RunCheckpointed(buildChase(t, 2000, 2, 2, true), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	prev := faultinject.Enable(faultinject.MustParse(1, "sim.checkpoint.abort:after=1"))
	var last *Snapshot
	_, err = RunCheckpointed(buildChase(t, 2000, 2, 2, true), cfg, func(s *Snapshot) error {
		last = s
		return nil
	})
	faultinject.Enable(prev)
	var inj *faultinject.InjectedError
	if !errors.As(err, &inj) || inj.Point != "sim.checkpoint.abort" {
		t.Fatalf("want injected abort, got %v", err)
	}
	if last == nil {
		t.Fatal("no snapshot escaped before the abort")
	}
	if last.OpsFetched != cfg.CheckpointEveryOps {
		t.Fatalf("abort after=1 should leave the first boundary's snapshot, got %d", last.OpsFetched)
	}

	got, err := Resume(buildChase(t, 2000, 2, 2, true), cfg, last, nil)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got)
}

func TestSnapshotCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeSnapshot([]byte("not a snapshot at all")); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := DecodeSnapshot([]byte(snapshotMagic + "\x01\x02garbage")); err == nil {
		t.Fatal("garbage gob body accepted")
	}
}

func TestResumeRejectsMismatchedSnapshot(t *testing.T) {
	cfg := ckptConfig()
	ck := buildChase(t, 1500, 1, 2, true)
	var snap *Snapshot
	if _, err := RunCheckpointed(ck, cfg, func(s *Snapshot) error {
		if snap == nil {
			snap = s
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}

	other := cfg
	other.Name = "some-other-machine"
	if _, err := Resume(ck, other, snap, nil); err == nil {
		t.Fatal("config-name mismatch accepted")
	}
	offGrid := *snap
	offGrid.OpsFetched += 17
	if _, err := Resume(ck, cfg, &offGrid, nil); err == nil {
		t.Fatal("off-boundary snapshot accepted")
	}
	bare := cfg
	bare.Content = nil
	bare.Name = cfg.Name
	if _, err := Resume(ck, bare, snap, nil); err == nil {
		t.Fatal("prefetcher-set mismatch accepted")
	}
}

func TestRunCheckpointedRequiresInterval(t *testing.T) {
	cfg := ckptConfig()
	cfg.CheckpointEveryOps = 0
	if _, err := RunCheckpointed(buildChase(t, 200, 1, 1, false), cfg, nil); err == nil {
		t.Fatal("zero interval accepted")
	}
}
