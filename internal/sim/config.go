// Package sim assembles the full performance model: the out-of-order core
// of internal/cpu in front of an event-driven memory system wiring together
// the DL1, the DTLB with its hardware page walker, the unified L2, the L2
// and bus arbiters, the front-side bus, and the three prefetchers (stride
// baseline, content-directed, Markov). The microarchitecture follows
// Figure 6 of the paper; the numbers follow Table 1.
package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/markov"
	"repro/internal/prefetch"
	"repro/internal/prefetch/registry"
	"repro/internal/tlb"
)

// Config describes one simulated machine.
type Config struct {
	// Name labels the configuration in reports; any value (including
	// empty, for throwaway configs in tests) is valid. simlint:novalidate
	Name string

	Core cpu.Config

	L1  cache.Config
	L2  cache.Config
	TLB tlb.Config

	// L1Lat and L2Lat are load-to-use latencies in cycles (Table 1: 3
	// and 16).
	L1Lat int64
	L2Lat int64

	// BusLatency/BusOccupancy model the front-side bus (Table 1: 460
	// cycles round trip, 4.26 GB/s => ~60 cycles per 64-byte line).
	BusLatency   int64
	BusOccupancy int64

	// L2QueueSize and BusQueueSize bound the arbiters (128 and 32).
	L2QueueSize  int
	BusQueueSize int

	// Stride enables the baseline stride prefetcher (present in every
	// configuration the paper evaluates).
	Stride *prefetch.StrideConfig
	// Content enables the content-directed prefetcher.
	Content *core.Config
	// Markov enables the Markov comparator of Section 5.
	Markov *markov.Config
	// Engine attaches one additional zoo entrant by registry spec
	// ("pangloss", "bestoffset:degree=2", ... — see
	// internal/prefetch/registry). The engine observes the miss stream its
	// registration declares and issues at Markov arbitration rank,
	// accounted under the markov prefetch source. A flat string keeps the
	// engine and its parameters inside the simcache content hash with no
	// new encoder cases. Empty attaches nothing.
	Engine string

	// InjectBadPrefetches floods every idle bus cycle with a useless
	// prefetch, reproducing the pollution limit study of Section 3.5.
	// Both toggle states are valid machines. simlint:novalidate
	InjectBadPrefetches bool

	// CheckpointEveryOps, when > 0, segments execution at absolute
	// multiples of this many fetched µops: the machine fully drains at
	// each boundary so its state can be snapshotted (RunCheckpointed) and
	// later resumed byte-identically (Resume). Draining perturbs timing,
	// so the interval is part of the configuration — and therefore of the
	// result-cache content hash — rather than a runtime side channel.
	// 0 disables segmentation and reproduces Run exactly.
	CheckpointEveryOps int

	// WarmupOps is the retired-µop count after which measurement
	// counters reset (Section 2.2's warm-up boundary).
	WarmupOps uint64
	// MaxOps bounds the µops executed (0 = whole trace).
	MaxOps int
	// MPTUBucketOps is the Figure 1 bucket width in retired µops.
	MPTUBucketOps uint64
}

// LineSize is the cache line size of the model (Table 1).
const LineSize = 64

// Default returns the Table 1 baseline: 4 GHz core, 32 KiB DL1, 1 MiB UL2,
// 64-entry DTLB, stride prefetcher only. Warm-up and MPTU bucketing default
// to the scaled-down trace lengths this reproduction uses (the paper runs
// 30 M-instruction LITs with a 7.5 M-µop warm-up; we default to a 150 K-µop
// warm-up ahead of ~1 M-µop traces — the same ~1/7 proportion).
func Default() Config {
	return Config{
		Name: "baseline-stride",
		Core: cpu.DefaultConfig(),
		L1:   cache.Config{SizeBytes: 32 * 1024, Ways: 8, LineSize: LineSize},
		L2:   cache.Config{SizeBytes: 1024 * 1024, Ways: 8, LineSize: LineSize},
		TLB:  tlb.Config{Entries: 64, Ways: 4},

		L1Lat:        3,
		L2Lat:        16,
		BusLatency:   460,
		BusOccupancy: 60,
		L2QueueSize:  128,
		BusQueueSize: 32,

		Stride: &prefetch.DefaultStrideConfig,

		WarmupOps:     150_000,
		MPTUBucketOps: 25_000,
	}
}

// WithContent returns c with the content prefetcher enabled using the given
// policy.
func (c Config) WithContent(p core.Config) Config {
	cp := p
	cp.LineSize = c.L2.LineSize
	c.Content = &cp
	c.Name = fmt.Sprintf("%s+cdp(%s,d%d,p%d.n%d,reinf=%v)", c.Name, cp.Match,
		cp.DepthThreshold, cp.PrevLines, cp.NextLines, cp.Reinforce)
	return c
}

// WithMarkov returns c with the Markov prefetcher enabled and the UL2
// resized per Table 3. stabBudget of 0 means an unbounded STAB with the
// original UL2 (markov_big).
func (c Config) WithMarkov(stabBudgetBytes int, l2 cache.Config) Config {
	mc := markov.Config{}
	if stabBudgetBytes > 0 {
		mc.MaxEntries = markov.EntriesForBudget(stabBudgetBytes)
	}
	c.Markov = &mc
	c.L2 = l2
	c.Name = fmt.Sprintf("%s+markov(%dKB stab,%dKB ul2)", c.Name,
		stabBudgetBytes/1024, l2.SizeBytes/1024)
	return c
}

// WithEngine returns c with an additional zoo entrant attached by registry
// spec.
func (c Config) WithEngine(spec string) Config {
	c.Engine = spec
	c.Name = fmt.Sprintf("%s+%s", c.Name, spec)
	return c
}

// Validate checks every configuration field and their cross-field
// consistency. cfgcheck (cmd/simlint) enforces that no exported field is
// ever added without either a check here or an explicit
// `simlint:novalidate` marker.
func (c Config) Validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	if err := c.L1.Validate(); err != nil {
		return err
	}
	if err := c.L2.Validate(); err != nil {
		return err
	}
	if err := c.TLB.Validate(); err != nil {
		return err
	}
	if c.L1.LineSize != LineSize || c.L2.LineSize != LineSize {
		return fmt.Errorf("sim: line size must be %d", LineSize)
	}
	if c.L1Lat <= 0 || c.L2Lat <= 0 || c.BusLatency <= 0 || c.BusOccupancy <= 0 {
		return fmt.Errorf("sim: non-positive latency")
	}
	if c.L2QueueSize <= 0 || c.BusQueueSize <= 0 {
		return fmt.Errorf("sim: non-positive queue size")
	}
	if c.Stride != nil {
		if err := c.Stride.Validate(); err != nil {
			return err
		}
	}
	if c.Content != nil {
		if err := c.Content.Validate(); err != nil {
			return err
		}
	}
	if c.Markov != nil {
		if err := c.Markov.Validate(); err != nil {
			return err
		}
	}
	if c.Engine != "" {
		eng, err := registry.Build(c.Engine)
		if err != nil {
			return err
		}
		if eng.Stream() == prefetch.StreamFill {
			return fmt.Errorf("sim: engine %q scans fills; enable the content prefetcher via Content instead", c.Engine)
		}
	}
	if c.MaxOps < 0 {
		return fmt.Errorf("sim: negative µop bound %d", c.MaxOps)
	}
	if c.CheckpointEveryOps < 0 {
		return fmt.Errorf("sim: negative checkpoint interval %d", c.CheckpointEveryOps)
	}
	if c.MaxOps > 0 && c.WarmupOps >= uint64(c.MaxOps) {
		return fmt.Errorf("sim: warm-up of %d µops swallows the whole %d-µop run", c.WarmupOps, c.MaxOps)
	}
	if c.MPTUBucketOps == 0 {
		return fmt.Errorf("sim: zero MPTU bucket width")
	}
	return nil
}
