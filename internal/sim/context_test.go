package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/workloads"
)

// TestRunContextCancelled: a dead context refuses to simulate and does not
// advance the process-wide run counter.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec, err := workloads.ByName("b2c")
	if err != nil {
		t.Fatal(err)
	}
	ck := workloads.Checkpoint(spec, 10_000)
	before := Runs()
	res, err := RunContext(ctx, ck, Default())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled RunContext still returned a result")
	}
	if Runs() != before {
		t.Fatal("cancelled RunContext advanced the run counter")
	}
}

// TestRunContextMatchesRun: with a live context, RunContext is Run — same
// counters, same measured region, bit for bit.
func TestRunContextMatchesRun(t *testing.T) {
	spec, err := workloads.ByName("b2c")
	if err != nil {
		t.Fatal(err)
	}
	ck := workloads.Checkpoint(spec, 30_000)
	cfg := Default()
	cfg.WarmupOps = 5_000
	want := Run(ck, cfg)
	got, err := RunContext(context.Background(), ck, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.MeasuredCycles != want.MeasuredCycles || got.MeasuredUops != want.MeasuredUops {
		t.Fatalf("RunContext measured %d cycles / %d µops, Run measured %d / %d",
			got.MeasuredCycles, got.MeasuredUops, want.MeasuredCycles, want.MeasuredUops)
	}
	if !reflect.DeepEqual(got.Counters, want.Counters) {
		t.Fatal("RunContext and Run produced different counter blocks")
	}
}
