//go:build !simdebug

package sim

// debugInvariants gates the runtime invariant layer. In normal builds it is
// a false constant, so every `if debugInvariants { ... }` block and the
// stub bodies below compile away to nothing; builds with -tags simdebug
// swap in debug_on.go and pay for full cross-structure checks on every
// pump. See DESIGN.md, "Correctness tooling".
const debugInvariants = false

// debugPastSchedule is a no-op in normal builds; scheduler.schedule clamps
// the past cycle to now and continues.
func debugPastSchedule(at, now int64) {}

// assertMonotone is a no-op in normal builds.
func assertMonotone(at, now int64) {}

// checkInvariants is a no-op in normal builds.
func (ms *MemSystem) checkInvariants(at int64) {}
