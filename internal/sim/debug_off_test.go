//go:build !simdebug

package sim

import "testing"

// In normal builds, scheduling into the past of the tracked now clamps to
// now instead of reordering already-executed history.
func TestSchedulePastClampsToNow(t *testing.T) {
	var s scheduler
	s.now = 100
	s.schedule(50, event{kind: evPump})
	if got := s.h[0].at; got != 100 {
		t.Fatalf("schedule(50) with now=100 queued event at cycle %d, want clamp to 100", got)
	}
}
