//go:build simdebug

package sim

import (
	"fmt"

	"repro/internal/bus"
)

// debugInvariants enables the runtime invariant layer: monotonicity of the
// event heap, consistency of the inflight map with the queue and bus
// occupancy, and the arbiter bounds, asserted on every pump. Violations
// panic with enough context to localise the model bug. Normal builds (no
// -tags simdebug) compile all of this away; see debug_off.go.
const debugInvariants = true

// debugPastSchedule fires when an event is scheduled before the cycle the
// scheduler is currently executing — time travel that release builds merely
// clamp away.
func debugPastSchedule(at, now int64) {
	panic(fmt.Sprintf("sim: event scheduled at cycle %d, in the past of tracked now %d", at, now))
}

// assertMonotone verifies the heap yields events in non-decreasing cycle
// order (a violated comparator or corrupted heap would break determinism
// silently otherwise).
func assertMonotone(at, now int64) {
	if at < now {
		panic(fmt.Sprintf("sim: event heap popped cycle %d after already executing cycle %d", at, now))
	}
}

// checkInvariants asserts the cross-structure consistency of the memory
// system:
//
//   - both arbiters respect their configured bounds;
//   - every queued request is tracked in the inflight map under its own
//     physical line base;
//   - the inflight map contains exactly the queued plus the bus-flying
//     transactions — no leaked and no orphaned entries.
func (ms *MemSystem) checkInvariants(at int64) {
	l2q := ms.l2q.Requests()
	busq := ms.busq.Requests()
	if len(l2q) > ms.cfg.L2QueueSize {
		panic(fmt.Sprintf("sim: L2 queue holds %d requests, capacity %d, at cycle %d",
			len(l2q), ms.cfg.L2QueueSize, at))
	}
	if len(busq) > ms.cfg.BusQueueSize {
		panic(fmt.Sprintf("sim: bus queue holds %d requests, capacity %d, at cycle %d",
			len(busq), ms.cfg.BusQueueSize, at))
	}
	queued := 0
	for _, reqs := range [2][]*bus.Request{l2q, busq} {
		for _, r := range reqs {
			if got := ms.inflight[r.PABase]; got != r {
				panic(fmt.Sprintf("sim: queued %s request %d (line %#x) not tracked in inflight at cycle %d",
					r.Class, r.ID, r.PABase, at))
			}
			queued++
		}
	}
	if len(ms.inflight) != queued+ms.flying {
		panic(fmt.Sprintf("sim: inflight map holds %d lines but %d are queued and %d flying at cycle %d",
			len(ms.inflight), queued, ms.flying, at))
	}
}
