//go:build simdebug

package sim

import "testing"

// Under -tags simdebug, scheduling into the past of the tracked now is a
// model bug and must panic rather than clamp.
func TestSchedulePastPanicsUnderSimdebug(t *testing.T) {
	var s scheduler
	s.now = 100
	defer func() {
		if recover() == nil {
			t.Fatal("schedule(50) with now=100 did not panic under simdebug")
		}
	}()
	s.schedule(50, event{kind: evPump})
}
