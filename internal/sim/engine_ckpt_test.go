package sim

import (
	"strings"
	"testing"
)

// engineCkptConfig attaches one zoo entrant to the checkpointing machine so
// snapshots carry the engine's opaque state blob.
func engineCkptConfig(spec string) Config {
	cfg := testConfig().WithEngine(spec)
	cfg.WarmupOps = 12_000
	cfg.CheckpointEveryOps = 5_000
	return cfg
}

// TestResumeByteIdenticalEngines extends the resume tentpole to the
// interface-native entrants: a run with pangloss or bestoffset attached
// resumes from every boundary snapshot — engine table included — to the
// uninterrupted result, byte for byte.
func TestResumeByteIdenticalEngines(t *testing.T) {
	for _, spec := range []string{"pangloss", "bestoffset"} {
		t.Run(spec, func(t *testing.T) {
			cfg := engineCkptConfig(spec)
			var blobs [][]byte
			want, err := RunCheckpointed(buildChase(t, 2000, 2, 2, true), cfg, func(s *Snapshot) error {
				blob, err := EncodeSnapshot(s)
				if err != nil {
					return err
				}
				blobs = append(blobs, blob)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(blobs) < 3 {
				t.Fatalf("only %d boundaries hit; trace too short for the test to mean anything", len(blobs))
			}
			for i, blob := range blobs {
				snap, err := DecodeSnapshot(blob)
				if err != nil {
					t.Fatalf("snapshot %d: %v", i, err)
				}
				got, err := Resume(buildChase(t, 2000, 2, 2, true), cfg, snap, nil)
				if err != nil {
					t.Fatalf("resume from boundary %d: %v", snap.OpsFetched, err)
				}
				sameResult(t, want, got)
			}
		})
	}
}

// TestResumeRejectsEngineMismatch pins the snapshot guard for the Engine
// field: a snapshot taken with one entrant must not restore into a machine
// running another — or none.
func TestResumeRejectsEngineMismatch(t *testing.T) {
	cfg := engineCkptConfig("pangloss")
	ck := buildChase(t, 1500, 1, 2, true)
	var snap *Snapshot
	if _, err := RunCheckpointed(ck, cfg, func(s *Snapshot) error {
		if snap == nil {
			snap = s
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}

	other := engineCkptConfig("bestoffset")
	other.Name = cfg.Name // bypass the name guard to hit the engine guard
	if _, err := Resume(ck, other, snap, nil); err == nil {
		t.Fatal("engine-spec mismatch accepted")
	} else if !strings.Contains(err.Error(), "engine") {
		t.Fatalf("mismatch error does not name the engine: %v", err)
	}

	bare := engineCkptConfig("pangloss")
	bare.Engine = ""
	bare.Name = cfg.Name
	if _, err := Resume(ck, bare, snap, nil); err == nil {
		t.Fatal("engine-presence mismatch accepted")
	}
}

// TestValidateRejectsUnknownEngine is the regression the cdpsim exit-2
// convention depends on: a bad Engine spec fails Validate with the
// registry's full valid-name listing, so every surface (flag, API, config
// file) reports the same actionable message.
func TestValidateRejectsUnknownEngine(t *testing.T) {
	cfg := Default().WithEngine("quake3")
	err := cfg.Validate()
	if err == nil {
		t.Fatal("unknown engine passed Validate")
	}
	if !strings.Contains(err.Error(), "valid: bestoffset, cdp, markov, pangloss, stride") {
		t.Fatalf("error does not list valid engines: %v", err)
	}

	// Fill-stream engines must be rejected with a pointer at the Content
	// knob rather than silently double-wiring the CDP.
	cdp := Default().WithEngine("cdp")
	if err := cdp.Validate(); err == nil || !strings.Contains(err.Error(), "Content") {
		t.Fatalf("fill-stream engine spec not redirected to Content: %v", err)
	}
}
