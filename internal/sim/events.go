package sim

import "container/heap"

// event is one scheduled memory-system action. Events with equal cycles run
// in scheduling order (seq breaks ties) so the simulation is deterministic.
type event struct {
	at  int64
	seq uint64
	fn  func(at int64)
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type scheduler struct {
	h   eventHeap
	seq uint64
	// now is the cycle of the event currently (or most recently) executed.
	// schedule clamps against it, so the heap can never travel backwards
	// in time even if a caller slips.
	now int64
}

// schedule runs fn at the given cycle. A cycle in the past of the tracked
// now would reorder already-executed history, so it is clamped to now —
// and treated as a model bug (panic) under -tags simdebug. The eventmono
// analyzer (cmd/simlint) additionally rejects call sites whose cycle
// argument is not derived from the tracked simulation time.
func (s *scheduler) schedule(at int64, fn func(int64)) {
	if at < s.now {
		debugPastSchedule(at, s.now)
		at = s.now
	}
	s.seq++
	heap.Push(&s.h, event{at: at, seq: s.seq, fn: fn})
}

// next returns the earliest pending event cycle, or -1.
func (s *scheduler) next() int64 {
	if len(s.h) == 0 {
		return -1
	}
	return s.h[0].at
}

// runUntil executes all events with at <= cycle, including events scheduled
// by the events themselves when they fall within the bound.
func (s *scheduler) runUntil(cycle int64) {
	for len(s.h) > 0 && s.h[0].at <= cycle {
		e := heap.Pop(&s.h).(event)
		if debugInvariants {
			assertMonotone(e.at, s.now)
		}
		if e.at > s.now {
			s.now = e.at
		}
		e.fn(e.at)
	}
}
