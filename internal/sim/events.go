package sim

import "repro/internal/bus"

// eventKind selects the action an event performs when it fires. Events used
// to carry closures; on the simulation hot path the closure plus the
// container/heap any-boxing cost two heap allocations per scheduled event,
// so events now carry their arguments inline and dispatch on kind.
type eventKind uint8

const (
	// evPump re-runs the bus/queue pump (MemSystem.pump).
	evPump eventKind = iota
	// evFill completes a bus transaction (MemSystem.fillArrive).
	evFill
	// evRescan re-runs the content scanner over a resident line
	// (MemSystem.scanAndIssue) after a reinforcement hit.
	evRescan
)

// event is one scheduled memory-system action. Events with equal cycles run
// in scheduling order (seq breaks ties) so the simulation is deterministic.
type event struct {
	at  int64
	seq uint64

	kind eventKind
	req  *bus.Request // evFill: the arriving transaction

	// evRescan arguments: the triggering access VA, the virtual base of
	// the line to scan, the stored request depth, and the line's content
	// chain (candidates issued by the rescan extend it).
	hitVA  uint32
	lineVA uint32
	depth  int32
	chain  uint64
}

// less orders events by cycle, then scheduling order. (at, seq) is a total
// order — seq is unique — so the pop sequence does not depend on the heap
// implementation.
func (e event) less(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// scheduler is a hand-rolled binary min-heap of events. container/heap
// would route every Push/Pop through heap.Interface and box each event into
// an `any`; the concrete implementation keeps events by value in the slice
// and allocates only on backing-array growth.
type scheduler struct {
	h   []event
	ms  *MemSystem // dispatch target for fired events
	seq uint64
	// now is the cycle of the event currently (or most recently) executed.
	// schedule clamps against it, so the heap can never travel backwards
	// in time even if a caller slips.
	now int64
}

// schedule fires e at the given cycle. A cycle in the past of the tracked
// now would reorder already-executed history, so it is clamped to now —
// and treated as a model bug (panic) under -tags simdebug. The eventmono
// analyzer (cmd/simlint) additionally rejects call sites whose cycle
// argument is not derived from the tracked simulation time.
func (s *scheduler) schedule(at int64, e event) {
	if at < s.now {
		debugPastSchedule(at, s.now)
		at = s.now
	}
	s.seq++
	e.at = at
	e.seq = s.seq
	s.push(e)
}

// next returns the earliest pending event cycle, or -1.
func (s *scheduler) next() int64 {
	if len(s.h) == 0 {
		return -1
	}
	return s.h[0].at
}

// runUntil executes all events with at <= cycle, including events scheduled
// by the events themselves when they fall within the bound.
func (s *scheduler) runUntil(cycle int64) {
	for len(s.h) > 0 && s.h[0].at <= cycle {
		e := s.pop()
		if debugInvariants {
			assertMonotone(e.at, s.now)
		}
		if e.at > s.now {
			s.now = e.at
		}
		s.ms.fire(e)
	}
}

func (s *scheduler) push(e event) {
	s.h = append(s.h, e)
	i := len(s.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.h[i].less(s.h[parent]) {
			break
		}
		s.h[i], s.h[parent] = s.h[parent], s.h[i]
		i = parent
	}
}

func (s *scheduler) pop() event {
	h := s.h
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // drop the stale *bus.Request so pooling can't alias it
	h = h[:n]
	s.h = h
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].less(h[l]) {
			m = r
		}
		if !h[m].less(h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// fire dispatches one due event.
func (ms *MemSystem) fire(e event) {
	if ms.tr.Enabled() {
		ms.tr.SetNow(e.at)
	}
	switch e.kind {
	case evPump:
		ms.pump(e.at)
	case evFill:
		ms.fillArrive(e.at, e.req)
	case evRescan:
		ms.scanAndIssue(e.at, e.hitVA, int(e.depth), e.lineVA, e.chain)
	}
}
