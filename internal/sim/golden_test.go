package sim

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// updateEngineGoldens regenerates the per-engine golden counter files:
//
//	go test ./internal/sim -run TestEngineGoldenCounters -update-engines
//
// The stride/cdp/markov files were captured BEFORE the Prefetcher-interface
// refactor; they are the proof that routing those engines through the
// interface changed nothing. Regenerate only for a deliberate model change,
// never to absorb drift from a refactor.
var updateEngineGoldens = flag.Bool("update-engines", false,
	"rewrite testdata/golden/engines/<name>.txt files")

// goldenOps pins the trace budget the engine goldens were generated with.
const goldenOps = 120_000

// goldenBase mirrors the service's config derivation (api.buildSim): the
// warm-up and MPTU bucketing come from the µop budget.
func goldenBase() Config {
	cfg := Default()
	cfg.WarmupOps = uint64(goldenOps / 8)
	cfg.MPTUBucketOps = uint64(goldenOps / 48)
	return cfg
}

// engineGoldenConfigs is the fixed pre-refactor engine matrix. The two
// interface-native entrants (pangloss, bestoffset) are appended by
// TestEngineGoldenCounters when the Engine field exists; their goldens are
// regression anchors captured at introduction rather than equivalence
// witnesses.
func engineGoldenConfigs() map[string]Config {
	base := goldenBase()
	return map[string]Config{
		"stride":     base,
		"cdp":        base.WithContent(core.DefaultConfig),
		"markov":     base.WithMarkov(512*1024, base.L2),
		"pangloss":   base.WithEngine("pangloss"),
		"bestoffset": base.WithEngine("bestoffset"),
	}
}

// renderEngineGolden is the byte-compared serialization: the measured
// region, then every counter the report layer knows how to print.
func renderEngineGolden(benchmark string, res *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmark %s\nconfig %s\n", benchmark, res.Config.Name)
	fmt.Fprintf(&b, "retired %d measured_uops %d\n", res.Core.Retired, res.MeasuredUops)
	fmt.Fprintf(&b, "cycles %d measured_cycles %d\n", res.Core.Cycles, res.MeasuredCycles)
	fmt.Fprintf(&b, "tlb %d/%d\n\n", res.TLBHits, res.TLBMisses)
	b.WriteString(report.CountersReport(res.Counters))
	return b.String()
}

func engineGoldenPath(name string) string {
	return filepath.Join("testdata", "golden", "engines", name+".txt")
}

// TestEngineGoldenCounters runs one small benchmark per engine
// configuration and compares the rendered counter block byte-for-byte
// against the checked-in golden. stride/cdp/markov goldens predate the
// Prefetcher-interface refactor, so a pass here means the interface rewire
// is behaviourally invisible.
func TestEngineGoldenCounters(t *testing.T) {
	spec, err := workloads.ByName("tpcc-1")
	if err != nil {
		t.Fatal(err)
	}
	ck := workloads.Checkpoint(spec, goldenOps)
	for name, cfg := range engineGoldenConfigs() {
		t.Run(name, func(t *testing.T) {
			got := renderEngineGolden(spec.Name, Run(ck, cfg))
			path := engineGoldenPath(name)
			if *updateEngineGoldens {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update-engines): %v", err)
			}
			if got != string(want) {
				t.Errorf("engine %s counters drifted from %s:\n%s", name, path, diffHead(string(want), got))
			}
		})
	}
}

// diffHead points at the first line of divergence so a failure names the
// counter, not just "bytes differ".
func diffHead(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
